//! `npcc` — the CUDA-NP source-to-source compiler as a command-line tool,
//! mirroring how the paper's Cetus-based implementation was used: feed it a
//! kernel with `np parallel for` pragmas, get the optimized kernel back.
//!
//! ```text
//! npcc [options] <kernel.cu>      (or `-` for stdin)
//!
//!   --slave-size N       threads per master group (default 4)
//!   --np-type inter|intra  distribution scheme (default inter)
//!   --device NAME|PATH   simulate on a registry device (gtx680, k20c,
//!                        maxwell, small_test) or a JSON/TOML descriptor
//!                        file (default gtx680); composes with --explain,
//!                        --timeline, --check-races, --emit-trace, --replay
//!   --list-devices       print the device registry (name, marketing name,
//!                        descriptor digest) and exit
//!   --sm VERSION         target compute capability x10 (default 30)
//!   --local-array auto|global|shared|register
//!   --pad                pad loop trip counts to a slave_size multiple
//!   --no-redundant       broadcast every live-in (disable Section 3.1)
//!   --report             print the transform decisions to stderr
//!   --explain            auto-tune on the simulator with synthesized
//!                        arguments, emit the winning kernel, and print a
//!                        per-candidate counter table to stderr saying why
//!                        the winner won
//!   --tune-policy P      candidate-selection policy for --explain:
//!                        `exhaustive` (default) simulates every candidate;
//!                        `pruned[:M]` simulates only candidates the static
//!                        cost model scores within margin M (default 1.0)
//!                        of the predicted best, falling back to the full
//!                        sweep on a model miss; `predict` pilots the
//!                        model's top pick and re-ranks with its measured
//!                        counters. Pruned/predict never return a slower
//!                        winner than exhaustive — a miss triggers the
//!                        fallback round
//!   --gate-small-loops   enable adaptive NP gating: pragma loops whose
//!                        static trip count falls below the device's
//!                        serial-gate threshold run serially on the master
//!                        instead of being widened
//!   --timeline           simulate the emitted kernel with synthesized
//!                        arguments and render the per-SMX stall timeline
//!                        (Gantt + utilization) to stderr
//!   --check-races        simulate the emitted kernel with the happens-before
//!                        race checker armed and print the report to stderr;
//!                        exit nonzero on any finding. With --explain, also
//!                        print a narrative naming the two racing accesses by
//!                        pc/space/address
//!   --mutate M           apply a conformance mutation to the transformed
//!                        kernel before emitting/checking it:
//!                        drop-barrier[:N] or unguard-broadcast
//!   --watchdog B         interpreter step budget for every simulation this
//!                        invocation runs (a count, or `none` to disarm);
//!                        the same spellings the serve protocol accepts
//!   --emit-trace PATH    freeze the emitted kernel's interpretation into a
//!                        replayable `np-trace-v1` artifact at PATH (with
//!                        --explain, the winner's capture from the tuning
//!                        sweep is written — no extra interpretation)
//!   --obs-out PATH       record the invocation's np-obs spans/events to
//!                        PATH (np-obs-v1 JSONL; the final line embeds the
//!                        metrics-registry snapshot) and write a
//!                        chrome-trace doc to PATH.chrome.json with the
//!                        host span track spliced alongside the SMX
//!                        timeline tracks when --timeline ran
//!
//! npcc obs-strip         read np-obs JSONL on stdin, write it back with
//!                        every wall_* field removed — the determinism
//!                        gate's normalizer (byte-identical across reruns)
//!
//! npcc --replay PATH [--watchdog B]
//!
//!   Re-time a previously emitted trace artifact without re-interpreting:
//!   decode PATH (digest-verified), replay it through the timing engine on
//!   the simulated GTX 680 (or the `--device` choice — replay is a pure
//!   timing recompute, so any device with compatible transaction/line
//!   geometry works), and print the deterministic report JSON to stdout.
//!   The watchdog budget may differ from the capturing run — the recorded
//!   step total reproduces the verdict either way; interpretation-
//!   affecting options (sampling, race checking) come from the artifact.
//!
//! npcc serve [options]   JSONL batch service on stdin/stdout
//!
//!   --workers N          simulation worker threads (default 2)
//!   --queue N            admission queue bound (default 16)
//!   --cache N            result cache capacity in entries (default 256)
//!   --deadline-ms MS     default per-request wall-clock deadline
//!   --watchdog B         default step budget (count or `none`)
//!   --chaos SEED         arm seeded chaos (delays, panics, faults,
//!                        cache corruption)
//!   --soak SECS          run the built-in chaos-soak client driver for
//!                        SECS seconds instead of reading stdin; exits
//!                        nonzero unless the exactly-once and
//!                        byte-identity invariants held
//!   --clients N          soak client threads (default 4)
//!   --bench-out PATH     write BENCH_serve.json here (default
//!                        BENCH_serve.json in soak mode)
//!   --log PATH           stream the daemon's np-obs events to PATH as
//!                        JSONL (request lifecycle with correlation ids,
//!                        cache outcomes, drain/flush records)
//!   --log-level L        level floor for --log: trace|debug|info|warn|
//!                        error (default debug)
//!   --quiet              raise the stderr event floor to errors (stdout
//!                        is pure response JSONL either way)
//! ```

use cuda_np::serve::{
    parse_step_budget, soak, synth_args, ChaosConfig, RetryPolicy, ServeConfig, Server,
    SoakConfig,
};
use cuda_np::tuner::{
    alloc_extra_buffers, autotune_with_policy, candidates_from_pragmas, TuneOutcome,
};
use cuda_np::{
    drop_barrier, drop_broadcast_guard, gating_policy, serial_gate_threshold, transform,
    LocalArrayStrategy, NpOptions, Transformed, TunePolicy,
};
use np_exec::{capture_launch, launch, replay_launch, RaceCheckMode, SimOptions};
use np_gpu_sim::racecheck::RaceCheckOptions;
use np_gpu_sim::{CapturedLaunch, CapturedRaceMode, DeviceConfig, ProfileCounters};
use np_kernel_ir::analysis::barriers::count_barriers;
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::pragma::NpType;
use np_kernel_ir::types::Dim3;
use np_kernel_ir::{parse_kernel, printer};
use std::io::{BufRead, Read, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: npcc [--slave-size N] [--np-type inter|intra] [--sm V] \
         [--local-array auto|global|shared|register] [--pad] [--no-redundant] \
         [--device NAME|PATH] [--report] [--explain] \
         [--tune-policy exhaustive|pruned[:M]|predict] [--gate-small-loops] \
         [--timeline] \
         [--check-races] [--mutate drop-barrier[:N]|unguard-broadcast] \
         [--watchdog B|none] [--emit-trace PATH] [--obs-out PATH] \
         <kernel.cu | ->\n\
         \x20      npcc --list-devices\n\
         \x20      npcc --replay PATH [--device NAME|PATH] [--watchdog B|none] \
         [--obs-out PATH]\n\
         \x20      npcc obs-strip < events.jsonl\n\
         \x20      npcc serve [--workers N] [--queue N] [--cache N] \
         [--deadline-ms MS] [--watchdog B|none] [--chaos SEED] \
         [--soak SECS] [--clients N] [--bench-out PATH] \
         [--log PATH] [--log-level trace|debug|info|warn|error] [--quiet]"
    );
    std::process::exit(2)
}

fn np_type_str(t: NpType) -> &'static str {
    match t {
        NpType::InterWarp => "inter",
        NpType::IntraWarp => "intra",
    }
}

fn counter_cells(p: &ProfileCounters) -> String {
    format!(
        "{:>9} {:>7} {:>10} {:>9.3} {:>10} {:>12} {:>9} {:>8}",
        p.instructions,
        p.divergence_events,
        p.divergent_instructions,
        p.coalescing_efficiency(),
        p.bank_conflict_replays,
        format!(
            "{}/{}/{}",
            p.shfl_broadcasts, p.shfl_reduction_steps, p.shfl_scan_steps
        ),
        p.shared_broadcasts,
        p.barrier_waits,
    )
}

/// Auto-tune `kernel` on the selected simulated device and print the
/// per-candidate counter table plus a winner analysis to stderr. Returns
/// the winning transform and its captured interpretation (for
/// `--emit-trace` — the sweep already interpreted the winner exactly once,
/// so the artifact costs nothing extra), or `None` when nothing ran to
/// completion.
fn explain(
    kernel: &Kernel,
    dev: &DeviceConfig,
    dev_label: &str,
    sim: &SimOptions,
    policy: TunePolicy,
) -> Option<(Transformed, CapturedLaunch)> {
    let grid = Dim3::x1(4);
    let header = format!(
        "{:<14} {:>10} {:>9} {:>7} {:>10} {:>9} {:>10} {:>12} {:>9} {:>8}",
        "config",
        "cycles",
        "instr",
        "div.ev",
        "div.instr",
        "coalesce",
        "sh.replays",
        "shfl b/r/s",
        "bcast(sh)",
        "barriers"
    );
    eprintln!(
        "npcc: explaining kernel {:?} on {dev_label}, grid {} x {} threads",
        kernel.name,
        grid.count(),
        kernel.block_dim.count()
    );
    eprintln!("{header}");

    let baseline = launch(dev, kernel, grid, &mut synth_args(kernel), sim);
    let base = match &baseline {
        Ok(rep) => {
            eprintln!(
                "{:<14} {:>10} {}",
                "baseline",
                rep.cycles,
                counter_cells(&rep.profile.total)
            );
            Some((rep.cycles, rep.profile.total.clone(), rep.timing.stall.clone()))
        }
        Err(e) => {
            eprintln!("{:<14} {}", "baseline", e);
            None
        }
    };

    let candidates = candidates_from_pragmas(kernel, 1024);
    let make_args =
        |t: &Transformed| alloc_extra_buffers(synth_args(&t.kernel), t, grid);
    let result = autotune_with_policy(kernel, dev, grid, &make_args, sim, &candidates, policy);
    let (entries, winner_idx, winner) = match result {
        Ok(r) => {
            eprintln!(
                "npcc: tune policy {}: evaluated {}/{} candidates ({} pruned){}",
                r.policy,
                r.evaluated,
                candidates.len(),
                r.skipped,
                if r.fell_back { ", fell back to the full sweep on a model miss" } else { "" }
            );
            if let Some(rank) = r.predicted_rank {
                eprintln!(
                    "npcc: cost model ranked the measured winner #{} of {}",
                    rank + 1,
                    candidates.len()
                );
            }
            let cycles = r.result.best_report.cycles;
            (
                r.result.entries,
                Some(r.result.best_index),
                Some((r.result.best, r.result.best_capture, cycles)),
            )
        }
        Err(cuda_np::TuneError::AllFailed(entries)) => (entries, None, None),
        Err(e) => {
            eprintln!("npcc: tuning failed: {e}");
            return None;
        }
    };

    for (i, e) in entries.iter().enumerate() {
        let label = format!("{} s={}", np_type_str(e.np_type), e.slave_size);
        match (&e.outcome, &e.profile) {
            (TuneOutcome::Ok { cycles }, Some(p)) => {
                let mark = if winner_idx == Some(i) { "*" } else { " " };
                eprintln!("{mark}{label:<13} {cycles:>10} {}", counter_cells(p));
            }
            (outcome, _) => eprintln!(" {label:<13} {outcome}"),
        }
    }

    let (best, best_capture, best_cycles) = winner?;
    let best_entry = winner_idx.and_then(|i| entries.get(i));
    let best_p = best_entry.and_then(|e| e.profile.clone()).unwrap_or_default();
    let (w_type, w_size) = best_entry
        .map(|e| (np_type_str(e.np_type), e.slave_size))
        .unwrap_or(("?", best.report.slave_size));
    eprintln!("npcc: winner {w_type} s={w_size} in {best_cycles} cycles");
    // Where the winner's cycles go (the flight-recorder attribution).
    if let Some(st) = best_entry.and_then(|e| e.stall.as_ref()) {
        eprintln!(
            "npcc:   cycle attribution: issue {:.1}%  issue-limit {:.1}%  \
             memory {:.1}%  dram-saturated {:.1}%  barrier {:.1}%  \
             scoreboard {:.1}%  idle {:.1}%",
            100.0 * st.issue as f64 / st.total().max(1) as f64,
            100.0 * st.issue_limit as f64 / st.total().max(1) as f64,
            100.0 * st.memory_pending as f64 / st.total().max(1) as f64,
            100.0 * st.dram_saturated as f64 / st.total().max(1) as f64,
            100.0 * st.barrier_wait as f64 / st.total().max(1) as f64,
            100.0 * st.scoreboard_dependency as f64 / st.total().max(1) as f64,
            100.0 * st.no_block_resident as f64 / st.total().max(1) as f64,
        );
    }
    if let Some((base_cycles, base_p, base_st)) = base {
        eprintln!(
            "npcc:   speedup over baseline: {:.2}x",
            base_cycles as f64 / best_cycles as f64
        );
        if let Some(st) = best_entry.and_then(|e| e.stall.as_ref()) {
            eprintln!(
                "npcc:   stall shift vs baseline: memory {:.1}% -> {:.1}%, \
                 barrier {:.1}% -> {:.1}%, issuing {:.1}% -> {:.1}%",
                100.0 * base_st.memory_fraction(),
                100.0 * st.memory_fraction(),
                100.0 * base_st.barrier_wait as f64 / base_st.total().max(1) as f64,
                100.0 * st.barrier_wait as f64 / st.total().max(1) as f64,
                100.0 * base_st.issue_fraction(),
                100.0 * st.issue_fraction(),
            );
        }
        let why = [
            (
                "coalescing efficiency",
                format!(
                    "{:.3} -> {:.3}",
                    base_p.coalescing_efficiency(),
                    best_p.coalescing_efficiency()
                ),
                best_p.coalescing_efficiency() > base_p.coalescing_efficiency(),
            ),
            (
                "divergent instructions",
                format!(
                    "{} -> {}",
                    base_p.divergent_instructions, best_p.divergent_instructions
                ),
                best_p.divergent_instructions < base_p.divergent_instructions,
            ),
            (
                "shfl replaces shared-memory broadcast",
                format!(
                    "{} shfl vs {} staged broadcasts",
                    best_p.shfl_ops(),
                    best_p.shared_broadcasts
                ),
                best_p.shfl_ops() > 0,
            ),
            (
                "bank-conflict replays",
                format!(
                    "{} -> {}",
                    base_p.bank_conflict_replays, best_p.bank_conflict_replays
                ),
                best_p.bank_conflict_replays < base_p.bank_conflict_replays,
            ),
        ];
        for (name, detail, relevant) in why {
            if relevant {
                eprintln!("npcc:   {name}: {detail}");
            }
        }
    }
    Some((best, best_capture))
}

/// Write a capture as an `np-trace-v1` artifact and log its identity.
fn write_trace(cap: &CapturedLaunch, path: &str) -> bool {
    let bytes = cap.encode();
    match std::fs::write(path, &bytes) {
        Ok(()) => {
            eprintln!(
                "npcc: wrote trace {path}: kernel {:?}, {}/{} blocks, {} bytes, \
                 digest {:016x}",
                cap.kernel_name,
                cap.sim_blocks,
                cap.total_blocks,
                bytes.len(),
                cap.digest()
            );
            true
        }
        Err(e) => {
            eprintln!("npcc: cannot write {path}: {e}");
            false
        }
    }
}

/// Simulate `t`'s emitted kernel once with synthesized arguments and
/// freeze the interpretation into an artifact at `path`.
fn emit_trace(t: &Transformed, dev: &DeviceConfig, sim: &SimOptions, path: &str) -> bool {
    let grid = Dim3::x1(4);
    let mut args = alloc_extra_buffers(synth_args(&t.kernel), t, grid);
    match capture_launch(dev, &t.kernel, grid, &mut args, sim) {
        Ok((_, cap)) => write_trace(&cap, path),
        Err(e) => {
            eprintln!("npcc: --emit-trace simulation failed: {e}");
            false
        }
    }
}

/// `npcc --replay PATH`: decode and re-time a trace artifact without any
/// interpretation. Interpretation-affecting options come from the capture
/// (they must match anyway); only the watchdog budget may be overridden.
fn replay_main(
    path: &str,
    dev: &DeviceConfig,
    dev_label: &str,
    watchdog: Option<Option<u64>>,
) -> ExitCode {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("npcc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cap = match CapturedLaunch::decode(&bytes) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("npcc: {path}: bad trace artifact: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut sim = SimOptions::full();
    sim.max_blocks = cap.max_blocks;
    sim.detect_races = cap.detect_races;
    sim.check_races = match cap.race_mode {
        CapturedRaceMode::Off => RaceCheckMode::Off,
        CapturedRaceMode::Record => RaceCheckMode::Record,
        CapturedRaceMode::Fatal => RaceCheckMode::Fatal,
    };
    if let Some(b) = watchdog {
        sim = sim.with_watchdog(b);
    }
    match replay_launch(dev, &cap, &sim) {
        Ok(rep) => {
            eprintln!(
                "npcc: replayed {:?} from {path} on {dev_label}: {} cycles ({:.1} us), \
                 {}/{} blocks{}",
                cap.kernel_name,
                rep.cycles,
                rep.time_us,
                cap.sim_blocks,
                cap.total_blocks,
                if cap.is_sampled() { " (sampled)" } else { "" }
            );
            println!("{}", cuda_np::serve::proto::report_json(&rep, dev_label));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("npcc: replay of {path} failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Apply a `--mutate` spec to the transformed kernel. The mutations are the
/// conformance suite's known-broken variants: they exist so CI (and tests)
/// can assert the race checker actually fires.
fn apply_mutation(t: &Transformed, spec: &str) -> Result<Kernel, String> {
    if let Some(rest) = spec.strip_prefix("drop-barrier") {
        let n: usize = if rest.is_empty() {
            0
        } else {
            rest.strip_prefix(':')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad mutation spec {spec:?}"))?
        };
        drop_barrier(&t.kernel, n).ok_or_else(|| {
            format!(
                "kernel has no barrier site {n} (only {} sites)",
                count_barriers(&t.kernel)
            )
        })
    } else if spec == "unguard-broadcast" {
        drop_broadcast_guard(&t.kernel)
            .ok_or_else(|| "kernel has no guarded broadcast store to un-gate".to_string())
    } else {
        Err(format!("unknown mutation {spec:?} (want drop-barrier[:N] or unguard-broadcast)"))
    }
}

/// Simulate `kernel` (the emitted kernel of `t`, possibly mutated) with the
/// happens-before checker recording and print the report to stderr. Returns
/// true when the run is race-free.
fn check_races(
    t: &Transformed,
    kernel: &Kernel,
    dev: &DeviceConfig,
    dev_label: &str,
    explain: bool,
    sim: &SimOptions,
) -> bool {
    let grid = Dim3::x1(4);
    let mut args = alloc_extra_buffers(synth_args(&t.kernel), t, grid);
    let sim = sim
        .clone()
        .with_race_check(RaceCheckMode::Record)
        .with_race_options(RaceCheckOptions { max_findings: None, policy: gating_policy(t) });
    match launch(dev, kernel, grid, &mut args, &sim) {
        Ok(rep) => {
            eprintln!(
                "npcc: race check for {:?} on {dev_label}, grid {} x {} threads: {}",
                kernel.name,
                grid.count(),
                kernel.block_dim.count(),
                if rep.race.is_clean() { "clean" } else { "RACES FOUND" }
            );
            eprintln!("{}", rep.race.to_json());
            if explain {
                eprint!("{}", rep.race.narrative());
            }
            rep.race.is_clean()
        }
        Err(e) => {
            eprintln!("npcc: race check simulation failed: {e}");
            false
        }
    }
}

/// Simulate `t`'s kernel with synthesized arguments on the selected device
/// and render the per-SMX stall timeline to stderr. Returns the report's
/// chrome-trace doc (for `--obs-out` splicing) on success.
fn render_timeline(
    t: &Transformed,
    dev: &DeviceConfig,
    dev_label: &str,
    sim: &SimOptions,
) -> Option<String> {
    let grid = Dim3::x1(4);
    let mut args = alloc_extra_buffers(synth_args(&t.kernel), t, grid);
    match launch(dev, &t.kernel, grid, &mut args, sim) {
        Ok(rep) => {
            eprintln!(
                "npcc: timeline for {:?} on {dev_label}, grid {} x {} threads",
                t.kernel.name,
                grid.count(),
                t.kernel.block_dim.count()
            );
            eprint!("{}", rep.timing.timeline.render_gantt(96));
            Some(rep.chrome_trace())
        }
        Err(e) => {
            eprintln!("npcc: timeline simulation failed: {e}");
            None
        }
    }
}

/// Everything a one-shot (non-serve) invocation needs, parsed off argv.
struct CompileRun {
    opts: NpOptions,
    /// Resolved `--device` (default: the gtx680 preset).
    dev: DeviceConfig,
    /// The spec the user gave (`gtx680`, `k20c`, a descriptor path), used
    /// in stderr messages so runs say which device they simulated.
    dev_label: String,
    input: Option<String>,
    report: bool,
    explain_flag: bool,
    tune_policy: TunePolicy,
    gate_small_loops: bool,
    timeline_flag: bool,
    check_races_flag: bool,
    mutate: Option<String>,
    emit_trace_path: Option<String>,
    replay_path: Option<String>,
    watchdog: Option<Option<u64>>,
}

/// `npcc --list-devices`: one registry device per line with its marketing
/// name and descriptor digest.
fn list_devices() -> ExitCode {
    for name in np_gpu_sim::device::REGISTRY {
        let dev = np_gpu_sim::device::from_name(name).expect("registry preset");
        println!("{:<12} {:<36} digest {}", name, dev.name, dev.digest_hex());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut opts = NpOptions::inter(4);
    let mut device_spec: Option<String> = None;
    let mut input: Option<String> = None;
    let mut report = false;
    let mut explain_flag = false;
    let mut tune_policy = TunePolicy::default();
    let mut gate_small_loops = false;
    let mut timeline_flag = false;
    let mut check_races_flag = false;
    let mut mutate: Option<String> = None;
    let mut emit_trace_path: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut obs_out: Option<String> = None;
    // `--watchdog` step budget: absent = simulator default,
    // Some(None) = disarmed, Some(Some(n)) = n steps.
    let mut watchdog: Option<Option<u64>> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "serve" => return serve_main(args),
            "obs-strip" => return obs_strip_main(),
            "--list-devices" => return list_devices(),
            "--device" => device_spec = Some(args.next().unwrap_or_else(|| usage())),
            "--slave-size" => {
                opts.slave_size = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--np-type" => match args.next().as_deref() {
                Some("inter") => opts.np_type = NpType::InterWarp,
                Some("intra") => opts.np_type = NpType::IntraWarp,
                _ => usage(),
            },
            "--sm" => {
                opts.sm_version =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--local-array" => {
                opts.local_array = match args.next().as_deref() {
                    Some("auto") => LocalArrayStrategy::Auto,
                    Some("global") => LocalArrayStrategy::ForceGlobal,
                    Some("shared") => LocalArrayStrategy::ForceShared,
                    Some("register") => LocalArrayStrategy::ForceRegister,
                    _ => usage(),
                }
            }
            "--pad" => opts.pad = true,
            "--no-redundant" => opts.redundant_uniform = false,
            "--report" => report = true,
            "--explain" => explain_flag = true,
            "--tune-policy" => {
                let spec = args.next().unwrap_or_else(|| usage());
                tune_policy = match TunePolicy::parse(&spec) {
                    Ok(p) => p,
                    Err(e) => {
                        eprintln!("npcc: --tune-policy: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--gate-small-loops" => gate_small_loops = true,
            "--timeline" => timeline_flag = true,
            "--check-races" => check_races_flag = true,
            "--mutate" => mutate = Some(args.next().unwrap_or_else(|| usage())),
            "--emit-trace" => emit_trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--obs-out" => obs_out = Some(args.next().unwrap_or_else(|| usage())),
            "--replay" => replay_path = Some(args.next().unwrap_or_else(|| usage())),
            "--watchdog" => {
                let spec = args.next().unwrap_or_else(|| usage());
                watchdog = match parse_step_budget(&spec) {
                    Ok(b) => Some(b),
                    Err(e) => {
                        eprintln!("npcc: --watchdog: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other if input.is_none() && !other.starts_with("--") => {
                input = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    let dev_label = device_spec.unwrap_or_else(|| "gtx680".to_string());
    let dev = match np_gpu_sim::device::resolve(&dev_label) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("npcc: --device: {e}");
            return ExitCode::from(2);
        }
    };
    let run = CompileRun {
        opts,
        dev,
        dev_label,
        input,
        report,
        explain_flag,
        tune_policy,
        gate_small_loops,
        timeline_flag,
        check_races_flag,
        mutate,
        emit_trace_path,
        replay_path,
        watchdog,
    };
    match obs_out {
        None => run_compile(run, &mut None),
        Some(path) => {
            // One buffered recorder + registry for the whole invocation:
            // drained into `PATH` (np-obs-v1 JSONL, registry doc last) and
            // `PATH.chrome.json` (host span tracks spliced alongside the
            // SMX timeline when `--timeline` ran).
            let rec = np_obs::Recorder::buffer(1 << 20);
            let reg = np_obs::Registry::new();
            let mut chrome = None;
            let code =
                np_obs::scope(&rec, Some(&reg), None, || run_compile(run, &mut chrome));
            if !write_obs_log(&rec, &reg, chrome.as_deref(), &path) {
                return ExitCode::FAILURE;
            }
            code
        }
    }
}

/// `npcc obs-strip`: read an np-obs JSONL stream (or any text embedding
/// one) on stdin and write it back with every `wall_*` field removed —
/// the determinism gate's canonical normalizer, shared with the library
/// so CI and the tests strip identically.
fn obs_strip_main() -> ExitCode {
    let mut s = String::new();
    if std::io::stdin().read_to_string(&mut s).is_err() {
        eprintln!("npcc obs-strip: failed to read stdin");
        return ExitCode::FAILURE;
    }
    print!("{}", np_obs::strip_text(&s));
    ExitCode::SUCCESS
}

/// Drain the invocation's recorder into `path` (JSONL events, then one
/// `registry` line) and `path.chrome.json` (chrome-trace doc: the SMX
/// timeline tracks from `--timeline` when present, plus one host track of
/// np-obs spans).
fn write_obs_log(
    rec: &np_obs::Recorder,
    reg: &np_obs::Registry,
    chrome_sim: Option<&str>,
    path: &str,
) -> bool {
    let events = rec.drain();
    let mut doc = np_obs::render_jsonl(&events, false);
    doc.push_str(&format!(
        "{{\"seq\":{},\"ev\":\"registry\",\"dropped\":{},\"doc\":{}}}\n",
        events.len(),
        rec.dropped(),
        reg.snapshot_json(false).trim_end()
    ));
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("npcc: cannot write {path}: {e}");
        return false;
    }
    let spans = np_obs::chrome_trace_events(&events, "npcc");
    let chrome_doc = match chrome_sim {
        Some(sim) => {
            let base = sim.trim_end();
            let base = base.strip_suffix(']').unwrap_or(base).trim_end();
            let base = base.strip_suffix(',').unwrap_or(base);
            if spans.is_empty() {
                format!("{base}\n]")
            } else {
                format!("{base},\n{spans}\n]")
            }
        }
        None => format!("[\n{spans}\n]"),
    };
    let cpath = format!("{path}.chrome.json");
    if let Err(e) = std::fs::write(&cpath, &chrome_doc) {
        eprintln!("npcc: cannot write {cpath}: {e}");
        return false;
    }
    true
}

/// The one-shot compile/replay pipeline (everything except `serve`). When
/// `--timeline` renders, its chrome-trace doc is handed back through
/// `chrome` for `--obs-out` splicing.
fn run_compile(c: CompileRun, chrome: &mut Option<String>) -> ExitCode {
    let CompileRun {
        mut opts,
        dev,
        dev_label,
        input,
        report,
        explain_flag,
        tune_policy,
        gate_small_loops,
        timeline_flag,
        check_races_flag,
        mutate,
        emit_trace_path,
        replay_path,
        watchdog,
    } = c;
    let _root = np_obs::span("npcc");
    np_obs::event(np_obs::Level::Debug, "npcc.device", vec![np_obs::kv("device", dev_label.as_str())]);
    // `--replay` is a standalone mode: no kernel source involved.
    if let Some(p) = replay_path {
        if input.is_some() {
            eprintln!("npcc: --replay takes no kernel input (the artifact is the input)");
            return ExitCode::from(2);
        }
        return replay_main(&p, &dev, &dev_label, watchdog);
    }
    let Some(path) = input else { usage() };
    // The step budget every simulation in this invocation runs under.
    let sim = match watchdog {
        None => SimOptions::full(),
        Some(b) => SimOptions::full().with_watchdog(b),
    };

    let src = if path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("npcc: failed to read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("npcc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let parsed = {
        let _p = np_obs::span("parse");
        parse_kernel(&src)
    };
    let mut kernel = match parsed {
        Ok(k) => k,
        Err(e) => {
            eprintln!("npcc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Preprocess: multi-dimensional blocks are flattened automatically
    // (Section 3.7 item 1).
    cuda_np::preprocess::flatten_block(&mut kernel);

    if gate_small_loops {
        let threshold = serial_gate_threshold(&dev);
        opts.serial_below = Some(threshold);
        eprintln!(
            "npcc: adaptive gating armed: loops with static trips below {threshold} \
             run serially on the master ({dev_label})"
        );
    }

    // `--check-races` pins the config (no autotune): transform, optionally
    // mutate, simulate with the checker armed, and gate the exit code on
    // the report. `--explain` here means "narrate the findings".
    if check_races_flag || mutate.is_some() {
        let t = match transform(&kernel, &opts) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("npcc: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let emitted = match &mutate {
            Some(spec) => match apply_mutation(&t, spec) {
                Ok(k) => k,
                Err(e) => {
                    eprintln!("npcc: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => t.kernel.clone(),
        };
        print!("{}", printer::print_kernel(&emitted));
        if report {
            eprintln!("npcc: {:#?}", t.report);
        }
        if check_races_flag && !check_races(&t, &emitted, &dev, &dev_label, explain_flag, &sim) {
            return ExitCode::FAILURE;
        }
        if let Some(p) = &emit_trace_path {
            if !emit_trace(&t, &dev, &sim, p) {
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    if explain_flag {
        return match explain(&kernel, &dev, &dev_label, &sim, tune_policy) {
            Some((best, best_capture)) => {
                print!("{}", printer::print_kernel(&best.kernel));
                if report {
                    eprintln!("npcc: {:#?}", best.report);
                }
                if timeline_flag {
                    match render_timeline(&best, &dev, &dev_label, &sim) {
                        Some(ct) => *chrome = Some(ct),
                        None => return ExitCode::FAILURE,
                    }
                }
                // The sweep already interpreted the winner; its capture is
                // written as-is.
                if let Some(p) = &emit_trace_path {
                    if !write_trace(&best_capture, p) {
                        return ExitCode::FAILURE;
                    }
                }
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("npcc: {path}: no tuning candidate ran to completion");
                ExitCode::FAILURE
            }
        };
    }

    match transform(&kernel, &opts) {
        Ok(t) => {
            print!("{}", printer::print_kernel(&t.kernel));
            if report {
                eprintln!("npcc: {:#?}", t.report);
            }
            if timeline_flag {
                match render_timeline(&t, &dev, &dev_label, &sim) {
                    Some(ct) => *chrome = Some(ct),
                    None => return ExitCode::FAILURE,
                }
            }
            if let Some(p) = &emit_trace_path {
                if !emit_trace(&t, &dev, &sim, p) {
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("npcc: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// SIGTERM/SIGINT flag for the serve loop. Set from a raw C signal
/// handler (no libc crate in this workspace): storing a relaxed atomic
/// bool is async-signal-safe.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

fn install_signal_handlers() {
    #[cfg(unix)]
    {
        unsafe extern "C" {
            /// POSIX `signal(2)`; resolved from the platform libc the
            /// binary already links against.
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

/// `npcc serve`: JSONL requests on stdin, JSONL responses on stdout,
/// operational log on stderr. SIGTERM/SIGINT (or stdin EOF) triggers a
/// graceful drain: accepted jobs finish, the cache index is flushed, and
/// the exit is clean.
fn serve_main(mut args: std::iter::Skip<std::env::Args>) -> ExitCode {
    let mut cfg = ServeConfig { queue_cap: 16, ..ServeConfig::default() };
    let mut chaos_seed: Option<u64> = None;
    let mut soak_secs: Option<u64> = None;
    let mut clients = 4usize;
    let mut bench_out: Option<String> = None;
    let mut log_path: Option<String> = None;
    let mut log_level = np_obs::Level::Debug;
    let mut quiet = false;

    let num = |args: &mut std::iter::Skip<std::env::Args>| -> u64 {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workers" => cfg.workers = num(&mut args).max(1) as usize,
            "--queue" => cfg.queue_cap = num(&mut args).max(1) as usize,
            "--cache" => cfg.cache_cap = num(&mut args).max(1) as usize,
            "--deadline-ms" => cfg.default_deadline_ms = Some(num(&mut args)),
            "--watchdog" => {
                let spec = args.next().unwrap_or_else(|| usage());
                cfg.default_watchdog = match parse_step_budget(&spec) {
                    Ok(b) => b,
                    Err(e) => {
                        eprintln!("npcc serve: --watchdog: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--chaos" => chaos_seed = Some(num(&mut args)),
            "--soak" => soak_secs = Some(num(&mut args)),
            "--clients" => clients = num(&mut args).max(1) as usize,
            "--bench-out" => bench_out = Some(args.next().unwrap_or_else(|| usage())),
            "--log" => log_path = Some(args.next().unwrap_or_else(|| usage())),
            "--log-level" => {
                let spec = args.next().unwrap_or_else(|| usage());
                log_level = match np_obs::Level::parse(&spec) {
                    Some(l) => l,
                    None => {
                        eprintln!("npcc serve: --log-level: unknown level {spec:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    cfg.chaos = chaos_seed.map(ChaosConfig::standard);

    // The daemon's structured logger: stdout stays pure response JSONL;
    // stderr carries level-filtered np-obs events (everything the daemon
    // used to eprintln), and `--log` adds a JSONL file at `--log-level`.
    // The channel is bounded — overload drops lines and counts them
    // rather than stalling the serve loop.
    let mut targets = vec![np_obs::StreamTarget {
        min_level: if quiet { np_obs::Level::Error } else { np_obs::Level::Info },
        writer: Box::new(std::io::stderr()),
    }];
    if let Some(p) = &log_path {
        match std::fs::File::create(p) {
            Ok(f) => targets.push(np_obs::StreamTarget { min_level: log_level, writer: Box::new(f) }),
            Err(e) => {
                eprintln!("npcc serve: cannot create --log {p}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let rec = np_obs::Recorder::stream(targets, 4096);
    cfg.obs = Some(rec.clone());

    if let Some(secs) = soak_secs {
        let code = soak_main(cfg, chaos_seed, secs, clients, bench_out, &rec);
        rec.shutdown();
        return code;
    }

    install_signal_handlers();
    let server = Server::start(cfg.clone());
    rec.event(
        np_obs::Level::Info,
        "serve.ready",
        None,
        vec![
            np_obs::kv("workers", cfg.workers as u64),
            np_obs::kv("queue", cfg.queue_cap as u64),
            np_obs::kv("cache", cfg.cache_cap as u64),
            np_obs::kv("chaos", chaos_seed.is_some()),
        ],
    );

    // Stdin on its own thread: a blocked read must not stop the main loop
    // from noticing SIGTERM or printing worker responses.
    let (line_tx, line_rx) = channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            if line_tx.send(line).is_err() {
                break;
            }
        }
        // Dropping line_tx signals EOF to the main loop.
    });

    let (resp_tx, resp_rx) = channel();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut print = |resp: cuda_np::serve::Response| {
        let _ = writeln!(out, "{}", resp.to_json_line());
        let _ = out.flush();
    };

    let reason = loop {
        if SHUTDOWN.load(Ordering::Relaxed) {
            break "signal";
        }
        match line_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(line) => {
                server.submit(&line, &resp_tx);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break "eof",
        }
        while let Ok(resp) = resp_rx.try_recv() {
            print(resp);
        }
    };

    rec.event(
        np_obs::Level::Info,
        "serve.drain_begin",
        None,
        vec![np_obs::kv("reason", reason), np_obs::kv("queued", server.queue_len() as u64)],
    );
    let end = server.shutdown();
    // Workers are joined: every outstanding response is in the channel.
    while let Ok(resp) = resp_rx.try_recv() {
        print(resp);
    }
    if let Some(path) = &bench_out {
        let doc = end.snapshot.bench_json(chaos_seed, None);
        if let Err(e) = std::fs::write(path, doc) {
            rec.event(
                np_obs::Level::Warn,
                "serve.bench_out_error",
                None,
                vec![np_obs::kv("path", path.as_str()), np_obs::kv("error", e.to_string())],
            );
        }
    }
    // The index doc and the registry snapshot ride as string fields; the
    // drain gate greps for their schema tags as substrings.
    rec.event(
        np_obs::Level::Info,
        "serve.cache_index",
        None,
        vec![np_obs::kv("doc", end.cache_index.trim_end())],
    );
    rec.event(
        np_obs::Level::Debug,
        "serve.registry",
        None,
        vec![np_obs::kv("doc", end.registry_json.as_str())],
    );
    rec.event(
        np_obs::Level::Info,
        "serve.drained",
        None,
        vec![
            np_obs::kv("msg", "drained cleanly"),
            np_obs::kv("answered", end.snapshot.answered),
            np_obs::kv("wall_p50_us", end.snapshot.p50_us),
            np_obs::kv("wall_p99_us", end.snapshot.p99_us),
            np_obs::kv("hits", end.snapshot.cache_hits),
            np_obs::kv("shed", end.snapshot.shed_overloaded),
            np_obs::kv("quarantined", end.snapshot.quarantined_rejects),
            np_obs::kv("worker_panics", end.worker_panics),
        ],
    );
    rec.shutdown();
    if end.worker_panics == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `npcc serve --soak SECS`: hammer an in-process server with the seeded
/// client fleet, write `BENCH_serve.json`, and gate the exit code on the
/// exactly-once + byte-identity invariants.
fn soak_main(
    cfg: ServeConfig,
    chaos_seed: Option<u64>,
    secs: u64,
    clients: usize,
    bench_out: Option<String>,
    rec: &np_obs::Recorder,
) -> ExitCode {
    let seed = chaos_seed.unwrap_or(0);
    rec.event(
        np_obs::Level::Info,
        "soak.begin",
        None,
        vec![
            np_obs::kv("secs", secs),
            np_obs::kv("clients", clients),
            np_obs::kv("workers", cfg.workers),
            np_obs::kv("queue", cfg.queue_cap),
            np_obs::kv("seed", seed),
            np_obs::kv("chaos", cfg.chaos.is_some()),
        ],
    );
    let server = Arc::new(Server::start(cfg));
    let report = soak(
        server,
        &SoakConfig {
            seed,
            clients,
            duration: Duration::from_secs(secs),
            retry: RetryPolicy::default(),
        },
    );
    rec.event(
        np_obs::Level::Info,
        "soak.report",
        None,
        vec![np_obs::kv("summary", report.summary())],
    );
    let path = bench_out.unwrap_or_else(|| "BENCH_serve.json".to_string());
    if let Some(snap) = &report.snapshot {
        let doc = snap.bench_json(chaos_seed, Some(secs));
        match std::fs::write(&path, &doc) {
            Ok(()) => rec.event(
                np_obs::Level::Info,
                "soak.bench_out",
                None,
                vec![np_obs::kv("path", path.as_str())],
            ),
            Err(e) => {
                rec.event(
                    np_obs::Level::Error,
                    "soak.bench_out_error",
                    None,
                    vec![np_obs::kv("path", path.as_str()), np_obs::kv("error", e.to_string())],
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let verdict = if report.passed() { "PASSED" } else { "FAILED" };
    rec.event(
        np_obs::Level::Info,
        "soak.end",
        None,
        vec![np_obs::kv("verdict", verdict)],
    );
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
