//! `npcc` — the CUDA-NP source-to-source compiler as a command-line tool,
//! mirroring how the paper's Cetus-based implementation was used: feed it a
//! kernel with `np parallel for` pragmas, get the optimized kernel back.
//!
//! ```text
//! npcc [options] <kernel.cu>      (or `-` for stdin)
//!
//!   --slave-size N       threads per master group (default 4)
//!   --np-type inter|intra  distribution scheme (default inter)
//!   --sm VERSION         target compute capability x10 (default 30)
//!   --local-array auto|global|shared|register
//!   --pad                pad loop trip counts to a slave_size multiple
//!   --no-redundant       broadcast every live-in (disable Section 3.1)
//!   --report             print the transform decisions to stderr
//!   --explain            auto-tune on the simulator with synthesized
//!                        arguments, emit the winning kernel, and print a
//!                        per-candidate counter table to stderr saying why
//!                        the winner won
//!   --timeline           simulate the emitted kernel with synthesized
//!                        arguments and render the per-SMX stall timeline
//!                        (Gantt + utilization) to stderr
//!   --check-races        simulate the emitted kernel with the happens-before
//!                        race checker armed and print the report to stderr;
//!                        exit nonzero on any finding. With --explain, also
//!                        print a narrative naming the two racing accesses by
//!                        pc/space/address
//!   --mutate M           apply a conformance mutation to the transformed
//!                        kernel before emitting/checking it:
//!                        drop-barrier[:N] or unguard-broadcast
//! ```

use cuda_np::tuner::{
    alloc_extra_buffers, autotune, candidates_from_pragmas, TuneOutcome,
};
use cuda_np::{
    drop_barrier, drop_broadcast_guard, gating_policy, transform, LocalArrayStrategy,
    NpOptions, Transformed,
};
use np_exec::{launch, Args, RaceCheckMode, SimOptions};
use np_gpu_sim::racecheck::RaceCheckOptions;
use np_gpu_sim::{DeviceConfig, ProfileCounters};
use np_kernel_ir::analysis::barriers::count_barriers;
use np_kernel_ir::kernel::{Kernel, ParamKind};
use np_kernel_ir::pragma::NpType;
use np_kernel_ir::types::{Dim3, Scalar};
use np_kernel_ir::{parse_kernel, printer};
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: npcc [--slave-size N] [--np-type inter|intra] [--sm V] \
         [--local-array auto|global|shared|register] [--pad] [--no-redundant] \
         [--report] [--explain] [--timeline] [--check-races] \
         [--mutate drop-barrier[:N]|unguard-broadcast] <kernel.cu | ->"
    );
    std::process::exit(2)
}

/// Deterministic synthesized arguments for `--explain` / `--check-races`:
/// every array gets 64Ki elements of reproducible non-trivial data, every
/// integer scalar a plausible dimension — a multiple of the warp width, so
/// tiled loops with bounds like `w / 32` actually run — every float 1.0.
fn synth_args(kernel: &Kernel) -> Args {
    let n = 1usize << 16;
    let mut args = Args::new();
    for p in &kernel.params {
        args = match p.kind {
            ParamKind::Scalar(Scalar::F32) => args.f32(&p.name, 1.0),
            ParamKind::Scalar(Scalar::I32) => args.i32(&p.name, 64),
            ParamKind::Scalar(_) => args.u32(&p.name, 64),
            ParamKind::GlobalArray(ty) | ParamKind::TexArray(ty) | ParamKind::ConstArray(ty) => {
                match ty {
                    Scalar::F32 => args.buf_f32(
                        &p.name,
                        (0..n).map(|i| ((i * 37 + 11) % 97) as f32 / 97.0).collect(),
                    ),
                    Scalar::I32 => {
                        args.buf_i32(&p.name, (0..n).map(|i| (i % 7) as i32).collect())
                    }
                    _ => args.buf_u32(&p.name, (0..n).map(|i| (i % 7) as u32).collect()),
                }
            }
        };
    }
    args
}

fn np_type_str(t: NpType) -> &'static str {
    match t {
        NpType::InterWarp => "inter",
        NpType::IntraWarp => "intra",
    }
}

fn counter_cells(p: &ProfileCounters) -> String {
    format!(
        "{:>9} {:>7} {:>10} {:>9.3} {:>10} {:>12} {:>9} {:>8}",
        p.instructions,
        p.divergence_events,
        p.divergent_instructions,
        p.coalescing_efficiency(),
        p.bank_conflict_replays,
        format!(
            "{}/{}/{}",
            p.shfl_broadcasts, p.shfl_reduction_steps, p.shfl_scan_steps
        ),
        p.shared_broadcasts,
        p.barrier_waits,
    )
}

/// Auto-tune `kernel` on the simulated GTX 680 and print the per-candidate
/// counter table plus a winner analysis to stderr. Returns the winning
/// transform, or `None` when nothing ran to completion.
fn explain(kernel: &Kernel) -> Option<Transformed> {
    let dev = DeviceConfig::gtx680();
    let grid = Dim3::x1(4);
    let header = format!(
        "{:<14} {:>10} {:>9} {:>7} {:>10} {:>9} {:>10} {:>12} {:>9} {:>8}",
        "config",
        "cycles",
        "instr",
        "div.ev",
        "div.instr",
        "coalesce",
        "sh.replays",
        "shfl b/r/s",
        "bcast(sh)",
        "barriers"
    );
    eprintln!(
        "npcc: explaining kernel {:?} on gtx680, grid {} x {} threads",
        kernel.name,
        grid.count(),
        kernel.block_dim.count()
    );
    eprintln!("{header}");

    let baseline = launch(&dev, kernel, grid, &mut synth_args(kernel), &SimOptions::full());
    let base = match &baseline {
        Ok(rep) => {
            eprintln!(
                "{:<14} {:>10} {}",
                "baseline",
                rep.cycles,
                counter_cells(&rep.profile.total)
            );
            Some((rep.cycles, rep.profile.total.clone(), rep.timing.stall.clone()))
        }
        Err(e) => {
            eprintln!("{:<14} {}", "baseline", e);
            None
        }
    };

    let candidates = candidates_from_pragmas(kernel, 1024);
    let make_args =
        |t: &Transformed| alloc_extra_buffers(synth_args(&t.kernel), t, grid);
    let result = autotune(kernel, &dev, grid, &make_args, &SimOptions::full(), &candidates);
    let (entries, winner) = match result {
        Ok(r) => {
            let cycles = r.best_report.cycles;
            (r.entries, Some((r.best, cycles)))
        }
        Err(cuda_np::TuneError::AllFailed(entries)) => (entries, None),
        Err(e) => {
            eprintln!("npcc: tuning failed: {e}");
            return None;
        }
    };

    // min_by_key breaks ties toward the earliest candidate, so the winner
    // is the first entry matching the winning cycle count.
    let winner_idx = winner
        .as_ref()
        .and_then(|(_, c)| entries.iter().position(|e| e.cycles() == Some(*c)));
    for (i, e) in entries.iter().enumerate() {
        let label = format!("{} s={}", np_type_str(e.np_type), e.slave_size);
        match (&e.outcome, &e.profile) {
            (TuneOutcome::Ok { cycles }, Some(p)) => {
                let mark = if winner_idx == Some(i) { "*" } else { " " };
                eprintln!("{mark}{label:<13} {cycles:>10} {}", counter_cells(p));
            }
            (outcome, _) => eprintln!(" {label:<13} {outcome}"),
        }
    }

    let (best, best_cycles) = winner?;
    let best_entry = entries.iter().find(|e| e.cycles() == Some(best_cycles));
    let best_p = best_entry.and_then(|e| e.profile.clone()).unwrap_or_default();
    let (w_type, w_size) = best_entry
        .map(|e| (np_type_str(e.np_type), e.slave_size))
        .unwrap_or(("?", best.report.slave_size));
    eprintln!("npcc: winner {w_type} s={w_size} in {best_cycles} cycles");
    // Where the winner's cycles go (the flight-recorder attribution).
    if let Some(st) = best_entry.and_then(|e| e.stall.as_ref()) {
        eprintln!(
            "npcc:   cycle attribution: issue {:.1}%  issue-limit {:.1}%  \
             memory {:.1}%  dram-saturated {:.1}%  barrier {:.1}%  \
             scoreboard {:.1}%  idle {:.1}%",
            100.0 * st.issue as f64 / st.total().max(1) as f64,
            100.0 * st.issue_limit as f64 / st.total().max(1) as f64,
            100.0 * st.memory_pending as f64 / st.total().max(1) as f64,
            100.0 * st.dram_saturated as f64 / st.total().max(1) as f64,
            100.0 * st.barrier_wait as f64 / st.total().max(1) as f64,
            100.0 * st.scoreboard_dependency as f64 / st.total().max(1) as f64,
            100.0 * st.no_block_resident as f64 / st.total().max(1) as f64,
        );
    }
    if let Some((base_cycles, base_p, base_st)) = base {
        eprintln!(
            "npcc:   speedup over baseline: {:.2}x",
            base_cycles as f64 / best_cycles as f64
        );
        if let Some(st) = best_entry.and_then(|e| e.stall.as_ref()) {
            eprintln!(
                "npcc:   stall shift vs baseline: memory {:.1}% -> {:.1}%, \
                 barrier {:.1}% -> {:.1}%, issuing {:.1}% -> {:.1}%",
                100.0 * base_st.memory_fraction(),
                100.0 * st.memory_fraction(),
                100.0 * base_st.barrier_wait as f64 / base_st.total().max(1) as f64,
                100.0 * st.barrier_wait as f64 / st.total().max(1) as f64,
                100.0 * base_st.issue_fraction(),
                100.0 * st.issue_fraction(),
            );
        }
        let why = [
            (
                "coalescing efficiency",
                format!(
                    "{:.3} -> {:.3}",
                    base_p.coalescing_efficiency(),
                    best_p.coalescing_efficiency()
                ),
                best_p.coalescing_efficiency() > base_p.coalescing_efficiency(),
            ),
            (
                "divergent instructions",
                format!(
                    "{} -> {}",
                    base_p.divergent_instructions, best_p.divergent_instructions
                ),
                best_p.divergent_instructions < base_p.divergent_instructions,
            ),
            (
                "shfl replaces shared-memory broadcast",
                format!(
                    "{} shfl vs {} staged broadcasts",
                    best_p.shfl_ops(),
                    best_p.shared_broadcasts
                ),
                best_p.shfl_ops() > 0,
            ),
            (
                "bank-conflict replays",
                format!(
                    "{} -> {}",
                    base_p.bank_conflict_replays, best_p.bank_conflict_replays
                ),
                best_p.bank_conflict_replays < base_p.bank_conflict_replays,
            ),
        ];
        for (name, detail, relevant) in why {
            if relevant {
                eprintln!("npcc:   {name}: {detail}");
            }
        }
    }
    Some(best)
}

/// Apply a `--mutate` spec to the transformed kernel. The mutations are the
/// conformance suite's known-broken variants: they exist so CI (and tests)
/// can assert the race checker actually fires.
fn apply_mutation(t: &Transformed, spec: &str) -> Result<Kernel, String> {
    if let Some(rest) = spec.strip_prefix("drop-barrier") {
        let n: usize = if rest.is_empty() {
            0
        } else {
            rest.strip_prefix(':')
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad mutation spec {spec:?}"))?
        };
        drop_barrier(&t.kernel, n).ok_or_else(|| {
            format!(
                "kernel has no barrier site {n} (only {} sites)",
                count_barriers(&t.kernel)
            )
        })
    } else if spec == "unguard-broadcast" {
        drop_broadcast_guard(&t.kernel)
            .ok_or_else(|| "kernel has no guarded broadcast store to un-gate".to_string())
    } else {
        Err(format!("unknown mutation {spec:?} (want drop-barrier[:N] or unguard-broadcast)"))
    }
}

/// Simulate `kernel` (the emitted kernel of `t`, possibly mutated) with the
/// happens-before checker recording and print the report to stderr. Returns
/// true when the run is race-free.
fn check_races(t: &Transformed, kernel: &Kernel, explain: bool) -> bool {
    let dev = DeviceConfig::gtx680();
    let grid = Dim3::x1(4);
    let mut args = alloc_extra_buffers(synth_args(&t.kernel), t, grid);
    let sim = SimOptions::full()
        .with_race_check(RaceCheckMode::Record)
        .with_race_options(RaceCheckOptions { max_findings: None, policy: gating_policy(t) });
    match launch(&dev, kernel, grid, &mut args, &sim) {
        Ok(rep) => {
            eprintln!(
                "npcc: race check for {:?} on gtx680, grid {} x {} threads: {}",
                kernel.name,
                grid.count(),
                kernel.block_dim.count(),
                if rep.race.is_clean() { "clean" } else { "RACES FOUND" }
            );
            eprintln!("{}", rep.race.to_json());
            if explain {
                eprint!("{}", rep.race.narrative());
            }
            rep.race.is_clean()
        }
        Err(e) => {
            eprintln!("npcc: race check simulation failed: {e}");
            false
        }
    }
}

/// Simulate `t`'s kernel with synthesized arguments on the GTX 680 and
/// render the per-SMX stall timeline to stderr.
fn render_timeline(t: &Transformed) -> bool {
    let dev = DeviceConfig::gtx680();
    let grid = Dim3::x1(4);
    let mut args = alloc_extra_buffers(synth_args(&t.kernel), t, grid);
    match launch(&dev, &t.kernel, grid, &mut args, &SimOptions::full()) {
        Ok(rep) => {
            eprintln!(
                "npcc: timeline for {:?} on gtx680, grid {} x {} threads",
                t.kernel.name,
                grid.count(),
                t.kernel.block_dim.count()
            );
            eprint!("{}", rep.timing.timeline.render_gantt(96));
            true
        }
        Err(e) => {
            eprintln!("npcc: timeline simulation failed: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let mut opts = NpOptions::inter(4);
    let mut input: Option<String> = None;
    let mut report = false;
    let mut explain_flag = false;
    let mut timeline_flag = false;
    let mut check_races_flag = false;
    let mut mutate: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--slave-size" => {
                opts.slave_size = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--np-type" => match args.next().as_deref() {
                Some("inter") => opts.np_type = NpType::InterWarp,
                Some("intra") => opts.np_type = NpType::IntraWarp,
                _ => usage(),
            },
            "--sm" => {
                opts.sm_version =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--local-array" => {
                opts.local_array = match args.next().as_deref() {
                    Some("auto") => LocalArrayStrategy::Auto,
                    Some("global") => LocalArrayStrategy::ForceGlobal,
                    Some("shared") => LocalArrayStrategy::ForceShared,
                    Some("register") => LocalArrayStrategy::ForceRegister,
                    _ => usage(),
                }
            }
            "--pad" => opts.pad = true,
            "--no-redundant" => opts.redundant_uniform = false,
            "--report" => report = true,
            "--explain" => explain_flag = true,
            "--timeline" => timeline_flag = true,
            "--check-races" => check_races_flag = true,
            "--mutate" => mutate = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other if input.is_none() && !other.starts_with("--") => {
                input = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    let Some(path) = input else { usage() };

    let src = if path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("npcc: failed to read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("npcc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut kernel = match parse_kernel(&src) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("npcc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Preprocess: multi-dimensional blocks are flattened automatically
    // (Section 3.7 item 1).
    cuda_np::preprocess::flatten_block(&mut kernel);

    // `--check-races` pins the config (no autotune): transform, optionally
    // mutate, simulate with the checker armed, and gate the exit code on
    // the report. `--explain` here means "narrate the findings".
    if check_races_flag || mutate.is_some() {
        let t = match transform(&kernel, &opts) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("npcc: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let emitted = match &mutate {
            Some(spec) => match apply_mutation(&t, spec) {
                Ok(k) => k,
                Err(e) => {
                    eprintln!("npcc: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => t.kernel.clone(),
        };
        print!("{}", printer::print_kernel(&emitted));
        if report {
            eprintln!("npcc: {:#?}", t.report);
        }
        if check_races_flag && !check_races(&t, &emitted, explain_flag) {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if explain_flag {
        return match explain(&kernel) {
            Some(best) => {
                print!("{}", printer::print_kernel(&best.kernel));
                if report {
                    eprintln!("npcc: {:#?}", best.report);
                }
                if timeline_flag && !render_timeline(&best) {
                    return ExitCode::FAILURE;
                }
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("npcc: {path}: no tuning candidate ran to completion");
                ExitCode::FAILURE
            }
        };
    }

    match transform(&kernel, &opts) {
        Ok(t) => {
            print!("{}", printer::print_kernel(&t.kernel));
            if report {
                eprintln!("npcc: {:#?}", t.report);
            }
            if timeline_flag && !render_timeline(&t) {
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("npcc: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
