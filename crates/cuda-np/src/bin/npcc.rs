//! `npcc` — the CUDA-NP source-to-source compiler as a command-line tool,
//! mirroring how the paper's Cetus-based implementation was used: feed it a
//! kernel with `np parallel for` pragmas, get the optimized kernel back.
//!
//! ```text
//! npcc [options] <kernel.cu>      (or `-` for stdin)
//!
//!   --slave-size N       threads per master group (default 4)
//!   --np-type inter|intra  distribution scheme (default inter)
//!   --sm VERSION         target compute capability x10 (default 30)
//!   --local-array auto|global|shared|register
//!   --pad                pad loop trip counts to a slave_size multiple
//!   --no-redundant       broadcast every live-in (disable Section 3.1)
//!   --report             print the transform decisions to stderr
//! ```

use cuda_np::{transform, LocalArrayStrategy, NpOptions};
use np_kernel_ir::pragma::NpType;
use np_kernel_ir::{parse_kernel, printer};
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: npcc [--slave-size N] [--np-type inter|intra] [--sm V] \
         [--local-array auto|global|shared|register] [--pad] [--no-redundant] \
         [--report] <kernel.cu | ->"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut opts = NpOptions::inter(4);
    let mut input: Option<String> = None;
    let mut report = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--slave-size" => {
                opts.slave_size = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--np-type" => match args.next().as_deref() {
                Some("inter") => opts.np_type = NpType::InterWarp,
                Some("intra") => opts.np_type = NpType::IntraWarp,
                _ => usage(),
            },
            "--sm" => {
                opts.sm_version =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--local-array" => {
                opts.local_array = match args.next().as_deref() {
                    Some("auto") => LocalArrayStrategy::Auto,
                    Some("global") => LocalArrayStrategy::ForceGlobal,
                    Some("shared") => LocalArrayStrategy::ForceShared,
                    Some("register") => LocalArrayStrategy::ForceRegister,
                    _ => usage(),
                }
            }
            "--pad" => opts.pad = true,
            "--no-redundant" => opts.redundant_uniform = false,
            "--report" => report = true,
            "--help" | "-h" => usage(),
            other if input.is_none() && !other.starts_with("--") => {
                input = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    let Some(path) = input else { usage() };

    let src = if path == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("npcc: failed to read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("npcc: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut kernel = match parse_kernel(&src) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("npcc: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Preprocess: multi-dimensional blocks are flattened automatically
    // (Section 3.7 item 1).
    cuda_np::preprocess::flatten_block(&mut kernel);

    match transform(&kernel, &opts) {
        Ok(t) => {
            print!("{}", printer::print_kernel(&t.kernel));
            if report {
                eprintln!("npcc: {:#?}", t.report);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("npcc: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
