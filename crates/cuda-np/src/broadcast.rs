//! Scalar live-in broadcast: `read_from_master` (Section 3.1).
//!
//! A value computed by the master thread must reach its slaves. With
//! intra-warp NP on sm >= 30, the master and its slaves share a warp and a
//! single `__shfl(var, 0, slave_size)` broadcasts from the group's lane 0
//! (the master). Otherwise the value is staged through a per-master slot in
//! shared memory with barriers around it.

use crate::mapping::{ThreadMap, MASTER_ID, SLAVE_ID};
use np_kernel_ir::expr::dsl::{eq, load, shfl, v};
use np_kernel_ir::expr::Expr;
use np_kernel_ir::stmt::Stmt;
use np_kernel_ir::types::{MemSpace, Scalar};

/// Shared-memory staging buffer name for a broadcast variable.
pub fn bcast_buf_name(var: &str) -> String {
    format!("__np_bcast_{var}")
}

/// Code that broadcasts `var` from each master to its slaves.
/// Returns (top-level declarations, code to insert at the broadcast site).
/// The shared-memory path contains barriers, so its code must be emitted
/// under *uniform* control flow; the shfl path is divergence-safe.
pub fn broadcast_var(map: &ThreadMap, use_shfl: bool, var: &str, ty: Scalar) -> (Vec<Stmt>, Vec<Stmt>) {
    if use_shfl && map.slaves_share_warp() {
        // All threads read the group's lane 0 — the master.
        let code = vec![Stmt::Assign {
            name: var.to_string(),
            value: shfl(v(var), Expr::ImmI32(0), map.slave_size),
        }];
        return (Vec::new(), code);
    }
    let buf = bcast_buf_name(var);
    let decls = vec![Stmt::DeclArray {
        name: buf.clone(),
        ty,
        space: MemSpace::Shared,
        len: map.master_size,
    }];
    let code = vec![
        // Leading barrier protects against WAR reuse of the buffer from a
        // previous broadcast of the same variable.
        Stmt::SyncThreads,
        Stmt::If {
            cond: eq(v(SLAVE_ID), Expr::ImmI32(0)),
            then_body: vec![Stmt::Store {
                array: buf.clone(),
                index: v(MASTER_ID),
                value: v(var),
            }],
            else_body: vec![],
        },
        Stmt::SyncThreads,
        Stmt::Assign { name: var.to_string(), value: load(&buf, v(MASTER_ID)) },
    ];
    (decls, code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::pragma::NpType;

    fn map(t: NpType, s: u32) -> ThreadMap {
        ThreadMap { np_type: t, master_size: 32, slave_size: s }
    }

    #[test]
    fn intra_warp_uses_one_shfl() {
        let (decls, code) = broadcast_var(&map(NpType::IntraWarp, 8), true, "x", Scalar::F32);
        assert!(decls.is_empty());
        assert_eq!(code.len(), 1);
        match &code[0] {
            Stmt::Assign { name, value } => {
                assert_eq!(name, "x");
                assert!(matches!(value, Expr::Shfl { width: 8, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inter_warp_stages_through_shared_memory() {
        let (decls, code) = broadcast_var(&map(NpType::InterWarp, 8), false, "x", Scalar::F32);
        assert_eq!(decls.len(), 1);
        match &decls[0] {
            Stmt::DeclArray { space, len, .. } => {
                assert_eq!(*space, MemSpace::Shared);
                assert_eq!(*len, 32);
            }
            other => panic!("unexpected {other:?}"),
        }
        // sync; master store; sync; read.
        assert!(matches!(code[0], Stmt::SyncThreads));
        assert!(matches!(code[2], Stmt::SyncThreads));
        assert_eq!(code.len(), 4);
    }

    #[test]
    fn intra_warp_without_shfl_support_falls_back_to_shared() {
        let (decls, _) = broadcast_var(&map(NpType::IntraWarp, 8), false, "x", Scalar::I32);
        assert_eq!(decls.len(), 1, "sm < 30 must use shared memory");
    }

    #[test]
    fn non_pow2_intra_warp_cannot_shfl() {
        let (decls, _) = broadcast_var(&map(NpType::IntraWarp, 6), true, "x", Scalar::I32);
        assert_eq!(decls.len(), 1, "slave group spans warps; shared memory required");
    }
}
