//! Transformation conformance: race-injection mutations and gating-policy
//! derivation.
//!
//! The conformance suite validates the transform *negatively* as well as
//! positively: a correct transformed kernel must pass the happens-before
//! race checker, and known-broken mutants of it — a dropped barrier, an
//! un-gated broadcast store — must be flagged. The mutation helpers here
//! produce those mutants deterministically from the transformed IR; the
//! `--mutate` flag of `npcc` exposes them for CLI-level tests and CI.

use crate::mapping::SLAVE_ID;
use crate::transform::Transformed;
use np_gpu_sim::racecheck::GatingPolicy;
use np_kernel_ir::analysis::barriers::remove_barrier;
use np_kernel_ir::expr::Expr;
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::pragma::NpType;
use np_kernel_ir::stmt::Stmt;

/// Prefix of the shared-memory live-in staging buffers the transform emits
/// (see `crate::broadcast`); only the master may write them.
pub const BCAST_PREFIX: &str = "__np_bcast_";

/// Drop the barrier with pre-order id `n` from a kernel. `None` when the
/// kernel has fewer than `n + 1` barriers.
pub fn drop_barrier(kernel: &Kernel, n: usize) -> Option<Kernel> {
    let mut k = kernel.clone();
    if !remove_barrier(&mut k.body, n) {
        return None;
    }
    k.name = format!("{}_nobar{n}", k.name);
    Some(k)
}

fn mentions_slave_id(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |e| {
        if let Expr::Var(n) = e {
            if n == SLAVE_ID {
                found = true;
            }
        }
    });
    found
}

fn stores_to_bcast(stmts: &[Stmt]) -> bool {
    let mut found = false;
    np_kernel_ir::stmt::visit_stmts(stmts, &mut |s| {
        if let Stmt::Store { array, .. } = s {
            if array.starts_with(BCAST_PREFIX) {
                found = true;
            }
        }
    });
    found
}

fn unguard(stmts: &mut Vec<Stmt>) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        let splice = match &mut stmts[i] {
            Stmt::If { cond, then_body, else_body }
                if else_body.is_empty()
                    && mentions_slave_id(cond)
                    && stores_to_bcast(then_body) =>
            {
                Some(std::mem::take(then_body))
            }
            Stmt::If { then_body, else_body, .. } => {
                if unguard(then_body) || unguard(else_body) {
                    return true;
                }
                None
            }
            Stmt::For { body, .. } => {
                if unguard(body) {
                    return true;
                }
                None
            }
            _ => None,
        };
        if let Some(body) = splice {
            stmts.splice(i..=i, body);
            return true;
        }
        i += 1;
    }
    false
}

/// Remove the master-only guard around the first broadcast staging store,
/// so every slave executes it — the paper's "unguarded broadcast" bug.
/// `None` when the kernel has no guarded broadcast store (e.g. the `__shfl`
/// broadcast path, which stages nothing in memory).
pub fn drop_broadcast_guard(kernel: &Kernel) -> Option<Kernel> {
    let mut k = kernel.clone();
    if !unguard(&mut k.body) {
        return None;
    }
    k.name = format!("{}_unguarded", k.name);
    Some(k)
}

/// Shared arrays of `kernel` only the master may write (the broadcast
/// staging buffers).
pub fn master_only_arrays(kernel: &Kernel) -> Vec<String> {
    let mut out: Vec<String> = kernel
        .declared_arrays()
        .into_iter()
        .map(|(n, _)| n)
        .filter(|n| n.starts_with(BCAST_PREFIX))
        .collect();
    out.sort();
    out
}

/// The gating policy of a transformed kernel: its master/slave layout plus
/// the master-only staging buffers. `None` for an untransformed kernel
/// (no NP mapping to gate on).
pub fn gating_policy(t: &Transformed) -> Option<GatingPolicy> {
    let np_type = t.report.np_type?;
    Some(GatingPolicy {
        master_size: t.report.master_size,
        slave_size: t.report.slave_size,
        intra: np_type == NpType::IntraWarp,
        master_only: master_only_arrays(&t.kernel),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::NpOptions;
    use crate::transform::transform;
    use np_kernel_ir::analysis::barriers::count_barriers;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::KernelBuilder;

    /// A kernel whose inter-warp transform must broadcast `scale` through
    /// shared memory (barriers on both sides of the staging store).
    fn bcast_kernel() -> np_kernel_ir::Kernel {
        let mut b = KernelBuilder::new("bc", 32);
        b.param_global_f32("src");
        b.param_global_f32("out");
        b.decl_f32("scale", load("src", tidx()));
        b.pragma_for("np parallel for", "n", i(0), i(64), |b| {
            b.store("out", tidx() * i(64) + v("n"), v("scale") * cast(np_kernel_ir::Scalar::F32, v("n")));
        });
        b.finish()
    }

    #[test]
    fn drop_barrier_removes_exactly_one_site() {
        let t = transform(&bcast_kernel(), &NpOptions::inter(4)).expect("transforms");
        let n = count_barriers(&t.kernel);
        assert!(n >= 2, "broadcast staging emits barriers, got {n}");
        for i in 0..n {
            let mutant = drop_barrier(&t.kernel, i).expect("site exists");
            assert_eq!(count_barriers(&mutant), n - 1);
            assert_ne!(mutant.name, t.kernel.name);
        }
        assert!(drop_barrier(&t.kernel, n).is_none(), "out of range");
    }

    #[test]
    fn drop_broadcast_guard_ungates_the_staging_store() {
        let t = transform(&bcast_kernel(), &NpOptions::inter(4)).expect("transforms");
        let src = np_kernel_ir::printer::print_kernel(&t.kernel);
        assert!(src.contains(BCAST_PREFIX), "transform staged a broadcast: {src}");
        let mutant = drop_broadcast_guard(&t.kernel).expect("has a guarded store");
        // The mutant still stores to the staging buffer, but at least one
        // such store is no longer under a slave-id guard: the guard count
        // drops.
        let guards = |k: &np_kernel_ir::Kernel| {
            let mut n = 0;
            np_kernel_ir::stmt::visit_stmts(&k.body, &mut |s| {
                if let np_kernel_ir::stmt::Stmt::If { cond, then_body, .. } = s {
                    if mentions_slave_id(cond) && stores_to_bcast(then_body) {
                        n += 1;
                    }
                }
            });
            n
        };
        assert_eq!(guards(&mutant), guards(&t.kernel) - 1);
        assert!(stores_to_bcast(&mutant.body));
    }

    #[test]
    fn gating_policy_names_the_staging_buffers() {
        let t = transform(&bcast_kernel(), &NpOptions::inter(4)).expect("transforms");
        let policy = gating_policy(&t).expect("transformed kernels have a policy");
        assert_eq!(policy.slave_size, 4);
        assert!(!policy.intra);
        assert!(
            policy.master_only.iter().any(|a| a.starts_with(BCAST_PREFIX)),
            "{:?}",
            policy.master_only
        );
    }

    #[test]
    fn shfl_path_has_no_guarded_broadcast_to_drop() {
        // Intra-warp with power-of-two slaves broadcasts through __shfl:
        // no staging buffer, so the mutation is inapplicable.
        let t = transform(&bcast_kernel(), &NpOptions::intra(4)).expect("transforms");
        if t.report.use_shfl {
            assert!(drop_broadcast_guard(&t.kernel).is_none());
            assert!(master_only_arrays(&t.kernel).is_empty());
        }
    }
}
