//! Analytical tuning cost model (ROADMAP item 4).
//!
//! The paper's autotuner (Section 4) is exhaustive: every slave size ×
//! {inter, intra} candidate is transformed, interpreted, and timed. With
//! capture/replay making re-timing cheap, candidate *interpretation* is the
//! dominant tuning cost — so this module scores candidates from static
//! inputs alone (kernel IR loop structure, trip counts, divergence shape,
//! device occupancy limits) and lets the tuner skip predicted losers.
//!
//! The model is deliberately coarse: it predicts *rank*, not cycles. Its
//! contract with the pruning policies is safety-through-fallback — when the
//! evaluated subset produces no runnable winner, or the measured winner
//! looks like a model inversion, the tuner falls back to the exhaustive
//! sweep (see `tuner::autotune_with_policy`), so a pruned run can never
//! return a slower winner than the exhaustive one would.
//!
//! Everything here is a pure function of (kernel IR, device descriptor,
//! optional pilot counters): no clocks, no randomness, no global state —
//! the same inputs always produce the same scores, keeping pruned sweeps as
//! byte-deterministic as exhaustive ones.

use crate::tuner::TuneCandidate;
use np_gpu_sim::occupancy::{occupancy, KernelResources};
use np_gpu_sim::{DeviceConfig, ProfileCounters, StallBreakdown, WARP_SIZE};
use np_kernel_ir::analysis::{pragma_loop_trips, serial_shape};
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::pragma::NpType;
use np_kernel_ir::MemSpace;

/// How the tuner searches the candidate space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TunePolicy {
    /// The paper's sweep: evaluate every candidate (the default).
    #[default]
    Exhaustive,
    /// Score candidates statically, evaluate only those within `margin`
    /// (relative) of the best predicted score, and fall back to the full
    /// sweep on a model miss.
    Pruned {
        /// Relative score slack: a candidate is kept when its score is
        /// ≤ best_score × (1 + margin).
        margin: f64,
    },
    /// Evaluate the predicted winner as a pilot, refine the model with its
    /// measured counters, then evaluate the refined shortlist only.
    Predict,
}

/// Default slack for `Pruned` when the user gives none. Calibrated against
/// the exhaustive sweep of all ten workloads × the paper device registry —
/// wide enough that the true winner's score has always been inside the
/// kept set (the differential CI suite re-proves this every run).
pub const DEFAULT_PRUNE_MARGIN: f64 = 1.0;

impl TunePolicy {
    /// Parse a CLI/serve spelling: `exhaustive`, `pruned`, `pruned:0.5`,
    /// or `predict`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "exhaustive" => Ok(TunePolicy::Exhaustive),
            "pruned" => Ok(TunePolicy::Pruned { margin: DEFAULT_PRUNE_MARGIN }),
            "predict" => Ok(TunePolicy::Predict),
            other => {
                if let Some(m) = other.strip_prefix("pruned:") {
                    match m.parse::<f64>() {
                        Ok(margin) if margin.is_finite() && margin >= 0.0 => {
                            Ok(TunePolicy::Pruned { margin })
                        }
                        _ => Err(format!(
                            "bad prune margin {m:?} (need a non-negative number)"
                        )),
                    }
                } else {
                    Err(format!(
                        "unknown tune policy {other:?} \
                         (expected exhaustive, pruned[:MARGIN], or predict)"
                    ))
                }
            }
        }
    }

    /// Canonical spelling, stable across runs (used in trajectory documents
    /// and serve cache keys).
    pub fn label(&self) -> String {
        match self {
            TunePolicy::Exhaustive => "exhaustive".to_string(),
            TunePolicy::Pruned { margin } => format!("pruned:{margin}"),
            TunePolicy::Predict => "predict".to_string(),
        }
    }

    /// Is this the default full sweep?
    pub fn is_exhaustive(&self) -> bool {
        matches!(self, TunePolicy::Exhaustive)
    }
}

impl std::fmt::Display for TunePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Assumed trip count for pragma loops whose bounds are runtime parameters.
/// Biased high: an unknown loop is treated as worth parallelizing hard,
/// which errs toward keeping larger slave sizes in the pruned set.
const DEFAULT_TRIP: u32 = 256;

/// Assumed trip count for *serial* (non-pragma) loops with runtime bounds.
/// Biased low: an unknown serial loop shouldn't drown the loop terms.
const SERIAL_DEFAULT_TRIP: u32 = 8;

/// Element stride assumed for accesses whose affine analysis came back
/// unknown (parameter-scaled or gather): pessimally uncoalesced.
const UNKNOWN_STRIDE: f64 = 64.0;

/// Extra issue slots per loop iteration beyond the counted accesses and
/// branches: index arithmetic, the slave-range guard, the iterator bump.
const ITER_OVERHEAD: f64 = 4.0;

/// Per-warp, per-loop fixed instruction overhead of the NP transform:
/// slave-id setup, live-in unpacking, loop prologue/epilogue. Calibrated
/// against measured instruction growth (≈ linear in resident warps) on the
/// Table-1 workloads.
const WARP_OVERHEAD_BASE: f64 = 16.0;
/// Additional per-warp overhead for each combining tree (reduction / scan /
/// select) — scans and selects in particular replay log-depth chains.
const WARP_OVERHEAD_TREE: f64 = 32.0;
/// Additional per-warp overhead per array access (address recomputation in
/// the slave clone).
const WARP_OVERHEAD_ACC: f64 = 8.0;

/// Pipelined cost of one serial-section statement on the critical path
/// (dependent ALU ops overlap; full `alu_latency` would double-count).
const SERIAL_STMT_COST: f64 = 2.0;

/// Memory-level parallelism per warp assumed when serial-section global
/// loads overlap: each active warp keeps ~this many loads in flight, so
/// more active warps hide more of the serial section's memory latency.
const SERIAL_MLP: f64 = 4.0;

/// Affine shape of one global access: element strides per loop iteration
/// and per `threadIdx.x` (`None` = unknown / uncoalesced).
type GlobalAccess = (Option<i64>, Option<i64>);

/// Static shape of one pragma loop, pre-classified by memory space.
#[derive(Debug, Clone)]
struct LoopShape {
    trip: Option<u32>,
    branches: u32,
    /// Combining trees on exit: reductions + scans + selects.
    trees: u32,
    /// Global/texture accesses with their affine strides.
    globals: Vec<GlobalAccess>,
    /// Shared/local/constant accesses (on-chip-ish: cheap, no segments).
    onchip: u32,
}

/// One serial-section global access: (trip weight, tid stride).
type SerialAccess = (f64, Option<i64>);

/// Per-loop static shape plus the whole-kernel serial section, captured
/// once per kernel and scored per candidate.
#[derive(Debug, Clone)]
pub struct CostModel {
    loops: Vec<LoopShape>,
    /// Master threads per block (the input kernel's block size).
    master_size: u32,
    /// Trip-weighted statement count outside pragma loops. The serial
    /// section runs once per *master*; intra-warp NP replicates its issue
    /// across every warp of the widened block, which is the mechanism that
    /// caps useful intra slave sizes.
    serial_stmts: f64,
    /// Global accesses in the serial section (weight, tid stride).
    serial_globals: Vec<SerialAccess>,
    /// On-chip accesses in the serial section (trip-weighted count).
    serial_onchip: f64,
    /// Baseline per-thread resource estimate of the *input* kernel; per
    /// candidate only the block size changes.
    base_resources: KernelResources,
    dev: DeviceConfig,
    /// Memory-term weight; `refine` re-scales it from pilot stalls.
    w_mem: f64,
    /// Communication-term (barrier/shfl) weight; `refine` re-scales it.
    w_comm: f64,
}

/// 128-byte segments touched by `lanes` consecutive lanes accessing 4-byte
/// elements `stride` elements apart (the simulator's coalescing rule).
fn span_segs(stride: f64, lanes: f64) -> f64 {
    if lanes <= 1.0 {
        return 1.0;
    }
    let span = stride.abs() * (lanes - 1.0) + 1.0;
    (span / 32.0).ceil().clamp(1.0, lanes.min(32.0))
}

fn stride_or_unknown(s: Option<i64>) -> f64 {
    s.map(|v| v.unsigned_abs() as f64).unwrap_or(UNKNOWN_STRIDE)
}

impl CostModel {
    /// Build the model from static inputs only. Deterministic and cheap —
    /// two IR walks and one resource estimate.
    pub fn from_kernel(kernel: &Kernel, dev: &DeviceConfig) -> Self {
        // Texture and constant arrays sit behind dedicated caches sized for
        // these workloads' tables; only true global (and unknown) arrays
        // pay DRAM-path latency and coalescing segments.
        let is_global = |name: &str| {
            matches!(kernel.array_info(name).map(|a| a.space), Some(MemSpace::Global) | None)
        };
        let loops = pragma_loop_trips(&kernel.body)
            .into_iter()
            .map(|l| {
                let (mut globals, mut onchip) = (Vec::new(), 0u32);
                for a in &l.accesses {
                    if is_global(&a.array) {
                        globals.push((a.stride_iter, a.stride_tid));
                    } else {
                        onchip += 1;
                    }
                }
                LoopShape {
                    trip: l.trip,
                    branches: l.branches,
                    trees: (l.has_reduction as u32)
                        + (l.has_scan as u32)
                        + (l.has_select as u32),
                    globals,
                    onchip,
                }
            })
            .collect();
        let serial = serial_shape(&kernel.body, SERIAL_DEFAULT_TRIP);
        let (mut serial_globals, mut serial_onchip) = (Vec::new(), 0.0f64);
        for (w, a) in &serial.accesses {
            if is_global(&a.array) {
                serial_globals.push((*w, a.stride_tid));
            } else {
                serial_onchip += w;
            }
        }
        let base_resources =
            np_exec::resources::estimate_resources(kernel, dev.max_registers_per_thread);
        CostModel {
            loops,
            master_size: kernel.block_dim.count() as u32,
            serial_stmts: serial.weighted_stmts,
            serial_globals,
            serial_onchip,
            base_resources,
            dev: dev.clone(),
            w_mem: 1.0,
            w_comm: 1.0,
        }
    }

    /// Fold one pilot candidate's measured counters back into the weights.
    ///
    /// A memory-bound pilot (stall cycles dominated by `memory_pending` /
    /// `dram_saturated`) boosts the memory term — candidates that re-stride
    /// accesses get punished harder; a barrier-bound pilot boosts the
    /// communication term. Pure arithmetic on the counter values: refining
    /// with the same pilot always yields the same weights.
    pub fn refine(&mut self, profile: &ProfileCounters, stall: &StallBreakdown) {
        let total = (stall.issue
            + stall.issue_limit
            + stall.memory_pending
            + stall.dram_saturated
            + stall.barrier_wait
            + stall.scoreboard_dependency
            + stall.no_block_resident) as f64;
        if total <= 0.0 {
            return;
        }
        let mem_share = (stall.memory_pending + stall.dram_saturated) as f64 / total;
        let comm_share = stall.barrier_wait as f64 / total;
        // Map share ∈ [0,1] to weight ∈ [0.5, 2.5]: a bucket that never
        // shows up in the pilot still keeps half its static weight.
        self.w_mem = 0.5 + 2.0 * mem_share;
        self.w_comm = 0.5 + 2.0 * comm_share;
        // Heavy measured divergence also disfavors intra-warp re-striding;
        // fold it into the memory weight (both punish larger intra sizes).
        if profile.instructions > 0 {
            let div = profile.divergent_instructions as f64 / profile.instructions as f64;
            self.w_mem *= 1.0 + div;
        }
    }

    /// Global-memory segments one warp's active lanes touch for a loop-body
    /// access, under the candidate's thread layout.
    ///
    /// * inter-warp (and baseline): a slave warp spans 32 consecutive
    ///   masters executing the same iteration — the lane-to-lane stride is
    ///   the access's `threadIdx` stride.
    /// * intra-warp: a warp holds `32/s` master groups of `s` slaves; lanes
    ///   step by the *iterator* stride within a group and by the
    ///   `threadIdx` stride across groups (the paper's §3.4 re-striding).
    fn loop_segs(&self, acc: GlobalAccess, intra: bool, s: u32) -> f64 {
        let (ci, ct) = (stride_or_unknown(acc.0), stride_or_unknown(acc.1));
        if !intra {
            return span_segs(ct, 32.0);
        }
        let groups = (32.0 / s as f64).max(1.0);
        let span = ct * (groups - 1.0) + ci * (s as f64 - 1.0) + 1.0;
        (span / 32.0).ceil().clamp(1.0, 32.0)
    }

    /// Segments per *active* warp for a serial-section access: masters sit
    /// on consecutive lanes under inter-warp NP but `s` lanes apart under
    /// intra-warp NP (only `32/s` lanes of each warp are masters).
    fn serial_segs(&self, ct: Option<i64>, intra: bool, s: u32) -> f64 {
        let ct = stride_or_unknown(ct);
        if !intra {
            span_segs(ct, (self.master_size as f64).min(32.0))
        } else {
            span_segs(ct, (32.0 / s as f64).max(1.0))
        }
    }

    /// Predicted block-critical-path cycles of one candidate — lower is
    /// faster. Deliberately *optimistic* (it prices latency at the L2, not
    /// DRAM, and ignores contention): an optimistic estimate lets the tuner
    /// treat "predicted cycles ≥ measured winner" as proof a skipped
    /// candidate cannot win, which is what makes pruning safe (see
    /// `tuner::autotune_with_policy`'s promotion loop). Never NaN;
    /// `f64::INFINITY` marks a candidate the transform or launcher is
    /// predicted to reject (block too large, intra-warp shape, occupancy).
    pub fn score(&self, cand: &TuneCandidate) -> f64 {
        let s = cand.opts.slave_size;
        let total_threads = self.master_size * s;
        if s < 2 || total_threads > cand.opts.max_block_threads.min(self.dev.max_threads_per_block)
        {
            return f64::INFINITY;
        }
        let intra = cand.opts.np_type == NpType::IntraWarp;
        if intra && (!s.is_power_of_two() || s > WARP_SIZE) {
            return f64::INFINITY;
        }
        let res = KernelResources { block_size: total_threads, ..self.base_resources };
        if occupancy(&self.dev, &res).is_err() {
            return f64::INFINITY;
        }

        let sf = s as f64;
        let warps = (total_threads as f64 / WARP_SIZE as f64).ceil();
        let master_warps = (self.master_size as f64 / WARP_SIZE as f64).ceil().max(1.0);
        let shfl = cand.opts.shfl_enabled() && self.dev.supports_shfl && intra;
        let log2s = (32 - (s - 1).leading_zeros()).max(1) as f64;
        let issue_width = (self.dev.issue_per_cycle as f64).max(1.0);
        let alu_lat = self.dev.alu_latency as f64;
        let glb_lat = self.dev.l2_latency as f64 * self.w_mem;
        let sh_lat = self.dev.shared_latency as f64;

        let mut cost = 0.0f64;
        for l in &self.loops {
            let trip = l.trip.unwrap_or(DEFAULT_TRIP).max(1) as f64;
            let iters = (trip / sf).ceil();
            // Per-warp, per-iteration issue slots: the body's instructions
            // plus one slot per 128 B global segment (the simulator issues
            // one tick per segment).
            let seg_issue: f64 =
                l.globals.iter().map(|&a| self.loop_segs(a, intra, s)).sum();
            let n_acc = (l.globals.len() + l.onchip as usize) as f64;
            let issue = 1.0 + ITER_OVERHEAD + l.branches as f64 + n_acc
                + self.w_mem * seg_issue;
            // Per-iteration latency on each warp's dependency chain.
            let lat = alu_lat
                + if l.globals.is_empty() { 0.0 } else { glb_lat }
                + if l.onchip == 0 { 0.0 } else { sh_lat };
            // Issue time is ~constant in `s` (s× more warps × s× fewer
            // iterations); the latency chain shrinks as 1/s. The crossover
            // is the model's "enough slaves" point.
            let issue_time = warps * iters * issue / issue_width;
            let lat_time = iters * lat;
            cost += lat_time.max(issue_time);
            // What *grows* with slave size: each resident warp pays a fixed
            // slave-management tax per loop (prologue, live-in unpacking,
            // combining-tree replays) regardless of how few iterations it
            // ends up owning. Measured instruction counts grow almost
            // exactly linearly in warps on every Table-1 workload; this is
            // the term that caps useful slave sizes.
            let trees = l.trees as f64;
            let overhead = WARP_OVERHEAD_BASE
                + WARP_OVERHEAD_TREE * trees
                + WARP_OVERHEAD_ACC * n_acc;
            cost += warps * overhead / issue_width;
            // Communication at the loop boundary: live-in broadcast plus a
            // combining tree per reduction/scan/select live-out.
            let comm = if shfl {
                self.dev.shfl_latency as f64 * (1.0 + trees * log2s)
            } else if intra {
                // Intra without shfl still syncs for free within the warp;
                // exchanges go through shared memory.
                sh_lat * (1.0 + trees * log2s)
            } else {
                // Inter-warp: every fork/join is a whole-block barrier, and
                // convergence cost grows with resident warps.
                (self.dev.barrier_cost as f64 + sh_lat)
                    * (2.0 + trees * log2s)
                    * (1.0 + 0.05 * warps)
            };
            cost += self.w_comm * comm;
        }

        // Serial section: one execution per master. Inter-warp leaves it on
        // the master warps; intra-warp predicates it across *every* warp of
        // the widened block (s× the issue), and scatters the masters s
        // lanes apart (uncoalescing its global accesses) — the two effects
        // that make large intra slave sizes lose on serial-heavy kernels.
        let active_warps = if intra { warps } else { master_warps };
        let ser_segs: f64 = self
            .serial_globals
            .iter()
            .map(|&(w, ct)| w * self.serial_segs(ct, intra, s))
            .sum();
        let ser_issue = active_warps
            * (self.serial_stmts + self.serial_onchip + self.w_mem * ser_segs)
            / issue_width;
        let ser_lat = self.serial_stmts * SERIAL_STMT_COST;
        // Serial global latency is hidden by whichever warps execute the
        // serial section: inter-warp leaves only the master warps to cover
        // it, intra-warp spreads it over every warp — the latency-hiding
        // advantage that lets intra NP win memory-bound serial sections.
        let ser_mem: f64 = self.serial_globals.iter().map(|&(w, _)| w).sum::<f64>()
            * glb_lat
            / (SERIAL_MLP * active_warps);
        cost + ser_lat.max(ser_issue) + ser_mem
    }

    /// Candidate indices ranked best-first. Ties (and only ties) keep
    /// declared candidate order, matching the tuner's tie-break contract.
    pub fn rank(&self, candidates: &[TuneCandidate]) -> Vec<usize> {
        let scores: Vec<f64> = candidates.iter().map(|c| self.score(c)).collect();
        let mut idx: Vec<usize> = (0..candidates.len()).collect();
        idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
        idx
    }

    /// Indices to evaluate under `Pruned { margin }`: every candidate whose
    /// score is within `margin` (relative) of the best finite score, always
    /// at least the top two rankable candidates, in candidate order.
    pub fn keep_within(&self, candidates: &[TuneCandidate], margin: f64) -> Vec<usize> {
        let scores: Vec<f64> = candidates.iter().map(|c| self.score(c)).collect();
        let ranked = self.rank(candidates);
        let Some(&best) = ranked.first() else { return Vec::new() };
        if !scores[best].is_finite() {
            // Model predicts everything rejects; evaluate everything and
            // let the tuner's typed entries tell the story.
            return (0..candidates.len()).collect();
        }
        let cut = scores[best] * (1.0 + margin.max(0.0));
        let mut keep: Vec<usize> = (0..candidates.len())
            .filter(|&i| scores[i] <= cut)
            .collect();
        // Floor of two evaluated candidates so a single mis-scored winner
        // can't silently dominate the evaluated set.
        for &i in ranked.iter().take(2) {
            if scores[i].is_finite() && !keep.contains(&i) {
                keep.push(i);
            }
        }
        keep.sort_unstable();
        keep
    }
}

/// Per-device small-loop gating threshold: pragma loops with a static trip
/// count *below* this are cheaper run serially by the master than
/// parallelized (the group barrier / shuffle latency outweighs the saved
/// iterations). Scales with the device's synchronization cost; clamped so
/// trip-2 loops are always gated and realistic loops never are.
pub fn serial_gate_threshold(dev: &DeviceConfig) -> u32 {
    (dev.barrier_cost.max(dev.shfl_latency) / 2).clamp(3, 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::KernelBuilder;

    fn reduction_kernel(trip: i32) -> Kernel {
        let mut b = KernelBuilder::new("k", 64);
        b.param_global_f32("a");
        b.param_global_f32("out");
        b.decl_f32("s", f(0.0));
        b.pragma_for("np parallel for reduction(+:s)", "i", i(0), i(trip), |b| {
            b.assign("s", v("s") + load("a", v("i")));
        });
        b.store("out", tidx(), v("s"));
        b.finish()
    }

    #[test]
    fn policy_parse_round_trips() {
        for spec in ["exhaustive", "pruned", "pruned:0.5", "predict"] {
            let p = TunePolicy::parse(spec).unwrap();
            // label() is canonical: parsing it again yields the same policy.
            assert_eq!(TunePolicy::parse(&p.label()).unwrap(), p, "{spec}");
        }
        assert_eq!(TunePolicy::parse("exhaustive").unwrap(), TunePolicy::Exhaustive);
        assert_eq!(
            TunePolicy::parse("pruned").unwrap(),
            TunePolicy::Pruned { margin: DEFAULT_PRUNE_MARGIN }
        );
        assert_eq!(
            TunePolicy::parse("pruned:0.25").unwrap(),
            TunePolicy::Pruned { margin: 0.25 }
        );
        assert!(TunePolicy::parse("pruned:-1").is_err());
        assert!(TunePolicy::parse("pruned:NaN").is_err());
        assert!(TunePolicy::parse("greedy").is_err());
        assert!(TunePolicy::default().is_exhaustive());
    }

    #[test]
    fn scores_are_deterministic_and_finite_for_valid_candidates() {
        let k = reduction_kernel(32);
        let dev = DeviceConfig::gtx680();
        let m = CostModel::from_kernel(&k, &dev);
        let cands = crate::tuner::default_candidates(64, 1024);
        for c in &cands {
            let a = m.score(c);
            let b = m.score(c);
            assert!(a.is_finite(), "{c:?} scored {a}");
            assert!(!a.is_nan());
            assert_eq!(a.to_bits(), b.to_bits(), "score must be deterministic");
        }
    }

    #[test]
    fn oversized_and_malformed_candidates_score_infinite() {
        let k = reduction_kernel(32);
        let dev = DeviceConfig::gtx680();
        let m = CostModel::from_kernel(&k, &dev);
        // 64 masters × 32 slaves = 2048 threads > 1024 cap.
        let big = TuneCandidate { opts: crate::options::NpOptions::inter(32) };
        assert!(m.score(&big).is_infinite());
        // Intra-warp with a non-power-of-two slave size.
        let odd = TuneCandidate { opts: crate::options::NpOptions::intra(6) };
        assert!(m.score(&odd).is_infinite());
    }

    #[test]
    fn rank_breaks_ties_toward_candidate_order() {
        let k = reduction_kernel(32);
        let dev = DeviceConfig::gtx680();
        let m = CostModel::from_kernel(&k, &dev);
        // Duplicate candidates score identically; rank must keep the first.
        let c = TuneCandidate { opts: crate::options::NpOptions::inter(4) };
        let dup = vec![c.clone(), c.clone(), c];
        assert_eq!(m.rank(&dup), vec![0, 1, 2]);
    }

    #[test]
    fn keep_within_always_keeps_at_least_two_and_widens_with_margin() {
        let k = reduction_kernel(32);
        let dev = DeviceConfig::gtx680();
        let m = CostModel::from_kernel(&k, &dev);
        let cands = crate::tuner::default_candidates(64, 1024);
        let tight = m.keep_within(&cands, 0.0);
        assert!(tight.len() >= 2, "{tight:?}");
        let wide = m.keep_within(&cands, 100.0);
        assert!(wide.len() >= tight.len());
        assert!(wide.len() <= cands.len());
        // Kept indices are valid and sorted (candidate order).
        assert!(wide.windows(2).all(|w| w[0] < w[1]));
        // The top-ranked candidate is always kept.
        assert!(tight.contains(&m.rank(&cands)[0]));
    }

    #[test]
    fn refine_is_deterministic_and_shifts_weights() {
        let k = reduction_kernel(32);
        let dev = DeviceConfig::gtx680();
        let mut a = CostModel::from_kernel(&k, &dev);
        let mut b = a.clone();
        let profile = ProfileCounters { instructions: 1000, ..Default::default() };
        let stall = StallBreakdown {
            issue: 100,
            memory_pending: 800,
            dram_saturated: 100,
            ..Default::default()
        };
        a.refine(&profile, &stall);
        b.refine(&profile, &stall);
        let cands = crate::tuner::default_candidates(64, 1024);
        for c in &cands {
            assert_eq!(a.score(c).to_bits(), b.score(c).to_bits());
        }
        // A 90% memory-bound pilot must weight memory above the default.
        assert!(a.w_mem > 1.0, "w_mem = {}", a.w_mem);
    }

    #[test]
    fn gate_threshold_tracks_sync_cost_and_stays_clamped() {
        assert_eq!(serial_gate_threshold(&DeviceConfig::gtx680()), 5);
        assert_eq!(serial_gate_threshold(&DeviceConfig::maxwell_like()), 4);
        assert_eq!(serial_gate_threshold(&DeviceConfig::small_test()), 3);
        let mut extreme = DeviceConfig::gtx680();
        extreme.barrier_cost = 1000;
        assert_eq!(serial_gate_threshold(&extreme), 16);
    }
}
