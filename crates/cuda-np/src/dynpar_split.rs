//! The dynamic-parallelism baseline (Section 6): split a pragma-annotated
//! kernel into the parent/child kernels a developer would write with Kepler
//! dynamic parallelism, so the paper's comparison can be *run* rather than
//! only modelled.
//!
//! The split makes the paper's pain points concrete:
//!
//! * parent and child can only communicate through **global memory**, so
//!   every scalar live across a parallel loop is spilled to a per-thread
//!   state buffer and re-loaded by the children and by the next parent
//!   phase;
//! * reductions come back as one partial per child thread that the parent
//!   must re-reduce sequentially;
//! * loops that touch **shared memory** (or per-thread local arrays) cannot
//!   be split at all without manual staging — exactly why the paper only
//!   produced dynamic-parallelism versions of NN, TMV, LE, LIB and CFD —
//!   and are rejected with [`DynParSplitError::SharedMemoryInLoop`].
//!
//! Execution: [`run_split`] launches each phase on the simulator and adds
//! the device-runtime launch overhead from [`np_gpu_sim::dynpar`].

use crate::liveout::identity_expr;
use np_exec::{launch, Args, ExecError, SimOptions};
use np_gpu_sim::DynParConfig;
use np_gpu_sim::DeviceConfig;
use np_kernel_ir::analysis::{arrays_read, arrays_written};
use np_kernel_ir::expr::dsl::{bdimx, bidx, load, tidx, v};
use np_kernel_ir::expr::Expr;
use np_kernel_ir::kernel::{Kernel, Param, ParamKind};
use np_kernel_ir::pragma::RedOp;
use np_kernel_ir::stmt::Stmt;
use np_kernel_ir::types::{Dim3, MemSpace, Scalar};

/// Why a kernel cannot be given a dynamic-parallelism version.
#[derive(Debug, Clone, PartialEq)]
pub enum DynParSplitError {
    /// No pragma loops: nothing to offload.
    NoPragmaLoops,
    /// A parallel loop reads or writes shared memory — the child kernel
    /// cannot see it (the paper's Section 6 discussion).
    SharedMemoryInLoop(String),
    /// A parallel loop touches a per-thread local array.
    LocalArrayInLoop(String),
    /// Scan/select clauses have no sensible naive-DP equivalent.
    UnsupportedClause(String),
    /// Parallel loops must be at the kernel's top level for the split.
    LoopNotTopLevel,
    /// The loop bound must be a literal or scalar parameter so the driver
    /// knows how many child threads to launch.
    NonLiteralTrip(String),
}

impl std::fmt::Display for DynParSplitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynParSplitError::NoPragmaLoops => write!(f, "kernel has no parallel loops"),
            DynParSplitError::SharedMemoryInLoop(a) => write!(
                f,
                "parallel loop touches shared array {a:?}; a child kernel cannot access the \
                 parent's shared memory (requires manual global staging)"
            ),
            DynParSplitError::LocalArrayInLoop(a) => write!(
                f,
                "parallel loop touches per-thread local array {a:?}; relocate it to global \
                 memory first"
            ),
            DynParSplitError::UnsupportedClause(c) => {
                write!(f, "clause {c} has no naive dynamic-parallelism equivalent")
            }
            DynParSplitError::LoopNotTopLevel => {
                write!(f, "parallel loops must be top-level statements for the split")
            }
            DynParSplitError::NonLiteralTrip(l) => {
                write!(f, "loop {l:?} needs a literal or parameter bound")
            }
        }
    }
}

impl std::error::Error for DynParSplitError {}

/// How many child threads one parent thread launches for a loop.
#[derive(Debug, Clone, PartialEq)]
pub enum Trip {
    Lit(u32),
    Param(String),
}

impl Trip {
    /// Resolve against bound arguments.
    pub fn resolve(&self, args: &Args) -> u32 {
        match self {
            Trip::Lit(n) => *n,
            Trip::Param(p) => match args.get(p) {
                Some(np_exec::ArgValue::I32(v)) => *v as u32,
                Some(np_exec::ArgValue::U32(v)) => *v,
                other => panic!("trip parameter {p:?} not bound to an integer: {other:?}"),
            },
        }
    }
}

/// One offloaded loop.
#[derive(Debug, Clone)]
pub struct ChildLoop {
    pub kernel: Kernel,
    pub trip: Trip,
    /// (variable, operator, scratch buffer param) for each reduction.
    pub reductions: Vec<(String, RedOp, String)>,
}

/// The split program: parent phases interleaved with child launches.
#[derive(Debug, Clone)]
pub struct DynParSplit {
    /// Parent phase kernels, one more than `children`.
    pub phases: Vec<Kernel>,
    pub children: Vec<ChildLoop>,
    /// (name, ty) of every spilled scalar, defining the state layout.
    pub state_slots: Vec<(String, Scalar)>,
}

const F32_STATE: &str = "__dp_state_f32";
const I32_STATE: &str = "__dp_state_i32";
const TID: &str = "__dp_tid";

fn state_params() -> [Param; 2] {
    [
        Param { name: F32_STATE.into(), kind: ParamKind::GlobalArray(Scalar::F32) },
        Param { name: I32_STATE.into(), kind: ParamKind::GlobalArray(Scalar::I32) },
    ]
}

fn tid_decl() -> Stmt {
    Stmt::DeclScalar {
        name: TID.into(),
        ty: Scalar::I32,
        init: Some(tidx() + bidx() * bdimx()),
    }
}

/// state index expression for slot `k` of this thread.
fn state_ix(slots: usize, k: usize, thread: Expr) -> Expr {
    thread * Expr::ImmI32(slots as i32) + Expr::ImmI32(k as i32)
}

fn save_stmt(slots: &[(String, Scalar)], k: usize, thread: Expr) -> Stmt {
    let (name, ty) = &slots[k];
    let (buf, value) = match ty {
        Scalar::F32 => (F32_STATE, v(name)),
        _ => (I32_STATE, Expr::Cast(Scalar::I32, Box::new(v(name)))),
    };
    Stmt::Store { array: buf.into(), index: state_ix(slots.len(), k, thread), value }
}

fn restore_stmt(slots: &[(String, Scalar)], k: usize, thread: Expr) -> Stmt {
    let (name, ty) = &slots[k];
    let raw = match ty {
        Scalar::F32 => load(F32_STATE, state_ix(slots.len(), k, thread)),
        _ => load(I32_STATE, state_ix(slots.len(), k, thread)),
    };
    let value = match ty {
        Scalar::F32 | Scalar::I32 => raw,
        other => Expr::Cast(*other, Box::new(raw)),
    };
    Stmt::Assign { name: name.clone(), value }
}

/// Split `kernel` into dynamic-parallelism phases.
pub fn split(kernel: &Kernel) -> Result<DynParSplit, DynParSplitError> {
    // Segment the top-level body at pragma loops.
    let mut segments: Vec<Vec<Stmt>> = vec![Vec::new()];
    let mut loops: Vec<(String, Expr, Expr, Vec<Stmt>, np_kernel_ir::NpPragma)> = Vec::new();
    for s in &kernel.body {
        match s {
            Stmt::For { var, init, bound, body, pragma: Some(p), .. } => {
                loops.push((var.clone(), init.clone(), bound.clone(), body.clone(), p.clone()));
                segments.push(Vec::new());
            }
            other => {
                if other.contains_pragma_loop() {
                    return Err(DynParSplitError::LoopNotTopLevel);
                }
                segments.last_mut().unwrap().push(other.clone());
            }
        }
    }
    if loops.is_empty() {
        return Err(DynParSplitError::NoPragmaLoops);
    }

    // Validate loop bodies: global arrays only; no scan/select.
    for (var, _, _, body, p) in &loops {
        if !p.scans.is_empty() {
            return Err(DynParSplitError::UnsupportedClause(format!("scan (loop over {var})")));
        }
        if !p.select_out.is_empty() {
            return Err(DynParSplitError::UnsupportedClause(format!("select (loop over {var})")));
        }
        let mut touched = arrays_read(body);
        touched.extend(arrays_written(body));
        for a in touched {
            match kernel.array_info(&a).map(|i| i.space) {
                Some(MemSpace::Shared) => {
                    return Err(DynParSplitError::SharedMemoryInLoop(a))
                }
                Some(MemSpace::Local) | Some(MemSpace::Register) => {
                    return Err(DynParSplitError::LocalArrayInLoop(a))
                }
                _ => {}
            }
        }
    }

    // All top-level scalars (in order) define the state layout.
    let mut state_slots: Vec<(String, Scalar)> = Vec::new();
    for s in &kernel.body {
        if let Stmt::DeclScalar { name, ty, .. } = s {
            state_slots.push((name.clone(), *ty));
        }
    }

    let nslots = state_slots.len().max(1);
    let _ = nslots;

    // Trips.
    let trips: Vec<Trip> = loops
        .iter()
        .map(|(var, init, bound, _, _)| {
            if *init != Expr::ImmI32(0) {
                return Err(DynParSplitError::NonLiteralTrip(var.clone()));
            }
            match bound {
                Expr::ImmI32(n) if *n > 0 => Ok(Trip::Lit(*n as u32)),
                Expr::Param(p) => Ok(Trip::Param(p.clone())),
                _ => Err(DynParSplitError::NonLiteralTrip(var.clone())),
            }
        })
        .collect::<Result<_, _>>()?;

    // Build parent phases.
    let mut phases = Vec::new();
    let mut children = Vec::new();
    for (i, seg) in segments.iter().enumerate() {
        let mut k = Kernel::new(&format!("{}_dp_phase{}", kernel.name, i), kernel.block_dim.x);
        k.params = kernel.params.clone();
        k.params.extend(state_params());
        // Scratch params for every *preceding* loop's reductions (phase i
        // consumes loop i-1's partials) and nothing else.
        let mut body = vec![tid_decl()];
        // Declare every state scalar (uninitialized).
        for (name, ty) in &state_slots {
            body.push(Stmt::DeclScalar { name: name.clone(), ty: *ty, init: None });
        }
        if i > 0 {
            // Restore state saved by the previous phase.
            for kk in 0..state_slots.len() {
                body.push(restore_stmt(&state_slots, kk, v(TID)));
            }
            // Re-reduce the previous loop's partials sequentially.
            let (_, _, bound, _, p) = &loops[i - 1];
            let mut scratch_names = Vec::new();
            for (op, var) in &p.reductions {
                let scratch = format!("__dp_red_{var}_{}", i - 1);
                k.params.push(Param {
                    name: scratch.clone(),
                    kind: ParamKind::GlobalArray(Scalar::F32),
                });
                scratch_names.push((var.clone(), *op, scratch));
            }
            for (var, op, scratch) in &scratch_names {
                let iter = format!("__dp_q_{var}");
                body.push(Stmt::For {
                    var: iter.clone(),
                    init: Expr::ImmI32(0),
                    bound: bound.clone(),
                    step: Expr::ImmI32(1),
                    body: vec![Stmt::Assign {
                        name: var.clone(),
                        value: crate::liveout::combine_expr(
                            *op,
                            v(var),
                            load(scratch, v(TID) * bound.clone() + v(&iter)),
                        ),
                    }],
                    pragma: None,
                });
            }
        }
        // The segment itself, with declarations turned into assignments
        // (the declarations were hoisted above).
        for s in seg {
            match s {
                Stmt::DeclScalar { name, init: Some(e), .. } => {
                    body.push(Stmt::Assign { name: name.clone(), value: e.clone() })
                }
                Stmt::DeclScalar { init: None, .. } => {}
                other => body.push(other.clone()),
            }
        }
        // Save state for children / the next phase (not needed after the
        // last phase).
        if i < segments.len() - 1 {
            for kk in 0..state_slots.len() {
                body.push(save_stmt(&state_slots, kk, v(TID)));
            }
        }
        k.body = body;
        phases.push(k);
    }

    // Build child kernels.
    for (j, (var, _init, bound, lbody, p)) in loops.iter().enumerate() {
        let mut k = Kernel::new(&format!("{}_dp_child{}", kernel.name, j), 256);
        k.params = kernel.params.clone();
        k.params.extend(state_params());
        let mut reductions = Vec::new();
        for (op, rvar) in &p.reductions {
            let scratch = format!("__dp_red_{rvar}_{j}");
            k.params.push(Param {
                name: scratch.clone(),
                kind: ParamKind::GlobalArray(Scalar::F32),
            });
            reductions.push((rvar.clone(), *op, scratch));
        }
        k.params.push(Param {
            name: "__dp_total".into(),
            kind: ParamKind::Scalar(Scalar::I32),
        });
        let mut body = vec![Stmt::DeclScalar {
            name: "__dp_gid".into(),
            ty: Scalar::I32,
            init: Some(tidx() + bidx() * bdimx()),
        }];
        // Parent thread index and iteration index.
        body.push(Stmt::DeclScalar {
            name: TID.into(),
            ty: Scalar::I32,
            init: Some(v("__dp_gid") / bound.clone()),
        });
        body.push(Stmt::DeclScalar {
            name: var.clone(),
            ty: Scalar::I32,
            init: Some(v("__dp_gid") % bound.clone()),
        });
        // Restore the parent's scalars (live-ins) from global memory —
        // the only channel a child has.
        for (name, ty) in &state_slots {
            body.push(Stmt::DeclScalar { name: name.clone(), ty: *ty, init: None });
        }
        for kk in 0..state_slots.len() {
            if state_slots[kk].0 == *var {
                continue; // the iterator is this thread's identity
            }
            body.push(restore_stmt(&state_slots, kk, v(TID)));
        }
        // Reduction variables start from the identity so the body computes
        // this iteration's contribution alone.
        for (rvar, op, _) in &reductions {
            let ty = state_slots
                .iter()
                .find(|(n, _)| n == rvar)
                .map(|(_, t)| *t)
                .unwrap_or(Scalar::F32);
            body.push(Stmt::Assign { name: rvar.clone(), value: identity_expr(*op, ty) });
        }
        // One loop iteration.
        body.extend(lbody.iter().cloned());
        // Ship the contribution back.
        for (rvar, _, scratch) in &reductions {
            body.push(Stmt::Store {
                array: scratch.clone(),
                index: v(TID) * bound.clone() + v(var),
                value: v(rvar),
            });
        }
        // Guard threads past the end of the batched launch (partial last
        // block): keep only the gid declaration unguarded.
        let gid_decl = body.remove(0);
        k.body = vec![
            gid_decl,
            Stmt::If {
                cond: np_kernel_ir::expr::dsl::lt(v("__dp_gid"), Expr::Param("__dp_total".into())),
                then_body: body,
                else_body: vec![],
            },
        ];
        children.push(ChildLoop { kernel: k, trip: trips[j].clone(), reductions });
    }

    Ok(DynParSplit { phases, children, state_slots })
}

/// Outcome of running a split program on the simulator.
#[derive(Debug)]
pub struct DynParRunReport {
    /// Total cycles including device-runtime launch overhead and the
    /// enabled-kernel tax.
    pub cycles: u64,
    /// Cycles spent in simulated parent/child work alone.
    pub work_cycles: u64,
    /// Device-side child launches performed.
    pub launches: u64,
}

/// Run a split program: parent phases on `grid`, children batched, launch
/// overhead charged per parent thread per loop (the naive pattern the
/// paper's Section 6 measures). Outputs land in `args` like a normal
/// launch.
pub fn run_split(
    dev: &DeviceConfig,
    sp: &DynParSplit,
    grid: Dim3,
    args: &mut Args,
    sim: &SimOptions,
) -> Result<DynParRunReport, ExecError> {
    let parent_threads =
        grid.count() * sp.phases.first().map(|p| p.block_dim.count()).unwrap_or(1);
    let nslots = sp.state_slots.len().max(1);

    // Shared state buffers.
    let mut a = std::mem::take(args)
        .buf_f32(F32_STATE, vec![0.0; parent_threads as usize * nslots])
        .buf_i32(I32_STATE, vec![0; parent_threads as usize * nslots]);
    // Reduction scratch buffers.
    for c in &sp.children {
        let trip = c.trip.resolve(&a) as usize;
        for (_, _, scratch) in &c.reductions {
            a = a.buf_f32(scratch, vec![0.0; parent_threads as usize * trip]);
        }
    }

    let mut work_cycles = 0u64;
    let mut launches = 0u64;
    for (i, phase) in sp.phases.iter().enumerate() {
        let rep = launch(dev, phase, grid, &mut a, sim)?;
        work_cycles += rep.cycles;
        if i < sp.children.len() {
            let c = &sp.children[i];
            let trip = c.trip.resolve(&a) as u64;
            let total = parent_threads * trip;
            let cgrid = Dim3::x1(total.div_ceil(256).max(1) as u32);
            a = a.i32("__dp_total", total as i32);
            let rep = launch(dev, &c.kernel, cgrid, &mut a, sim)?;
            work_cycles += rep.cycles;
            launches += parent_threads;
        }
    }

    let dp: &DynParConfig = &dev.dynpar;
    let overhead = launches as u128 * (dp.launch_overhead_cycles + dp.global_handoff_cycles) as u128
        / dp.launch_parallelism as u128;
    let cycles = (((work_cycles as u128 + overhead) as f64) * dp.enabled_overhead) as u64;
    *args = a;
    Ok(DynParRunReport { cycles, work_cycles, launches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::{KernelBuilder, Scalar as S};

    fn tmv_like(block: u32) -> Kernel {
        let mut b = KernelBuilder::new("tmv", block);
        b.param_global_f32("a");
        b.param_global_f32("b");
        b.param_global_f32("out");
        b.param_scalar_i32("w");
        b.param_scalar_i32("h");
        b.decl_f32("sum", f(0.0));
        b.decl_i32("tx", tidx() + bidx() * bdimx());
        b.pragma_for("np parallel for reduction(+:sum)", "i", i(0), p("h"), |b| {
            b.assign("sum", v("sum") + load("a", v("i") * p("w") + v("tx")) * load("b", v("i")));
        });
        b.store("out", v("tx"), v("sum"));
        b.finish()
    }

    #[test]
    fn split_produces_two_phases_and_one_child() {
        let sp = split(&tmv_like(32)).unwrap();
        assert_eq!(sp.phases.len(), 2);
        assert_eq!(sp.children.len(), 1);
        assert_eq!(sp.children[0].trip, Trip::Param("h".into()));
        assert_eq!(sp.children[0].reductions.len(), 1);
        // sum and tx are spilled.
        assert_eq!(sp.state_slots.len(), 2);
    }

    #[test]
    fn split_runs_and_matches_the_plain_kernel() {
        let dev = DeviceConfig::gtx680();
        let (w, h) = (64usize, 40usize);
        let k = tmv_like(32);
        let mk = || {
            Args::new()
                .buf_f32("a", np_workloads_hash(w * h))
                .buf_f32("b", np_workloads_hash(h))
                .buf_f32("out", vec![0.0; w])
                .i32("w", w as i32)
                .i32("h", h as i32)
        };
        // Plain run.
        let mut base_args = mk();
        let base = launch(&dev, &k, Dim3::x1(2), &mut base_args, &SimOptions::full()).unwrap();
        // Split run.
        let sp = split(&k).unwrap();
        let mut dp_args = mk();
        let rep = run_split(&dev, &sp, Dim3::x1(2), &mut dp_args, &SimOptions::full()).unwrap();
        assert_eq!(rep.launches, 64);
        let expect = base_args.get_f32("out").unwrap();
        let got = dp_args.get_f32("out").unwrap();
        for (i, (e, g)) in expect.iter().zip(got).enumerate() {
            assert!(
                (e - g).abs() <= 1e-3 * e.abs().max(1.0),
                "out[{i}]: plain {e} vs dynpar {g}"
            );
        }
        // And it is much slower than the plain kernel — the paper's point.
        assert!(
            rep.cycles > 3 * base.cycles,
            "dynamic parallelism should be slow: {} vs {}",
            rep.cycles,
            base.cycles
        );
    }

    #[test]
    fn shared_memory_loops_are_rejected() {
        let mut b = KernelBuilder::new("sh", 32);
        b.param_global_f32("out");
        b.shared_array("tile", S::F32, 32);
        b.decl_f32("s", f(0.0));
        b.pragma_for("np parallel for reduction(+:s)", "i", i(0), i(32), |b| {
            b.assign("s", v("s") + load("tile", v("i")));
        });
        b.store("out", tidx(), v("s"));
        assert!(matches!(
            split(&b.finish()),
            Err(DynParSplitError::SharedMemoryInLoop(a)) if a == "tile"
        ));
    }

    #[test]
    fn local_arrays_and_scans_are_rejected() {
        let mut b = KernelBuilder::new("loc", 32);
        b.param_global_f32("out");
        b.local_array("buf", S::F32, 16);
        b.pragma_for("np parallel for", "i", i(0), i(16), |b| {
            b.store("buf", v("i"), f(1.0));
        });
        b.store("out", tidx(), load("buf", i(0)));
        assert!(matches!(
            split(&b.finish()),
            Err(DynParSplitError::LocalArrayInLoop(_))
        ));

        let mut b = KernelBuilder::new("sc", 32);
        b.param_global_f32("out");
        b.decl_f32("acc", f(0.0));
        b.pragma_for("np parallel for scan(+:acc)", "i", i(0), i(16), |b| {
            b.assign("acc", v("acc") + f(1.0));
        });
        b.store("out", tidx(), v("acc"));
        assert!(matches!(
            split(&b.finish()),
            Err(DynParSplitError::UnsupportedClause(_))
        ));
    }

    fn np_workloads_hash(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i * 37 % 101) as f32 - 50.0) / 25.0).collect()
    }
}
