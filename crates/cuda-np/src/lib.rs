//! # cuda-np — nested thread-level parallelism for GPU kernels
//!
//! Reproduction of **"CUDA-NP: Realizing Nested Thread-Level Parallelism in
//! GPGPU Applications"** (Yang & Zhou, PPoPP 2014): a directive-based
//! compiler that exploits parallel loops *inside* GPU threads without the
//! overhead of dynamic parallelism.
//!
//! Given a kernel whose parallel loops carry `np parallel for` pragmas, the
//! [`transform()`](transform::transform) widens each thread block with slave threads, gates
//! sequential code to the original master threads, splits pragma-loop
//! iterations across each master's slave group, communicates scalar live-ins
//! with `__shfl` or shared memory, reduces/scans live-outs, and relocates
//! live local-memory arrays to registers, shared, or global memory.
//!
//! ```
//! use cuda_np::{transform, NpOptions};
//! use np_kernel_ir::expr::dsl::*;
//! use np_kernel_ir::KernelBuilder;
//!
//! // Figure 2's TMV kernel with its dot-product loop marked parallel.
//! let mut b = KernelBuilder::new("tmv", 128);
//! b.param_global_f32("a");
//! b.param_global_f32("b");
//! b.param_global_f32("c");
//! b.param_scalar_i32("w");
//! b.param_scalar_i32("h");
//! b.decl_f32("sum", f(0.0));
//! b.decl_i32("tx", tidx() + bidx() * bdimx());
//! b.pragma_for("np parallel for reduction(+:sum)", "i", i(0), p("h"), |b| {
//!     b.assign("sum", v("sum") + load("a", v("i") * p("w") + v("tx")) * load("b", v("i")));
//! });
//! b.store("c", v("tx"), v("sum"));
//! let kernel = b.finish();
//!
//! let t = transform(&kernel, &NpOptions::inter(8)).unwrap();
//! assert_eq!(t.kernel.block_dim.count(), 128 * 8);
//! assert_eq!(t.report.reductions.len(), 1);
//! ```

pub mod broadcast;
pub mod conformance;
pub mod costmodel;
pub mod dynpar_split;
pub mod liveout;
pub mod local_array;
pub mod mapping;
pub mod options;
pub mod preprocess;
pub mod scan;
pub mod serve;
pub mod transform;
pub mod tuner;

pub use conformance::{drop_barrier, drop_broadcast_guard, gating_policy, master_only_arrays};
pub use costmodel::{serial_gate_threshold, CostModel, TunePolicy, DEFAULT_PRUNE_MARGIN};
pub use dynpar_split::{split as dynpar_split, run_split as dynpar_run, DynParSplit, DynParSplitError};
pub use local_array::{LocalArrayChoice, LocalArrayPlan};
pub use mapping::{ThreadMap, MASTER_ID, SLAVE_ID};
pub use options::{LocalArrayStrategy, NpOptions, TransformError};
pub use transform::{transform, TransformReport, Transformed};
pub use tuner::{
    autotune, autotune_with_policy, LaunchFailure, PolicyTuneResult, TuneCandidate, TuneEntry,
    TuneError, TuneOutcome, TuneResult,
};
