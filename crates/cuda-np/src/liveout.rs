//! Scalar live-out handling: parallel reduction and scan across a master's
//! slave group (Section 3.2).
//!
//! Reductions use a `__shfl_xor` butterfly when the slave group shares a
//! warp (every thread ends with the total, no barrier needed — legal even
//! under divergent control flow), or a shared-memory tree with barriers
//! otherwise. Scans use Hillis–Steele over per-slave partial totals; the
//! enclosing transform combines them with a blocked loop distribution.

use crate::mapping::{ThreadMap, MASTER_ID, SLAVE_ID};
use np_kernel_ir::expr::dsl::{ge, gt, land, load, lt, max, select, shfl, shfl_up, v};
use np_kernel_ir::expr::{BinOp, Expr};
use np_kernel_ir::pragma::RedOp;
use np_kernel_ir::stmt::Stmt;
use np_kernel_ir::types::{MemSpace, Scalar};

/// The identity element of a reduction.
pub fn identity_expr(op: RedOp, ty: Scalar) -> Expr {
    match (op, ty) {
        (RedOp::Add, Scalar::F32) => Expr::ImmF32(0.0),
        (RedOp::Add, Scalar::I32) => Expr::ImmI32(0),
        (RedOp::Add, Scalar::U32) => Expr::ImmU32(0),
        (RedOp::Mul, Scalar::F32) => Expr::ImmF32(1.0),
        (RedOp::Mul, Scalar::I32) => Expr::ImmI32(1),
        (RedOp::Mul, Scalar::U32) => Expr::ImmU32(1),
        (RedOp::Min, Scalar::F32) => Expr::ImmF32(f32::INFINITY),
        (RedOp::Min, Scalar::I32) => Expr::ImmI32(i32::MAX),
        (RedOp::Min, Scalar::U32) => Expr::ImmU32(u32::MAX),
        (RedOp::Max, Scalar::F32) => Expr::ImmF32(f32::NEG_INFINITY),
        (RedOp::Max, Scalar::I32) => Expr::ImmI32(i32::MIN),
        (RedOp::Max, Scalar::U32) => Expr::ImmU32(0),
        (op, ty) => panic!("no identity for {op:?} over {ty:?}"),
    }
}

/// `combine(a, b)` for a reduction operator.
pub fn combine_expr(op: RedOp, a: Expr, b: Expr) -> Expr {
    let bin = match op {
        RedOp::Add => BinOp::Add,
        RedOp::Mul => BinOp::Mul,
        RedOp::Min => BinOp::Min,
        RedOp::Max => BinOp::Max,
    };
    Expr::Binary(bin, Box::new(a), Box::new(b))
}

/// Name of the shared tree buffer for a reduced variable.
pub fn red_buf_name(var: &str) -> String {
    format!("__np_red_{var}")
}

/// Tree offsets for a reduction over `n` participants: next_pow2(n)/2 … 1.
fn tree_offsets(n: u32) -> Vec<u32> {
    let mut offs = Vec::new();
    let mut o = n.next_power_of_two() / 2;
    while o >= 1 {
        offs.push(o);
        if o == 1 {
            break;
        }
        o /= 2;
    }
    offs
}

/// Code to initialize the slave copies of a reduction variable to the
/// identity before the loop (the master keeps its original value so any
/// pre-loop contribution is counted exactly once).
pub fn slave_identity_init(var: &str, op: RedOp, ty: Scalar) -> Stmt {
    Stmt::If {
        cond: np_kernel_ir::expr::dsl::ne(v(SLAVE_ID), Expr::ImmI32(0)),
        then_body: vec![Stmt::Assign { name: var.to_string(), value: identity_expr(op, ty) }],
        else_body: vec![],
    }
}

/// Reduction of `var` across each slave group. After the emitted code,
/// *every* thread of the group holds the combined value.
/// Returns (top-level shared declarations, code). The shared path contains
/// barriers and must run under uniform control flow.
pub fn reduce_var(
    map: &ThreadMap,
    use_shfl: bool,
    var: &str,
    ty: Scalar,
    op: RedOp,
) -> (Vec<Stmt>, Vec<Stmt>) {
    let s = map.slave_size;
    if use_shfl && map.slaves_share_warp() {
        // Butterfly: after log2(S) rounds every lane holds the total.
        let mut code = Vec::new();
        let mut off = s / 2;
        while off >= 1 {
            code.push(Stmt::Assign {
                name: var.to_string(),
                value: combine_expr(
                    op,
                    v(var),
                    np_kernel_ir::expr::dsl::shfl_xor(v(var), Expr::ImmI32(off as i32), s),
                ),
            });
            if off == 1 {
                break;
            }
            off /= 2;
        }
        return (Vec::new(), code);
    }

    let m = map.master_size;
    let buf = red_buf_name(var);
    let decls = vec![Stmt::DeclArray {
        name: buf.clone(),
        ty,
        space: MemSpace::Shared,
        len: s * m,
    }];
    let mid = v(MASTER_ID);
    let sid = v(SLAVE_ID);
    let slot = |slave: Expr| slave * Expr::ImmI32(m as i32) + mid.clone();
    let mut code = vec![
        Stmt::SyncThreads,
        Stmt::Store { array: buf.clone(), index: slot(sid.clone()), value: v(var) },
        Stmt::SyncThreads,
    ];
    for off in tree_offsets(s) {
        code.push(Stmt::If {
            cond: land(
                lt(sid.clone(), Expr::ImmI32(off as i32)),
                lt(sid.clone() + Expr::ImmI32(off as i32), Expr::ImmI32(s as i32)),
            ),
            then_body: vec![Stmt::Store {
                array: buf.clone(),
                index: slot(sid.clone()),
                value: combine_expr(
                    op,
                    load(&buf, slot(sid.clone())),
                    load(&buf, slot(sid.clone() + Expr::ImmI32(off as i32))),
                ),
            }],
            else_body: vec![],
        });
        code.push(Stmt::SyncThreads);
    }
    code.push(Stmt::Assign { name: var.to_string(), value: load(&buf, mid) });
    (decls, code)
}

/// Names used by the scan codegen for variable `var`.
pub struct ScanVars {
    /// Per-slave chunk total (computed by the sliced pre-pass).
    pub total: String,
    /// Exclusive prefix of the totals across the slave group.
    pub offset: String,
    /// Grand total across the whole group.
    pub grand: String,
}

pub fn scan_vars(var: &str) -> ScanVars {
    ScanVars {
        total: format!("__np_scan_tot_{var}"),
        offset: format!("__np_scan_off_{var}"),
        grand: format!("__np_scan_all_{var}"),
    }
}

/// Exclusive-scan code across the slave group: consumes `vars.total`,
/// defines `vars.offset` (exclusive prefix) and `vars.grand` (total).
/// Only `+` scans are supported — matching the paper's LIB benchmark and
/// the CUDA SDK scan it references. Returns (decls, code).
pub fn exclusive_scan(
    map: &ThreadMap,
    use_shfl: bool,
    var: &str,
    ty: Scalar,
) -> (Vec<Stmt>, Vec<Stmt>) {
    assert_eq!(ty, Scalar::F32, "scan currently supports f32 (as in LIB)");
    let s = map.slave_size;
    let vars = scan_vars(var);
    let incl = format!("__np_scan_incl_{var}");

    if use_shfl && map.slaves_share_warp() {
        let mut code = vec![Stmt::DeclScalar {
            name: incl.clone(),
            ty,
            init: Some(v(&vars.total)),
        }];
        let mut off = 1;
        while off < s {
            // t = __shfl_up(incl, off, S); if (slave >= off) incl += t;
            let t = format!("__np_scan_t_{var}_{off}");
            code.push(Stmt::DeclScalar {
                name: t.clone(),
                ty,
                init: Some(shfl_up(v(&incl), Expr::ImmI32(off as i32), s)),
            });
            code.push(Stmt::Assign {
                name: incl.clone(),
                value: select(
                    ge(v(SLAVE_ID), Expr::ImmI32(off as i32)),
                    v(&incl) + v(&t),
                    v(&incl),
                ),
            });
            off *= 2;
        }
        code.push(Stmt::DeclScalar {
            name: vars.offset.clone(),
            ty,
            init: Some(v(&incl) - v(&vars.total)),
        });
        code.push(Stmt::DeclScalar {
            name: vars.grand.clone(),
            ty,
            init: Some(shfl(v(&incl), Expr::ImmI32(s as i32 - 1), s)),
        });
        return (Vec::new(), code);
    }

    let m = map.master_size;
    let buf = format!("__np_scan_buf_{var}");
    let decls = vec![Stmt::DeclArray {
        name: buf.clone(),
        ty,
        space: MemSpace::Shared,
        len: s * m,
    }];
    let mid = v(MASTER_ID);
    let sid = v(SLAVE_ID);
    let slot = |slave: Expr| slave * Expr::ImmI32(m as i32) + mid.clone();
    let mut code = vec![
        Stmt::SyncThreads,
        Stmt::Store { array: buf.clone(), index: slot(sid.clone()), value: v(&vars.total) },
    ];
    let mut off = 1;
    while off < s {
        let t = format!("__np_scan_t_{var}_{off}");
        // Read phase (guarded index kept in range with max()), then write.
        code.push(Stmt::SyncThreads);
        code.push(Stmt::DeclScalar {
            name: t.clone(),
            ty,
            init: Some(select(
                ge(sid.clone(), Expr::ImmI32(off as i32)),
                load(
                    &buf,
                    slot(max(sid.clone() - Expr::ImmI32(off as i32), Expr::ImmI32(0))),
                ),
                Expr::ImmF32(0.0),
            )),
        });
        code.push(Stmt::SyncThreads);
        code.push(Stmt::Store {
            array: buf.clone(),
            index: slot(sid.clone()),
            value: load(&buf, slot(sid.clone())) + v(&t),
        });
        off *= 2;
    }
    code.push(Stmt::SyncThreads);
    code.push(Stmt::DeclScalar {
        name: vars.offset.clone(),
        ty,
        init: Some(select(
            gt(sid.clone(), Expr::ImmI32(0)),
            load(&buf, slot(max(sid.clone() - Expr::ImmI32(1), Expr::ImmI32(0)))),
            Expr::ImmF32(0.0),
        )),
    });
    code.push(Stmt::DeclScalar {
        name: vars.grand.clone(),
        ty,
        init: Some(load(&buf, slot(Expr::ImmI32(s as i32 - 1)))),
    });
    (decls, code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::pragma::NpType;

    fn map(t: NpType, s: u32) -> ThreadMap {
        ThreadMap { np_type: t, master_size: 16, slave_size: s }
    }

    #[test]
    fn identities_are_correct() {
        assert_eq!(identity_expr(RedOp::Add, Scalar::F32), Expr::ImmF32(0.0));
        assert_eq!(identity_expr(RedOp::Mul, Scalar::I32), Expr::ImmI32(1));
        assert_eq!(identity_expr(RedOp::Min, Scalar::F32), Expr::ImmF32(f32::INFINITY));
        assert_eq!(identity_expr(RedOp::Max, Scalar::I32), Expr::ImmI32(i32::MIN));
    }

    #[test]
    fn shfl_reduction_has_log2_rounds_and_no_decls() {
        let (decls, code) = reduce_var(&map(NpType::IntraWarp, 8), true, "sum", Scalar::F32, RedOp::Add);
        assert!(decls.is_empty());
        assert_eq!(code.len(), 3, "8 = 2^3 butterfly rounds");
    }

    #[test]
    fn shared_reduction_allocates_s_by_m_buffer() {
        let (decls, code) = reduce_var(&map(NpType::InterWarp, 8), false, "sum", Scalar::F32, RedOp::Add);
        match &decls[0] {
            Stmt::DeclArray { len, space, .. } => {
                assert_eq!(*len, 8 * 16);
                assert_eq!(*space, MemSpace::Shared);
            }
            other => panic!("unexpected {other:?}"),
        }
        let syncs = code.iter().filter(|s| matches!(s, Stmt::SyncThreads)).count();
        assert!(syncs >= 4, "tree rounds need barriers, found {syncs}");
    }

    #[test]
    fn non_pow2_slave_size_tree_is_bounded() {
        // 6 slaves: offsets 4,2,1 with bound checks.
        let offs = tree_offsets(6);
        assert_eq!(offs, vec![4, 2, 1]);
        let (_, code) = reduce_var(&map(NpType::InterWarp, 6), false, "x", Scalar::F32, RedOp::Add);
        assert!(!code.is_empty());
    }

    #[test]
    fn scan_defines_offset_and_grand_total() {
        for use_shfl in [true, false] {
            let m = map(if use_shfl { NpType::IntraWarp } else { NpType::InterWarp }, 8);
            let (_, code) = exclusive_scan(&m, use_shfl, "acc", Scalar::F32);
            let names: Vec<&str> = code
                .iter()
                .filter_map(|s| match s {
                    Stmt::DeclScalar { name, .. } => Some(name.as_str()),
                    _ => None,
                })
                .collect();
            assert!(names.contains(&"__np_scan_off_acc"), "{names:?}");
            assert!(names.contains(&"__np_scan_all_acc"), "{names:?}");
        }
    }
}
