//! Live local-memory arrays in parallel sections (Section 3.3, Figure 6).
//!
//! A per-thread local array touched by a parallel loop must become visible
//! to the slave threads. Three rewrites, chosen by the paper's policy:
//!
//! 1. **Partition into registers** (Fig. 6c) — legal when every access in
//!    the parallel loops indexes by the bare loop iterator, so each slave
//!    touches a disjoint cyclic residue class: `arr[i]` → `arr[i / S]` on a
//!    `ceil(N/S)`-element register array.
//! 2. **Shared memory** (Fig. 6b) — `arr[i]` → `arr_sm[master_id * N + i]`.
//! 3. **Global memory** (Fig. 6a) — a new kernel parameter partitioned per
//!    block and strided by `master_size` for coalescing:
//!    `arr[i]` → `arr_g[blockIdx.x * M * N + i * M + master_id]`.
//!
//! Policy (`Auto`): partition when legal; otherwise shared memory when the
//! array fits a 384-byte budget minus the baseline's own shared usage per
//! thread; otherwise global memory.

use crate::mapping::{ThreadMap, MASTER_ID};
use crate::options::{LocalArrayStrategy, TransformError};
use np_kernel_ir::analysis::loops::accesses_only_by_iterator;
use np_kernel_ir::expr::dsl::bidx;
use np_kernel_ir::expr::Expr;
use np_kernel_ir::kernel::{Kernel, Param, ParamKind};
use np_kernel_ir::stmt::Stmt;
use np_kernel_ir::types::MemSpace;

/// What happened to one local array.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalArrayChoice {
    Register { per_slave_len: u32 },
    Shared { total_len: u32 },
    Global { param: String, elems_per_block: u64 },
}

/// Record of one relocated array.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalArrayPlan {
    pub array: String,
    pub choice: LocalArrayChoice,
}

/// Is `array` accessed anywhere in `stmts` (reads or writes)?
fn accessed_in(stmts: &[Stmt], array: &str) -> bool {
    let mut found = false;
    np_kernel_ir::stmt::visit_stmts(stmts, &mut |s| {
        if let Stmt::Store { array: a, .. } = s {
            if a == array {
                found = true;
            }
        }
        for e in s.exprs() {
            e.visit(&mut |e| {
                if let Expr::Load { array: a, .. } = e {
                    if a == array {
                        found = true;
                    }
                }
            });
        }
    });
    found
}

/// Collect `(iterator, init, has_scan, body)` descriptors of every pragma
/// loop in the kernel that touches `array`.
struct TouchingLoop {
    init_is_zero: bool,
    has_scan: bool,
    iterator_only: bool,
}

fn touching_loops(stmts: &[Stmt], array: &str, out: &mut Vec<TouchingLoop>) {
    for s in stmts {
        match s {
            Stmt::For { var, init, body, pragma, .. } => {
                if pragma.is_some() && accessed_in(body, array) {
                    out.push(TouchingLoop {
                        init_is_zero: matches!(init, Expr::ImmI32(0)),
                        has_scan: pragma.as_ref().is_some_and(|p| !p.scans.is_empty()),
                        iterator_only: accesses_only_by_iterator(body, array, var),
                    });
                }
                touching_loops(body, array, out);
            }
            Stmt::If { then_body, else_body, .. } => {
                touching_loops(then_body, array, out);
                touching_loops(else_body, array, out);
            }
            _ => {}
        }
    }
}

/// Is `array` accessed outside of pragma loops (sequential code)?
fn accessed_outside_pragma_loops(stmts: &[Stmt], array: &str) -> bool {
    for s in stmts {
        match s {
            Stmt::For { body, pragma, .. } => {
                if pragma.is_none() && accessed_outside_pragma_loops(body, array) {
                    return true;
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                let mut in_cond = false;
                cond.visit(&mut |e| {
                    if let Expr::Load { array: a, .. } = e {
                        if a == array {
                            in_cond = true;
                        }
                    }
                });
                if in_cond
                    || accessed_outside_pragma_loops(then_body, array)
                    || accessed_outside_pragma_loops(else_body, array)
                {
                    return true;
                }
            }
            other => {
                let mut found = false;
                if let Stmt::Store { array: a, .. } = other {
                    if a == array {
                        found = true;
                    }
                }
                for e in other.exprs() {
                    e.visit(&mut |e| {
                        if let Expr::Load { array: a, .. } = e {
                            if a == array {
                                found = true;
                            }
                        }
                    });
                }
                if found {
                    return true;
                }
            }
        }
    }
    false
}

/// Rewrite every access of `array` in `stmts`: index `e` becomes `f(e)`,
/// and the array name becomes `new_name`.
fn rewrite_accesses(stmts: &mut [Stmt], array: &str, new_name: &str, f: &dyn Fn(Expr) -> Expr) {
    for s in stmts.iter_mut() {
        match s {
            Stmt::Store { array: a, index, .. } if a == array => {
                *index = f(index.clone());
                *a = new_name.to_string();
            }
            _ => {}
        }
        // Rewrite loads inside every expression of the statement.
        let rewrite_expr = |e: Expr| -> Expr {
            e.rewrite(&|e| match e {
                Expr::Load { array: a, index } if a == array => {
                    Expr::Load { array: new_name.to_string(), index: Box::new(f(*index)) }
                }
                other => other,
            })
        };
        match s {
            Stmt::DeclScalar { init: Some(e), .. } => *e = rewrite_expr(e.clone()),
            Stmt::Assign { value, .. } => *value = rewrite_expr(value.clone()),
            Stmt::Store { index, value, .. } => {
                *index = rewrite_expr(index.clone());
                *value = rewrite_expr(value.clone());
            }
            Stmt::If { cond, then_body, else_body } => {
                *cond = rewrite_expr(cond.clone());
                rewrite_accesses(then_body, array, new_name, f);
                rewrite_accesses(else_body, array, new_name, f);
            }
            Stmt::For { init, bound, step, body, .. } => {
                *init = rewrite_expr(init.clone());
                *bound = rewrite_expr(bound.clone());
                *step = rewrite_expr(step.clone());
                rewrite_accesses(body, array, new_name, f);
            }
            _ => {}
        }
    }
}

/// Remove the declaration of `array` from the body, returning its info.
fn take_decl(stmts: &mut Vec<Stmt>, array: &str) -> Option<(np_kernel_ir::types::Scalar, u32, usize)> {
    for (pos, s) in stmts.iter().enumerate() {
        if let Stmt::DeclArray { name, ty, len, .. } = s {
            if name == array {
                let out = (*ty, *len, pos);
                stmts.remove(pos);
                return Some(out);
            }
        }
    }
    None
}

/// Plan and apply the relocation of every live local array. Mutates the
/// kernel in place; returns the plans (including new global parameters the
/// launcher must allocate: `elems_per_block * gridDim.x` elements).
pub fn plan_and_rewrite(
    kernel: &mut Kernel,
    map: &ThreadMap,
    strategy: LocalArrayStrategy,
    shared_budget_per_thread: u32,
) -> Result<Vec<LocalArrayPlan>, TransformError> {
    let locals: Vec<(String, u32, np_kernel_ir::types::Scalar)> = kernel
        .declared_arrays()
        .into_iter()
        .filter(|(_, i)| i.space == MemSpace::Local)
        .map(|(n, i)| (n, i.len.unwrap_or(0), i.ty))
        .collect();

    let baseline_shared = kernel.shared_bytes();
    let mut plans = Vec::new();

    for (name, len, _ty) in locals {
        let mut loops = Vec::new();
        touching_loops(&kernel.body, &name, &mut loops);
        if loops.is_empty() {
            continue; // untouched by parallel sections: stays local
        }
        let partition_legal = loops
            .iter()
            .all(|l| l.iterator_only && l.init_is_zero && !l.has_scan)
            && !accessed_outside_pragma_loops(&kernel.body, &name);

        let s = map.slave_size;
        let m = map.master_size;
        let fits_shared = {
            let budget = shared_budget_per_thread
                .saturating_sub(baseline_shared / m.max(1));
            len * 4 <= budget
        };

        let choice = match strategy {
            LocalArrayStrategy::Auto => {
                if partition_legal {
                    LocalArrayChoice::Register { per_slave_len: len.div_ceil(s) }
                } else if fits_shared {
                    LocalArrayChoice::Shared { total_len: m * len }
                } else {
                    LocalArrayChoice::Global {
                        param: format!("{name}_g"),
                        elems_per_block: m as u64 * len as u64,
                    }
                }
            }
            LocalArrayStrategy::ForceRegister => {
                if !partition_legal {
                    return Err(TransformError::NonCanonicalLoop(format!(
                        "local array {name:?} cannot be partitioned into registers: \
                         accesses must use the bare loop iterator of zero-based, \
                         non-scan parallel loops only"
                    )));
                }
                LocalArrayChoice::Register { per_slave_len: len.div_ceil(s) }
            }
            LocalArrayStrategy::ForceShared => LocalArrayChoice::Shared { total_len: m * len },
            LocalArrayStrategy::ForceGlobal => LocalArrayChoice::Global {
                param: format!("{name}_g"),
                elems_per_block: m as u64 * len as u64,
            },
        };

        apply_choice(kernel, map, &name, len, &choice);
        plans.push(LocalArrayPlan { array: name, choice });
    }
    Ok(plans)
}

fn apply_choice(
    kernel: &mut Kernel,
    map: &ThreadMap,
    name: &str,
    len: u32,
    choice: &LocalArrayChoice,
) {
    let s = map.slave_size as i32;
    let m = map.master_size as i32;
    let (ty, _, pos) = take_decl(&mut kernel.body, name).expect("declared local array");
    match choice {
        LocalArrayChoice::Register { per_slave_len } => {
            kernel.body.insert(
                pos,
                Stmt::DeclArray {
                    name: name.to_string(),
                    ty,
                    space: MemSpace::Register,
                    len: *per_slave_len,
                },
            );
            // Cyclic distribution: slave s owns indices i ≡ s (mod S), so
            // element i lives at slot i / S of its own partition.
            rewrite_accesses(&mut kernel.body, name, name, &|e| {
                Expr::Binary(
                    np_kernel_ir::expr::BinOp::Div,
                    Box::new(e),
                    Box::new(Expr::ImmI32(s)),
                )
            });
        }
        LocalArrayChoice::Shared { total_len } => {
            let new = format!("{name}_sm");
            kernel.body.insert(
                pos,
                Stmt::DeclArray {
                    name: new.clone(),
                    ty,
                    space: MemSpace::Shared,
                    len: *total_len,
                },
            );
            // Figure 6b layout: arr_sm[master_id][i].
            let n = len as i32;
            rewrite_accesses(&mut kernel.body, name, &new, &|e| {
                Expr::Var(MASTER_ID.into()) * Expr::ImmI32(n) + e
            });
        }
        LocalArrayChoice::Global { param, .. } => {
            kernel
                .params
                .push(Param { name: param.clone(), kind: ParamKind::GlobalArray(ty) });
            // Figure 6a layout: block-partitioned, strided by master_size
            // so that simultaneous accesses by adjacent masters coalesce.
            let n = len as i32;
            let param_name = param.clone();
            rewrite_accesses(&mut kernel.body, name, &param_name, &|e| {
                bidx() * Expr::ImmI32(m * n)
                    + e * Expr::ImmI32(m)
                    + Expr::Var(MASTER_ID.into())
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::pragma::NpType;
    use np_kernel_ir::{KernelBuilder, Scalar};

    fn map() -> ThreadMap {
        ThreadMap { np_type: NpType::InterWarp, master_size: 32, slave_size: 8 }
    }

    /// Figure-5-like kernel: Grad\[150\] written then reduced in pragma loops.
    fn le_like() -> Kernel {
        let mut b = KernelBuilder::new("le", 32);
        b.param_global_f32("src");
        b.param_global_f32("out");
        b.local_array("Grad", Scalar::F32, 150);
        b.decl_f32("sum", f(0.0));
        b.pragma_for("np parallel for", "n", i(0), i(150), |b| {
            b.store("Grad", v("n"), load("src", v("n")));
        });
        b.pragma_for("np parallel for reduction(+:sum)", "n", i(0), i(150), |b| {
            b.assign("sum", v("sum") + load("Grad", v("n")));
        });
        b.store("out", tidx(), v("sum"));
        b.finish()
    }

    #[test]
    fn auto_partitions_iterator_indexed_arrays() {
        let mut k = le_like();
        let plans =
            plan_and_rewrite(&mut k, &map(), LocalArrayStrategy::Auto, 384).unwrap();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].choice, LocalArrayChoice::Register { per_slave_len: 19 });
        // The declaration became a register array of ceil(150/8) = 19.
        let info = k.array_info("Grad").unwrap();
        assert_eq!(info.space, MemSpace::Register);
        assert_eq!(info.len, Some(19));
        // Indices got divided by slave_size.
        let src = np_kernel_ir::printer::print_kernel(&k);
        assert!(src.contains("Grad[(n / 8)]"), "{src}");
    }

    #[test]
    fn force_shared_uses_master_major_layout() {
        let mut k = le_like();
        let plans =
            plan_and_rewrite(&mut k, &map(), LocalArrayStrategy::ForceShared, 384).unwrap();
        assert_eq!(plans[0].choice, LocalArrayChoice::Shared { total_len: 32 * 150 });
        let info = k.array_info("Grad_sm").unwrap();
        assert_eq!(info.space, MemSpace::Shared);
        let src = np_kernel_ir::printer::print_kernel(&k);
        assert!(src.contains("Grad_sm[((__np_master_id * 150) + n)]"), "{src}");
    }

    #[test]
    fn force_global_adds_a_parameter() {
        let mut k = le_like();
        let plans =
            plan_and_rewrite(&mut k, &map(), LocalArrayStrategy::ForceGlobal, 384).unwrap();
        match &plans[0].choice {
            LocalArrayChoice::Global { param, elems_per_block } => {
                assert_eq!(param, "Grad_g");
                assert_eq!(*elems_per_block, 32 * 150);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(k.params.iter().any(|p| p.name == "Grad_g"));
        assert!(k.array_info("Grad").is_none(), "old decl removed");
    }

    #[test]
    fn non_iterator_access_forbids_partition() {
        let mut b = KernelBuilder::new("k", 32);
        b.param_global_f32("out");
        b.local_array("buf", Scalar::F32, 64);
        b.pragma_for("np parallel for", "n", i(0), i(64), |b| {
            b.store("buf", v("n") % i(8), f(0.0)); // not the bare iterator
        });
        b.store("out", tidx(), load("buf", i(0)));
        let mut k = b.finish();
        assert!(matches!(
            plan_and_rewrite(&mut k, &map(), LocalArrayStrategy::ForceRegister, 384),
            Err(TransformError::NonCanonicalLoop(_))
        ));
        // Auto falls back to shared (64*4 = 256 <= 384).
        let plans = plan_and_rewrite(&mut k, &map(), LocalArrayStrategy::Auto, 384).unwrap();
        assert!(matches!(plans[0].choice, LocalArrayChoice::Shared { .. }));
    }

    #[test]
    fn auto_spills_large_arrays_to_global() {
        let mut b = KernelBuilder::new("k", 32);
        b.param_global_f32("out");
        b.local_array("big", Scalar::F32, 200); // 800 B > 384 B budget
        b.pragma_for("np parallel for", "n", i(0), i(200), |b| {
            // Offset access also blocks partitioning.
            b.store("big", (v("n") + i(1)) % i(200), f(0.0));
        });
        b.store("out", tidx(), load("big", i(0)));
        let mut k = b.finish();
        let plans = plan_and_rewrite(&mut k, &map(), LocalArrayStrategy::Auto, 384).unwrap();
        assert!(matches!(plans[0].choice, LocalArrayChoice::Global { .. }));
    }

    #[test]
    fn arrays_untouched_by_parallel_loops_stay_local() {
        let mut b = KernelBuilder::new("k", 32);
        b.param_global_f32("out");
        b.local_array("scratch", Scalar::F32, 16);
        b.for_loop("j", i(0), i(16), |b| {
            b.store("scratch", v("j"), f(1.0));
        });
        b.pragma_for("np parallel for", "n", i(0), i(64), |b| {
            b.store("out", v("n"), f(2.0));
        });
        let mut k = b.finish();
        let plans = plan_and_rewrite(&mut k, &map(), LocalArrayStrategy::Auto, 384).unwrap();
        assert!(plans.is_empty());
        assert_eq!(k.array_info("scratch").unwrap().space, MemSpace::Local);
    }

    #[test]
    fn scan_loop_access_disqualifies_partition() {
        let mut b = KernelBuilder::new("k", 32);
        b.param_global_f32("out");
        b.local_array("arr", Scalar::F32, 64);
        b.decl_f32("acc", f(0.0));
        b.pragma_for("np parallel for scan(+:acc)", "n", i(0), i(64), |b| {
            b.assign("acc", v("acc") + load("arr", v("n")));
        });
        b.store("out", tidx(), v("acc"));
        let mut k = b.finish();
        let plans = plan_and_rewrite(&mut k, &map(), LocalArrayStrategy::Auto, 384).unwrap();
        assert!(
            matches!(plans[0].choice, LocalArrayChoice::Shared { .. }),
            "blocked scan distribution is incompatible with cyclic partitioning"
        );
    }
}
