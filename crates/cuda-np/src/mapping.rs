//! Master/slave thread-id mapping (Section 3 and 3.4).
//!
//! Inter-warp NP keeps the original (master) thread ids along X and adds
//! slaves along Y — slaves of one master land in *different* warps, so the
//! original memory-coalescing pattern is preserved and divergent masters
//! stay divergent. Intra-warp NP swaps the roles: slaves run along X inside
//! the master's own warp, enabling `__shfl` communication but re-striding
//! every original memory access by `slave_size`.

use np_kernel_ir::expr::dsl::{tidx, tidy};
use np_kernel_ir::expr::Expr;
use np_kernel_ir::pragma::NpType;
use np_kernel_ir::types::Dim3;

/// Names of the injected id variables.
pub const MASTER_ID: &str = "__np_master_id";
pub const SLAVE_ID: &str = "__np_slave_id";

/// The thread-geometry plan for one transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadMap {
    pub np_type: NpType,
    /// Number of master threads per block (the input kernel's block size).
    pub master_size: u32,
    /// Threads per master group (master + slaves).
    pub slave_size: u32,
}

impl ThreadMap {
    /// Block dimensions of the transformed kernel.
    pub fn block_dim(&self) -> Dim3 {
        match self.np_type {
            NpType::InterWarp => Dim3::xy(self.master_size, self.slave_size),
            NpType::IntraWarp => Dim3::xy(self.slave_size, self.master_size),
        }
    }

    /// Expression computing the master id in the transformed kernel.
    pub fn master_id_expr(&self) -> Expr {
        match self.np_type {
            NpType::InterWarp => tidx(),
            NpType::IntraWarp => tidy(),
        }
    }

    /// Expression computing the slave id in the transformed kernel.
    pub fn slave_id_expr(&self) -> Expr {
        match self.np_type {
            NpType::InterWarp => tidy(),
            NpType::IntraWarp => tidx(),
        }
    }

    /// Total threads per block after transformation.
    pub fn total_threads(&self) -> u32 {
        self.master_size * self.slave_size
    }

    /// With intra-warp NP, are all slaves of any master inside one warp?
    /// (Needed for `__shfl`-based communication.)
    pub fn slaves_share_warp(&self) -> bool {
        self.np_type == NpType::IntraWarp
            && self.slave_size.is_power_of_two()
            && self.slave_size <= 32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_warp_layout() {
        let m = ThreadMap { np_type: NpType::InterWarp, master_size: 32, slave_size: 8 };
        assert_eq!(m.block_dim(), Dim3::xy(32, 8));
        assert_eq!(m.master_id_expr(), tidx());
        assert_eq!(m.slave_id_expr(), tidy());
        assert_eq!(m.total_threads(), 256);
        assert!(!m.slaves_share_warp());
    }

    #[test]
    fn intra_warp_layout() {
        let m = ThreadMap { np_type: NpType::IntraWarp, master_size: 32, slave_size: 8 };
        assert_eq!(m.block_dim(), Dim3::xy(8, 32));
        assert_eq!(m.master_id_expr(), tidy());
        assert_eq!(m.slave_id_expr(), tidx());
        assert!(m.slaves_share_warp());
    }

    #[test]
    fn intra_warp_non_pow2_cannot_use_shfl() {
        let m = ThreadMap { np_type: NpType::IntraWarp, master_size: 32, slave_size: 6 };
        assert!(!m.slaves_share_warp());
    }

    /// The worked example from the paper (Section 3): thread (1, 0)..(1, 7)
    /// of a 32x8 inter-warp block all map to master 1, and land in
    /// different warps (ids differ by 32).
    #[test]
    fn inter_warp_slaves_land_in_different_warps() {
        let m = ThreadMap { np_type: NpType::InterWarp, master_size: 32, slave_size: 8 };
        let d = m.block_dim();
        let linear = |x: u32, y: u32| y * d.x + x;
        for s in 0..8 {
            assert_eq!(linear(1, s) % 32, 1, "same lane in every warp");
            assert_eq!(linear(1, s) / 32, s, "one warp per slave");
        }
    }

    /// Intra-warp: slaves (0,1)..(7,1) of master 1 are lanes 8..15 of warp
    /// 0 — all in the same warp, grouped by slave_size.
    #[test]
    fn intra_warp_slaves_are_one_lane_group() {
        let m = ThreadMap { np_type: NpType::IntraWarp, master_size: 32, slave_size: 8 };
        let d = m.block_dim();
        let linear = |x: u32, y: u32| y * d.x + x;
        for s in 0..8 {
            assert_eq!(linear(s, 1) / 32, 0);
            assert_eq!(linear(s, 1) % 32, 8 + s);
        }
    }
}
