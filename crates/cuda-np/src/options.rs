//! Transformation options and error types.

use np_kernel_ir::pragma::NpType;

/// How to relocate a live local-memory array (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalArrayStrategy {
    /// The paper's policy: partition into registers when legal; else shared
    /// memory when the array fits the 384-byte budget (minus baseline
    /// shared usage); else global memory.
    Auto,
    ForceGlobal,
    ForceShared,
    ForceRegister,
}

/// Options controlling one CUDA-NP transformation.
#[derive(Debug, Clone)]
pub struct NpOptions {
    /// Threads per master group: 1 master + (slave_size - 1) slaves all
    /// working on the parallel loops ("slave_size" in the paper's Figure 3).
    pub slave_size: u32,
    /// Iteration-distribution scheme (Section 3.4).
    pub np_type: NpType,
    /// Targeted compute capability ×10 (30 = sm_30). `__shfl` needs >= 30.
    pub sm_version: u32,
    /// Local-array relocation policy.
    pub local_array: LocalArrayStrategy,
    /// Let slaves redundantly recompute uniform sequential values instead
    /// of broadcasting them (Section 3.1). On by default.
    pub redundant_uniform: bool,
    /// Force shfl usage on/off; `None` = automatic (intra-warp && sm >= 30).
    pub use_shfl: Option<bool>,
    /// Pad parallel loop trip counts up to a multiple of `slave_size`
    /// (Section 3.7, Figure 12). Requires static trip counts.
    pub pad: bool,
    /// Hardware cap on threads per block (1024 on Kepler).
    pub max_block_threads: u32,
    /// Shared-memory budget in bytes per thread for the local-array policy
    /// (the paper uses 384).
    pub shared_budget_per_thread: u32,
    /// Adaptive small-loop gating: a pragma loop whose *static* trip count
    /// is below this threshold is emitted as a master-only serial loop —
    /// the group communication would cost more than the saved iterations.
    /// `None` (the default) disables gating; `costmodel::serial_gate_threshold`
    /// gives the per-device value.
    pub serial_below: Option<u32>,
    /// Per-loop communication overrides: `(pragma loop index in pre-order,
    /// use __shfl)`. The thread mapping stays global (it is physical), but
    /// each loop's broadcast/reduction/scan can independently choose the
    /// shuffle or shared-memory scheme — the hybrid selection hook. A
    /// `true` entry on a mapping whose slave groups do not share a warp is
    /// rejected with [`TransformError::ShflUnsupported`].
    pub loop_comm: Vec<(usize, bool)>,
}

impl NpOptions {
    /// Defaults matching the paper's GTX 680 setup.
    pub fn new(slave_size: u32, np_type: NpType) -> Self {
        NpOptions {
            slave_size,
            np_type,
            sm_version: 30,
            local_array: LocalArrayStrategy::Auto,
            redundant_uniform: true,
            use_shfl: None,
            pad: false,
            max_block_threads: 1024,
            shared_budget_per_thread: 384,
            serial_below: None,
            loop_comm: Vec::new(),
        }
    }

    /// Gate pragma loops with static trips below `threshold` to serial
    /// master-only execution (builder style).
    pub fn with_serial_below(mut self, threshold: u32) -> Self {
        self.serial_below = Some(threshold);
        self
    }

    /// Override one pragma loop's communication scheme (builder style).
    pub fn with_loop_comm(mut self, loop_index: usize, use_shfl: bool) -> Self {
        self.loop_comm.push((loop_index, use_shfl));
        self
    }

    /// Inter-warp NP with the given slave count.
    pub fn inter(slave_size: u32) -> Self {
        Self::new(slave_size, NpType::InterWarp)
    }

    /// Intra-warp NP with the given slave count.
    pub fn intra(slave_size: u32) -> Self {
        Self::new(slave_size, NpType::IntraWarp)
    }

    /// Should the generated code use `__shfl` for broadcast/reduction/scan?
    pub fn shfl_enabled(&self) -> bool {
        match self.use_shfl {
            Some(x) => x,
            None => self.np_type == NpType::IntraWarp && self.sm_version >= 30,
        }
    }
}

/// Reasons a kernel cannot be transformed with the given options.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// The kernel has no `np parallel for` loops.
    NoPragmaLoops,
    /// The input must be one-dimensional (run the flatten preprocessor).
    MultiDimInput,
    /// master_size * slave_size exceeds the block-thread cap.
    BlockTooLarge { master: u32, slave: u32, max: u32 },
    /// slave_size must be >= 2 to add any slaves.
    SlaveSizeTooSmall,
    /// Intra-warp NP requires a power-of-two slave_size <= 32 so slave
    /// groups stay inside one warp.
    IntraWarpSlaveSize(u32),
    /// A pragma loop is not in canonical `for (v = e; v < b; v++)` form.
    NonCanonicalLoop(String),
    /// A scalar is written in a parallel loop and read afterwards without a
    /// reduction / scan / select clause covering it.
    UnhandledLiveOut(String),
    /// A scan variable's increment could not be sliced out of the loop body
    /// (it must be `v = v + e` with `e` independent of `v`).
    ScanNotSliceable(String),
    /// Padding was requested but the loop's trip count is not static.
    PadNeedsStaticTrip(String),
    /// `__shfl` requested on a target without support (sm < 30).
    ShflUnsupported,
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::NoPragmaLoops => {
                write!(f, "kernel has no `np parallel for` pragma loops")
            }
            TransformError::MultiDimInput => {
                write!(f, "input kernel must have 1-D blocks (run preprocess::flatten first)")
            }
            TransformError::BlockTooLarge { master, slave, max } => {
                write!(f, "{master} masters x {slave} threads exceeds {max} threads/block")
            }
            TransformError::SlaveSizeTooSmall => write!(f, "slave_size must be >= 2"),
            TransformError::IntraWarpSlaveSize(s) => {
                write!(f, "intra-warp NP requires a power-of-two slave_size <= 32, got {s}")
            }
            TransformError::NonCanonicalLoop(m) => write!(f, "non-canonical parallel loop: {m}"),
            TransformError::UnhandledLiveOut(v) => write!(
                f,
                "scalar {v:?} is written in a parallel loop and used afterwards; \
                 add a reduction(op:{v}), scan(op:{v}) or select({v}) clause"
            ),
            TransformError::ScanNotSliceable(v) => write!(
                f,
                "scan variable {v:?} must be updated as `{v} = {v} + e` with e independent of {v}"
            ),
            TransformError::PadNeedsStaticTrip(l) => {
                write!(f, "padding requires a static trip count on loop over {l:?}")
            }
            TransformError::ShflUnsupported => {
                write!(f, "__shfl requested but target sm version is below 30")
            }
        }
    }
}

impl std::error::Error for TransformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shfl_defaults_follow_np_type_and_sm() {
        assert!(NpOptions::intra(8).shfl_enabled());
        assert!(!NpOptions::inter(8).shfl_enabled());
        let mut o = NpOptions::intra(8);
        o.sm_version = 20;
        assert!(!o.shfl_enabled());
        o.use_shfl = Some(true);
        assert!(o.shfl_enabled());
    }

    #[test]
    fn errors_have_readable_messages() {
        let e = TransformError::UnhandledLiveOut("x".into());
        assert!(e.to_string().contains("reduction(op:x)"));
    }
}
