//! Convert a multi-dimensional thread block into a one-dimensional one
//! (Section 3.7, Figure 8).
//!
//! The mapping keeps the linear thread order, so warp membership — and with
//! it memory coalescing and divergence behaviour — is unchanged:
//!
//! ```text
//! threadIdx.x ← t % dimX
//! threadIdx.y ← (t / dimX) % dimY
//! threadIdx.z ← t / (dimX * dimY)
//! ```

use np_kernel_ir::expr::dsl::{tidx, v};
use np_kernel_ir::expr::{Expr, Special};
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::stmt::Stmt;
use np_kernel_ir::types::{Dim3, Scalar};

const FLAT_X: &str = "__flat_tx";
const FLAT_Y: &str = "__flat_ty";
const FLAT_Z: &str = "__flat_tz";

/// Rewrite every expression in a statement tree with `f`.
pub(crate) fn rewrite_exprs(stmts: &mut [Stmt], f: &dyn Fn(Expr) -> Expr) {
    for s in stmts.iter_mut() {
        match s {
            Stmt::DeclScalar { init: Some(e), .. } => *e = e.clone().rewrite(f),
            Stmt::Assign { value, .. } => *value = value.clone().rewrite(f),
            Stmt::Store { index, value, .. } => {
                *index = index.clone().rewrite(f);
                *value = value.clone().rewrite(f);
            }
            Stmt::If { cond, then_body, else_body } => {
                *cond = cond.clone().rewrite(f);
                rewrite_exprs(then_body, f);
                rewrite_exprs(else_body, f);
            }
            Stmt::For { init, bound, step, body, .. } => {
                *init = init.clone().rewrite(f);
                *bound = bound.clone().rewrite(f);
                *step = step.clone().rewrite(f);
                rewrite_exprs(body, f);
            }
            _ => {}
        }
    }
}

/// Flatten `kernel`'s block to one dimension. No-op for already-1-D blocks.
pub fn flatten_block(kernel: &mut Kernel) {
    let d = kernel.block_dim;
    if d.y == 1 && d.z == 1 {
        return;
    }
    let (dx, dy) = (d.x as i32, d.y as i32);
    rewrite_exprs(&mut kernel.body, &|e| match e {
        Expr::Special(Special::ThreadIdxX) => v(FLAT_X),
        Expr::Special(Special::ThreadIdxY) => v(FLAT_Y),
        Expr::Special(Special::ThreadIdxZ) => v(FLAT_Z),
        Expr::Special(Special::BlockDimX) => Expr::ImmI32(dx),
        Expr::Special(Special::BlockDimY) => Expr::ImmI32(dy),
        Expr::Special(Special::BlockDimZ) => Expr::ImmI32(d.z as i32),
        other => other,
    });
    let prologue = vec![
        Stmt::DeclScalar {
            name: FLAT_X.into(),
            ty: Scalar::I32,
            init: Some(tidx() % Expr::ImmI32(dx)),
        },
        Stmt::DeclScalar {
            name: FLAT_Y.into(),
            ty: Scalar::I32,
            init: Some((tidx() / Expr::ImmI32(dx)) % Expr::ImmI32(dy)),
        },
        Stmt::DeclScalar {
            name: FLAT_Z.into(),
            ty: Scalar::I32,
            init: Some(tidx() / Expr::ImmI32(dx * dy)),
        },
    ];
    for (i, s) in prologue.into_iter().enumerate() {
        kernel.body.insert(i, s);
    }
    kernel.block_dim = Dim3::x1(d.count() as u32);
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::KernelBuilder;

    #[test]
    fn one_d_kernels_are_untouched() {
        let mut b = KernelBuilder::new("k", 64);
        b.param_global_f32("out");
        b.store("out", tidx(), f(1.0));
        let mut k = b.finish();
        let before = k.clone();
        flatten_block(&mut k);
        assert_eq!(k, before);
    }

    #[test]
    fn two_d_block_becomes_linear_with_same_semantics() {
        use np_exec::{launch, Args, SimOptions};
        use np_gpu_sim::DeviceConfig;

        // out[ty*8+tx] = ty*100 + tx, written from a (8,4) block.
        let mut b = KernelBuilder::new("k2d", 8);
        b.param_global_f32("out");
        b.store(
            "out",
            tidy() * i(8) + tidx(),
            cast(np_kernel_ir::Scalar::F32, tidy() * i(100) + tidx()),
        );
        let mut k = b.finish();
        k.block_dim = Dim3::xy(8, 4);

        let run = |k: &Kernel| {
            let dev = DeviceConfig::small_test();
            let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
            launch(&dev, k, np_kernel_ir::Dim3::x1(1), &mut args, &SimOptions::full())
                .unwrap();
            args.get_f32("out").unwrap().to_vec()
        };
        let expected = run(&k);

        flatten_block(&mut k);
        assert_eq!(k.block_dim, Dim3::x1(32));
        let got = run(&k);
        assert_eq!(got, expected);
    }

    #[test]
    fn block_dim_uses_are_replaced_by_constants() {
        let mut b = KernelBuilder::new("k", 8);
        b.param_global_f32("out");
        b.decl_i32("w", bdimx() * bdimy());
        b.store("out", tidx(), cast(np_kernel_ir::Scalar::F32, v("w")));
        let mut k = b.finish();
        k.block_dim = Dim3::xy(8, 4);
        flatten_block(&mut k);
        let src = np_kernel_ir::printer::print_kernel(&k);
        assert!(src.contains("(8 * 4)"), "{src}");
        assert!(!src.contains("blockDim.x"), "{src}");
    }
}
