//! Preprocessing passes that normalize kernels before the NP transformation
//! (Section 3.7): multi-dimensional thread-id flattening, recombining
//! manually unrolled statements into loops, and loop padding.

pub mod flatten;
pub mod pad;
pub mod unroll;

pub use flatten::flatten_block;
pub use pad::pad_parallel_loops;
pub use unroll::recombine_unrolled;
