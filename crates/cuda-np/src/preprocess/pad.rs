//! Loop padding (Section 3.7, item 3; evaluated in Figure 12).
//!
//! Pads a parallel loop's static trip count up to the next multiple of
//! `slave_size`, guarding the body with `if (i < original_bound)` so the
//! padded iterations are idle. This makes every slave execute the same
//! number of iterations (required when the distribution must be perfectly
//! regular, e.g. for `__shfl`-based schemes), at the cost of workload
//! imbalance from the idle iterations.

use crate::options::TransformError;
use np_kernel_ir::analysis::loops::static_trip_count;
use np_kernel_ir::expr::dsl::lt;
use np_kernel_ir::expr::Expr;
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::stmt::Stmt;

fn pad_in(stmts: &mut [Stmt], slave_size: u32, padded: &mut u32) -> Result<(), TransformError> {
    for s in stmts.iter_mut() {
        match s {
            Stmt::For { var, init, bound, body, pragma, .. } => {
                if pragma.is_some() {
                    let trip = static_trip_count(init, bound).ok_or_else(|| {
                        TransformError::PadNeedsStaticTrip(var.clone())
                    })?;
                    if trip % slave_size != 0 {
                        let new_trip = trip.div_ceil(slave_size) * slave_size;
                        let old_bound = bound.clone();
                        *bound = Expr::ImmI32(match *init {
                            Expr::ImmI32(a) => a + new_trip as i32,
                            _ => new_trip as i32,
                        });
                        let old_body = std::mem::take(body);
                        *body = vec![Stmt::If {
                            cond: lt(Expr::Var(var.clone()), old_bound),
                            then_body: old_body,
                            else_body: vec![],
                        }];
                        *padded += 1;
                    }
                } else {
                    pad_in(body, slave_size, padded)?;
                }
            }
            Stmt::If { then_body, else_body, .. } => {
                pad_in(then_body, slave_size, padded)?;
                pad_in(else_body, slave_size, padded)?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Pad every pragma loop in `kernel` whose static trip count is not a
/// multiple of `slave_size`. Returns how many loops were padded.
pub fn pad_parallel_loops(kernel: &mut Kernel, slave_size: u32) -> Result<u32, TransformError> {
    let mut padded = 0;
    pad_in(&mut kernel.body, slave_size, &mut padded)?;
    Ok(padded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::KernelBuilder;

    #[test]
    fn pads_le_loop_count_to_a_slave_multiple() {
        // The paper's LE example pads NPOINTS = 150 up to a multiple of the
        // group width (160 for their 32-wide case; 152 for 8 slaves here).
        let mut b = KernelBuilder::new("le", 32);
        b.param_global_f32("out");
        b.pragma_for("np parallel for", "n", i(0), i(150), |b| {
            b.store("out", v("n"), f(1.0));
        });
        let mut k = b.finish();
        assert_eq!(pad_parallel_loops(&mut k, 8).unwrap(), 1);
        let src = np_kernel_ir::printer::print_kernel(&k);
        assert!(src.contains("n < 152"), "{src}");
        assert!(src.contains("if ((n < 150))"), "{src}");

        // And the paper's own width: 32 slaves pads to 160.
        let mut b = KernelBuilder::new("le32", 32);
        b.param_global_f32("out");
        b.pragma_for("np parallel for", "n", i(0), i(150), |b| {
            b.store("out", v("n"), f(1.0));
        });
        let mut k = b.finish();
        pad_parallel_loops(&mut k, 32).unwrap();
        let src = np_kernel_ir::printer::print_kernel(&k);
        assert!(src.contains("n < 160"), "{src}");
    }

    #[test]
    fn multiple_trips_stay_untouched() {
        let mut b = KernelBuilder::new("k", 32);
        b.param_global_f32("out");
        b.pragma_for("np parallel for", "n", i(0), i(64), |b| {
            b.store("out", v("n"), f(1.0));
        });
        let mut k = b.finish();
        let before = k.clone();
        assert_eq!(pad_parallel_loops(&mut k, 8).unwrap(), 0);
        assert_eq!(k, before);
    }

    #[test]
    fn runtime_bounds_are_rejected() {
        let mut b = KernelBuilder::new("k", 32);
        b.param_global_f32("out");
        b.param_scalar_i32("n");
        b.pragma_for("np parallel for", "j", i(0), p("n"), |b| {
            b.store("out", v("j"), f(1.0));
        });
        let mut k = b.finish();
        assert!(matches!(
            pad_parallel_loops(&mut k, 8),
            Err(TransformError::PadNeedsStaticTrip(_))
        ));
    }

    #[test]
    fn padding_preserves_semantics() {
        use np_exec::{launch, Args, SimOptions};
        use np_gpu_sim::DeviceConfig;

        let build = || {
            let mut b = KernelBuilder::new("k", 32);
            b.param_global_f32("out");
            b.pragma_for("np parallel for", "n", i(0), i(150), |b| {
                b.store("out", v("n"), cast(np_kernel_ir::Scalar::F32, v("n")));
            });
            b.finish()
        };
        let run = |k: &np_kernel_ir::Kernel| {
            let dev = DeviceConfig::small_test();
            let mut args = Args::new().buf_f32("out", vec![-1.0; 150]);
            launch(&dev, k, np_kernel_ir::Dim3::x1(1), &mut args, &SimOptions::full())
                .unwrap();
            args.get_f32("out").unwrap().to_vec()
        };
        let base = build();
        let mut padded = build();
        pad_parallel_loops(&mut padded, 8).unwrap();
        // Note: the padded kernel still indexes only < 150 thanks to the
        // guard, so no out-of-bounds access happens.
        assert_eq!(run(&base), run(&padded));
    }
}
