//! Recombine manually unrolled statements into a loop (Section 3.7,
//! Figure 9).
//!
//! Developers sometimes hand-unroll loops; the NP transform needs loops.
//! This pass finds maximal runs of structurally identical statements that
//! differ only in `i32` literals, hoists the differing literals into
//! constant-memory index tables, and replaces the run with a canonical
//! loop that reads the tables by iterator — turning straight-line code
//! back into a parallelizable loop.

use np_kernel_ir::expr::Expr;
use np_kernel_ir::kernel::{Kernel, Param, ParamKind};
use np_kernel_ir::stmt::Stmt;
use np_kernel_ir::types::Scalar;

/// A constant table produced by recombination: bind it as a `ConstArray`
/// argument when launching.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstTable {
    pub name: String,
    pub values: Vec<i32>,
}

/// Check two expressions are identical except at i32 literals, recording
/// literal pairs in `slots` (position-aligned).
fn unify_expr(a: &Expr, b: &Expr, slots: &mut Vec<(i32, i32)>) -> bool {
    use Expr::*;
    match (a, b) {
        (ImmI32(x), ImmI32(y)) => {
            slots.push((*x, *y));
            true
        }
        (ImmF32(x), ImmF32(y)) => x == y,
        (ImmU32(x), ImmU32(y)) => x == y,
        (ImmBool(x), ImmBool(y)) => x == y,
        (Var(x), Var(y)) | (Param(x), Param(y)) => x == y,
        (Special(x), Special(y)) => x == y,
        (Unary(o1, e1), Unary(o2, e2)) => o1 == o2 && unify_expr(e1, e2, slots),
        (Cast(t1, e1), Cast(t2, e2)) => t1 == t2 && unify_expr(e1, e2, slots),
        (Binary(o1, a1, b1), Binary(o2, a2, b2)) => {
            o1 == o2 && unify_expr(a1, a2, slots) && unify_expr(b1, b2, slots)
        }
        (Select(c1, a1, b1), Select(c2, a2, b2)) => {
            unify_expr(c1, c2, slots) && unify_expr(a1, a2, slots) && unify_expr(b1, b2, slots)
        }
        (Load { array: x, index: i1 }, Load { array: y, index: i2 }) => {
            x == y && unify_expr(i1, i2, slots)
        }
        (
            Shfl { mode: m1, value: v1, lane: l1, width: w1 },
            Shfl { mode: m2, value: v2, lane: l2, width: w2 },
        ) => m1 == m2 && w1 == w2 && unify_expr(v1, v2, slots) && unify_expr(l1, l2, slots),
        _ => false,
    }
}

/// Unify two statements the same way (no control flow, no declarations).
fn unify_stmt(a: &Stmt, b: &Stmt, slots: &mut Vec<(i32, i32)>) -> bool {
    match (a, b) {
        (Stmt::Assign { name: n1, value: v1 }, Stmt::Assign { name: n2, value: v2 }) => {
            n1 == n2 && unify_expr(v1, v2, slots)
        }
        (
            Stmt::Store { array: a1, index: i1, value: v1 },
            Stmt::Store { array: a2, index: i2, value: v2 },
        ) => a1 == a2 && unify_expr(i1, i2, slots) && unify_expr(v1, v2, slots),
        _ => false,
    }
}

/// Replace the `k`-th i32 literal (in unify order) with a table load when
/// that literal actually varies across the run; constant literals stay
/// inline (`tables[k]` is `None` for those).
fn substitute(e: &Expr, counter: &mut usize, tables: &[Option<String>], iter: &str) -> Expr {
    use Expr::*;
    match e {
        ImmI32(x) => {
            let slot = &tables[*counter];
            *counter += 1;
            match slot {
                Some(t) => {
                    Load { array: t.clone(), index: Box::new(Var(iter.to_string())) }
                }
                None => ImmI32(*x),
            }
        }
        Unary(o, x) => Unary(*o, Box::new(substitute(x, counter, tables, iter))),
        Cast(t, x) => Cast(*t, Box::new(substitute(x, counter, tables, iter))),
        Binary(o, x, y) => Binary(
            *o,
            Box::new(substitute(x, counter, tables, iter)),
            Box::new(substitute(y, counter, tables, iter)),
        ),
        Select(c, x, y) => Select(
            Box::new(substitute(c, counter, tables, iter)),
            Box::new(substitute(x, counter, tables, iter)),
            Box::new(substitute(y, counter, tables, iter)),
        ),
        Load { array, index } => Load {
            array: array.clone(),
            index: Box::new(substitute(index, counter, tables, iter)),
        },
        Shfl { mode, value, lane, width } => Shfl {
            mode: *mode,
            value: Box::new(substitute(value, counter, tables, iter)),
            lane: Box::new(substitute(lane, counter, tables, iter)),
            width: *width,
        },
        leaf => leaf.clone(),
    }
}

/// Recombine maximal runs (length >= `min_run`) of unrollable statements at
/// the top level of `kernel` into loops with constant index tables. The
/// produced loops carry no pragma — the developer still decides which are
/// parallel. Returns the constant tables the caller must bind at launch.
pub fn recombine_unrolled(kernel: &mut Kernel, min_run: usize) -> Vec<ConstTable> {
    let mut out_tables: Vec<ConstTable> = Vec::new();
    let body = std::mem::take(&mut kernel.body);
    let mut new_body: Vec<Stmt> = Vec::new();
    let mut run_id = 0usize;

    let mut i = 0;
    while i < body.len() {
        // Grow the longest run starting at i where each stmt unifies with
        // stmt i using a consistent slot structure.
        let mut run_len = 1;
        let mut columns: Vec<Vec<i32>> = Vec::new(); // one per literal slot
        if matches!(body[i], Stmt::Assign { .. } | Stmt::Store { .. }) {
            loop {
                let j = i + run_len;
                if j >= body.len() {
                    break;
                }
                let mut slots = Vec::new();
                if !unify_stmt(&body[i], &body[j], &mut slots) {
                    break;
                }
                if run_len == 1 {
                    columns = slots.iter().map(|(a, _)| vec![*a]).collect();
                } else if slots.len() != columns.len() {
                    break;
                }
                for (k, (_, b)) in slots.iter().enumerate() {
                    columns[k].push(*b);
                }
                run_len += 1;
            }
        }

        // Only worth a loop if at least one literal column varies.
        let any_varying = columns.iter().any(|col| col.windows(2).any(|w| w[0] != w[1]));
        if run_len >= min_run && !columns.is_empty() && any_varying {
            // Emit tables for the varying columns; constants stay literal.
            let iter = format!("__unroll_i{run_id}");
            let mut table_names: Vec<Option<String>> = Vec::new();
            for (k, col) in columns.iter().enumerate() {
                if col.windows(2).all(|w| w[0] == w[1]) {
                    table_names.push(None);
                    continue;
                }
                let name = format!("__unroll_tab{run_id}_{k}");
                kernel
                    .params
                    .push(Param { name: name.clone(), kind: ParamKind::ConstArray(Scalar::I32) });
                out_tables.push(ConstTable { name: name.clone(), values: col.clone() });
                table_names.push(Some(name));
            }
            let mut counter = 0usize;
            let template = match &body[i] {
                Stmt::Assign { name, value } => Stmt::Assign {
                    name: name.clone(),
                    value: substitute(value, &mut counter, &table_names, &iter),
                },
                Stmt::Store { array, index, value } => {
                    let idx = substitute(index, &mut counter, &table_names, &iter);
                    Stmt::Store {
                        array: array.clone(),
                        index: idx,
                        value: substitute(value, &mut counter, &table_names, &iter),
                    }
                }
                _ => unreachable!(),
            };
            new_body.push(Stmt::For {
                var: iter,
                init: Expr::ImmI32(0),
                bound: Expr::ImmI32(run_len as i32),
                step: Expr::ImmI32(1),
                body: vec![template],
                pragma: None,
            });
            run_id += 1;
            i += run_len;
        } else {
            new_body.push(body[i].clone());
            i += 1;
        }
    }
    kernel.body = new_body;
    out_tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::KernelBuilder;

    #[test]
    fn recombines_figure9_style_run() {
        // x += a[2]; x += a[6]; x += a[7]; x += a[9];  (Figure 9a)
        let mut b = KernelBuilder::new("k", 32);
        b.param_global_f32("a");
        b.param_global_f32("out");
        b.decl_f32("x", f(0.0));
        for idx in [2, 6, 7, 9] {
            b.assign("x", v("x") + load("a", i(idx)));
        }
        b.store("out", tidx(), v("x"));
        let mut k = b.finish();
        let tables = recombine_unrolled(&mut k, 3);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].values, vec![2, 6, 7, 9]);
        let src = np_kernel_ir::printer::print_kernel(&k);
        assert!(src.contains("for (int __unroll_i0 = 0; __unroll_i0 < 4"), "{src}");
        assert!(src.contains("__unroll_tab0_0[__unroll_i0]"), "{src}");
    }

    #[test]
    fn recombined_kernel_is_functionally_identical() {
        use np_exec::{launch, Args, SimOptions};
        use np_gpu_sim::DeviceConfig;

        let build = || {
            let mut b = KernelBuilder::new("k", 32);
            b.param_global_f32("a");
            b.param_global_f32("out");
            b.decl_f32("x", f(0.0));
            for idx in [2, 6, 7, 9] {
                b.assign("x", v("x") + load("a", i(idx)));
            }
            b.store("out", tidx(), v("x"));
            b.finish()
        };
        let dev = DeviceConfig::small_test();
        let a: Vec<f32> = (0..16).map(|x| x as f32).collect();

        let base = build();
        let mut args = Args::new().buf_f32("a", a.clone()).buf_f32("out", vec![0.0; 32]);
        launch(&dev, &base, np_kernel_ir::Dim3::x1(1), &mut args, &SimOptions::full()).unwrap();
        let want = args.get_f32("out").unwrap().to_vec();

        let mut rolled = build();
        let tables = recombine_unrolled(&mut rolled, 3);
        let mut args2 = Args::new().buf_f32("a", a).buf_f32("out", vec![0.0; 32]);
        for t in &tables {
            args2 = args2.buf_i32(&t.name, t.values.clone());
        }
        launch(&dev, &rolled, np_kernel_ir::Dim3::x1(1), &mut args2, &SimOptions::full())
            .unwrap();
        assert_eq!(args2.get_f32("out").unwrap(), &want[..]);
    }

    #[test]
    fn short_runs_and_mismatched_shapes_are_left_alone() {
        let mut b = KernelBuilder::new("k", 32);
        b.param_global_f32("a");
        b.param_global_f32("out");
        b.decl_f32("x", f(0.0));
        b.assign("x", v("x") + load("a", i(2)));
        b.assign("x", v("x") * load("a", i(6))); // different operator
        b.store("out", tidx(), v("x"));
        let mut k = b.finish();
        let before = k.clone();
        let tables = recombine_unrolled(&mut k, 3);
        assert!(tables.is_empty());
        assert_eq!(k, before);
    }

    #[test]
    fn multiple_varying_literals_get_parallel_tables() {
        // out[1] = a[2]; out[5] = a[6]; out[9] = a[7]; out[13] = a[9];
        let mut b = KernelBuilder::new("k", 32);
        b.param_global_f32("a");
        b.param_global_f32("out");
        for (o, idx) in [(1, 2), (5, 6), (9, 7), (13, 9)] {
            b.store("out", i(o), load("a", i(idx)));
        }
        let mut k = b.finish();
        let tables = recombine_unrolled(&mut k, 4);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].values, vec![1, 5, 9, 13]);
        assert_eq!(tables[1].values, vec![2, 6, 7, 9]);
    }
}
