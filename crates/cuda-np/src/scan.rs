//! Program slicing for scan variables (Section 3.2's scan support).
//!
//! A `scan(+:v)` loop is parallelized in three phases: each slave first
//! computes the *total* increment of its contiguous chunk, the totals are
//! exclusively scanned across the slave group, and the original body then
//! runs with `v` pre-offset. Phase 1 needs a copy of the loop body reduced
//! to just the statements that produce `v`'s increments — the *slice*.
//!
//! Supported shape: every assignment to `v` inside the body is
//! `v = v + e` (or `v = e + v`) with `e` independent of `v`; the slice is
//! the backward closure of the `e`s over the body's own definitions.

use crate::options::TransformError;
use np_kernel_ir::expr::{BinOp, Expr};
use np_kernel_ir::stmt::Stmt;
use std::collections::BTreeSet;

/// Extract the increment expression from an additive update of `var`:
/// the assignment's value is flattened over top-level `+` nodes; exactly
/// one addend must be the bare `var`, and the remaining addends form the
/// increment (`v = v + a + b` → `a + b`).
fn increment_of(value: &Expr, var: &str) -> Option<Expr> {
    fn addends<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        if let Expr::Binary(BinOp::Add, a, b) = e {
            addends(a, out);
            addends(b, out);
        } else {
            out.push(e);
        }
    }
    let mut terms = Vec::new();
    addends(value, &mut terms);
    let var_terms =
        terms.iter().filter(|t| matches!(t, Expr::Var(n) if n == var)).count();
    if var_terms != 1 || terms.len() < 2 {
        return None;
    }
    let rest: Vec<Expr> = terms
        .into_iter()
        .filter(|t| !matches!(t, Expr::Var(n) if n == var))
        .cloned()
        .collect();
    rest.into_iter().reduce(|a, b| a + b)
}

fn expr_reads(e: &Expr, out: &mut BTreeSet<String>) {
    e.visit(&mut |e| {
        if let Expr::Var(n) = e {
            out.insert(n.clone());
        }
    });
}

/// Compute the set of variables the slice needs, or fail if `var` is
/// updated in an unsupported way.
fn needed_vars(body: &[Stmt], var: &str) -> Result<BTreeSet<String>, TransformError> {
    // Seed: the reads of every increment expression.
    let mut needed: BTreeSet<String> = BTreeSet::new();
    let mut ok = true;
    collect_increment_reads(body, var, &mut needed, &mut ok);
    if !ok {
        return Err(TransformError::ScanNotSliceable(var.to_string()));
    }
    if needed.contains(var) {
        return Err(TransformError::ScanNotSliceable(var.to_string()));
    }
    // Close over definitions inside the body (fixpoint; bodies are small).
    loop {
        let before = needed.len();
        close_once(body, &mut needed);
        if needed.len() == before {
            break;
        }
    }
    if needed.contains(var) {
        return Err(TransformError::ScanNotSliceable(var.to_string()));
    }
    Ok(needed)
}

fn collect_increment_reads(
    body: &[Stmt],
    var: &str,
    needed: &mut BTreeSet<String>,
    ok: &mut bool,
) {
    for s in body {
        match s {
            Stmt::Assign { name, value } if name == var => match increment_of(value, var) {
                Some(e) => expr_reads(&e, needed),
                None => *ok = false,
            },
            Stmt::DeclScalar { name, .. } if name == var => *ok = false,
            Stmt::If { cond, then_body, else_body } => {
                // Conditional increments require the condition too.
                let mut inner = BTreeSet::new();
                let mut inner_ok = true;
                collect_increment_reads(then_body, var, &mut inner, &mut inner_ok);
                collect_increment_reads(else_body, var, &mut inner, &mut inner_ok);
                if !inner_ok {
                    *ok = false;
                }
                if !inner.is_empty() {
                    expr_reads(cond, needed);
                    needed.append(&mut inner);
                }
            }
            Stmt::For { body: b, var: iv, init, bound, .. } => {
                let mut inner = BTreeSet::new();
                let mut inner_ok = true;
                collect_increment_reads(b, var, &mut inner, &mut inner_ok);
                if !inner_ok {
                    *ok = false;
                }
                if !inner.is_empty() {
                    expr_reads(init, needed);
                    expr_reads(bound, needed);
                    needed.insert(iv.clone());
                    needed.append(&mut inner);
                }
            }
            _ => {}
        }
    }
}

fn close_once(body: &[Stmt], needed: &mut BTreeSet<String>) {
    for s in body {
        match s {
            Stmt::Assign { name, value } | Stmt::DeclScalar { name, init: Some(value), .. }
                if needed.contains(name) =>
            {
                expr_reads(value, needed);
            }
            Stmt::If { cond, then_body, else_body } => {
                let writes_needed = [then_body, else_body].iter().any(|b| {
                    np_kernel_ir::analysis::scalars_written(b)
                        .iter()
                        .any(|w| needed.contains(w))
                });
                if writes_needed {
                    expr_reads(cond, needed);
                }
                close_once(then_body, needed);
                close_once(else_body, needed);
            }
            Stmt::For { body: b, init, bound, var, .. } => {
                let writes_needed = np_kernel_ir::analysis::scalars_written(b)
                    .iter()
                    .any(|w| needed.contains(w));
                if writes_needed {
                    expr_reads(init, needed);
                    expr_reads(bound, needed);
                    needed.insert(var.clone());
                }
                close_once(b, needed);
            }
            _ => {}
        }
    }
}

fn slice_stmts(body: &[Stmt], var: &str, tot: &str, needed: &BTreeSet<String>) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in body {
        match s {
            Stmt::Assign { name, value } if name == var => {
                let e = increment_of(value, var).expect("validated by needed_vars");
                out.push(Stmt::Assign {
                    name: tot.to_string(),
                    value: Expr::Var(tot.to_string()) + e,
                });
            }
            Stmt::Assign { name, .. } if needed.contains(name) => out.push(s.clone()),
            Stmt::DeclScalar { name, .. } if needed.contains(name) => out.push(s.clone()),
            Stmt::If { cond, then_body, else_body } => {
                let t = slice_stmts(then_body, var, tot, needed);
                let e = slice_stmts(else_body, var, tot, needed);
                if !t.is_empty() || !e.is_empty() {
                    out.push(Stmt::If {
                        cond: cond.clone(),
                        then_body: t,
                        else_body: e,
                    });
                }
            }
            Stmt::For { var: iv, init, bound, step, body: b, .. } => {
                let inner = slice_stmts(b, var, tot, needed);
                if !inner.is_empty() {
                    out.push(Stmt::For {
                        var: iv.clone(),
                        init: init.clone(),
                        bound: bound.clone(),
                        step: step.clone(),
                        body: inner,
                        pragma: None,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Produce the phase-1 slice: a copy of `body` computing only `tot += e`
/// for every `var = var + e` in the original, plus whatever feeds the `e`s.
pub fn scan_slice(body: &[Stmt], var: &str, tot: &str) -> Result<Vec<Stmt>, TransformError> {
    let needed = needed_vars(body, var)?;
    Ok(slice_stmts(body, var, tot, &needed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;

    #[test]
    fn slices_simple_increment() {
        let body = vec![
            Stmt::DeclScalar { name: "d".into(), ty: np_kernel_ir::Scalar::F32,
                init: Some(load("a", v("i"))) },
            Stmt::Assign { name: "acc".into(), value: v("acc") + v("d") },
            Stmt::Store { array: "out".into(), index: v("i"), value: v("acc") },
        ];
        let slice = scan_slice(&body, "acc", "tot").unwrap();
        assert_eq!(slice.len(), 2, "store of acc is dropped: {slice:?}");
        assert!(matches!(&slice[1], Stmt::Assign { name, .. } if name == "tot"));
    }

    #[test]
    fn rejects_non_additive_updates() {
        let body = vec![Stmt::Assign { name: "acc".into(), value: v("acc") * f(2.0) }];
        assert!(matches!(
            scan_slice(&body, "acc", "tot"),
            Err(TransformError::ScanNotSliceable(_))
        ));
    }

    #[test]
    fn rejects_increments_that_read_the_scan_var() {
        // acc = acc + (acc * 0.5) — e depends on acc.
        let body = vec![Stmt::Assign {
            name: "acc".into(),
            value: v("acc") + v("acc") * f(0.5),
        }];
        assert!(scan_slice(&body, "acc", "tot").is_err());
    }

    #[test]
    fn rejects_increments_via_tainted_chain() {
        // d = acc * 2; acc = acc + d — indirectly self-dependent.
        let body = vec![
            Stmt::Assign { name: "d".into(), value: v("acc") * f(2.0) },
            Stmt::Assign { name: "acc".into(), value: v("acc") + v("d") },
        ];
        assert!(scan_slice(&body, "acc", "tot").is_err());
    }

    #[test]
    fn conditional_increment_keeps_condition() {
        let body = vec![Stmt::If {
            cond: lt(v("i"), i(10)),
            then_body: vec![Stmt::Assign { name: "acc".into(), value: v("acc") + f(1.0) }],
            else_body: vec![],
        }];
        let slice = scan_slice(&body, "acc", "tot").unwrap();
        assert!(matches!(&slice[0], Stmt::If { .. }));
    }

    #[test]
    fn unrelated_statements_are_dropped() {
        let body = vec![
            Stmt::Assign { name: "unrelated".into(), value: f(3.0) },
            Stmt::Store { array: "g".into(), index: v("i"), value: v("unrelated") },
            Stmt::Assign { name: "acc".into(), value: v("acc") + load("a", v("i")) },
        ];
        let slice = scan_slice(&body, "acc", "tot").unwrap();
        assert_eq!(slice.len(), 1);
    }
}
