//! Content-addressed result cache with self-verifying entries.
//!
//! Keys are a pure function of `(canonical kernel source, transform
//! config, sim config)` — the three inputs that determine a deterministic
//! simulation's report — so identical requests hash identically across
//! reruns and processes, and any semantic change to a request moves it to
//! a different key (the property suite proves both directions).
//!
//! Every entry stores a checksum of its payload taken at insert time. A
//! lookup re-hashes the stored bytes first: a corrupted entry (chaos mode
//! flips bytes on purpose; a real deployment fears partial writes and
//! bit rot) is *detected, evicted, and reported as a miss*, so the caller
//! transparently recomputes instead of serving garbage.

use std::collections::HashMap;

/// 64-bit FNV-1a. Stable across platforms and runs — cache keys and
/// checksums must never depend on the process (unlike `DefaultHasher`,
/// which is seeded per process). Re-exported from the shared `np-obs`
/// home so the stack has exactly one FNV.
pub use np_obs::fnv::fnv64;

/// A content address. The three components are hashed with an explicit
/// field tag and a length prefix each, so no concatenation of one field
/// can masquerade as another (`"ab" + "c"` vs `"a" + "bc"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u64);

pub fn cache_key(kernel_canon: &str, transform_config: &str, sim_config: &str) -> CacheKey {
    let mut buf = Vec::with_capacity(kernel_canon.len() + 64);
    for (tag, field) in
        [(b'K', kernel_canon), (b'T', transform_config), (b'S', sim_config)]
    {
        buf.push(tag);
        buf.extend_from_slice(&(field.len() as u64).to_le_bytes());
        buf.extend_from_slice(field.as_bytes());
    }
    CacheKey(fnv64(&buf))
}

struct Entry {
    payload: String,
    /// `fnv64` of `payload` at insert time.
    checksum: u64,
    hits: u64,
}

/// What one lookup found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup {
    /// Verified entry; the payload is byte-identical to what was inserted.
    Hit(String),
    Miss,
    /// The entry's bytes no longer match its checksum: it has been evicted
    /// and the caller must recompute (and re-insert).
    CorruptEvicted,
}

/// Bounded in-memory content-addressed cache. FIFO eviction — serve-mode
/// entries are all roughly the same cost to recompute, so recency
/// machinery would buy little over the bound itself.
pub struct Cache {
    map: HashMap<u64, Entry>,
    /// Insertion order for FIFO eviction.
    order: Vec<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
    corrupt_evicted: u64,
}

impl Cache {
    pub fn new(capacity: usize) -> Self {
        Cache {
            map: HashMap::new(),
            order: Vec::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            corrupt_evicted: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters: (verified hits, misses, corrupt evictions).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.corrupt_evicted)
    }

    /// Look `key` up, verifying the entry's checksum before serving it.
    pub fn lookup(&mut self, key: CacheKey) -> Lookup {
        match self.map.get_mut(&key.0) {
            None => {
                self.misses += 1;
                Lookup::Miss
            }
            Some(e) if fnv64(e.payload.as_bytes()) == e.checksum => {
                e.hits += 1;
                self.hits += 1;
                Lookup::Hit(e.payload.clone())
            }
            Some(_) => {
                self.map.remove(&key.0);
                self.order.retain(|k| *k != key.0);
                self.corrupt_evicted += 1;
                self.misses += 1;
                Lookup::CorruptEvicted
            }
        }
    }

    /// Insert (or replace) the payload for `key`, evicting FIFO when full.
    pub fn insert(&mut self, key: CacheKey, payload: String) {
        if self.map.contains_key(&key.0) {
            self.order.retain(|k| *k != key.0);
        } else if self.map.len() >= self.capacity {
            let oldest = self.order.remove(0);
            self.map.remove(&oldest);
        }
        let checksum = fnv64(payload.as_bytes());
        self.map.insert(key.0, Entry { payload, checksum, hits: 0 });
        self.order.push(key.0);
    }

    /// Drop `key`'s entry (used when a payload passes the cache checksum
    /// but fails a caller-side integrity check, e.g. a capture artifact
    /// whose codec digest does not verify). Counted as a corrupt eviction.
    pub fn evict(&mut self, key: CacheKey) {
        if self.map.remove(&key.0).is_some() {
            self.order.retain(|k| *k != key.0);
            self.corrupt_evicted += 1;
        }
    }

    /// Chaos/test hook: XOR one byte of a stored payload *without* fixing
    /// its checksum, exactly what bit rot or a torn write would do. `nth`
    /// picks among current entries (insertion order); returns the key it
    /// hit, or `None` when the cache is empty.
    pub fn corrupt_nth(&mut self, nth: usize, byte_xor: u8) -> Option<CacheKey> {
        if self.order.is_empty() {
            return None;
        }
        let key = self.order[nth % self.order.len()];
        let e = self.map.get_mut(&key).expect("order tracks map");
        if e.payload.is_empty() {
            return None;
        }
        let pos = nth % e.payload.len();
        // Work in bytes; keep the String valid UTF-8 by staying ASCII.
        let mut bytes = std::mem::take(&mut e.payload).into_bytes();
        bytes[pos] = (bytes[pos] ^ byte_xor) & 0x7F;
        e.payload = String::from_utf8(bytes).expect("ASCII flip keeps UTF-8 valid");
        Some(CacheKey(key))
    }

    /// The shutdown-flushed index: every key with its checksum, payload
    /// size, and hit count, sorted by key so the document is deterministic
    /// for a given cache state.
    pub fn index_json(&self) -> String {
        let mut keys: Vec<u64> = self.map.keys().copied().collect();
        keys.sort_unstable();
        let mut s = format!(
            "{{\"schema\":\"np-serve-cache-index-v1\",\"entries\":{},\
             \"hits\":{},\"misses\":{},\"corrupt_evicted\":{},\"index\":[",
            self.map.len(),
            self.hits,
            self.misses,
            self.corrupt_evicted
        );
        for (i, k) in keys.iter().enumerate() {
            let e = &self.map[k];
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"key\":\"{k:016x}\",\"checksum\":\"{:016x}\",\"bytes\":{},\"hits\":{}}}",
                e.checksum,
                e.payload.len(),
                e.hits
            ));
        }
        s.push_str("]}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_stable_and_field_tagged() {
        let k = cache_key("kern", "tcfg", "scfg");
        assert_eq!(k, cache_key("kern", "tcfg", "scfg"), "pure function of inputs");
        // Moving bytes across field boundaries must change the key.
        assert_ne!(cache_key("ab", "c", "d"), cache_key("a", "bc", "d"));
        assert_ne!(cache_key("a", "bc", "d"), cache_key("a", "b", "cd"));
        assert_ne!(cache_key("", "x", ""), cache_key("x", "", ""));
    }

    #[test]
    fn hit_returns_inserted_bytes_exactly() {
        let mut c = Cache::new(8);
        let k = cache_key("k", "t", "s");
        assert_eq!(c.lookup(k), Lookup::Miss);
        c.insert(k, "{\"cycles\":42}".to_string());
        assert_eq!(c.lookup(k), Lookup::Hit("{\"cycles\":42}".to_string()));
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn corruption_is_detected_evicted_and_recomputable() {
        let mut c = Cache::new(8);
        let k = cache_key("k", "t", "s");
        c.insert(k, "{\"cycles\":42}".to_string());
        assert!(c.corrupt_nth(0, 0x41).is_some());
        assert_eq!(c.lookup(k), Lookup::CorruptEvicted, "bad bytes must never be served");
        assert_eq!(c.len(), 0, "the corrupt entry is gone");
        // Recompute path: a fresh insert serves verified again.
        c.insert(k, "{\"cycles\":42}".to_string());
        assert_eq!(c.lookup(k), Lookup::Hit("{\"cycles\":42}".to_string()));
        let (_, _, corrupt) = c.stats();
        assert_eq!(corrupt, 1);
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let mut c = Cache::new(2);
        let keys: Vec<CacheKey> =
            (0..3).map(|i| cache_key(&format!("k{i}"), "t", "s")).collect();
        for (i, k) in keys.iter().enumerate() {
            c.insert(*k, format!("p{i}"));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(keys[0]), Lookup::Miss, "oldest entry evicted first");
        assert_eq!(c.lookup(keys[2]), Lookup::Hit("p2".to_string()));
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut c = Cache::new(2);
        let k = cache_key("k", "t", "s");
        c.insert(k, "v1".to_string());
        c.insert(k, "v2".to_string());
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(k), Lookup::Hit("v2".to_string()));
    }

    #[test]
    fn index_json_is_deterministic_and_lists_entries() {
        let mut c = Cache::new(8);
        c.insert(cache_key("a", "t", "s"), "pay-a".to_string());
        c.insert(cache_key("b", "t", "s"), "pay-b".to_string());
        let a = c.index_json();
        assert_eq!(a, c.index_json());
        assert!(a.contains("\"entries\":2"), "{a}");
        assert!(a.contains("np-serve-cache-index-v1"), "{a}");
        assert_eq!(a.matches("\"key\":").count(), 2);
    }
}
