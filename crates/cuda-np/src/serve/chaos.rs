//! Seeded chaos for the serve loop, in the mold of
//! `np_gpu_sim::mem::inject`: every decision is a pure function of
//! `(seed, job sequence number)`, so a chaos soak is exactly reproducible
//! from its seed — the same jobs get delayed, panicked, hardware-faulted,
//! and the same cache entries get corrupted, run after run.
//!
//! Four hazards, mirroring what a long-running batch service actually
//! meets: scheduling **delay** (latency tails), worker **panics**
//! (poisoned kernels / compiler bugs), transient **hardware faults**
//! (surfaced through the existing seeded memory injector as typed
//! `Injected` sim faults), and cache **corruption** (bit rot — which the
//! checksummed cache must catch rather than serve).

use np_gpu_sim::mem::inject::{InjectConfig, InjectSpace};

/// Chaos rates. A rate of `0` disables that hazard.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    pub seed: u64,
    /// Delay roughly one job in this many...
    pub delay_one_in: u64,
    /// ...by up to this many milliseconds.
    pub delay_max_ms: u64,
    /// Panic the worker on roughly one job in this many.
    pub panic_one_in: u64,
    /// Arm forced memory-fault injection on roughly one job in this many.
    pub fault_one_in: u64,
    /// After roughly one job in this many, flip a byte of some cache entry.
    pub corrupt_one_in: u64,
}

impl ChaosConfig {
    /// The soak-test mix: every hazard armed at rates that exercise each
    /// path many times over a 30-second run without drowning the service.
    pub fn standard(seed: u64) -> Self {
        ChaosConfig {
            seed,
            delay_one_in: 4,
            delay_max_ms: 15,
            panic_one_in: 19,
            fault_one_in: 11,
            corrupt_one_in: 7,
        }
    }
}

/// What chaos decreed for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Sleep this long before running the job.
    pub delay_ms: Option<u64>,
    /// Panic instead of running the job (caught by the worker's
    /// `catch_unwind`; must become a typed `panicked` response).
    pub panic: bool,
    /// Arm the simulator's seeded fault injector for this launch (forced
    /// faults only — bit flips would change functional output, which must
    /// never be cached as a clean result).
    pub inject: Option<InjectConfig>,
    /// After the job completes, corrupt one byte of some cache entry.
    pub corrupt_cache: bool,
}

impl ChaosPlan {
    /// No chaos (what every job gets when chaos mode is off).
    pub fn none() -> Self {
        ChaosPlan { delay_ms: None, panic: false, inject: None, corrupt_cache: false }
    }
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Decide one job's fate. Pure: `(cfg, seq) -> plan`, independent of
/// thread interleaving, wall clock, or prior calls. Hazards are decided
/// independently (a job can be both delayed and panicked).
pub fn plan(cfg: &ChaosConfig, seq: u64) -> ChaosPlan {
    let h = |salt: u64| mix(cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seq.wrapping_add(salt));
    let hits = |salt: u64, one_in: u64| one_in != 0 && h(salt) % one_in == 0;
    ChaosPlan {
        delay_ms: if hits(0x44, cfg.delay_one_in) && cfg.delay_max_ms > 0 {
            Some(h(0x45) % cfg.delay_max_ms + 1)
        } else {
            None
        },
        panic: hits(0x50, cfg.panic_one_in),
        inject: if hits(0x46, cfg.fault_one_in) {
            // Seed the memory injector from the job sequence so different
            // jobs fault at different accesses, still reproducibly.
            Some(InjectConfig::forced(cfg.seed ^ seq, 64, InjectSpace::Global))
        } else {
            None
        },
        corrupt_cache: hits(0x43, cfg.corrupt_one_in),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_seed_and_seq() {
        let cfg = ChaosConfig::standard(42);
        for seq in 0..200 {
            assert_eq!(plan(&cfg, seq), plan(&cfg, seq));
        }
        let other = ChaosConfig::standard(43);
        assert_ne!(
            (0..200).map(|s| plan(&cfg, s)).collect::<Vec<_>>(),
            (0..200).map(|s| plan(&other, s)).collect::<Vec<_>>(),
            "different seeds must differ somewhere"
        );
    }

    #[test]
    fn standard_mix_exercises_every_hazard() {
        let cfg = ChaosConfig::standard(7);
        let plans: Vec<ChaosPlan> = (0..500).map(|s| plan(&cfg, s)).collect();
        assert!(plans.iter().any(|p| p.delay_ms.is_some()));
        assert!(plans.iter().any(|p| p.panic));
        assert!(plans.iter().any(|p| p.inject.is_some()));
        assert!(plans.iter().any(|p| p.corrupt_cache));
        // ... but most jobs run clean.
        let clean = plans.iter().filter(|p| **p == ChaosPlan::none()).count();
        assert!(clean > 200, "only {clean}/500 clean");
    }

    #[test]
    fn zero_rates_disable_hazards() {
        let cfg = ChaosConfig {
            seed: 1,
            delay_one_in: 0,
            delay_max_ms: 10,
            panic_one_in: 0,
            fault_one_in: 0,
            corrupt_one_in: 0,
        };
        for seq in 0..300 {
            assert_eq!(plan(&cfg, seq), ChaosPlan::none());
        }
    }

    #[test]
    fn delays_respect_the_cap() {
        let cfg = ChaosConfig { delay_one_in: 1, delay_max_ms: 5, ..ChaosConfig::standard(3) };
        for seq in 0..300 {
            if let Some(ms) = plan(&cfg, seq).delay_ms {
                assert!((1..=5).contains(&ms), "{ms}");
            }
        }
    }
}
