//! The built-in client driver: retry-with-backoff submission, and the
//! seeded chaos soak that proves the service's two headline invariants
//! under fire —
//!
//! 1. **exactly-once**: every submission receives exactly one terminal
//!    response (`lost == 0`), and no worker dies to an uncaught panic;
//! 2. **byte-identity**: every `ok` payload for a given request identity
//!    is byte-identical, whether it came from a cold compute or a cache
//!    hit (`byte_mismatches == 0`) — corruption chaos must be absorbed by
//!    the checksummed cache, never served.

use super::proto::{Response, Status};
use super::server::Server;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Client-side retry schedule for `retryable` responses: exponential
/// backoff from `base_ms`, capped at `cap_ms`, never below the server's
/// `retry_after_ms` hint.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    pub max_attempts: u32,
    pub base_ms: u64,
    pub cap_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 5, base_ms: 5, cap_ms: 100 }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempt + 1` (0-based), honoring `hint_ms`.
    pub fn backoff_ms(&self, attempt: u32, hint_ms: Option<u64>) -> u64 {
        let exp = self.base_ms.saturating_mul(1u64 << attempt.min(16)).min(self.cap_ms);
        exp.max(hint_ms.unwrap_or(0))
    }
}

/// How one logical request (possibly several attempts) ended.
#[derive(Debug)]
pub enum Delivery {
    /// A terminal response, after `attempts` submissions.
    Done { resp: Response, attempts: u32 },
    /// Still retryable when the attempt budget ran out; the last response.
    GaveUp { last: Response, attempts: u32 },
    /// A submission got no response at all — the exactly-once invariant
    /// broke (or the server wedged past the grace timeout).
    Lost { attempts: u32 },
}

/// Submit `line` until it reaches a terminal, non-retryable outcome or the
/// policy's attempt budget runs out. Each attempt is a fresh submission
/// (the server treats it as a new job; exactly-once is per submission).
pub fn submit_with_retry(server: &Server, line: &str, policy: &RetryPolicy) -> Delivery {
    let (tx, rx) = channel();
    let mut attempt = 0u32;
    loop {
        server.submit(line, &tx);
        attempt += 1;
        let resp = match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(r) => r,
            Err(_) => return Delivery::Lost { attempts: attempt },
        };
        if !resp.retryable {
            return Delivery::Done { resp, attempts: attempt };
        }
        if attempt >= policy.max_attempts {
            return Delivery::GaveUp { last: resp, attempts: attempt };
        }
        server.note_retry();
        std::thread::sleep(Duration::from_millis(
            policy.backoff_ms(attempt - 1, resp.retry_after_ms),
        ));
    }
}

/// Soak parameters. The request stream is a pure function of `seed`, so a
/// failing soak replays exactly from its seed.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    pub seed: u64,
    pub clients: usize,
    pub duration: Duration,
    pub retry: RetryPolicy,
}

/// Aggregated soak outcome. `passed()` is the CI gate.
#[derive(Debug, Default)]
pub struct SoakReport {
    /// Logical requests driven to an outcome.
    pub requests: u64,
    /// Raw submissions (requests plus retries).
    pub submissions: u64,
    pub ok: u64,
    pub ok_cached: u64,
    pub gave_up: u64,
    /// Submissions that received no response: must be 0.
    pub lost: u64,
    /// `ok` payloads that differed from an earlier payload of the same
    /// request identity: must be 0.
    pub byte_mismatches: u64,
    /// Terminal statuses by wire name, for the soak log.
    pub statuses: Vec<(String, u64)>,
    /// Workers killed by uncaught panics: must be 0.
    pub worker_panics: usize,
    /// The server's final counters (latency percentiles, hit/shed/retry).
    pub snapshot: Option<super::metrics::Snapshot>,
    /// The flushed cache index document.
    pub cache_index: String,
}

impl SoakReport {
    pub fn passed(&self) -> bool {
        self.lost == 0 && self.byte_mismatches == 0 && self.worker_panics == 0 && self.ok > 0
    }

    pub fn summary(&self) -> String {
        let statuses: Vec<String> =
            self.statuses.iter().map(|(s, n)| format!("{s}={n}")).collect();
        format!(
            "soak: {} requests / {} submissions, ok={} (cached {}), gave_up={}, \
             lost={}, byte_mismatches={}, worker_panics={} [{}]",
            self.requests,
            self.submissions,
            self.ok,
            self.ok_cached,
            self.gave_up,
            self.lost,
            self.byte_mismatches,
            self.worker_panics,
            statuses.join(" ")
        )
    }
}

/// One synthetic kernel per variant index: Figure-2 TMV with a
/// variant-specific accumulator seed, so variants hash to distinct cache
/// keys but all terminate quickly at test scale.
pub fn variant_kernel(v: u64) -> String {
    format!(
        "\n// blockDim = (32, 1, 1)\n\
         __global__ void tmv{v}(float* a, float* b, float* c, int w, int h) {{\n\
         \x20 float sum = {v}.0f;\n\
         \x20 int tx = threadIdx.x + blockIdx.x * blockDim.x;\n\
         \x20 #pragma np parallel for reduction(+:sum)\n\
         \x20 for (int i = 0; i < h; i++) {{\n\
         \x20   sum += a[i * w + tx] * b[i];\n\
         \x20 }}\n\
         \x20 c[tx] = sum;\n\
         }}\n"
    )
}

/// One seeded request: returns `(identity, jsonl_line)`. The identity
/// captures everything that determines the result payload — any two `ok`
/// payloads with the same identity must be byte-identical.
fn gen_request(rng: &mut SmallRng, client: usize, n: u64) -> (String, String) {
    // Variants roll forward in generations of four: dense enough for
    // plenty of cache hits within a generation, but chaos-quarantined
    // kernels age out instead of starving the whole soak of clean work.
    let v = (n / 48) * 4 + rng.gen_range(0..4);
    let slave = [2u64, 4][rng.gen_range(0..2) as usize];
    let grid = [2u64, 4][rng.gen_range(0..2) as usize];
    let tune = rng.gen_bool(0.08);
    // A dead deadline now and then exercises the queue-expiry path.
    let deadline = if rng.gen_bool(0.05) { Some(0u64) } else { None };
    let identity = if tune {
        format!("v{v};tune;grid={grid}")
    } else {
        format!("v{v};transform;slave={slave};grid={grid}")
    };
    let mut line = format!(
        "{{\"id\":\"c{client}-{n}\",\"kernel\":\"{}\",\"grid\":{grid}",
        super::json::escape(&variant_kernel(v))
    );
    if tune {
        line.push_str(",\"mode\":\"tune\"");
    } else {
        line.push_str(&format!(",\"slave_size\":{slave}"));
    }
    if let Some(d) = deadline {
        line.push_str(&format!(",\"deadline_ms\":{d}"));
    }
    line.push('}');
    (identity, line)
}

/// Run the chaos soak: `clients` seeded request streams hammer `server`
/// for `duration`, with retries, while chaos (armed in the server's
/// config) delays, panics, faults, and corrupts. Drains the server and
/// folds its shutdown report in.
pub fn soak(server: Arc<Server>, cfg: &SoakConfig) -> SoakReport {
    // identity -> first ok payload seen; later payloads must match it.
    let canon: Arc<Mutex<HashMap<String, String>>> = Arc::new(Mutex::new(HashMap::new()));
    let report = Arc::new(Mutex::new(SoakReport::default()));
    let start = Instant::now();

    let threads: Vec<_> = (0..cfg.clients.max(1))
        .map(|c| {
            let server = Arc::clone(&server);
            let canon = Arc::clone(&canon);
            let report = Arc::clone(&report);
            let policy = cfg.retry.clone();
            let duration = cfg.duration;
            let mut rng = SmallRng::seed_from_u64(
                cfg.seed ^ (c as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            );
            std::thread::spawn(move || {
                let mut n = 0u64;
                while start.elapsed() < duration {
                    let (identity, line) = gen_request(&mut rng, c, n);
                    n += 1;
                    let outcome = submit_with_retry(&server, &line, &policy);
                    let mut rep = report.lock().unwrap();
                    rep.requests += 1;
                    match outcome {
                        Delivery::Done { resp, attempts } => {
                            rep.submissions += attempts as u64;
                            let name = resp.status.as_str().to_string();
                            match rep.statuses.iter_mut().find(|(s, _)| *s == name) {
                                Some((_, cnt)) => *cnt += 1,
                                None => rep.statuses.push((name, 1)),
                            }
                            if resp.status == Status::Ok {
                                rep.ok += 1;
                                if resp.cached {
                                    rep.ok_cached += 1;
                                }
                                let payload = resp.payload.unwrap_or_default();
                                let mut seen = canon.lock().unwrap();
                                match seen.get(&identity) {
                                    Some(first) if *first != payload => {
                                        rep.byte_mismatches += 1
                                    }
                                    Some(_) => {}
                                    None => {
                                        seen.insert(identity, payload);
                                    }
                                }
                            }
                        }
                        Delivery::GaveUp { attempts, .. } => {
                            rep.submissions += attempts as u64;
                            rep.gave_up += 1;
                        }
                        Delivery::Lost { attempts } => {
                            rep.submissions += attempts as u64;
                            rep.lost += 1;
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }

    let end = server.shutdown();
    let mut rep = std::mem::take(&mut *report.lock().unwrap());
    rep.worker_panics = end.worker_panics;
    rep.snapshot = Some(end.snapshot);
    rep.cache_index = end.cache_index;
    rep.statuses.sort();
    rep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_honors_hints() {
        let p = RetryPolicy { max_attempts: 5, base_ms: 5, cap_ms: 40 };
        assert_eq!(p.backoff_ms(0, None), 5);
        assert_eq!(p.backoff_ms(1, None), 10);
        assert_eq!(p.backoff_ms(2, None), 20);
        assert_eq!(p.backoff_ms(3, None), 40);
        assert_eq!(p.backoff_ms(10, None), 40, "capped");
        assert_eq!(p.backoff_ms(0, Some(33)), 33, "server hint wins when larger");
    }

    #[test]
    fn variant_kernels_parse_and_differ() {
        for v in 0..4 {
            let k = np_kernel_ir::parse_kernel(&variant_kernel(v)).expect("variant parses");
            assert!(k.has_pragma_loops());
        }
        assert_ne!(variant_kernel(0), variant_kernel(1));
    }

    #[test]
    fn request_stream_is_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        for n in 0..50 {
            assert_eq!(gen_request(&mut a, 1, n), gen_request(&mut b, 1, n));
        }
    }
}
