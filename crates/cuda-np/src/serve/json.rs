//! Minimal JSON reader/writer for the serve protocol.
//!
//! The workspace's serde shim is a no-op (see `shims/README.md`), so the
//! JSONL request stream is parsed by hand. This is a full little parser —
//! objects, arrays, strings with escapes, numbers, booleans, null — but
//! deliberately nothing more: no streaming, no borrowed slices, no
//! number-precision heroics beyond `f64`.

/// One parsed JSON value. Objects preserve key order (no hashing — the
/// protocol objects are tiny).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as u64, when it is a non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escape `s` as the *contents* of a JSON string literal (no surrounding
/// quotes). Control characters use `\u00XX`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed by this
                            // protocol; reject rather than mis-decode.
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("\\u{code:04x} is not a scalar value"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or(format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_objects() {
        let v = Json::parse(
            r#"{"id":"r-1","kernel":"__global__ void k() {}","slave_size":4,
                "deadline_ms":250,"tune":true,"tags":[1,2.5,null,false]}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("r-1"));
        assert_eq!(v.get("slave_size").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(v.get("tune").and_then(Json::as_bool), Some(true));
        let Json::Arr(tags) = v.get("tags").unwrap() else { panic!() };
        assert_eq!(tags.len(), 4);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash \u{1} é";
        let doc = format!("{{\"s\":\"{}\"}}", escape(nasty));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\" 1}", "tru", "\"x", "{} {}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn numbers_cover_integers_floats_and_negatives() {
        let v = Json::parse("[0, -3, 2.75, 1e3]").unwrap();
        let Json::Arr(xs) = v else { panic!() };
        assert_eq!(xs[0].as_u64(), Some(0));
        assert_eq!(xs[1].as_f64(), Some(-3.0));
        assert_eq!(xs[1].as_u64(), None, "negative numbers are not u64s");
        assert_eq!(xs[2].as_f64(), Some(2.75));
        assert_eq!(xs[3].as_u64(), Some(1000));
    }
}
