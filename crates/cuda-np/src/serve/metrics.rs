//! Serve-loop counters and latency aggregation.
//!
//! Counters are lock-free atomics bumped from worker threads; latencies
//! are appended under a short mutex (a `Vec<u64>` push — contention is
//! negligible next to a simulation). `snapshot()` freezes everything into
//! a plain struct, and `bench_json` renders the `BENCH_serve.json`
//! document the chaos soak and CI gate read.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

#[derive(Default)]
pub struct Metrics {
    pub submitted: AtomicU64,
    pub completed_ok: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_corrupt_evicted: AtomicU64,
    /// Result-cache misses answered by replaying a cached capture instead
    /// of re-interpreting the kernel (e.g. only the watchdog differed).
    pub trace_replays: AtomicU64,
    /// Cached capture artifacts dropped because their checksum or codec
    /// digest no longer verified.
    pub trace_corrupt_evicted: AtomicU64,
    pub shed_overloaded: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub faulted: AtomicU64,
    pub panicked: AtomicU64,
    pub quarantined_rejects: AtomicU64,
    pub rejected_malformed: AtomicU64,
    pub shutdown_rejects: AtomicU64,
    pub retries: AtomicU64,
    pub chaos_delays: AtomicU64,
    pub chaos_panics: AtomicU64,
    pub chaos_faults: AtomicU64,
    pub chaos_corruptions: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

/// A frozen view of the counters plus latency percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub submitted: u64,
    pub completed_ok: u64,
    pub cache_hits: u64,
    pub cache_corrupt_evicted: u64,
    pub trace_replays: u64,
    pub trace_corrupt_evicted: u64,
    pub shed_overloaded: u64,
    pub deadline_exceeded: u64,
    pub faulted: u64,
    pub panicked: u64,
    pub quarantined_rejects: u64,
    pub rejected_malformed: u64,
    pub shutdown_rejects: u64,
    pub retries: u64,
    pub chaos_delays: u64,
    pub chaos_panics: u64,
    pub chaos_faults: u64,
    pub chaos_corruptions: u64,
    pub answered: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request's end-to-end latency (admission to response).
    pub fn observe_latency_us(&self, us: u64) {
        self.latencies_us.lock().unwrap().push(us);
    }

    pub fn snapshot(&self) -> Snapshot {
        let mut lats = self.latencies_us.lock().unwrap().clone();
        lats.sort_unstable();
        // Nearest-rank percentile: the smallest value with at least p of
        // the distribution at or below it.
        let pct = |p: f64| -> u64 {
            if lats.is_empty() {
                return 0;
            }
            let rank = (p * lats.len() as f64).ceil() as usize;
            lats[rank.clamp(1, lats.len()) - 1]
        };
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        Snapshot {
            submitted: g(&self.submitted),
            completed_ok: g(&self.completed_ok),
            cache_hits: g(&self.cache_hits),
            cache_corrupt_evicted: g(&self.cache_corrupt_evicted),
            trace_replays: g(&self.trace_replays),
            trace_corrupt_evicted: g(&self.trace_corrupt_evicted),
            shed_overloaded: g(&self.shed_overloaded),
            deadline_exceeded: g(&self.deadline_exceeded),
            faulted: g(&self.faulted),
            panicked: g(&self.panicked),
            quarantined_rejects: g(&self.quarantined_rejects),
            rejected_malformed: g(&self.rejected_malformed),
            shutdown_rejects: g(&self.shutdown_rejects),
            retries: g(&self.retries),
            chaos_delays: g(&self.chaos_delays),
            chaos_panics: g(&self.chaos_panics),
            chaos_faults: g(&self.chaos_faults),
            chaos_corruptions: g(&self.chaos_corruptions),
            answered: lats.len() as u64,
            p50_us: pct(0.50),
            p99_us: pct(0.99),
            max_us: lats.last().copied().unwrap_or(0),
        }
    }
}

impl Snapshot {
    /// Render the `BENCH_serve.json` document.
    pub fn bench_json(&self, chaos_seed: Option<u64>, soak_secs: Option<u64>) -> String {
        let chaos = match chaos_seed {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        };
        let soak = match soak_secs {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"schema\":\"np-serve-bench-v1\",\"chaos_seed\":{chaos},\"soak_secs\":{soak},\
             \"requests\":{{\"submitted\":{},\"answered\":{},\"ok\":{},\"shed\":{},\
             \"deadline\":{},\"faulted\":{},\"panicked\":{},\"quarantined\":{},\
             \"malformed\":{},\"shutdown\":{},\"retries\":{}}},\
             \"cache\":{{\"hits\":{},\"corrupt_evicted\":{},\"trace_replays\":{},\
             \"trace_corrupt_evicted\":{}}},\
             \"chaos\":{{\"delays\":{},\"panics\":{},\"faults\":{},\"corruptions\":{}}},\
             \"latency_us\":{{\"p50\":{},\"p99\":{},\"max\":{}}}}}\n",
            self.submitted,
            self.answered,
            self.completed_ok,
            self.shed_overloaded,
            self.deadline_exceeded,
            self.faulted,
            self.panicked,
            self.quarantined_rejects,
            self.rejected_malformed,
            self.shutdown_rejects,
            self.retries,
            self.cache_hits,
            self.cache_corrupt_evicted,
            self.trace_replays,
            self.trace_corrupt_evicted,
            self.chaos_delays,
            self.chaos_panics,
            self.chaos_faults,
            self.chaos_corruptions,
            self.p50_us,
            self.p99_us,
            self.max_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_come_from_the_sorted_tail() {
        let m = Metrics::new();
        for us in (1..=100).rev() {
            m.observe_latency_us(us);
        }
        let s = m.snapshot();
        assert_eq!(s.answered, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn empty_metrics_render_zeroes_not_panics() {
        let s = Metrics::new().snapshot();
        assert_eq!((s.p50_us, s.p99_us, s.max_us, s.answered), (0, 0, 0, 0));
        let doc = s.bench_json(None, None);
        assert!(doc.contains("\"chaos_seed\":null"), "{doc}");
        assert!(doc.contains("\"p50\":0"), "{doc}");
    }

    #[test]
    fn bench_json_carries_counters_and_seed() {
        let m = Metrics::new();
        Metrics::bump(&m.submitted);
        Metrics::bump(&m.submitted);
        Metrics::bump(&m.completed_ok);
        Metrics::bump(&m.shed_overloaded);
        Metrics::bump(&m.cache_hits);
        m.observe_latency_us(1234);
        let doc = m.snapshot().bench_json(Some(42), Some(30));
        assert!(doc.contains("\"schema\":\"np-serve-bench-v1\""), "{doc}");
        assert!(doc.contains("\"chaos_seed\":42"), "{doc}");
        assert!(doc.contains("\"soak_secs\":30"), "{doc}");
        assert!(doc.contains("\"submitted\":2"), "{doc}");
        assert!(doc.contains("\"shed\":1"), "{doc}");
        assert!(doc.contains("\"hits\":1"), "{doc}");
        assert!(doc.contains("\"p50\":1234"), "{doc}");
        // Single line: JSONL-safe.
        assert_eq!(doc.trim_end().lines().count(), 1);
    }
}
