//! Serve-loop counters and latency aggregation, registered in the
//! unified `np-obs` registry.
//!
//! Each named field is an `np_obs::Counter` handle into one shared
//! `Registry` (lock-free bumps from worker threads); latency goes into
//! the shared nearest-rank histogram under the registry's `wall_`
//! non-determinism convention. `snapshot()` freezes everything into a
//! plain struct, `bench_json` renders the `BENCH_serve.json` document the
//! chaos soak and CI gate read, and `registry_json` renders the
//! key-sorted `np-obs-registry-v1` snapshot (the caches and the
//! observability drop counter register into the same registry, so one
//! document covers the whole daemon).

use np_obs::{Counter, Hist, Registry};

pub struct Metrics {
    registry: Registry,
    pub submitted: Counter,
    pub completed_ok: Counter,
    pub cache_hits: Counter,
    pub cache_corrupt_evicted: Counter,
    /// Result-cache misses answered by replaying a cached capture instead
    /// of re-interpreting the kernel (e.g. only the watchdog differed).
    pub trace_replays: Counter,
    /// Cached capture artifacts dropped because their checksum or codec
    /// digest no longer verified.
    pub trace_corrupt_evicted: Counter,
    pub shed_overloaded: Counter,
    pub deadline_exceeded: Counter,
    pub faulted: Counter,
    pub panicked: Counter,
    pub quarantined_rejects: Counter,
    pub rejected_malformed: Counter,
    pub shutdown_rejects: Counter,
    pub retries: Counter,
    pub chaos_delays: Counter,
    pub chaos_panics: Counter,
    pub chaos_faults: Counter,
    pub chaos_corruptions: Counter,
    latencies_us: Hist,
}

/// A frozen view of the counters plus latency percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub submitted: u64,
    pub completed_ok: u64,
    pub cache_hits: u64,
    pub cache_corrupt_evicted: u64,
    pub trace_replays: u64,
    pub trace_corrupt_evicted: u64,
    pub shed_overloaded: u64,
    pub deadline_exceeded: u64,
    pub faulted: u64,
    pub panicked: u64,
    pub quarantined_rejects: u64,
    pub rejected_malformed: u64,
    pub shutdown_rejects: u64,
    pub retries: u64,
    pub chaos_delays: u64,
    pub chaos_panics: u64,
    pub chaos_faults: u64,
    pub chaos_corruptions: u64,
    pub answered: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        let registry = Registry::new();
        let c = |name: &str| registry.counter(name);
        Metrics {
            submitted: c("serve.submitted"),
            completed_ok: c("serve.completed_ok"),
            cache_hits: c("serve.cache.hits"),
            cache_corrupt_evicted: c("serve.cache.corrupt_evicted"),
            trace_replays: c("serve.trace_cache.replays"),
            trace_corrupt_evicted: c("serve.trace_cache.corrupt_evicted"),
            shed_overloaded: c("serve.shed_overloaded"),
            deadline_exceeded: c("serve.deadline_exceeded"),
            faulted: c("serve.faulted"),
            panicked: c("serve.panicked"),
            quarantined_rejects: c("serve.quarantined_rejects"),
            rejected_malformed: c("serve.rejected_malformed"),
            shutdown_rejects: c("serve.shutdown_rejects"),
            retries: c("serve.retries"),
            chaos_delays: c("serve.chaos.delays"),
            chaos_panics: c("serve.chaos.panics"),
            chaos_faults: c("serve.chaos.faults"),
            chaos_corruptions: c("serve.chaos.corruptions"),
            latencies_us: registry.histogram("serve.wall_latency_us"),
            registry,
        }
    }

    /// The shared registry (for the caches, the obs drop counter, and
    /// anything else that wants to land in the same snapshot).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Key-sorted `np-obs-registry-v1` snapshot of everything registered.
    pub fn registry_json(&self, strip: bool) -> String {
        self.registry.snapshot_json(strip)
    }

    pub fn bump(counter: &Counter) {
        counter.bump();
    }

    /// Record a request's end-to-end latency (admission to response).
    pub fn observe_latency_us(&self, us: u64) {
        self.latencies_us.record(us);
    }

    pub fn snapshot(&self) -> Snapshot {
        let lat = self.latencies_us.snapshot();
        Snapshot {
            submitted: self.submitted.get(),
            completed_ok: self.completed_ok.get(),
            cache_hits: self.cache_hits.get(),
            cache_corrupt_evicted: self.cache_corrupt_evicted.get(),
            trace_replays: self.trace_replays.get(),
            trace_corrupt_evicted: self.trace_corrupt_evicted.get(),
            shed_overloaded: self.shed_overloaded.get(),
            deadline_exceeded: self.deadline_exceeded.get(),
            faulted: self.faulted.get(),
            panicked: self.panicked.get(),
            quarantined_rejects: self.quarantined_rejects.get(),
            rejected_malformed: self.rejected_malformed.get(),
            shutdown_rejects: self.shutdown_rejects.get(),
            retries: self.retries.get(),
            chaos_delays: self.chaos_delays.get(),
            chaos_panics: self.chaos_panics.get(),
            chaos_faults: self.chaos_faults.get(),
            chaos_corruptions: self.chaos_corruptions.get(),
            answered: lat.count,
            p50_us: lat.p50,
            p99_us: lat.p99,
            max_us: lat.max,
        }
    }
}

impl Snapshot {
    /// Render the `BENCH_serve.json` document.
    pub fn bench_json(&self, chaos_seed: Option<u64>, soak_secs: Option<u64>) -> String {
        let chaos = match chaos_seed {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        };
        let soak = match soak_secs {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"schema\":\"np-serve-bench-v1\",\"chaos_seed\":{chaos},\"soak_secs\":{soak},\
             \"requests\":{{\"submitted\":{},\"answered\":{},\"ok\":{},\"shed\":{},\
             \"deadline\":{},\"faulted\":{},\"panicked\":{},\"quarantined\":{},\
             \"malformed\":{},\"shutdown\":{},\"retries\":{}}},\
             \"cache\":{{\"hits\":{},\"corrupt_evicted\":{},\"trace_replays\":{},\
             \"trace_corrupt_evicted\":{}}},\
             \"chaos\":{{\"delays\":{},\"panics\":{},\"faults\":{},\"corruptions\":{}}},\
             \"latency_us\":{{\"p50\":{},\"p99\":{},\"max\":{}}}}}\n",
            self.submitted,
            self.answered,
            self.completed_ok,
            self.shed_overloaded,
            self.deadline_exceeded,
            self.faulted,
            self.panicked,
            self.quarantined_rejects,
            self.rejected_malformed,
            self.shutdown_rejects,
            self.retries,
            self.cache_hits,
            self.cache_corrupt_evicted,
            self.trace_replays,
            self.trace_corrupt_evicted,
            self.chaos_delays,
            self.chaos_panics,
            self.chaos_faults,
            self.chaos_corruptions,
            self.p50_us,
            self.p99_us,
            self.max_us,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_come_from_the_sorted_tail() {
        let m = Metrics::new();
        for us in (1..=100).rev() {
            m.observe_latency_us(us);
        }
        let s = m.snapshot();
        assert_eq!(s.answered, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn empty_metrics_render_zeroes_not_panics() {
        let s = Metrics::new().snapshot();
        assert_eq!((s.p50_us, s.p99_us, s.max_us, s.answered), (0, 0, 0, 0));
        let doc = s.bench_json(None, None);
        assert!(doc.contains("\"chaos_seed\":null"), "{doc}");
        assert!(doc.contains("\"p50\":0"), "{doc}");
    }

    #[test]
    fn bench_json_carries_counters_and_seed() {
        let m = Metrics::new();
        Metrics::bump(&m.submitted);
        Metrics::bump(&m.submitted);
        Metrics::bump(&m.completed_ok);
        Metrics::bump(&m.shed_overloaded);
        Metrics::bump(&m.cache_hits);
        m.observe_latency_us(1234);
        let doc = m.snapshot().bench_json(Some(42), Some(30));
        assert!(doc.contains("\"schema\":\"np-serve-bench-v1\""), "{doc}");
        assert!(doc.contains("\"chaos_seed\":42"), "{doc}");
        assert!(doc.contains("\"soak_secs\":30"), "{doc}");
        assert!(doc.contains("\"submitted\":2"), "{doc}");
        assert!(doc.contains("\"shed\":1"), "{doc}");
        assert!(doc.contains("\"hits\":1"), "{doc}");
        assert!(doc.contains("\"p50\":1234"), "{doc}");
        // Single line: JSONL-safe.
        assert_eq!(doc.trim_end().lines().count(), 1);
    }

    #[test]
    fn the_same_counters_surface_in_the_registry_snapshot() {
        let m = Metrics::new();
        Metrics::bump(&m.submitted);
        Metrics::bump(&m.cache_hits);
        m.observe_latency_us(77);
        let doc = m.registry_json(false);
        assert!(doc.contains("\"schema\":\"np-obs-registry-v1\""), "{doc}");
        assert!(doc.contains("\"serve.submitted\":1"), "{doc}");
        assert!(doc.contains("\"serve.cache.hits\":1"), "{doc}");
        assert!(doc.contains("serve.wall_latency_us"), "{doc}");
        // The stripped snapshot drops the wall-clock histogram but keeps
        // every logical counter.
        let stripped = m.registry_json(true);
        assert!(!stripped.contains("wall_latency_us"), "{stripped}");
        assert!(stripped.contains("\"serve.submitted\":1"), "{stripped}");
    }
}
