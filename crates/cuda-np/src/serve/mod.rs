//! `npcc serve`: a crash-isolated batch compile/sim service.
//!
//! The module turns the one-shot compiler pipeline (parse → NP transform →
//! simulate → deterministic report) into a long-running JSONL daemon with
//! the robustness furniture a batch service actually needs:
//!
//! - a **bounded admission queue** in front of a worker pool; a full queue
//!   sheds load with a typed `overloaded` + `retry_after_ms` instead of
//!   queueing unboundedly ([`server`]);
//! - **per-request wall-clock deadlines** threaded into the simulator's
//!   watchdog ([`np_exec::SimOptions::with_deadline`]), so a stuck
//!   interpretation returns a typed `deadline` fault instead of wedging a
//!   worker;
//! - **crash isolation**: worker panics are caught, typed, and counted
//!   against a poison-quarantine list — a kernel that kills a worker twice
//!   is auto-rejected with `quarantined`;
//! - a **content-addressed result cache** keyed by (canonical kernel,
//!   transform config, sim config) with checksummed entries; corruption is
//!   detected, evicted, and recomputed transparently ([`cache`]);
//! - client-facing **retry classification** (`retryable` + backoff hints)
//!   exercised by a built-in retry/soak driver ([`client`]);
//! - **graceful shutdown** that drains accepted work, flushes the cache
//!   index, and rejects new work with `shutdown`;
//! - a **seeded chaos mode** ([`chaos`]) that delays, panics, injects
//!   faults, and corrupts cache entries as a pure function of
//!   `(seed, job)`, behind a soak that proves exactly-once responses and
//!   byte-identical cache hits.
//!
//! See DESIGN.md §13 for the architecture discussion and README.md for the
//! JSONL quickstart.

pub mod cache;
pub mod chaos;
pub mod client;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod server;

pub use cache::{cache_key, CacheKey};
pub use chaos::ChaosConfig;
pub use client::{soak, RetryPolicy, SoakConfig, SoakReport};
pub use proto::{parse_step_budget, Request, Response, Status};
pub use server::{ServeConfig, Server, ShutdownReport};

use np_exec::Args;
use np_kernel_ir::kernel::{Kernel, ParamKind};
use np_kernel_ir::types::Scalar;

/// Deterministic synthesized arguments for simulating a kernel nobody
/// supplied real inputs for (serve requests, `npcc --explain`,
/// `--check-races`): every array gets 64Ki elements of reproducible
/// non-trivial data, every integer scalar a plausible dimension — a
/// multiple of the warp width, so tiled loops with bounds like `w / 32`
/// actually run — every float 1.0.
pub fn synth_args(kernel: &Kernel) -> Args {
    let n = 1usize << 16;
    let mut args = Args::new();
    for p in &kernel.params {
        args = match p.kind {
            ParamKind::Scalar(Scalar::F32) => args.f32(&p.name, 1.0),
            ParamKind::Scalar(Scalar::I32) => args.i32(&p.name, 64),
            ParamKind::Scalar(_) => args.u32(&p.name, 64),
            ParamKind::GlobalArray(ty) | ParamKind::TexArray(ty) | ParamKind::ConstArray(ty) => {
                match ty {
                    Scalar::F32 => args.buf_f32(
                        &p.name,
                        (0..n).map(|i| ((i * 37 + 11) % 97) as f32 / 97.0).collect(),
                    ),
                    Scalar::I32 => {
                        args.buf_i32(&p.name, (0..n).map(|i| (i % 7) as i32).collect())
                    }
                    _ => args.buf_u32(&p.name, (0..n).map(|i| (i % 7) as u32).collect()),
                }
            }
        };
    }
    args
}
