//! The serve-mode wire protocol: JSONL requests in, JSONL responses out.
//!
//! One request per line, one terminal response per accepted line — always
//! exactly one, no matter how the job ends (that exactly-once property is
//! what the chaos soak proves). Responses carry a typed `status`, an
//! explicit `retryable` classification, and for `ok` a `result` payload
//! that reuses the repository's deterministic report JSON (profile
//! counters, stall breakdown, race report), so a cache hit can be compared
//! byte-for-byte against a cold compute.
//!
//! ```text
//! → {"id":"r1","kernel":"__global__ void k(...) { ... }","slave_size":4,
//!    "np_type":"inter","grid":4,"deadline_ms":2000,"watchdog":"200000"}
//! ← {"id":"r1","status":"ok","cached":false,"retryable":false,
//!    "latency_us":1234,"result":{...}}
//! ```

use super::json::{escape, Json};
use crate::costmodel::TunePolicy;
use crate::options::NpOptions;
use crate::tuner::{PolicyTuneResult, TuneOutcome};
use np_exec::KernelReport;
use np_gpu_sim::DeviceConfig;
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::parse_kernel;
use np_kernel_ir::pragma::NpType;
use np_kernel_ir::printer::print_kernel;

/// What the client wants done with the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Transform at the pinned (slave_size, np_type) and simulate once.
    Transform,
    /// Auto-tune over the candidate space and report the winner + table.
    Tune,
}

impl Mode {
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Transform => "transform",
            Mode::Tune => "tune",
        }
    }
}

/// One admitted request, parsed and semantically validated. The kernel is
/// parsed at admission so malformed sources are `rejected` up front and so
/// the *canonical* printed form (not the client's whitespace) feeds the
/// cache key and the quarantine identity.
#[derive(Debug, Clone)]
pub struct Request {
    pub id: String,
    pub kernel: Kernel,
    /// Canonical source: `print_kernel(parse_kernel(input))`.
    pub canon: String,
    pub mode: Mode,
    pub slave_size: u32,
    pub np_type: NpType,
    /// Grid blocks along x.
    pub grid: u32,
    /// Registry name of the device to simulate on (default `gtx680`).
    /// Resolved at admission so unknown names are `rejected` up front, and
    /// part of the cache key so per-device results never collide.
    pub device: String,
    /// The resolved device descriptor for `device`.
    pub dev: DeviceConfig,
    /// Watchdog step budget override (`None` = server default budget).
    pub watchdog: Option<u64>,
    /// Per-request wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Candidate-selection policy for tune mode (`exhaustive` when absent).
    /// Ignored by transform mode and excluded from its cache key.
    pub tune_policy: TunePolicy,
}

/// Parse a `--watchdog`-style step budget: a positive integer number of
/// interpreted steps, or `none`/`off` to disarm the watchdog entirely.
/// Shared between the `npcc --watchdog` flag and the serve protocol's
/// per-request `watchdog` field, so the CLI and the daemon can never
/// drift apart on what a budget spelling means.
pub fn parse_step_budget(s: &str) -> Result<Option<u64>, String> {
    match s {
        "none" | "off" => Ok(None),
        _ => match s.parse::<u64>() {
            Ok(0) => Err("step budget must be positive (or `none` to disarm)".to_string()),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(format!("bad step budget {s:?} (want a count or `none`)")),
        },
    }
}

impl Request {
    /// Parse one JSONL line. On failure returns whatever `id` could be
    /// recovered (so the rejection can still be correlated) plus the
    /// reason.
    pub fn from_json_line(line: &str) -> Result<Request, (Option<String>, String)> {
        let v = Json::parse(line.trim()).map_err(|e| (None, format!("bad JSON: {e}")))?;
        let id = v.get("id").and_then(Json::as_str).map(str::to_string);
        let fail = |msg: String| (id.clone(), msg);

        let id_val = id.clone().ok_or_else(|| fail("missing string field \"id\"".into()))?;
        let src = v
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string field \"kernel\"".into()))?;
        let kernel =
            parse_kernel(src).map_err(|e| fail(format!("kernel does not parse: {e}")))?;
        let mut kernel = kernel;
        crate::preprocess::flatten_block(&mut kernel);
        let canon = print_kernel(&kernel);

        let mode = match v.get("mode").and_then(Json::as_str) {
            None | Some("transform") => Mode::Transform,
            Some("tune") => Mode::Tune,
            Some(other) => {
                return Err(fail(format!("bad mode {other:?} (want transform|tune)")))
            }
        };
        let slave_size = match v.get("slave_size") {
            None => 4,
            Some(j) => j
                .as_u64()
                .filter(|&n| (1..=1024).contains(&n))
                .ok_or_else(|| fail("slave_size must be an integer in 1..=1024".into()))?
                as u32,
        };
        let np_type = match v.get("np_type").and_then(Json::as_str) {
            None | Some("inter") => NpType::InterWarp,
            Some("intra") => NpType::IntraWarp,
            Some(other) => return Err(fail(format!("bad np_type {other:?} (want inter|intra)"))),
        };
        let grid = match v.get("grid") {
            None => 4,
            Some(j) => j
                .as_u64()
                .filter(|&n| (1..=1 << 20).contains(&n))
                .ok_or_else(|| fail("grid must be an integer in 1..=1048576".into()))?
                as u32,
        };
        let device = match v.get("device") {
            None => "gtx680".to_string(),
            Some(j) => j
                .as_str()
                .ok_or_else(|| fail("device must be a registry name string".into()))?
                .to_string(),
        };
        let dev = np_gpu_sim::device::from_name(&device).map_err(|e| fail(e.to_string()))?;
        let watchdog = match v.get("watchdog") {
            None => None,
            Some(j) => {
                let s = match j {
                    Json::Str(s) => s.clone(),
                    Json::Num(_) => j
                        .as_u64()
                        .ok_or_else(|| fail("watchdog must be a whole number".into()))?
                        .to_string(),
                    _ => return Err(fail("watchdog must be a count or \"none\"".into())),
                };
                parse_step_budget(&s).map_err(&fail)?
            }
        };
        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(j) => Some(
                j.as_u64().ok_or_else(|| fail("deadline_ms must be a whole number".into()))?,
            ),
        };
        let tune_policy = match v.get("tune_policy") {
            None => TunePolicy::default(),
            Some(j) => {
                let s = j
                    .as_str()
                    .ok_or_else(|| fail("tune_policy must be a string".into()))?;
                TunePolicy::parse(s).map_err(&fail)?
            }
        };

        Ok(Request {
            id: id_val,
            kernel,
            canon,
            mode,
            slave_size,
            np_type,
            grid,
            device,
            dev,
            watchdog,
            deadline_ms,
            tune_policy,
        })
    }

    /// The transform options this request pins (tune mode ignores
    /// slave_size/np_type, which then don't enter the cache key).
    pub fn np_options(&self) -> NpOptions {
        NpOptions::new(self.slave_size, self.np_type)
    }

    /// Canonical transform-config string for the cache key. The tune
    /// policy enters the key only when non-default: pre-policy clients and
    /// explicit `exhaustive` requests must keep hitting the same entries
    /// (the policies' payloads differ — `skipped` entries, the policy
    /// block — so distinct policies must never collide).
    pub fn transform_config(&self) -> String {
        match self.mode {
            Mode::Transform => format!(
                "mode=transform;slave={};np={}",
                self.slave_size,
                np_type_str(self.np_type)
            ),
            Mode::Tune if self.tune_policy.is_exhaustive() => "mode=tune".to_string(),
            Mode::Tune => format!("mode=tune;policy={}", self.tune_policy),
        }
    }

    /// Canonical sim-config string for the cache key. The device name is
    /// part of the key so the same kernel simulated on two devices never
    /// shares an entry. The deadline is deliberately excluded: it bounds
    /// *whether* a result arrives, never what the result is, so two
    /// requests differing only in deadline may share a cache entry.
    pub fn sim_config(&self) -> String {
        format!(
            "device={};grid={};watchdog={}",
            self.device,
            self.grid,
            match self.watchdog {
                Some(n) => n.to_string(),
                None => "default".to_string(),
            }
        )
    }
}

fn np_type_str(t: NpType) -> &'static str {
    match t {
        NpType::InterWarp => "inter",
        NpType::IntraWarp => "intra",
    }
}

/// Terminal status of one request. Every status is terminal — there are no
/// progress messages — and each carries a fixed retryability class
/// (transient statuses name conditions of the *service*, permanent ones
/// name properties of the *kernel*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Completed; `result` carries the report payload.
    Ok,
    /// Shed at admission: the bounded queue was full. Transient.
    Overloaded,
    /// The wall-clock deadline expired (in queue or mid-simulation).
    /// Transient.
    Deadline,
    /// The sanitizer faulted the kernel. Permanent unless the fault kind
    /// itself is transient (injected hardware blips).
    Faulted,
    /// The worker panicked running this job; the kernel is a quarantine
    /// suspect. Transient until the quarantine threshold trips.
    Panicked,
    /// The kernel is on the poison list (panicked the threshold's worth of
    /// times) and was auto-rejected without running. Permanent.
    Quarantined,
    /// The request itself is invalid (bad JSON, unparsable kernel,
    /// transform rejection). Permanent.
    Rejected,
    /// The server is draining and accepted no new work. Permanent for this
    /// server instance.
    Shutdown,
}

impl Status {
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::Deadline => "deadline",
            Status::Faulted => "faulted",
            Status::Panicked => "panicked",
            Status::Quarantined => "quarantined",
            Status::Rejected => "rejected",
            Status::Shutdown => "shutdown",
        }
    }
}

/// One terminal response line.
#[derive(Debug, Clone)]
pub struct Response {
    /// Echoes the request id; `None` only when the line was so malformed
    /// no id could be recovered.
    pub id: Option<String>,
    pub status: Status,
    /// Whether resubmitting the same request could plausibly succeed.
    pub retryable: bool,
    /// Served from the content-addressed cache?
    pub cached: bool,
    /// Backoff hint for transient statuses.
    pub retry_after_ms: Option<u64>,
    /// Human-readable reason for every non-`ok` status.
    pub error: Option<String>,
    /// The deterministic report payload (`ok` only), already-rendered JSON.
    pub payload: Option<String>,
    /// Host-side service latency. Informational (varies run to run); never
    /// part of cache-identity comparisons, which use `payload` alone.
    pub latency_us: u64,
    /// Request-scoped correlation id, minted at admission and attached to
    /// every observability event for this request; echoed here so a client
    /// can join the wire response against the server's event log.
    pub corr: Option<String>,
}

impl Response {
    pub fn new(id: Option<String>, status: Status) -> Self {
        Response {
            id,
            status,
            retryable: false,
            cached: false,
            retry_after_ms: None,
            error: None,
            payload: None,
            latency_us: 0,
            corr: None,
        }
    }

    pub fn retryable(mut self, after_ms: Option<u64>) -> Self {
        self.retryable = true;
        self.retry_after_ms = after_ms;
        self
    }

    pub fn with_error(mut self, e: impl Into<String>) -> Self {
        self.error = Some(e.into());
        self
    }

    /// Serialize as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::from("{\"id\":");
        match &self.id {
            Some(id) => s.push_str(&format!("\"{}\"", escape(id))),
            None => s.push_str("null"),
        }
        s.push_str(&format!(
            ",\"status\":\"{}\",\"retryable\":{},\"cached\":{}",
            self.status.as_str(),
            self.retryable,
            self.cached
        ));
        if let Some(ms) = self.retry_after_ms {
            s.push_str(&format!(",\"retry_after_ms\":{ms}"));
        }
        if let Some(e) = &self.error {
            s.push_str(&format!(",\"error\":\"{}\"", escape(e)));
        }
        if let Some(c) = &self.corr {
            s.push_str(&format!(",\"corr\":\"{}\"", escape(c)));
        }
        s.push_str(&format!(",\"latency_us\":{}", self.latency_us));
        if let Some(p) = &self.payload {
            s.push_str(&format!(",\"result\":{p}"));
        }
        s.push('}');
        s
    }
}

/// Render one completed launch as the deterministic result payload: a pure
/// function of the report and the device label (every field below is itself
/// deterministic — the simulator's cycles, counters, stall buckets, and
/// race findings are byte-stable across reruns), so cold computes and cache
/// hits of the same key must match byte-for-byte. The device is echoed so
/// a client can tell which hardware model timed the result.
pub fn report_json(rep: &KernelReport, device: &str) -> String {
    format!(
        "{{\"kernel\":\"{}\",\"device\":\"{}\",\"cycles\":{},\"time_us\":{:.3},\"blocks\":{},\
         \"profile\":{},\"stall\":{},\"race\":{}}}",
        escape(&rep.kernel_name),
        escape(device),
        rep.cycles,
        rep.time_us,
        rep.timing.blocks_simulated,
        rep.profile.total.to_json(),
        rep.timing.stall.to_json(),
        rep.race.to_json(),
    )
}

/// Render an auto-tune run: the winner's full report, the selection
/// policy's bookkeeping, plus the per-candidate outcome table (mirroring
/// `TuneEntry`).
pub fn tune_json(p: &PolicyTuneResult, device: &str) -> String {
    let r = &p.result;
    let mut s = format!(
        "{{\"winner\":{{\"np_type\":\"{}\",\"slave_size\":{},\"cycles\":{}}},\
         \"policy\":{{\"name\":\"{}\",\"evaluated\":{},\"skipped\":{},\"fell_back\":{},\
         \"predicted_rank\":{}}},\"entries\":[",
        r.best.report.np_type.map_or("?", np_type_str),
        r.best.report.slave_size,
        r.best_report.cycles,
        escape(&p.policy.label()),
        p.evaluated,
        p.skipped,
        p.fell_back,
        p.predicted_rank.map_or("null".to_string(), |n| n.to_string()),
    );
    for (i, e) in r.entries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let outcome = match &e.outcome {
            TuneOutcome::Ok { cycles } => format!("\"ok\",\"cycles\":{cycles}"),
            TuneOutcome::Rejected(err) => {
                format!("\"rejected\",\"detail\":\"{}\"", escape(&err.to_string()))
            }
            TuneOutcome::Faulted(f) => {
                format!("\"faulted\",\"detail\":\"{}\"", escape(&f.to_string()))
            }
            TuneOutcome::LaunchFailed(err) => {
                // The typed failure gives clients a stable machine-readable
                // class; the rendered detail is for humans only.
                format!(
                    "\"launch_failed\",\"class\":\"{}\",\"detail\":\"{}\"",
                    err.class(),
                    escape(&err.to_string())
                )
            }
            TuneOutcome::Skipped => "\"skipped\"".to_string(),
        };
        s.push_str(&format!(
            "{{\"np_type\":\"{}\",\"slave_size\":{},\"outcome\":{outcome}}}",
            np_type_str(e.np_type),
            e.slave_size
        ));
    }
    s.push_str(&format!("],\"report\":{}}}", report_json(&r.best_report, device)));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNEL: &str = "__global__ void k(float* out) {\n  out[threadIdx.x] = 1.0f;\n}\n";

    fn line(extra: &str) -> String {
        format!("{{\"id\":\"r1\",\"kernel\":\"{}\"{extra}}}", escape(KERNEL))
    }

    #[test]
    fn minimal_request_gets_defaults() {
        let r = Request::from_json_line(&line("")).unwrap();
        assert_eq!(r.id, "r1");
        assert_eq!(r.mode, Mode::Transform);
        assert_eq!(r.slave_size, 4);
        assert_eq!(r.np_type, NpType::InterWarp);
        assert_eq!(r.grid, 4);
        assert_eq!(r.watchdog, None);
        assert_eq!(r.deadline_ms, None);
        assert!(r.canon.contains("__global__"));
    }

    #[test]
    fn full_request_parses_every_field() {
        let r = Request::from_json_line(&line(
            ",\"mode\":\"tune\",\"slave_size\":8,\"np_type\":\"intra\",\"grid\":16,\
             \"watchdog\":\"100000\",\"deadline_ms\":250",
        ))
        .unwrap();
        assert_eq!(r.mode, Mode::Tune);
        assert_eq!(r.slave_size, 8);
        assert_eq!(r.np_type, NpType::IntraWarp);
        assert_eq!(r.grid, 16);
        assert_eq!(r.watchdog, Some(100_000));
        assert_eq!(r.deadline_ms, Some(250));
    }

    #[test]
    fn numeric_watchdog_and_none_spelling_both_work() {
        let r = Request::from_json_line(&line(",\"watchdog\":5000")).unwrap();
        assert_eq!(r.watchdog, Some(5000));
        let r = Request::from_json_line(&line(",\"watchdog\":\"none\"")).unwrap();
        assert_eq!(r.watchdog, None);
    }

    #[test]
    fn rejections_recover_the_id_when_present() {
        let (id, msg) = Request::from_json_line("{\"id\":\"r9\"}").unwrap_err();
        assert_eq!(id.as_deref(), Some("r9"));
        assert!(msg.contains("kernel"), "{msg}");

        let (id, _) = Request::from_json_line("not json at all").unwrap_err();
        assert_eq!(id, None);

        let (id, msg) =
            Request::from_json_line("{\"id\":\"r2\",\"kernel\":\"int main\"}").unwrap_err();
        assert_eq!(id.as_deref(), Some("r2"));
        assert!(msg.contains("parse"), "{msg}");
    }

    #[test]
    fn step_budget_parser_is_shared_and_strict() {
        assert_eq!(parse_step_budget("123").unwrap(), Some(123));
        assert_eq!(parse_step_budget("none").unwrap(), None);
        assert_eq!(parse_step_budget("off").unwrap(), None);
        assert!(parse_step_budget("0").is_err());
        assert!(parse_step_budget("-3").is_err());
        assert!(parse_step_budget("fast").is_err());
    }

    #[test]
    fn cache_config_strings_separate_modes_but_not_deadlines() {
        let a = Request::from_json_line(&line(",\"deadline_ms\":10")).unwrap();
        let b = Request::from_json_line(&line(",\"deadline_ms\":99999")).unwrap();
        assert_eq!(a.transform_config(), b.transform_config());
        assert_eq!(a.sim_config(), b.sim_config(), "deadline never enters the key");
        let t = Request::from_json_line(&line(",\"mode\":\"tune\"")).unwrap();
        assert_ne!(a.transform_config(), t.transform_config());
    }

    #[test]
    fn device_field_defaults_resolves_and_separates_cache_keys() {
        let a = Request::from_json_line(&line("")).unwrap();
        assert_eq!(a.device, "gtx680");
        assert_eq!(a.dev.num_smx, 8);
        let b = Request::from_json_line(&line(",\"device\":\"k20c\"")).unwrap();
        assert_eq!(b.device, "k20c");
        assert_eq!(b.dev.num_smx, 13);
        assert_ne!(a.sim_config(), b.sim_config(), "device must enter the cache key");

        let (id, msg) = Request::from_json_line(&line(",\"device\":\"titan\"")).unwrap_err();
        assert_eq!(id.as_deref(), Some("r1"));
        assert!(msg.contains("unknown device 'titan'"), "{msg}");
        assert!(msg.contains("gtx680"), "rejection should list the registry: {msg}");
    }

    #[test]
    fn response_lines_are_single_line_json_and_round_trip() {
        let mut resp = Response::new(Some("r1".into()), Status::Overloaded)
            .retryable(Some(40))
            .with_error("queue full (8/8)");
        resp.latency_us = 17;
        let line = resp.to_json_line();
        assert!(!line.contains('\n'));
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("overloaded"));
        assert_eq!(v.get("retryable").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("retry_after_ms").and_then(Json::as_u64), Some(40));
        assert_eq!(v.get("latency_us").and_then(Json::as_u64), Some(17));
        assert_eq!(v.get("cached").and_then(Json::as_bool), Some(false));
    }
}
