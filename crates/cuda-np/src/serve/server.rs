//! The serve engine: a bounded admission queue in front of a worker pool,
//! with crash isolation, per-request deadlines, a checksummed result
//! cache, and poison quarantine.
//!
//! Invariant the whole module is built around: **every submitted line gets
//! exactly one terminal [`Response`]**, delivered on the `mpsc::Sender`
//! the caller handed to [`Server::submit`] — whether the job is shed at
//! admission, served from cache, times out in the queue, faults in the
//! simulator, or panics the worker (the panic is caught; the worker
//! thread survives and keeps draining the queue). The chaos soak
//! ([`super::client::soak`]) hammers this invariant with seeded delays,
//! panics, forced faults, and cache corruption.

use super::cache::{cache_key, fnv64, Cache, CacheKey, Lookup};
use super::chaos::{plan, ChaosConfig, ChaosPlan};
use super::metrics::{Metrics, Snapshot};
use super::proto::{report_json, tune_json, Mode, Request, Response, Status};
use super::synth_args;
use crate::transform;
use crate::tuner::{alloc_extra_buffers, autotune_with_policy, candidates_from_pragmas};
use crate::TuneError;
use np_exec::{capture_launch, replay_launch, DeadlineSpec, KernelReport, SimOptions};
use np_gpu_sim::{CapturedLaunch, DeviceConfig};
use np_kernel_ir::types::Dim3;
use np_obs::{kv, Level, Recorder};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Server tuning knobs. `Default` is sized for tests and the CLI daemon
/// alike: a small pool, a queue a few times deeper than the pool.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads simulating jobs.
    pub workers: usize,
    /// Admission queue bound; a full queue sheds with `overloaded`.
    pub queue_cap: usize,
    /// Result cache capacity (entries).
    pub cache_cap: usize,
    /// Deadline applied when a request names none (`None` = unbounded).
    pub default_deadline_ms: Option<u64>,
    /// Watchdog step budget applied when a request names none.
    pub default_watchdog: Option<u64>,
    /// Panics from one kernel before it is quarantined.
    pub quarantine_threshold: u32,
    /// Chaos mode (None = run clean).
    pub chaos: Option<ChaosConfig>,
    /// Observability sink. Every request's admission, queue wait, cache
    /// lookups, execution, and response are recorded here under its
    /// correlation id; the daemon's lifecycle events land here too.
    pub obs: Option<Recorder>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_cap: 8,
            cache_cap: 256,
            default_deadline_ms: None,
            default_watchdog: Some(np_exec::DEFAULT_WATCHDOG_STEPS),
            quarantine_threshold: 2,
            chaos: None,
            obs: None,
        }
    }
}

struct Job {
    req: Request,
    /// Monotone admission sequence number — the chaos plan's input.
    seq: u64,
    /// Correlation id derived from `seq` (`c{seq:06}`): unique per
    /// request for a server's lifetime, attached to every event and
    /// echoed in the wire response.
    corr: String,
    /// Wall clock at admission (latency measurement starts here).
    admitted: Instant,
    /// Deadline fixed at admission so queue wait counts against it.
    deadline: Option<DeadlineSpec>,
    reply: Sender<Response>,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    draining: bool,
}

struct Inner {
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    /// Signals workers: new job or drain started.
    wake: Condvar,
    cache: Mutex<Cache>,
    /// Capture artifacts (hex-encoded `np-trace-v1` bytes) keyed by
    /// (kernel canon, transform config, grid) — the watchdog budget is
    /// deliberately *not* in the key, so a request differing only in its
    /// sim config replays the frozen interpretation instead of recomputing
    /// it.
    trace_cache: Mutex<Cache>,
    /// Panic counts per kernel identity (`fnv64` of the canonical source).
    quarantine: Mutex<HashMap<u64, u32>>,
    metrics: Metrics,
}

impl Inner {
    /// Record one correlated observability event (no-op without a sink).
    fn ev(&self, corr: &str, level: Level, name: &str, fields: np_obs::Fields) {
        if let Some(rec) = &self.cfg.obs {
            rec.event(level, name, Some(corr), fields);
        }
    }
}

/// What a graceful drain leaves behind.
pub struct ShutdownReport {
    pub snapshot: Snapshot,
    /// The flushed `Cache::index_json` document.
    pub cache_index: String,
    /// Worker threads that died to an *uncaught* panic. Always 0 unless
    /// the crash-isolation `catch_unwind` has a hole.
    pub worker_panics: usize,
    /// The key-sorted `np-obs-registry-v1` snapshot of every metric the
    /// daemon registered (serve counters, caches, obs backpressure).
    pub registry_json: String,
}

/// A running serve engine. Dropping without [`Server::shutdown`] aborts
/// workers mid-queue; call `shutdown` for the drain + index flush path.
pub struct Server {
    inner: Arc<Inner>,
    /// Behind a mutex so `shutdown(&self)` can join through an `Arc`.
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_seq: std::sync::atomic::AtomicU64,
}

/// Silence the default panic hook for serve workers: their panics are
/// *expected* (chaos injects them on purpose), caught, and converted to
/// typed responses — a backtrace per caught panic would bury the JSONL
/// log. Panics on any other thread keep the previous hook.
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let from_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("np-serve-"));
            if !from_worker {
                prev(info);
            }
        }));
    });
}

impl Server {
    pub fn start(cfg: ServeConfig) -> Server {
        install_quiet_panic_hook();
        let metrics = Metrics::new();
        if let Some(rec) = &cfg.obs {
            // Backpressure accounting: events the bounded log buffer had
            // to drop surface in the same registry as everything else.
            rec.set_drop_counter(metrics.registry().counter("obs.events_dropped"));
        }
        let inner = Arc::new(Inner {
            cache: Mutex::new(Cache::new(cfg.cache_cap)),
            trace_cache: Mutex::new(Cache::new(cfg.cache_cap)),
            cfg,
            queue: Mutex::new(QueueState::default()),
            wake: Condvar::new(),
            quarantine: Mutex::new(HashMap::new()),
            metrics,
        });
        let workers = (0..inner.cfg.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("np-serve-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { inner, workers: Mutex::new(workers), next_seq: std::sync::atomic::AtomicU64::new(0) }
    }

    /// Admit one JSONL request line. Exactly one terminal response will be
    /// sent on `reply`, either synchronously here (rejections, shedding)
    /// or later from a worker. Returns whether the job was *enqueued*.
    ///
    /// Every line — even an unparseable one — is assigned a correlation
    /// id here, at admission; it rides every event the request generates
    /// and is echoed in the wire response.
    pub fn submit(&self, line: &str, reply: &Sender<Response>) -> bool {
        let admitted = Instant::now();
        let seq = self.next_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let corr = format!("c{seq:06}");
        let m = &self.inner.metrics;
        Metrics::bump(&m.submitted);

        let finish = |mut resp: Response, why: &str| {
            resp.latency_us = admitted.elapsed().as_micros() as u64;
            resp.corr = Some(corr.clone());
            m.observe_latency_us(resp.latency_us);
            self.inner.ev(
                &corr,
                Level::Warn,
                "req.reject",
                vec![kv("reason", why), kv("status", resp.status.as_str())],
            );
            self.inner.ev(
                &corr,
                Level::Info,
                "req.respond",
                vec![kv("status", resp.status.as_str()), kv("wall_latency_us", resp.latency_us)],
            );
            let _ = reply.send(resp);
            false
        };

        let req = match Request::from_json_line(line) {
            Ok(r) => r,
            Err((id, msg)) => {
                Metrics::bump(&m.rejected_malformed);
                return finish(Response::new(id, Status::Rejected).with_error(msg), "malformed");
            }
        };
        let id = Some(req.id.clone());

        let kernel_key = fnv64(req.canon.as_bytes());
        let strikes =
            self.inner.quarantine.lock().unwrap().get(&kernel_key).copied().unwrap_or(0);
        if strikes >= self.inner.cfg.quarantine_threshold {
            Metrics::bump(&m.quarantined_rejects);
            return finish(
                Response::new(id, Status::Quarantined).with_error(format!(
                    "kernel is quarantined: it panicked the worker {strikes} times"
                )),
                "quarantined",
            );
        }

        let deadline_ms = req.deadline_ms.or(self.inner.cfg.default_deadline_ms);

        let mut q = self.inner.queue.lock().unwrap();
        if q.draining {
            Metrics::bump(&m.shutdown_rejects);
            return finish(
                Response::new(id, Status::Shutdown)
                    .with_error("server is draining; resubmit to a live instance"),
                "shutdown",
            );
        }
        if q.jobs.len() >= self.inner.cfg.queue_cap {
            Metrics::bump(&m.shed_overloaded);
            // Backoff hint: assume each queued job costs a few ms; deeper
            // queue, longer hint. Purely advisory.
            let hint = 5 * (q.jobs.len() as u64 + 1);
            return finish(
                Response::new(id, Status::Overloaded)
                    .retryable(Some(hint))
                    .with_error(format!(
                        "admission queue full ({}/{})",
                        q.jobs.len(),
                        self.inner.cfg.queue_cap
                    )),
                "overloaded",
            );
        }
        let depth = q.jobs.len() + 1;
        let device = req.device.clone();
        // Per-device admission counter: the sweep's shards show up as
        // distinct series in the registry snapshot.
        Metrics::bump(&m.registry().counter(&format!("serve.device.{device}")));
        q.jobs.push_back(Job {
            req,
            seq,
            corr: corr.clone(),
            admitted,
            deadline: deadline_ms.map(DeadlineSpec::in_ms),
            reply: reply.clone(),
        });
        drop(q);
        self.inner.ev(
            &corr,
            Level::Info,
            "req.admit",
            vec![kv("queue", depth), kv("device", device.as_str())],
        );
        self.inner.wake.notify_one();
        true
    }

    /// Current queue depth (for tests and the drain log line).
    pub fn queue_len(&self) -> usize {
        self.inner.queue.lock().unwrap().jobs.len()
    }

    pub fn metrics(&self) -> Snapshot {
        self.inner.metrics.snapshot()
    }

    /// The cache index document (see `Cache::index_json`).
    pub fn cache_index_json(&self) -> String {
        self.inner.cache.lock().unwrap().index_json()
    }

    /// Graceful shutdown: stop admitting, let the workers drain every
    /// already-accepted job, join them, and return the final metrics
    /// snapshot plus the flushed cache index. Safe to call through an
    /// `Arc` from any thread; later calls just re-snapshot.
    pub fn shutdown(&self) -> ShutdownReport {
        {
            let mut q = self.inner.queue.lock().unwrap();
            q.draining = true;
        }
        self.inner.wake.notify_all();
        let handles: Vec<_> = self.workers.lock().unwrap().drain(..).collect();
        // A worker thread dying is a *bug* — every job panic is supposed to
        // be caught and typed — so escaped panics are counted, not hidden.
        let worker_panics = handles.into_iter().map(|h| h.join()).filter(Result::is_err).count();
        ShutdownReport {
            snapshot: self.inner.metrics.snapshot(),
            cache_index: self.inner.cache.lock().unwrap().index_json(),
            worker_panics,
            registry_json: self.inner.metrics.registry_json(false),
        }
    }

    /// Book one client-side retry (exposed so the retry driver's backoff
    /// loop lands in the same `BENCH_serve.json` counters).
    pub fn note_retry(&self) {
        Metrics::bump(&self.inner.metrics.retries);
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut q = inner.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.draining {
                    return;
                }
                q = inner.wake.wait(q).unwrap();
            }
        };
        run_job(inner, job);
    }
}

fn run_job(inner: &Inner, job: Job) {
    // Install the job's observability context on this worker thread so
    // every span and event down the stack (transform, interpretation,
    // capture codec, replay) carries the request's correlation id.
    match inner.cfg.obs.clone() {
        Some(rec) => {
            let corr = job.corr.clone();
            np_obs::scope(&rec, Some(inner.metrics.registry()), Some(&corr), || {
                run_job_inner(inner, job)
            })
        }
        None => run_job_inner(inner, job),
    }
}

fn run_job_inner(inner: &Inner, job: Job) {
    let m = &inner.metrics;
    inner.ev(
        &job.corr,
        Level::Debug,
        "req.dequeue",
        vec![kv("wall_queue_us", job.admitted.elapsed().as_micros() as u64)],
    );
    let chaos = match &inner.cfg.chaos {
        Some(cfg) => plan(cfg, job.seq),
        None => ChaosPlan::none(),
    };
    if let Some(ms) = chaos.delay_ms {
        Metrics::bump(&m.chaos_delays);
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }

    let mut resp = compute_response(inner, &job, &chaos);

    // Chaos bit rot, after the job (and any insert) completed: flip a byte
    // of some cached entry *without* touching its checksum. A later lookup
    // of that entry must detect, evict, and recompute — never serve it.
    // Both caches rot: result payloads and capture artifacts alike.
    if chaos.corrupt_cache {
        let flip = 0x11 | (job.seq as u8 & 0x2E);
        if inner.cache.lock().unwrap().corrupt_nth(job.seq as usize, flip).is_some() {
            Metrics::bump(&m.chaos_corruptions);
        }
        if inner.trace_cache.lock().unwrap().corrupt_nth(job.seq as usize, flip).is_some() {
            Metrics::bump(&m.chaos_corruptions);
        }
    }

    resp.latency_us = job.admitted.elapsed().as_micros() as u64;
    resp.corr = Some(job.corr.clone());
    m.observe_latency_us(resp.latency_us);
    inner.ev(
        &job.corr,
        Level::Info,
        "req.respond",
        vec![kv("status", resp.status.as_str()), kv("wall_latency_us", resp.latency_us)],
    );
    // A dropped receiver (client gave up) is not a server error.
    let _ = job.reply.send(resp);
}

/// Produce `job`'s terminal response. Never panics outward: the simulate
/// path (and the chaos panic) runs under `catch_unwind`, and a caught
/// panic books a quarantine strike against the kernel.
fn compute_response(inner: &Inner, job: &Job, chaos: &ChaosPlan) -> Response {
    let m = &inner.metrics;
    let req = &job.req;
    let id = Some(req.id.clone());

    // Queue wait already burned the whole budget?
    if let Some(dl) = &job.deadline {
        if dl.expired() {
            Metrics::bump(&m.deadline_exceeded);
            return Response::new(id, Status::Deadline).retryable(Some(10)).with_error(
                format!("deadline of {} ms expired before the job ran", dl.budget_ms),
            );
        }
    }

    if chaos.inject.is_some() {
        Metrics::bump(&m.chaos_faults);
    }
    if chaos.panic {
        Metrics::bump(&m.chaos_panics);
    }

    // Cache lookup — skipped when chaos arms fault injection or a panic,
    // so chaos actually exercises the compute path and an injected run
    // can never be confused with a clean cached result.
    let key = cache_key(&req.canon, &req.transform_config(), &req.sim_config());
    let chaos_taints_result = chaos.inject.is_some() || chaos.panic;
    if !chaos_taints_result {
        match inner.cache.lock().unwrap().lookup(key) {
            Lookup::Hit(payload) => {
                Metrics::bump(&m.cache_hits);
                Metrics::bump(&m.completed_ok);
                inner.ev(&job.corr, Level::Debug, "req.cache", vec![kv("outcome", "hit")]);
                let mut r = Response::new(id, Status::Ok);
                r.cached = true;
                r.payload = Some(payload);
                return r;
            }
            Lookup::CorruptEvicted => {
                Metrics::bump(&m.cache_corrupt_evicted);
                inner.ev(
                    &job.corr,
                    Level::Warn,
                    "req.cache",
                    vec![kv("outcome", "corrupt_evicted")],
                );
            }
            Lookup::Miss => {
                inner.ev(&job.corr, Level::Debug, "req.cache", vec![kv("outcome", "miss")]);
            }
        }
    }

    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _exec = np_obs::span("req.exec");
        if chaos.panic {
            panic!("chaos: injected worker panic (job seq {})", job.seq);
        }
        simulate(inner, job, chaos)
    }));

    match outcome {
        Ok(resp) => {
            if resp.status == Status::Ok && !chaos_taints_result {
                if let Some(p) = &resp.payload {
                    inner.cache.lock().unwrap().insert(key, p.clone());
                }
            }
            match resp.status {
                Status::Ok => Metrics::bump(&m.completed_ok),
                Status::Deadline => Metrics::bump(&m.deadline_exceeded),
                Status::Faulted => Metrics::bump(&m.faulted),
                Status::Rejected => Metrics::bump(&m.rejected_malformed),
                _ => {}
            }
            resp
        }
        Err(payload) => {
            Metrics::bump(&m.panicked);
            let what = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            let strikes = {
                let mut q = inner.quarantine.lock().unwrap();
                let e = q.entry(fnv64(req.canon.as_bytes())).or_insert(0);
                *e += 1;
                *e
            };
            inner.ev(
                &job.corr,
                Level::Error,
                "req.panic",
                vec![kv("strikes", strikes as u64)],
            );
            let resp = Response::new(id, Status::Panicked)
                .with_error(format!("worker panicked: {what} (strike {strikes})"));
            if strikes < inner.cfg.quarantine_threshold {
                // One more chance: a panic can be environmental.
                resp.retryable(Some(25))
            } else {
                resp
            }
        }
    }
}

/// Transform + simulate (or auto-tune) one request. Runs inside the
/// worker's `catch_unwind`.
fn simulate(inner: &Inner, job: &Job, chaos: &ChaosPlan) -> Response {
    let req = &job.req;
    let id = Some(req.id.clone());
    let grid = Dim3::x1(req.grid);
    let watchdog = req.watchdog.or(inner.cfg.default_watchdog);
    let mut sim = SimOptions::full()
        .with_watchdog(watchdog)
        .with_deadline(job.deadline)
        // One simulator thread per job: the pool already runs jobs in
        // parallel, and nested pools would oversubscribe the host.
        .with_interp_threads(Some(1));
    if let Some(inj) = &chaos.inject {
        sim = sim.with_injection(inj.clone());
    }

    match req.mode {
        Mode::Transform => {
            let t = match transform(&req.kernel, &req.np_options()) {
                Ok(t) => t,
                Err(e) => {
                    return Response::new(id, Status::Rejected)
                        .with_error(format!("transform rejected the kernel: {e}"))
                }
            };
            // Trace-artifact fast path: a result-cache miss whose
            // interpretation is already frozen (same kernel + transform +
            // grid, e.g. only the watchdog budget differs) replays instead
            // of re-interpreting. Chaos fault injection needs real
            // interpretation, so it skips the artifact entirely.
            let tkey = trace_key(req);
            if chaos.inject.is_none() {
                match replay_cached_trace(inner, &req.dev, tkey, &sim) {
                    Some(Ok(rep)) => {
                        Metrics::bump(&inner.metrics.trace_replays);
                        inner.ev(
                            &job.corr,
                            Level::Debug,
                            "req.trace_replay",
                            vec![kv("outcome", "report")],
                        );
                        let mut r = Response::new(id, Status::Ok);
                        r.payload = Some(report_json(&rep, &req.device));
                        return r;
                    }
                    // The replayed verdict (e.g. the recorded step count
                    // exceeds this request's watchdog budget) is as
                    // terminal as the interpreted one would have been.
                    Some(Err(e)) => {
                        Metrics::bump(&inner.metrics.trace_replays);
                        inner.ev(
                            &job.corr,
                            Level::Debug,
                            "req.trace_replay",
                            vec![kv("outcome", "verdict")],
                        );
                        return fault_response(id, &e);
                    }
                    None => {}
                }
            }
            let mut args = alloc_extra_buffers(synth_args(&t.kernel), &t, grid);
            match capture_launch(&req.dev, &t.kernel, grid, &mut args, &sim) {
                Ok((rep, cap)) => {
                    if chaos.inject.is_none() {
                        inner
                            .trace_cache
                            .lock()
                            .unwrap()
                            .insert(tkey, hex_encode(&cap.encode()));
                    }
                    let mut r = Response::new(id, Status::Ok);
                    r.payload = Some(report_json(&rep, &req.device));
                    r
                }
                Err(e) => fault_response(id, &e),
            }
        }
        Mode::Tune => {
            let candidates = candidates_from_pragmas(&req.kernel, 1024);
            let make_args =
                |t: &crate::Transformed| alloc_extra_buffers(synth_args(&t.kernel), t, grid);
            match autotune_with_policy(
                &req.kernel,
                &req.dev,
                grid,
                &make_args,
                &sim,
                &candidates,
                req.tune_policy,
            ) {
                Ok(r) => {
                    let mut resp = Response::new(id, Status::Ok);
                    resp.payload = Some(tune_json(&r, &req.device));
                    resp
                }
                Err(TuneError::AllFailed(entries)) => Response::new(id, Status::Faulted)
                    .with_error(format!(
                        "no tuning candidate ran to completion ({} tried)",
                        entries.len()
                    )),
                Err(e) => Response::new(id, Status::Rejected)
                    .with_error(format!("tuning failed: {e}")),
            }
        }
    }
}

/// The capture-artifact cache key: canonical kernel + transform config +
/// device + grid. Unlike the result-cache key this has no watchdog
/// component — the capture records its interpreted step total, so *any*
/// budget's verdict replays from the same artifact. The device *is* in the
/// key: captures embed device-dependent sampling/occupancy context, so
/// per-device artifacts must never collide.
fn trace_key(req: &Request) -> CacheKey {
    cache_key(
        &req.canon,
        &req.transform_config(),
        &format!("trace;device={};grid={}", req.device, req.grid),
    )
}

/// Hex-encode capture bytes so they can live in the shared [`Cache`],
/// whose payloads are `String`s (and whose chaos hook flips ASCII bytes).
fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).ok()?, 16).ok())
        .collect()
}

/// Try to answer from the capture-artifact cache. `Some(Ok)` is a replayed
/// report, `Some(Err)` a replayed terminal verdict (watchdog), `None`
/// means interpret: a miss, a corrupt artifact (cache checksum *or* codec
/// digest — both are verified, and a bad artifact is dropped, never
/// served), or a sim config the artifact cannot legally stand in for.
fn replay_cached_trace(
    inner: &Inner,
    dev: &DeviceConfig,
    key: CacheKey,
    sim: &SimOptions,
) -> Option<Result<KernelReport, np_exec::ExecError>> {
    let hex = match inner.trace_cache.lock().unwrap().lookup(key) {
        Lookup::Hit(h) => h,
        Lookup::CorruptEvicted => {
            Metrics::bump(&inner.metrics.trace_corrupt_evicted);
            return None;
        }
        Lookup::Miss => return None,
    };
    let cap = match hex_decode(&hex).and_then(|b| CapturedLaunch::decode(&b).ok()) {
        Some(c) => c,
        None => {
            // Passed the cache checksum but not the codec: a corrupt
            // insert. Evict so it cannot shadow the slot again.
            Metrics::bump(&inner.metrics.trace_corrupt_evicted);
            inner.trace_cache.lock().unwrap().evict(key);
            return None;
        }
    };
    match replay_launch(dev, &cap, sim) {
        Ok(rep) => Some(Ok(rep)),
        // A faulting verdict (watchdog over budget) is a real answer.
        Err(e @ np_exec::ExecError::Fault(_)) => Some(Err(e)),
        // Any replay-eligibility error means this artifact cannot answer
        // the request: interpret instead.
        Err(_) => None,
    }
}

/// Map a launch error to its terminal status + retryability class.
fn fault_response(id: Option<String>, e: &np_exec::ExecError) -> Response {
    match e.fault() {
        Some(f) if matches!(f.kind, np_exec::FaultKind::Deadline { .. }) => {
            Response::new(id, Status::Deadline)
                .retryable(Some(10))
                .with_error(f.to_string())
        }
        Some(f) if f.kind.transient() => {
            Response::new(id, Status::Faulted).retryable(Some(15)).with_error(f.to_string())
        }
        Some(f) => Response::new(id, Status::Faulted).with_error(f.to_string()),
        // Launch setup problems (missing args, occupancy) are properties
        // of the request, not the service: permanent.
        None => Response::new(id, Status::Rejected).with_error(e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    /// Figure-2-shaped TMV kernel, small block so unit tests stay quick.
    const OK_KERNEL: &str = "
// blockDim = (32, 1, 1)
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++) {
    sum += a[i * w + tx] * b[i];
  }
  c[tx] = sum;
}
";

    fn line(id: &str, extra: &str) -> String {
        format!(
            "{{\"id\":\"{id}\",\"kernel\":\"{}\"{extra}}}",
            super::super::json::escape(OK_KERNEL)
        )
    }

    fn submit_wait(srv: &Server, line: &str) -> Response {
        let (tx, rx) = channel();
        srv.submit(line, &tx);
        rx.recv().expect("exactly one terminal response")
    }

    #[test]
    fn simple_transform_request_round_trips() {
        let srv = Server::start(ServeConfig { workers: 1, ..Default::default() });
        let resp = submit_wait(&srv, &line("r1", ""));
        assert_eq!(resp.status, Status::Ok, "{:?}", resp.error);
        assert!(!resp.cached);
        let payload = resp.payload.expect("ok carries a result");
        assert!(payload.contains("\"cycles\":"), "{payload}");
        let end = srv.shutdown();
        assert_eq!(end.snapshot.completed_ok, 1);
        assert_eq!(end.worker_panics, 0);
    }

    #[test]
    fn identical_requests_hit_the_cache_byte_identically() {
        let srv = Server::start(ServeConfig { workers: 1, ..Default::default() });
        let cold = submit_wait(&srv, &line("r1", ""));
        let warm = submit_wait(&srv, &line("r2", ""));
        assert!(!cold.cached);
        assert!(warm.cached, "second identical request must hit");
        assert_eq!(cold.payload, warm.payload, "hit must be byte-identical");
        let end = srv.shutdown();
        assert_eq!(end.snapshot.cache_hits, 1);
        assert!(end.cache_index.contains("\"entries\":1"), "{}", end.cache_index);
    }

    #[test]
    fn malformed_lines_get_typed_rejections_not_crashes() {
        let srv = Server::start(ServeConfig::default());
        for bad in ["", "{", "{\"id\":\"x\"}", "{\"id\":\"x\",\"kernel\":\"int m\"}"] {
            let resp = submit_wait(&srv, bad);
            assert_eq!(resp.status, Status::Rejected, "{bad:?}");
            assert!(!resp.retryable);
        }
        assert_eq!(srv.shutdown().snapshot.rejected_malformed, 4);
    }

    #[test]
    fn watchdog_only_miss_replays_the_cached_capture() {
        let srv = Server::start(ServeConfig { workers: 1, ..Default::default() });
        let cold = submit_wait(&srv, &line("r1", ""));
        assert_eq!(cold.status, Status::Ok, "{:?}", cold.error);
        // Same kernel + transform + grid, different (generous) watchdog:
        // the result cache misses but the capture artifact replays — and
        // the report must be byte-identical, because the budget changes
        // nothing about a run that fits it.
        let warm = submit_wait(&srv, &line("r2", ",\"watchdog\":\"500000000\""));
        assert_eq!(warm.status, Status::Ok, "{:?}", warm.error);
        assert!(!warm.cached, "different sim config is a result-cache miss");
        assert_eq!(cold.payload, warm.payload, "replay must be byte-identical");
        let end = srv.shutdown();
        assert_eq!(end.snapshot.trace_replays, 1, "second request replayed");
        assert_eq!(end.snapshot.trace_corrupt_evicted, 0);
    }

    #[test]
    fn replayed_watchdog_verdict_is_a_fault_without_reinterpretation() {
        let srv = Server::start(ServeConfig { workers: 1, ..Default::default() });
        let cold = submit_wait(&srv, &line("r1", ""));
        assert_eq!(cold.status, Status::Ok, "{:?}", cold.error);
        // A one-step budget is under any real kernel's step count; the
        // cached capture's recorded total reproduces the watchdog fault
        // without interpreting anything.
        let tight = submit_wait(&srv, &line("r2", ",\"watchdog\":\"1\""));
        assert_eq!(tight.status, Status::Faulted, "{:?}", tight.error);
        assert!(tight.error.as_deref().unwrap_or("").contains("watchdog"), "{:?}", tight.error);
        let end = srv.shutdown();
        assert_eq!(end.snapshot.trace_replays, 1, "the verdict came from the capture");
    }

    #[test]
    fn corrupt_capture_artifact_is_evicted_and_recomputed() {
        let srv = Server::start(ServeConfig { workers: 1, ..Default::default() });
        let cold = submit_wait(&srv, &line("r1", ""));
        assert_eq!(cold.status, Status::Ok, "{:?}", cold.error);
        assert!(srv.inner.trace_cache.lock().unwrap().corrupt_nth(0, 0x41).is_some());
        // Different watchdog forces the trace path; the rotten artifact
        // must be detected and the request recomputed, byte-identically.
        let warm = submit_wait(&srv, &line("r2", ",\"watchdog\":\"500000000\""));
        assert_eq!(warm.status, Status::Ok, "{:?}", warm.error);
        assert_eq!(cold.payload, warm.payload, "recompute must match the cold result");
        let end = srv.shutdown();
        assert_eq!(end.snapshot.trace_replays, 0, "corrupt artifact must not replay");
        assert_eq!(end.snapshot.trace_corrupt_evicted, 1);
    }

    #[test]
    fn per_device_results_never_collide_in_either_cache() {
        let srv = Server::start(ServeConfig { workers: 1, ..Default::default() });
        let a = submit_wait(&srv, &line("r1", ""));
        let b = submit_wait(&srv, &line("r2", ",\"device\":\"k20c\""));
        assert_eq!(a.status, Status::Ok, "{:?}", a.error);
        assert_eq!(b.status, Status::Ok, "{:?}", b.error);
        assert!(!b.cached, "a different device must miss the result cache");
        assert_ne!(a.payload, b.payload, "payloads echo their own device + timing");
        assert!(a.payload.as_deref().unwrap().contains("\"device\":\"gtx680\""));
        assert!(b.payload.as_deref().unwrap().contains("\"device\":\"k20c\""));
        // Re-ask each device: both must now be warm hits with byte-identical
        // payloads — the device is in the key, so neither evicted the other.
        let a2 = submit_wait(&srv, &line("r3", ""));
        let b2 = submit_wait(&srv, &line("r4", ",\"device\":\"k20c\""));
        assert!(a2.cached && b2.cached);
        assert_eq!(a.payload, a2.payload);
        assert_eq!(b.payload, b2.payload);
        let end = srv.shutdown();
        assert_eq!(end.snapshot.cache_hits, 2);
        assert_eq!(end.snapshot.trace_replays, 0, "neither device replayed the other's capture");
    }

    #[test]
    fn unknown_device_is_rejected_at_admission() {
        let srv = Server::start(ServeConfig::default());
        let resp = submit_wait(&srv, &line("r1", ",\"device\":\"titan\""));
        assert_eq!(resp.status, Status::Rejected);
        assert!(resp.error.as_deref().unwrap_or("").contains("unknown device"), "{:?}", resp.error);
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        assert_eq!(hex_decode(&hex_encode(&[0, 1, 0xAB, 0xFF])), Some(vec![0, 1, 0xAB, 0xFF]));
        assert_eq!(hex_decode(""), Some(vec![]));
        assert_eq!(hex_decode("abc"), None, "odd length");
        assert_eq!(hex_decode("zz"), None, "non-hex digits");
    }

    #[test]
    fn draining_server_rejects_new_work_with_shutdown() {
        let srv = Server::start(ServeConfig::default());
        {
            let mut q = srv.inner.queue.lock().unwrap();
            q.draining = true;
        }
        let resp = submit_wait(&srv, &line("late", ""));
        assert_eq!(resp.status, Status::Shutdown);
    }
}
