//! The overall CUDA-NP code transformation (Figure 7).
//!
//! The kernel body is walked once. Sequential statements are gated so only
//! master threads (`slave_id == 0`) execute them — unless they are
//! redundantly computable by every slave (Section 3.1). Pragma-marked loops
//! are rewritten so each master's slave group splits the iterations;
//! scalar live-ins are broadcast, live-outs reduced or scanned, and live
//! local arrays relocated (Sections 3.1–3.3).
//!
//! Parallel loops nested under control flow (LU's `master_id < 16` case)
//! are handled by *guard sinking*: the enclosing condition becomes a guard
//! on sequential statements and parallel-loop bodies, while barriers and
//! group communication stay at top level where every thread participates.

use crate::broadcast::broadcast_var;
use crate::liveout::{
    combine_expr, exclusive_scan, identity_expr, reduce_var, scan_vars, slave_identity_init,
};
use crate::local_array::{plan_and_rewrite, LocalArrayChoice, LocalArrayPlan};
use crate::mapping::{ThreadMap, MASTER_ID, SLAVE_ID};
use crate::options::{NpOptions, TransformError};
use crate::preprocess::pad::pad_parallel_loops;
use crate::preprocess::flatten::rewrite_exprs;
use crate::scan::scan_slice;
use np_kernel_ir::analysis::{live_in_of_loop, live_out_candidates, redundant_scalars_seeded, scalars_read};
use np_kernel_ir::expr::dsl::{eq, land, min, v};
use np_kernel_ir::expr::{Expr, Special, UnOp};
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::pragma::{NpPragma, NpType, RedOp};
use np_kernel_ir::stmt::{visit_stmts, Stmt};
use np_kernel_ir::types::Scalar;
use std::collections::{BTreeMap, BTreeSet};

/// The transformation result.
#[derive(Debug, Clone)]
pub struct Transformed {
    pub kernel: Kernel,
    pub report: TransformReport,
}

/// Everything the transform decided, for logging, testing, and the launch
/// harness (extra buffers).
#[derive(Debug, Clone, Default)]
pub struct TransformReport {
    pub master_size: u32,
    pub slave_size: u32,
    pub np_type: Option<NpType>,
    pub use_shfl: bool,
    /// Variables broadcast master → slaves.
    pub broadcasts: Vec<String>,
    /// Variables recomputed redundantly by slaves.
    pub redundant: Vec<String>,
    pub reductions: Vec<(String, RedOp)>,
    pub scans: Vec<String>,
    pub selects: Vec<String>,
    pub local_arrays: Vec<LocalArrayPlan>,
    /// Global buffers the launcher must allocate: (param name, elements per
    /// block) — total size is `elems_per_block * gridDim.x`.
    pub extra_global_buffers: Vec<(String, u64)>,
    pub padded_loops: u32,
    /// Pragma loops emitted serially (master-only) because their static
    /// trip count fell below `NpOptions::serial_below`: (iterator, trip).
    pub gated_loops: Vec<(String, u32)>,
    /// Per-loop communication overrides that were applied: (pragma loop
    /// index, used __shfl).
    pub comm_overrides: Vec<(usize, bool)>,
}

struct Emitter {
    map: ThreadMap,
    use_shfl: bool,
    redundant_enabled: bool,
    /// Small-loop gating threshold (`NpOptions::serial_below`).
    serial_below: Option<u32>,
    /// Per-loop communication overrides, keyed by pre-order pragma-loop
    /// index.
    loop_comm: BTreeMap<usize, bool>,
    /// Pre-order index of the next pragma loop `emit_parallel_loop` sees.
    pragma_loop_index: usize,
    /// Post-relocation names of live local arrays. Their accesses were
    /// rewritten assuming the cyclic slave distribution (register partitions
    /// especially), so a loop touching one must never be gated to serial.
    relocated_arrays: BTreeSet<String>,
    types: BTreeMap<String, Scalar>,
    redundant: BTreeSet<String>,
    available: BTreeSet<String>,
    top_decls: Vec<Stmt>,
    top_decl_names: BTreeSet<String>,
    out: Vec<Stmt>,
    pending_guarded: Vec<Stmt>,
    pending_guard: Option<Expr>,
    report: TransformReport,
    scan_counter: u32,
}

impl Emitter {
    /// The full guard expression for master-only code under `guard`.
    fn master_guard(&self, guard: &Option<Expr>) -> Expr {
        let base = eq(v(SLAVE_ID), Expr::ImmI32(0));
        match guard {
            Some(g) => land(base, g.clone()),
            None => base,
        }
    }

    fn flush_guarded(&mut self) {
        if self.pending_guarded.is_empty() {
            return;
        }
        let body = std::mem::take(&mut self.pending_guarded);
        let guard = self.pending_guard.take().expect("guard recorded with stmts");
        self.out.push(Stmt::If { cond: guard, then_body: body, else_body: vec![] });
    }

    fn emit_guarded(&mut self, guard: &Option<Expr>, s: Stmt) {
        let g = self.master_guard(guard);
        if self.pending_guard.as_ref() != Some(&g) {
            self.flush_guarded();
            self.pending_guard = Some(g);
        }
        self.pending_guarded.push(s);
    }

    fn emit_unguarded(&mut self, s: Stmt) {
        self.flush_guarded();
        self.out.push(s);
    }

    fn add_top_decl(&mut self, d: Stmt) {
        if let Stmt::DeclArray { name, .. } = &d {
            if !self.top_decl_names.insert(name.clone()) {
                return;
            }
        }
        self.top_decls.push(d);
    }

    fn ty_of(&self, var: &str) -> Scalar {
        *self.types.get(var).unwrap_or(&Scalar::I32)
    }

    /// Make `vars` readable by slave threads, broadcasting when necessary.
    fn ensure_available(&mut self, vars: impl IntoIterator<Item = String>) {
        for var in vars {
            if self.available.contains(&var) {
                continue;
            }
            let ty = self.ty_of(&var);
            let (decls, code) = broadcast_var(&self.map, self.use_shfl, &var, ty);
            for d in decls {
                self.add_top_decl(d);
            }
            for c in code {
                self.emit_unguarded(c);
            }
            self.report.broadcasts.push(var.clone());
            self.available.insert(var);
        }
    }

    fn expr_vars(e: &Expr) -> BTreeSet<String> {
        e.vars_read().into_iter().collect()
    }
}

/// Apply the CUDA-NP transformation to `kernel` with `opts`.
pub fn transform(kernel: &Kernel, opts: &NpOptions) -> Result<Transformed, TransformError> {
    let _obs = np_obs::span("transform");
    if !kernel.has_pragma_loops() {
        return Err(TransformError::NoPragmaLoops);
    }
    if kernel.block_dim.y != 1 || kernel.block_dim.z != 1 {
        return Err(TransformError::MultiDimInput);
    }
    if opts.slave_size < 2 {
        return Err(TransformError::SlaveSizeTooSmall);
    }
    let map = ThreadMap {
        np_type: opts.np_type,
        master_size: kernel.block_dim.x,
        slave_size: opts.slave_size,
    };
    if map.np_type == NpType::IntraWarp && !map.slaves_share_warp() {
        return Err(TransformError::IntraWarpSlaveSize(opts.slave_size));
    }
    if map.total_threads() > opts.max_block_threads {
        return Err(TransformError::BlockTooLarge {
            master: map.master_size,
            slave: map.slave_size,
            max: opts.max_block_threads,
        });
    }
    if opts.use_shfl == Some(true) && opts.sm_version < 30 {
        return Err(TransformError::ShflUnsupported);
    }
    // A per-loop shuffle request is only honest when the mapping keeps each
    // slave group inside one warp and the target has `__shfl` at all.
    if opts
        .loop_comm
        .iter()
        .any(|&(_, sh)| sh && (!map.slaves_share_warp() || opts.sm_version < 30))
    {
        return Err(TransformError::ShflUnsupported);
    }
    let use_shfl = opts.shfl_enabled() && map.slaves_share_warp();

    let mut work = kernel.clone();

    let padded_loops = {
        let _obs = np_obs::span("transform.pad");
        if opts.pad { pad_parallel_loops(&mut work, opts.slave_size)? } else { 0 }
    };

    // Relocate live local arrays before anything else (indices gain
    // references to __np_master_id, defined by the prologue below).
    let local_plans = {
        let _obs = np_obs::span("transform.locals");
        plan_and_rewrite(&mut work, &map, opts.local_array, opts.shared_budget_per_thread)?
    };

    // Replace the original thread identity with the master id.
    let master_size = map.master_size as i32;
    rewrite_exprs(&mut work.body, &|e| match e {
        Expr::Special(Special::ThreadIdxX) => v(MASTER_ID),
        Expr::Special(Special::BlockDimX) => Expr::ImmI32(master_size),
        other => other,
    });

    // Collect scalar types (for communication buffer declarations).
    let mut types = BTreeMap::new();
    visit_stmts(&work.body, &mut |s| match s {
        Stmt::DeclScalar { name, ty, .. } => {
            types.insert(name.clone(), *ty);
        }
        Stmt::For { var, .. } => {
            types.insert(var.clone(), Scalar::I32);
        }
        _ => {}
    });

    let mut em = Emitter {
        map,
        use_shfl,
        redundant_enabled: opts.redundant_uniform,
        serial_below: opts.serial_below,
        loop_comm: opts.loop_comm.iter().copied().collect(),
        pragma_loop_index: 0,
        relocated_arrays: local_plans
            .iter()
            .map(|p| match &p.choice {
                LocalArrayChoice::Register { .. } => p.array.clone(),
                LocalArrayChoice::Shared { .. } => format!("{}_sm", p.array),
                LocalArrayChoice::Global { param, .. } => param.clone(),
            })
            .collect(),
        types,
        redundant: if opts.redundant_uniform {
            // The master id is shared by every slave of a master, so it
            // seeds the uniform set; the slave id does not.
            redundant_scalars_seeded(&work.body, [MASTER_ID.to_string()].into_iter().collect())
        } else {
            BTreeSet::new()
        },
        available: [MASTER_ID.to_string(), SLAVE_ID.to_string()].into_iter().collect(),
        top_decls: Vec::new(),
        top_decl_names: BTreeSet::new(),
        out: Vec::new(),
        pending_guarded: Vec::new(),
        pending_guard: None,
        report: TransformReport {
            master_size: map.master_size,
            slave_size: map.slave_size,
            np_type: Some(opts.np_type),
            use_shfl,
            padded_loops,
            ..Default::default()
        },
        scan_counter: 0,
    };
    for p in &local_plans {
        if let LocalArrayChoice::Global { param, elems_per_block } = &p.choice {
            em.report.extra_global_buffers.push((param.clone(), *elems_per_block));
        }
    }
    em.report.local_arrays = local_plans;

    {
        let _obs = np_obs::span("transform.emit");
        walk(&mut em, &work.body, &None, &BTreeSet::new())?;
        em.flush_guarded();
    }

    let mut body = vec![
        Stmt::DeclScalar {
            name: MASTER_ID.into(),
            ty: Scalar::I32,
            init: Some(map.master_id_expr()),
        },
        Stmt::DeclScalar {
            name: SLAVE_ID.into(),
            ty: Scalar::I32,
            init: Some(map.slave_id_expr()),
        },
    ];
    body.append(&mut em.top_decls);
    body.append(&mut em.out);

    let out_kernel = Kernel {
        name: format!("{}_np", kernel.name),
        params: work.params,
        block_dim: map.block_dim(),
        body,
    };
    Ok(Transformed { kernel: out_kernel, report: em.report })
}

/// Walk a statement list under `guard`; `after` is the set of scalars read
/// by any code that executes after this list.
fn walk(
    em: &mut Emitter,
    stmts: &[Stmt],
    guard: &Option<Expr>,
    after: &BTreeSet<String>,
) -> Result<(), TransformError> {
    // Suffix read sets: suffix[i] = reads of stmts[i+1..] ∪ after.
    let mut suffix: Vec<BTreeSet<String>> = vec![after.clone(); stmts.len()];
    for i in (0..stmts.len().saturating_sub(1)).rev() {
        let mut s = suffix[i + 1].clone();
        s.extend(scalars_read(std::slice::from_ref(&stmts[i + 1])));
        suffix[i] = s;
    }

    for (i, s) in stmts.iter().enumerate() {
        let after_i = &suffix[i];
        match s {
            Stmt::For { pragma: Some(_), .. } => emit_parallel_loop(em, s, guard, after_i)?,
            Stmt::If { cond, then_body, else_body }
                if s.contains_pragma_loop() || s.contains_sync() =>
            {
                em.ensure_available(Emitter::expr_vars(cond));
                let then_guard = compose_guard(guard, cond.clone());
                let else_guard =
                    compose_guard(guard, Expr::Unary(UnOp::Not, Box::new(cond.clone())));
                walk(em, then_body, &then_guard, after_i)?;
                if !else_body.is_empty() {
                    walk(em, else_body, &else_guard, after_i)?;
                }
            }
            Stmt::For { var, init, bound, step, body, pragma: None }
                if s.contains_pragma_loop() || s.contains_sync() =>
            {
                // A sequential loop enclosing parallel sections runs on
                // every thread so barriers inside stay uniform.
                let mut deps = Emitter::expr_vars(init);
                deps.extend(Emitter::expr_vars(bound));
                deps.extend(Emitter::expr_vars(step));
                em.ensure_available(deps);
                em.flush_guarded();
                let mut body_after = after_i.clone();
                body_after.extend(scalars_read(body));
                let mut inner = Emitter {
                    out: Vec::new(),
                    pending_guarded: Vec::new(),
                    pending_guard: None,
                    top_decls: Vec::new(),
                    top_decl_names: em.top_decl_names.clone(),
                    types: em.types.clone(),
                    redundant: em.redundant.clone(),
                    available: em.available.clone(),
                    report: std::mem::take(&mut em.report),
                    map: em.map,
                    use_shfl: em.use_shfl,
                    redundant_enabled: em.redundant_enabled,
                    serial_below: em.serial_below,
                    loop_comm: em.loop_comm.clone(),
                    pragma_loop_index: em.pragma_loop_index,
                    relocated_arrays: em.relocated_arrays.clone(),
                    scan_counter: em.scan_counter,
                };
                walk(&mut inner, body, guard, &body_after)?;
                inner.flush_guarded();
                em.report = std::mem::take(&mut inner.report);
                em.pragma_loop_index = inner.pragma_loop_index;
                em.scan_counter = inner.scan_counter;
                em.available = inner.available;
                em.top_decl_names = inner.top_decl_names;
                for d in inner.top_decls {
                    em.top_decls.push(d);
                }
                em.available.insert(var.clone());
                em.out.push(Stmt::For {
                    var: var.clone(),
                    init: init.clone(),
                    bound: bound.clone(),
                    step: step.clone(),
                    body: inner.out,
                    pragma: None,
                });
            }
            Stmt::SyncThreads => em.emit_unguarded(Stmt::SyncThreads),
            Stmt::DeclArray { .. } => em.emit_unguarded(s.clone()),
            Stmt::DeclScalar { name, ty, init } => {
                em.types.insert(name.clone(), *ty);
                match init {
                    Some(_)
                        if em.redundant_enabled
                            && guard.is_none()
                            && em.redundant.contains(name) =>
                    {
                        em.emit_unguarded(s.clone());
                        em.available.insert(name.clone());
                        em.report.redundant.push(name.clone());
                    }
                    Some(e) => {
                        em.emit_unguarded(Stmt::DeclScalar {
                            name: name.clone(),
                            ty: *ty,
                            init: None,
                        });
                        em.emit_guarded(
                            guard,
                            Stmt::Assign { name: name.clone(), value: e.clone() },
                        );
                        em.available.remove(name);
                    }
                    None => em.emit_unguarded(s.clone()),
                }
            }
            Stmt::Assign { name, .. } => {
                if em.redundant_enabled && guard.is_none() && em.redundant.contains(name) {
                    em.emit_unguarded(s.clone());
                    em.available.insert(name.clone());
                    em.report.redundant.push(name.clone());
                } else {
                    em.emit_guarded(guard, s.clone());
                    em.available.remove(name);
                }
            }
            Stmt::Store { .. } => em.emit_guarded(guard, s.clone()),
            Stmt::If { .. } | Stmt::For { .. } => {
                // Plain sequential control flow without barriers or pragma
                // loops: master-only as a unit.
                for w in np_kernel_ir::analysis::scalars_written(std::slice::from_ref(s)) {
                    em.available.remove(&w);
                }
                em.emit_guarded(guard, s.clone());
            }
        }
    }
    Ok(())
}

/// Does any statement in `stmts` load or store one of `arrays`?
fn touches_arrays(stmts: &[Stmt], arrays: &BTreeSet<String>) -> bool {
    if arrays.is_empty() {
        return false;
    }
    let mut found = false;
    visit_stmts(stmts, &mut |s| {
        if let Stmt::Store { array, .. } = s {
            if arrays.contains(array) {
                found = true;
            }
        }
        for e in s.exprs() {
            e.visit(&mut |e| {
                if let Expr::Load { array, .. } = e {
                    if arrays.contains(array) {
                        found = true;
                    }
                }
            });
        }
    });
    found
}

fn compose_guard(guard: &Option<Expr>, cond: Expr) -> Option<Expr> {
    Some(match guard {
        Some(g) => land(g.clone(), cond),
        None => cond,
    })
}

fn emit_parallel_loop(
    em: &mut Emitter,
    s: &Stmt,
    guard: &Option<Expr>,
    after: &BTreeSet<String>,
) -> Result<(), TransformError> {
    let Stmt::For { var, init, bound, step, body, pragma: Some(pragma) } = s else {
        unreachable!()
    };
    if *step != Expr::ImmI32(1) {
        return Err(TransformError::NonCanonicalLoop(format!(
            "loop over {var:?} must have unit step"
        )));
    }
    if body.iter().any(Stmt::contains_pragma_loop) {
        return Err(TransformError::NonCanonicalLoop(format!(
            "nested `np parallel for` inside loop over {var:?} is not supported"
        )));
    }
    if np_kernel_ir::stmt::contains_sync(body) {
        return Err(TransformError::NonCanonicalLoop(format!(
            "`__syncthreads` inside parallel loop over {var:?}"
        )));
    }
    let loop_idx = em.pragma_loop_index;
    em.pragma_loop_index += 1;

    // Adaptive gating (cost-model-guided): a loop too short to amortize the
    // group communication runs serially on the master — the pragma is
    // stripped and the loop becomes ordinary master-only sequential code,
    // exactly like the plain control-flow arm of `walk`. Live-outs land in
    // master registers only, so everything the loop writes leaves the
    // slave-visible set (a later parallel loop re-broadcasts on demand).
    if let Some(threshold) = em.serial_below {
        if let Some(trip) = np_kernel_ir::analysis::static_trip_count(init, bound) {
            if trip < threshold && !touches_arrays(body, &em.relocated_arrays) {
                for w in np_kernel_ir::analysis::scalars_written(std::slice::from_ref(s)) {
                    em.available.remove(&w);
                }
                em.emit_guarded(
                    guard,
                    Stmt::For {
                        var: var.clone(),
                        init: init.clone(),
                        bound: bound.clone(),
                        step: step.clone(),
                        body: body.clone(),
                        pragma: None,
                    },
                );
                em.report.gated_loops.push((var.clone(), trip));
                return Ok(());
            }
        }
    }

    // The hybrid hook: this loop's broadcast/reduction/scan scheme may
    // deviate from the kernel-wide choice. Restored below; error paths
    // abort the whole transform, so they need no unwinding.
    let kernel_shfl = em.use_shfl;
    if let Some(&sh) = em.loop_comm.get(&loop_idx) {
        em.use_shfl = sh;
        em.report.comm_overrides.push((loop_idx, sh));
    }

    let s_count = em.map.slave_size;

    // Which scalars must reach the slaves?
    let special: BTreeSet<String> = pragma
        .reductions
        .iter()
        .chain(pragma.scans.iter())
        .map(|(_, n)| n.clone())
        .chain(pragma.select_out.iter().cloned())
        .collect();
    let mut live_in = live_in_of_loop(body, bound, var);
    live_in.extend(Emitter::expr_vars(init));
    live_in.extend(pragma.copy_in.iter().cloned());
    live_in.retain(|n| !special.contains(n));
    em.ensure_available(live_in);

    // Validate live-outs are all covered by clauses.
    let mut live_out = live_out_candidates(body, var);
    live_out.retain(|n| after.contains(n));
    for lo in &live_out {
        if !special.contains(lo) {
            return Err(TransformError::UnhandledLiveOut(lo.clone()));
        }
    }

    // Reduction variables: slaves start from the identity.
    for (op, rvar) in &pragma.reductions {
        let ty = em.ty_of(rvar);
        em.emit_unguarded(slave_identity_init(rvar, *op, ty));
    }
    // Select variables: everyone starts from zero; one iteration writes.
    for svar in &pragma.select_out {
        let ty = em.ty_of(svar);
        em.emit_unguarded(Stmt::Assign {
            name: svar.clone(),
            value: identity_expr(RedOp::Add, ty),
        });
    }

    let guarded_body = |body: Vec<Stmt>| -> Vec<Stmt> {
        match guard {
            Some(g) => vec![Stmt::If { cond: g.clone(), then_body: body, else_body: vec![] }],
            None => body,
        }
    };

    if pragma.scans.is_empty() {
        // Cyclic distribution (Figure 3b): i = init + slave_id; i += S.
        em.emit_unguarded(Stmt::For {
            var: var.clone(),
            init: init.clone() + v(SLAVE_ID),
            bound: bound.clone(),
            step: Expr::ImmI32(s_count as i32),
            body: guarded_body(body.clone()),
            pragma: None,
        });
    } else {
        emit_scan_loop(em, var, init, bound, body, pragma, guard)?;
    }

    // Collect live-outs.
    for (op, rvar) in &pragma.reductions {
        let ty = em.ty_of(rvar);
        let (decls, code) = reduce_var(&em.map, em.use_shfl, rvar, ty, *op);
        for d in decls {
            em.add_top_decl(d);
        }
        for c in code {
            em.emit_unguarded(c);
        }
        em.available.insert(rvar.clone());
        em.report.reductions.push((rvar.clone(), *op));
    }
    for svar in &pragma.select_out {
        let ty = em.ty_of(svar);
        let (decls, code) = reduce_var(&em.map, em.use_shfl, svar, ty, RedOp::Add);
        for d in decls {
            em.add_top_decl(d);
        }
        for c in code {
            em.emit_unguarded(c);
        }
        em.available.insert(svar.clone());
        em.report.selects.push(svar.clone());
    }
    // The iterator's exit value differs across slaves.
    em.available.remove(var);
    em.use_shfl = kernel_shfl;
    Ok(())
}

/// Blocked-distribution scan loop (three phases; see `crate::scan`).
#[allow(clippy::too_many_arguments)]
fn emit_scan_loop(
    em: &mut Emitter,
    var: &str,
    init: &Expr,
    bound: &Expr,
    body: &[Stmt],
    pragma: &NpPragma,
    guard: &Option<Expr>,
) -> Result<(), TransformError> {
    if *init != Expr::ImmI32(0) {
        return Err(TransformError::NonCanonicalLoop(format!(
            "scan loop over {var:?} must start at 0"
        )));
    }
    for (op, _) in &pragma.scans {
        if *op != RedOp::Add {
            return Err(TransformError::ScanNotSliceable(
                "only additive scans are supported".into(),
            ));
        }
    }
    let s_count = em.map.slave_size as i32;
    let id = em.scan_counter;
    em.scan_counter += 1;

    // chunk = ceil(bound / S)
    let chunk = format!("__np_chunk_{id}");
    em.emit_unguarded(Stmt::DeclScalar {
        name: chunk.clone(),
        ty: Scalar::I32,
        init: Some((bound.clone() + Expr::ImmI32(s_count - 1)) / Expr::ImmI32(s_count)),
    });
    let blk_init = v(SLAVE_ID) * v(&chunk);
    let blk_bound = min((v(SLAVE_ID) + Expr::ImmI32(1)) * v(&chunk), bound.clone());

    let guarded = |body: Vec<Stmt>, guard: &Option<Expr>| -> Vec<Stmt> {
        match guard {
            Some(g) => vec![Stmt::If { cond: g.clone(), then_body: body, else_body: vec![] }],
            None => body,
        }
    };

    for (_, svar) in &pragma.scans {
        let ty = em.ty_of(svar);
        let vars = scan_vars(svar);

        // Every thread needs the master's initial value of the scan var.
        em.ensure_available([svar.clone()]);
        let init_copy = format!("__np_scan_init_{svar}");
        em.emit_unguarded(Stmt::DeclScalar {
            name: init_copy.clone(),
            ty,
            init: Some(v(svar)),
        });

        // Phase 1: per-chunk totals via the sliced body.
        em.emit_unguarded(Stmt::DeclScalar {
            name: vars.total.clone(),
            ty,
            init: Some(identity_expr(RedOp::Add, ty)),
        });
        let slice = scan_slice(body, svar, &vars.total)?;
        em.emit_unguarded(Stmt::For {
            var: var.to_string(),
            init: blk_init.clone(),
            bound: blk_bound.clone(),
            step: Expr::ImmI32(1),
            body: guarded(slice, guard),
            pragma: None,
        });

        // Phase 2: exclusive scan of the totals across the group.
        let (decls, code) = exclusive_scan(&em.map, em.use_shfl, svar, ty);
        for d in decls {
            em.add_top_decl(d);
        }
        for c in code {
            em.emit_unguarded(c);
        }

        // Phase 3 setup: offset the scan variable for this chunk.
        em.emit_unguarded(Stmt::Assign {
            name: svar.clone(),
            value: combine_expr(RedOp::Add, v(&init_copy), v(&vars.offset)),
        });
        em.report.scans.push(svar.clone());
    }

    // The real loop over this slave's chunk.
    em.emit_unguarded(Stmt::For {
        var: var.to_string(),
        init: blk_init,
        bound: blk_bound,
        step: Expr::ImmI32(1),
        body: guarded(body.to_vec(), guard),
        pragma: None,
    });

    // After the loop every thread holds the grand total.
    for (_, svar) in &pragma.scans {
        let vars = scan_vars(svar);
        let init_copy = format!("__np_scan_init_{svar}");
        em.emit_unguarded(Stmt::Assign {
            name: svar.clone(),
            value: combine_expr(RedOp::Add, v(&init_copy), v(&vars.grand)),
        });
        em.available.insert(svar.clone());
    }

    Ok(())
}
