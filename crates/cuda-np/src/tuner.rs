//! Auto-tuning (Section 4): CUDA-NP generates a small number of versions —
//! slave counts × {inter-warp, intra-warp} — and picks the fastest by
//! running each on the simulator. Candidates are evaluated on a bounded
//! pool of host threads (`min(available_parallelism, candidates)`) via
//! `crossbeam::scope` since each simulation is independent; results are
//! collected into per-candidate slots so [`TuneResult::entries`] stays in
//! candidate order regardless of which worker finished first.

use crate::costmodel::{CostModel, TunePolicy};
use crate::options::{NpOptions, TransformError};
use crate::transform::{transform, Transformed};
use np_exec::{capture_launch, Args, ExecError, KernelReport, SimFault, SimOptions};
use np_gpu_sim::{CapturedLaunch, DeviceConfig};
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::pragma::NpType;
use np_kernel_ir::types::Dim3;

/// One configuration to evaluate.
#[derive(Debug, Clone)]
pub struct TuneCandidate {
    pub opts: NpOptions,
}

/// Why a candidate's launch never produced a report. Carrying the typed
/// cause (instead of a rendered string) lets serve and the harness classify
/// failures without string matching; [`LaunchFailure::class`] is the stable
/// classification key.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum LaunchFailure {
    /// Launch setup failed with a typed executor error (missing argument,
    /// argument type mismatch, occupancy rejection, replay error, ...).
    Exec(ExecError),
    /// The worker thread evaluating this candidate panicked — a harness or
    /// simulator bug, recorded with the candidate's identity.
    WorkerPanic {
        np_type: NpType,
        slave_size: u32,
        message: String,
    },
}

impl LaunchFailure {
    /// Stable machine-readable class of this failure, for dashboards and
    /// serve payloads (no string matching on rendered messages).
    pub fn class(&self) -> &'static str {
        match self {
            LaunchFailure::Exec(ExecError::MissingArg(_)) => "missing_arg",
            LaunchFailure::Exec(ExecError::ArgTypeMismatch { .. }) => "arg_type_mismatch",
            LaunchFailure::Exec(ExecError::Launch(_)) => "launch",
            LaunchFailure::Exec(ExecError::Replay(_)) => "replay",
            LaunchFailure::Exec(_) => "exec",
            LaunchFailure::WorkerPanic { .. } => "worker_panic",
        }
    }
}

impl std::fmt::Display for LaunchFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchFailure::Exec(e) => write!(f, "{e}"),
            LaunchFailure::WorkerPanic { np_type, slave_size, message } => write!(
                f,
                "tuner worker panicked evaluating {np_type:?} slave_size={slave_size}: {message}"
            ),
        }
    }
}

/// How one candidate's evaluation ended. Non-exhaustive: new failure
/// classes may be added, so downstream matches need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum TuneOutcome {
    /// Ran to completion in this many simulated cycles.
    Ok { cycles: u64 },
    /// The transform rejected the configuration (e.g. block too large for
    /// this slave count) — expected pruning, not a kernel bug.
    Rejected(TransformError),
    /// The sanitizer detected a contract violation in the generated kernel
    /// (out-of-bounds access, race, divergent barrier, watchdog, ...).
    Faulted(SimFault),
    /// Launch setup failed (missing argument, occupancy) or the worker
    /// thread itself died — a harness problem rather than a kernel fault.
    LaunchFailed(LaunchFailure),
    /// The cost model pruned this candidate before evaluation (non-default
    /// [`TunePolicy`] only): never transformed, never simulated.
    Skipped,
}

impl TuneOutcome {
    fn from_launch_err(e: ExecError) -> Self {
        match e {
            ExecError::Fault(f) => TuneOutcome::Faulted(*f),
            other => TuneOutcome::LaunchFailed(LaunchFailure::Exec(other)),
        }
    }
}

impl std::fmt::Display for TuneOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneOutcome::Ok { cycles } => write!(f, "ok ({cycles} cycles)"),
            TuneOutcome::Rejected(e) => write!(f, "rejected: {e}"),
            TuneOutcome::Faulted(fault) => write!(f, "faulted: {fault}"),
            TuneOutcome::LaunchFailed(err) => write!(f, "launch failed: {err}"),
            TuneOutcome::Skipped => write!(f, "skipped (pruned by cost model)"),
        }
    }
}

/// Outcome of evaluating one candidate.
#[derive(Debug, Clone)]
pub struct TuneEntry {
    pub slave_size: u32,
    pub np_type: NpType,
    pub outcome: TuneOutcome,
    /// Launch-total profile counters when the candidate ran to completion —
    /// the evidence `npcc --explain` uses to say *why* the winner won.
    pub profile: Option<np_gpu_sim::ProfileCounters>,
    /// Device-wide stall breakdown from the timeline flight recorder, when
    /// the candidate ran to completion (buckets sum to
    /// `simulated_cycles × SMX count`).
    pub stall: Option<np_gpu_sim::StallBreakdown>,
}

impl TuneEntry {
    /// Simulated cycles; `None` unless the candidate ran to completion.
    pub fn cycles(&self) -> Option<u64> {
        match self.outcome {
            TuneOutcome::Ok { cycles } => Some(cycles),
            _ => None,
        }
    }

    /// The sanitizer fault, when this candidate's kernel violated the
    /// CUDA contract.
    pub fn fault(&self) -> Option<&SimFault> {
        match &self.outcome {
            TuneOutcome::Faulted(f) => Some(f),
            _ => None,
        }
    }
}

/// Why an entire auto-tuning run produced no winner. Individual candidate
/// failures are *not* errors — they become [`TuneEntry`] rows and tuning
/// continues; this error means there was nothing left to pick from.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum TuneError {
    /// The candidate set was empty.
    NoCandidates,
    /// Every candidate was rejected, faulted, or failed to launch. The
    /// entries record each candidate's outcome.
    AllFailed(Vec<TuneEntry>),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NoCandidates => write!(f, "no tuning candidates to evaluate"),
            TuneError::AllFailed(entries) => {
                write!(f, "all {} tuning candidates failed:", entries.len())?;
                for e in entries {
                    write!(
                        f,
                        " [{:?} s={}: {}]",
                        e.np_type, e.slave_size, e.outcome
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TuneError {}

/// Result of an auto-tuning run.
#[derive(Debug)]
pub struct TuneResult {
    /// The fastest transformed kernel.
    pub best: Transformed,
    /// Its launch report.
    pub best_report: KernelReport,
    /// The winner's captured interpretation: the frozen block traces its
    /// report was timed from. Re-timing the winner (different watchdog,
    /// artifact export, cache warm-up) replays this instead of
    /// re-interpreting the kernel.
    pub best_capture: CapturedLaunch,
    /// Every candidate's outcome, in candidate order.
    pub entries: Vec<TuneEntry>,
    /// Index of the winner in `entries` (== candidate order). Equal-cycle
    /// ties break toward the *earliest* candidate — an asserted contract,
    /// not an accident of pool scheduling.
    pub best_index: usize,
}

/// A [`TuneResult`] plus the search-policy bookkeeping: how many candidates
/// were actually simulated, how many the cost model skipped, whether a
/// model miss forced the exhaustive fallback, and where the measured winner
/// sat in the model's static ranking (0 = predicted first).
#[derive(Debug)]
pub struct PolicyTuneResult {
    pub result: TuneResult,
    /// The policy that produced this result.
    pub policy: TunePolicy,
    /// Candidates transformed + simulated (includes fallback rounds).
    pub evaluated: usize,
    /// Candidates the cost model pruned (their entries are `Skipped`).
    pub skipped: usize,
    /// A model miss (no runnable winner in the kept set, or an inverted
    /// prediction) forced evaluating the remaining candidates.
    pub fell_back: bool,
    /// 0-based rank the *static* cost model gave the measured winner.
    /// `None` when the model could not score the candidate set.
    pub predicted_rank: Option<usize>,
}

/// The paper's default search space: slave sizes {2, 4, 8, 16, 32} crossed
/// with inter-/intra-warp, filtered by the block-size cap and intra-warp
/// warp-containment.
pub fn default_candidates(master_size: u32, max_block_threads: u32) -> Vec<TuneCandidate> {
    let mut out = Vec::new();
    for s in [2u32, 4, 8, 16, 32] {
        if master_size * s > max_block_threads {
            continue;
        }
        out.push(TuneCandidate { opts: NpOptions::inter(s) });
        if s <= 32 {
            out.push(TuneCandidate { opts: NpOptions::intra(s) });
        }
    }
    out
}

/// Candidate set narrowed by the developer's pragma hints (Section 3.6):
/// `num_threads(N)` pins the slave count, `np_type(inter|intra)` pins the
/// distribution scheme, and `sm(V)` sets the target compute capability for
/// every candidate. Hints are taken from the first pragma loop that
/// specifies each of them; without hints this equals
/// [`default_candidates`].
pub fn candidates_from_pragmas(kernel: &Kernel, max_block_threads: u32) -> Vec<TuneCandidate> {
    use np_kernel_ir::stmt::{visit_stmts, Stmt};
    let mut num_threads: Option<u32> = None;
    let mut np_type: Option<NpType> = None;
    let mut sm: Option<u32> = None;
    visit_stmts(&kernel.body, &mut |s| {
        if let Stmt::For { pragma: Some(p), .. } = s {
            num_threads = num_threads.or(p.num_threads);
            np_type = np_type.or(p.np_type);
            sm = sm.or(p.sm_version);
        }
    });
    let mut out = default_candidates(kernel.block_dim.x, max_block_threads);
    if let Some(n) = num_threads {
        out.retain(|c| c.opts.slave_size == n);
        if out.is_empty() {
            // A hinted size outside the default grid is still honoured.
            out.push(TuneCandidate { opts: NpOptions::inter(n) });
            if n.is_power_of_two() && n <= 32 {
                out.push(TuneCandidate { opts: NpOptions::intra(n) });
            }
        }
    }
    if let Some(t) = np_type {
        out.retain(|c| c.opts.np_type == t);
    }
    if let Some(v) = sm {
        for c in &mut out {
            c.opts.sm_version = v;
        }
    }
    out
}

/// Evaluate every candidate and return the fastest. `make_args` builds the
/// launch arguments for one transformed kernel (it must allocate the
/// `extra_global_buffers` named in the transform report — helper:
/// [`alloc_extra_buffers`]).
///
/// Candidates whose transform is rejected, whose generated kernel faults
/// under the sanitizer, or whose launch fails are recorded as typed
/// [`TuneEntry`] rows and skipped; tuning continues with the remaining
/// candidates and errors only if *every* candidate fails (or the set is
/// empty). A worker thread dying never aborts the run: its candidate is
/// recorded as failed.
pub fn autotune(
    kernel: &Kernel,
    dev: &DeviceConfig,
    grid: Dim3,
    make_args: &(dyn Fn(&Transformed) -> Args + Sync),
    sim: &SimOptions,
    candidates: &[TuneCandidate],
) -> Result<TuneResult, TuneError> {
    if candidates.is_empty() {
        return Err(TuneError::NoCandidates);
    }
    let _tune_span = np_obs::span("tune");
    let all: Vec<usize> = (0..candidates.len()).collect();
    let mut evals = evaluate_indices(kernel, dev, grid, make_args, sim, candidates, &all);

    let mut slots: Vec<Option<EvalSlot>> = Vec::new();
    let mut entries: Vec<TuneEntry> = Vec::new();
    for (cand, cell) in candidates.iter().zip(evals.drain(..)) {
        let (outcome, slot) = cell;
        record_outcome(cand, &outcome);
        entries.push(entry_of(cand, outcome, slot.as_ref()));
        slots.push(slot);
    }

    finish(entries, slots)
}

/// Evaluate only the candidates the cost model keeps, falling back to the
/// rest of the sweep on a model miss — the safety net that makes `Pruned`
/// and `Predict` unable to return a slower winner than the candidates they
/// evaluated could justify.
///
/// Under [`TunePolicy::Exhaustive`] this is exactly [`autotune`] (same
/// simulations, same observability log) plus the policy bookkeeping.
/// `Pruned { margin }` evaluates the statically-scored shortlist;
/// `Predict` evaluates the predicted winner as a pilot, refines the model
/// with the pilot's measured counters, then evaluates the refined
/// shortlist. In every policy the fallback triggers when the evaluated set
/// produced no runnable winner, or when the measured winner was the
/// *worst*-predicted of the evaluated set (an inverted model is not to be
/// trusted about the candidates it skipped).
pub fn autotune_with_policy(
    kernel: &Kernel,
    dev: &DeviceConfig,
    grid: Dim3,
    make_args: &(dyn Fn(&Transformed) -> Args + Sync),
    sim: &SimOptions,
    candidates: &[TuneCandidate],
    policy: TunePolicy,
) -> Result<PolicyTuneResult, TuneError> {
    if candidates.is_empty() {
        return Err(TuneError::NoCandidates);
    }
    let model = CostModel::from_kernel(kernel, dev);
    let ranking = model.rank(candidates);

    if policy.is_exhaustive() {
        let result = autotune(kernel, dev, grid, make_args, sim, candidates)?;
        let predicted_rank = ranking.iter().position(|&i| i == result.best_index);
        return Ok(PolicyTuneResult {
            evaluated: result.entries.len(),
            skipped: 0,
            fell_back: false,
            predicted_rank,
            policy,
            result,
        });
    }

    let _tune_span = np_obs::span("tune");
    np_obs::event(
        np_obs::Level::Debug,
        "tune.policy",
        vec![np_obs::kv("policy", policy.label())],
    );

    // Round 1: the policy's kept set, in candidate order.
    let keep: Vec<usize> = match policy {
        TunePolicy::Exhaustive => unreachable!("handled above"),
        TunePolicy::Pruned { margin } => model.keep_within(candidates, margin),
        TunePolicy::Predict => {
            // Pilot = the model's static first choice (best finite score).
            ranking
                .iter()
                .copied()
                .find(|&i| model.score(&candidates[i]).is_finite())
                .map(|i| vec![i])
                .unwrap_or_else(|| (0..candidates.len()).collect())
        }
    };
    let mut evaluated: Vec<Option<(TuneOutcome, Option<EvalSlot>)>> =
        candidates.iter().map(|_| None).collect();
    let run_round = |idx: &[usize],
                         evaluated: &mut Vec<Option<(TuneOutcome, Option<EvalSlot>)>>| {
        let fresh: Vec<usize> = idx.iter().copied().filter(|&i| evaluated[i].is_none()).collect();
        let results = evaluate_indices(kernel, dev, grid, make_args, sim, candidates, &fresh);
        for (i, r) in fresh.into_iter().zip(results) {
            evaluated[i] = Some(r);
        }
    };
    run_round(&keep, &mut evaluated);

    // Predict round 2: refine the model with the pilot's measured counters
    // and evaluate the refined shortlist (usually 1-2 more candidates).
    // The refined model also prices promotions below, so the pilot's
    // counters inform which skipped candidates still look threatening.
    let mut scoring = model.clone();
    if matches!(policy, TunePolicy::Predict) {
        if let Some(&pilot) = keep.first() {
            if let Some((TuneOutcome::Ok { .. }, Some(slot))) = &evaluated[pilot] {
                scoring.refine(&slot.1.profile.total, &slot.1.timing.stall);
            }
        }
        let shortlist: Vec<usize> = scoring
            .rank(candidates)
            .into_iter()
            .filter(|&i| scoring.score(&candidates[i]).is_finite())
            .take(2)
            .collect();
        run_round(&shortlist, &mut evaluated);
    }

    // Promotion loop — the mechanism that makes pruning *safe* rather than
    // hopeful. The model ranks candidates well, but its absolute scale
    // drifts per workload (score/cycles ranges roughly 0.4–4x across the
    // Table-1 kernels), so "score < measured best" would trust the model
    // exactly where it is weakest. Instead the loop calibrates the scale
    // online: every evaluated candidate yields an observed score/cycles
    // ratio, and a skipped candidate is left unmeasured only if its score
    // clears the measured winner scaled by the *largest* observed ratio
    // times a safety factor — i.e. even under the most pessimistic
    // score-inflation seen on this very workload it still couldn't win.
    // Each round evaluates at least one fresh candidate, so the loop runs
    // at most `candidates.len()` times. If the kept set produced no
    // runnable winner at all, fall back to the full sweep instead.
    const PROMOTE_SAFETY: f64 = 1.5;
    let measured_best_cycles = |evaluated: &[Option<(TuneOutcome, Option<EvalSlot>)>]| {
        evaluated
            .iter()
            .filter_map(|r| match r {
                Some((TuneOutcome::Ok { cycles }, _)) => Some(*cycles),
                _ => None,
            })
            .min()
    };
    let mut fell_back = false;
    loop {
        match measured_best_cycles(&evaluated) {
            None => {
                fell_back = true;
                let rest: Vec<usize> = (0..candidates.len()).collect();
                run_round(&rest, &mut evaluated);
                break;
            }
            Some(best_cycles) => {
                let max_ratio = (0..candidates.len())
                    .filter_map(|i| match &evaluated[i] {
                        Some((TuneOutcome::Ok { cycles }, _)) if *cycles > 0 => {
                            let s = scoring.score(&candidates[i]);
                            s.is_finite().then_some(s / *cycles as f64)
                        }
                        _ => None,
                    })
                    .fold(0.0f64, f64::max);
                let threshold = best_cycles as f64 * max_ratio * PROMOTE_SAFETY;
                let promote: Vec<usize> = (0..candidates.len())
                    .filter(|&i| {
                        evaluated[i].is_none()
                            && scoring.score(&candidates[i]) < threshold
                    })
                    .collect();
                if promote.is_empty() {
                    break;
                }
                run_round(&promote, &mut evaluated);
            }
        }
    }

    let mut slots: Vec<Option<EvalSlot>> = Vec::new();
    let mut entries: Vec<TuneEntry> = Vec::new();
    let mut n_evaluated = 0usize;
    for (i, cand) in candidates.iter().enumerate() {
        let (outcome, slot) = match evaluated[i].take() {
            Some(r) => {
                n_evaluated += 1;
                r
            }
            None => (TuneOutcome::Skipped, None),
        };
        record_outcome(cand, &outcome);
        entries.push(entry_of(cand, outcome, slot.as_ref()));
        slots.push(slot);
    }
    np_obs::event(
        np_obs::Level::Debug,
        "tune.policy.summary",
        vec![
            np_obs::kv("evaluated", n_evaluated as u64),
            np_obs::kv("skipped", (candidates.len() - n_evaluated) as u64),
            np_obs::kv("fell_back", if fell_back { "true" } else { "false" }),
        ],
    );
    let result = finish(entries, slots)?;
    let predicted_rank = ranking.iter().position(|&i| i == result.best_index);
    Ok(PolicyTuneResult {
        evaluated: n_evaluated,
        skipped: candidates.len() - n_evaluated,
        fell_back,
        predicted_rank,
        policy,
        result,
    })
}

type EvalSlot = (Transformed, KernelReport, CapturedLaunch);

/// Evaluate the candidates at `indices` on a bounded pool and return their
/// results in `indices` order. Observability: each evaluation records into
/// its own forked recorder; after the pool joins, forks are adopted back in
/// `indices` order — the merged log is a pure function of the index list,
/// never of OS scheduling.
fn evaluate_indices(
    kernel: &Kernel,
    dev: &DeviceConfig,
    grid: Dim3,
    make_args: &(dyn Fn(&Transformed) -> Args + Sync),
    sim: &SimOptions,
    candidates: &[TuneCandidate],
    indices: &[usize],
) -> Vec<(TuneOutcome, Option<EvalSlot>)> {
    type CandResult = (TuneOutcome, Option<EvalSlot>);
    if indices.is_empty() {
        return Vec::new();
    }
    let obs = np_obs::current();
    let forks: Vec<Option<np_obs::Recorder>> = indices
        .iter()
        .map(|_| obs.as_ref().map(|o| o.rec.fork()))
        .collect();

    // A bounded pool, not one OS thread per candidate: workers claim
    // positions off a shared counter and park each result in that
    // position's slot, so result order is `indices` order no matter how
    // evaluations interleave.
    let n_workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(indices.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<CandResult>>> =
        indices.iter().map(|_| std::sync::Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|_| loop {
                let pos = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&ci) = indices.get(pos) else { break };
                let cand = &candidates[ci];
                let eval = || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> CandResult {
                        let _cand_span = np_obs::span("tune.candidate");
                        let t = match transform(kernel, &cand.opts) {
                            Ok(t) => t,
                            Err(e) => return (TuneOutcome::Rejected(e), None),
                        };
                        let mut args = make_args(&t);
                        // One interpretation per candidate; the report is
                        // timed from the frozen capture, which the winner
                        // carries out so later re-timings replay instead of
                        // re-interpreting.
                        match capture_launch(dev, &t.kernel, grid, &mut args, sim) {
                            Ok((rep, cap)) => {
                                let cycles = rep.cycles;
                                (TuneOutcome::Ok { cycles }, Some((t, rep, cap)))
                            }
                            Err(e) => (TuneOutcome::from_launch_err(e), None),
                        }
                    }))
                };
                let run = match &forks[pos] {
                    Some(fork) => np_obs::scope(
                        fork,
                        obs.as_ref().and_then(|o| o.registry.as_ref()),
                        obs.as_ref().and_then(|o| o.corr.as_deref()),
                        eval,
                    ),
                    None => eval(),
                };
                // A worker can only panic through a bug in make_args or the
                // simulator itself; record which candidate died (and what it
                // said) and keep tuning.
                let result = run.unwrap_or_else(|payload| {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    (
                        TuneOutcome::LaunchFailed(LaunchFailure::WorkerPanic {
                            np_type: cand.opts.np_type,
                            slave_size: cand.opts.slave_size,
                            message,
                        }),
                        None,
                    )
                });
                *results[pos].lock().expect("tuner slot lock") = Some(result);
            });
        }
    })
    // Internal invariant: the shim's scope only errors on an unjoined child
    // panic, and every worker's panics are caught above.
    .expect("tuner scope");

    // Splice the per-candidate logs back under the tune span, strictly in
    // `indices` order (never completion order).
    if let Some(o) = &obs {
        for fork in forks.iter().flatten() {
            o.rec.adopt(fork, o.parent);
        }
    }

    results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("tuner slot lock")
                .expect("every claimed candidate was evaluated")
        })
        .collect()
}

/// Bump the per-outcome counters and emit the `tune.outcome` event for one
/// candidate — always in candidate order, after the pool has joined.
fn record_outcome(cand: &TuneCandidate, outcome: &TuneOutcome) {
    let label = match outcome {
        TuneOutcome::Ok { .. } => "ok",
        TuneOutcome::Rejected(_) => "rejected",
        TuneOutcome::Faulted(_) => "faulted",
        TuneOutcome::LaunchFailed(_) => "launch_failed",
        TuneOutcome::Skipped => "skipped",
    };
    np_obs::bump("tuner.candidates.total");
    np_obs::bump(&format!("tuner.candidates.{label}"));
    let mut fields = vec![
        np_obs::kv("slave_size", cand.opts.slave_size),
        np_obs::kv("np_type", format!("{:?}", cand.opts.np_type)),
        np_obs::kv("outcome", label),
    ];
    if let TuneOutcome::Ok { cycles } = outcome {
        fields.push(np_obs::kv("cycles", *cycles));
    }
    np_obs::event(np_obs::Level::Debug, "tune.outcome", fields);
}

fn entry_of(cand: &TuneCandidate, outcome: TuneOutcome, slot: Option<&EvalSlot>) -> TuneEntry {
    TuneEntry {
        slave_size: cand.opts.slave_size,
        np_type: cand.opts.np_type,
        outcome,
        profile: slot.map(|(_, rep, _)| rep.profile.total.clone()),
        stall: slot.map(|(_, rep, _)| rep.timing.stall.clone()),
    }
}

/// Pick the winner out of the completed entries: fewest cycles, equal-cycle
/// ties broken toward the earliest candidate in declared order.
fn finish(
    entries: Vec<TuneEntry>,
    mut slots: Vec<Option<EvalSlot>>,
) -> Result<TuneResult, TuneError> {
    let best_idx = entries
        .iter()
        .enumerate()
        .filter_map(|(i, e)| e.cycles().map(|c| (i, c)))
        .min_by_key(|&(_, c)| c)
        .map(|(i, _)| i);
    let Some(best_idx) = best_idx else {
        return Err(TuneError::AllFailed(entries));
    };
    // The tie-break contract: no earlier candidate may match the winning
    // cycle count (min_by_key keeps the first minimum; this assertion makes
    // that behaviour a tested invariant rather than an accident).
    debug_assert_eq!(
        entries.iter().position(|e| e.cycles() == entries[best_idx].cycles()),
        Some(best_idx),
        "equal-cycle ties must break toward the earliest candidate"
    );
    // Internal invariant: an Ok entry always has its (Transformed, report,
    // capture).
    let (best, best_report, best_capture) = slots[best_idx].take().expect("winner has a slot");
    Ok(TuneResult { best, best_report, best_capture, entries, best_index: best_idx })
}

/// Add the transform's extra global buffers (relocated local arrays) to an
/// argument set, zero-initialized at the right size for `grid`.
pub fn alloc_extra_buffers(mut args: Args, t: &Transformed, grid: Dim3) -> Args {
    for (name, elems_per_block) in &t.report.extra_global_buffers {
        let total = (elems_per_block * grid.count()) as usize;
        args = args.buf_f32(name, vec![0.0; total]);
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::KernelBuilder;

    fn kernel_with_pragma(text: &str) -> Kernel {
        let mut b = KernelBuilder::new("k", 64);
        b.param_global_f32("out");
        b.decl_f32("s", f(0.0));
        b.pragma_for(text, "i", i(0), i(16), |b| {
            b.assign("s", v("s") + f(1.0));
        });
        b.store("out", tidx(), v("s"));
        b.finish()
    }

    #[test]
    fn default_candidates_respect_block_cap() {
        let c = default_candidates(512, 1024);
        assert!(c.iter().all(|c| 512 * c.opts.slave_size <= 1024));
        assert!(!c.is_empty());
    }

    #[test]
    fn num_threads_hint_pins_slave_size() {
        let k = kernel_with_pragma("np parallel for reduction(+:s) num_threads(8)");
        let c = candidates_from_pragmas(&k, 1024);
        assert!(!c.is_empty());
        assert!(c.iter().all(|c| c.opts.slave_size == 8), "{c:?}");
    }

    #[test]
    fn np_type_hint_pins_scheme() {
        let k = kernel_with_pragma("np parallel for reduction(+:s) np_type(intra)");
        let c = candidates_from_pragmas(&k, 1024);
        assert!(!c.is_empty());
        assert!(c.iter().all(|c| c.opts.np_type == NpType::IntraWarp));
    }

    #[test]
    fn sm_hint_propagates_to_all_candidates() {
        let k = kernel_with_pragma("np parallel for reduction(+:s) sm(20)");
        let c = candidates_from_pragmas(&k, 1024);
        assert!(c.iter().all(|c| c.opts.sm_version == 20));
        // sm 20 means intra-warp candidates exist but cannot use shfl.
        assert!(c
            .iter()
            .filter(|c| c.opts.np_type == NpType::IntraWarp)
            .all(|c| !c.opts.shfl_enabled()));
    }

    #[test]
    fn without_hints_equals_default() {
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let c = candidates_from_pragmas(&k, 1024);
        assert_eq!(c.len(), default_candidates(64, 1024).len());
    }

    #[test]
    fn faulting_candidate_is_recorded_and_skipped() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        assert!(candidates.len() > 2, "need a mixed candidate set");
        // Sabotage exactly the slave_size-4 variants: a 1-element output
        // buffer makes their generated kernels store out of bounds.
        let make_args = |t: &Transformed| {
            let n = if t.report.slave_size == 4 { 1 } else { 64 };
            alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; n]), t, grid)
        };
        let r = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
            .expect("non-faulting candidates remain");
        let faulted: Vec<_> = r.entries.iter().filter(|e| e.fault().is_some()).collect();
        assert!(!faulted.is_empty(), "sabotaged candidates must be recorded");
        assert!(faulted.iter().all(|e| e.slave_size == 4), "{faulted:?}");
        assert!(matches!(
            faulted[0].fault().unwrap().kind,
            np_exec::FaultKind::OutOfBounds { .. }
        ));
        assert_ne!(r.best.report.slave_size, 4, "a faulting variant must not win");
        let min = r.entries.iter().filter_map(|e| e.cycles()).min().unwrap();
        assert_eq!(r.best_report.cycles, min, "winner is the fastest clean candidate");
    }

    #[test]
    fn entries_record_profiles_for_completed_candidates() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        let make_args = |t: &Transformed| {
            alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; 64]), t, grid)
        };
        let r = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
            .expect("tuning succeeds");
        for e in &r.entries {
            match &e.outcome {
                TuneOutcome::Ok { .. } => {
                    let p = e.profile.as_ref().expect("completed candidate has counters");
                    assert!(p.instructions > 0);
                    let eff = p.coalescing_efficiency();
                    assert!(eff > 0.0 && eff <= 1.0);
                    let st = e.stall.as_ref().expect("completed candidate has a breakdown");
                    assert!(st.issue > 0, "a completed run must have issued: {st:?}");
                }
                _ => {
                    assert!(e.profile.is_none(), "failed candidate must not carry counters");
                    assert!(e.stall.is_none(), "failed candidate must not carry a breakdown");
                }
            }
        }
        // The winner's entry counters equal the winning report's totals.
        let w = r
            .entries
            .iter()
            .find(|e| e.cycles() == Some(r.best_report.cycles))
            .expect("winner entry");
        assert_eq!(w.profile.as_ref().unwrap(), &r.best_report.profile.total);
    }

    #[test]
    fn panicking_worker_is_recorded_with_candidate_identity() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        assert!(candidates.len() > 2, "need a mixed candidate set");
        // make_args blows up for exactly the inter-warp slave_size-4
        // candidate; every other candidate must still be evaluated.
        let make_args = |t: &Transformed| {
            if t.report.slave_size == 4 && t.report.np_type == Some(NpType::InterWarp) {
                panic!("boom in make_args");
            }
            alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; 64]), t, grid)
        };
        let r = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
            .expect("surviving candidates still produce a winner");
        assert_eq!(r.entries.len(), candidates.len());
        // Entries stay in candidate order.
        for (e, c) in r.entries.iter().zip(&candidates) {
            assert_eq!(e.slave_size, c.opts.slave_size);
            assert_eq!(e.np_type, c.opts.np_type);
        }
        let dead: Vec<_> = r
            .entries
            .iter()
            .filter(|e| matches!(e.outcome, TuneOutcome::LaunchFailed(_)))
            .collect();
        assert_eq!(dead.len(), 1, "{:?}", r.entries);
        assert_eq!(dead[0].slave_size, 4);
        assert_eq!(dead[0].np_type, NpType::InterWarp);
        let TuneOutcome::LaunchFailed(err) = &dead[0].outcome else { unreachable!() };
        // The typed failure carries the candidate identity and the payload…
        assert_eq!(err.class(), "worker_panic");
        assert!(matches!(
            err,
            LaunchFailure::WorkerPanic { np_type: NpType::InterWarp, slave_size: 4, .. }
        ));
        // …and the rendered message keeps the pre-typed wording.
        let msg = err.to_string();
        assert!(msg.contains("slave_size=4"), "{msg}");
        assert!(msg.contains("InterWarp"), "{msg}");
        assert!(msg.contains("boom in make_args"), "{msg}");
        assert!(
            !(r.best.report.np_type == Some(NpType::InterWarp) && r.best.report.slave_size == 4),
            "the panicked candidate must not win"
        );
    }

    #[test]
    fn all_candidates_faulting_is_a_typed_error() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        // Every variant stores past this 1-element output buffer.
        let make_args =
            |t: &Transformed| alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; 1]), t, grid);
        let err = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
            .unwrap_err();
        match err {
            TuneError::AllFailed(entries) => {
                assert_eq!(entries.len(), candidates.len());
                assert!(entries.iter().all(|e| e.fault().is_some()), "{entries:?}");
            }
            other => panic!("expected AllFailed, got {other:?}"),
        }
    }

    #[test]
    fn empty_candidate_set_is_a_typed_error() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let err = autotune(
            &k,
            &dev,
            Dim3::x1(1),
            &|_| Args::new(),
            &SimOptions::full(),
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, TuneError::NoCandidates));
    }

    #[test]
    fn equal_cycle_ties_break_toward_declared_candidate_order() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        // Duplicate configurations: the simulator is deterministic, so the
        // two copies tie exactly — the winner must be the first declared,
        // not whichever worker finished first.
        let one = TuneCandidate { opts: NpOptions::inter(4) };
        let candidates = vec![one.clone(), one.clone(), one];
        let make_args = |t: &Transformed| {
            alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; 64]), t, grid)
        };
        for _ in 0..4 {
            let r = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
                .expect("tuning succeeds");
            let cycles: Vec<_> = r.entries.iter().map(|e| e.cycles().unwrap()).collect();
            assert_eq!(cycles[0], cycles[1]);
            assert_eq!(cycles[1], cycles[2]);
            assert_eq!(r.best_index, 0, "tie must break toward the earliest candidate");
        }
    }

    #[test]
    fn best_index_points_at_the_winning_entry() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        let make_args = |t: &Transformed| {
            alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; 64]), t, grid)
        };
        let r = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
            .expect("tuning succeeds");
        assert_eq!(r.entries[r.best_index].cycles(), Some(r.best_report.cycles));
        // No earlier candidate matches the winning cycles (the tie-break).
        assert!(r.entries[..r.best_index]
            .iter()
            .all(|e| e.cycles() != Some(r.best_report.cycles)));
    }

    #[test]
    fn exhaustive_policy_is_plain_autotune_plus_bookkeeping() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        let make_args = |t: &Transformed| {
            alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; 64]), t, grid)
        };
        let plain = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
            .expect("tuning succeeds");
        let p = autotune_with_policy(
            &k, &dev, grid, &make_args, &SimOptions::full(), &candidates,
            TunePolicy::Exhaustive,
        )
        .expect("tuning succeeds");
        assert_eq!(p.result.best_report.cycles, plain.best_report.cycles);
        assert_eq!(p.result.best_index, plain.best_index);
        assert_eq!(p.evaluated, candidates.len());
        assert_eq!(p.skipped, 0);
        assert!(!p.fell_back);
        assert!(p.predicted_rank.is_some());
    }

    #[test]
    fn pruned_policy_never_picks_a_slower_winner_and_marks_skips() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        let make_args = |t: &Transformed| {
            alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; 64]), t, grid)
        };
        let exhaustive = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
            .expect("tuning succeeds");
        for policy in [
            TunePolicy::Pruned { margin: crate::costmodel::DEFAULT_PRUNE_MARGIN },
            TunePolicy::Predict,
        ] {
            let p = autotune_with_policy(
                &k, &dev, grid, &make_args, &SimOptions::full(), &candidates, policy,
            )
            .expect("tuning succeeds");
            assert!(
                p.result.best_report.cycles <= exhaustive.best_report.cycles,
                "{policy:?} returned a slower winner: {} > {}",
                p.result.best_report.cycles,
                exhaustive.best_report.cycles
            );
            assert_eq!(p.evaluated + p.skipped, candidates.len());
            assert_eq!(p.result.entries.len(), candidates.len());
            let skipped = p
                .result
                .entries
                .iter()
                .filter(|e| matches!(e.outcome, TuneOutcome::Skipped))
                .count();
            assert_eq!(skipped, p.skipped);
            // Skipped entries carry no counters: they were never simulated.
            assert!(p
                .result
                .entries
                .iter()
                .filter(|e| matches!(e.outcome, TuneOutcome::Skipped))
                .all(|e| e.profile.is_none() && e.stall.is_none()));
        }
    }

    #[test]
    fn pruned_policy_falls_back_when_kept_set_cannot_run() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        // Compute which candidates a zero-margin prune keeps, then sabotage
        // exactly those: the fallback must evaluate the rest and still
        // find a winner.
        let model = crate::costmodel::CostModel::from_kernel(&k, &dev);
        let keep = model.keep_within(&candidates, 0.0);
        assert!(keep.len() < candidates.len(), "prune must actually prune");
        let kept: Vec<(u32, NpType)> = keep
            .iter()
            .map(|&i| (candidates[i].opts.slave_size, candidates[i].opts.np_type))
            .collect();
        let make_args = move |t: &Transformed| {
            let sabotaged = kept
                .iter()
                .any(|&(s, n)| t.report.slave_size == s && t.report.np_type == Some(n));
            let len = if sabotaged { 1 } else { 64 };
            alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; len]), t, grid)
        };
        let p = autotune_with_policy(
            &k, &dev, grid, &make_args, &SimOptions::full(), &candidates,
            TunePolicy::Pruned { margin: 0.0 },
        )
        .expect("fallback finds the surviving candidates");
        assert!(p.fell_back, "an unrunnable kept set must trigger the fallback");
        assert_eq!(p.skipped, 0, "fallback evaluates everything");
        assert!(matches!(
            p.result.entries[p.result.best_index].outcome,
            TuneOutcome::Ok { .. }
        ));
    }

    #[test]
    fn off_grid_hint_is_still_honoured() {
        let k = kernel_with_pragma("np parallel for reduction(+:s) num_threads(6)");
        let c = candidates_from_pragmas(&k, 1024);
        assert_eq!(c.len(), 1, "6 is not a power of two: inter-warp only");
        assert_eq!(c[0].opts.slave_size, 6);
        assert_eq!(c[0].opts.np_type, NpType::InterWarp);
    }
}
