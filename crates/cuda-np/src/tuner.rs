//! Auto-tuning (Section 4): CUDA-NP generates a small number of versions —
//! slave counts × {inter-warp, intra-warp} — and picks the fastest by
//! running each on the simulator. Candidates are evaluated on a bounded
//! pool of host threads (`min(available_parallelism, candidates)`) via
//! `crossbeam::scope` since each simulation is independent; results are
//! collected into per-candidate slots so [`TuneResult::entries`] stays in
//! candidate order regardless of which worker finished first.

use crate::options::{NpOptions, TransformError};
use crate::transform::{transform, Transformed};
use np_exec::{capture_launch, Args, ExecError, KernelReport, SimFault, SimOptions};
use np_gpu_sim::{CapturedLaunch, DeviceConfig};
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::pragma::NpType;
use np_kernel_ir::types::Dim3;

/// One configuration to evaluate.
#[derive(Debug, Clone)]
pub struct TuneCandidate {
    pub opts: NpOptions,
}

/// How one candidate's evaluation ended. Non-exhaustive: new failure
/// classes may be added, so downstream matches need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum TuneOutcome {
    /// Ran to completion in this many simulated cycles.
    Ok { cycles: u64 },
    /// The transform rejected the configuration (e.g. block too large for
    /// this slave count) — expected pruning, not a kernel bug.
    Rejected(TransformError),
    /// The sanitizer detected a contract violation in the generated kernel
    /// (out-of-bounds access, race, divergent barrier, watchdog, ...).
    Faulted(SimFault),
    /// Launch setup failed (missing argument, occupancy) or the worker
    /// thread itself died — a harness problem rather than a kernel fault.
    LaunchFailed(String),
}

impl TuneOutcome {
    fn from_launch_err(e: ExecError) -> Self {
        match e {
            ExecError::Fault(f) => TuneOutcome::Faulted(*f),
            other => TuneOutcome::LaunchFailed(other.to_string()),
        }
    }
}

impl std::fmt::Display for TuneOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneOutcome::Ok { cycles } => write!(f, "ok ({cycles} cycles)"),
            TuneOutcome::Rejected(e) => write!(f, "rejected: {e}"),
            TuneOutcome::Faulted(fault) => write!(f, "faulted: {fault}"),
            TuneOutcome::LaunchFailed(msg) => write!(f, "launch failed: {msg}"),
        }
    }
}

/// Outcome of evaluating one candidate.
#[derive(Debug, Clone)]
pub struct TuneEntry {
    pub slave_size: u32,
    pub np_type: NpType,
    pub outcome: TuneOutcome,
    /// Launch-total profile counters when the candidate ran to completion —
    /// the evidence `npcc --explain` uses to say *why* the winner won.
    pub profile: Option<np_gpu_sim::ProfileCounters>,
    /// Device-wide stall breakdown from the timeline flight recorder, when
    /// the candidate ran to completion (buckets sum to
    /// `simulated_cycles × SMX count`).
    pub stall: Option<np_gpu_sim::StallBreakdown>,
}

impl TuneEntry {
    /// Simulated cycles; `None` unless the candidate ran to completion.
    pub fn cycles(&self) -> Option<u64> {
        match self.outcome {
            TuneOutcome::Ok { cycles } => Some(cycles),
            _ => None,
        }
    }

    /// The sanitizer fault, when this candidate's kernel violated the
    /// CUDA contract.
    pub fn fault(&self) -> Option<&SimFault> {
        match &self.outcome {
            TuneOutcome::Faulted(f) => Some(f),
            _ => None,
        }
    }
}

/// Why an entire auto-tuning run produced no winner. Individual candidate
/// failures are *not* errors — they become [`TuneEntry`] rows and tuning
/// continues; this error means there was nothing left to pick from.
#[non_exhaustive]
#[derive(Debug, Clone)]
pub enum TuneError {
    /// The candidate set was empty.
    NoCandidates,
    /// Every candidate was rejected, faulted, or failed to launch. The
    /// entries record each candidate's outcome.
    AllFailed(Vec<TuneEntry>),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::NoCandidates => write!(f, "no tuning candidates to evaluate"),
            TuneError::AllFailed(entries) => {
                write!(f, "all {} tuning candidates failed:", entries.len())?;
                for e in entries {
                    write!(
                        f,
                        " [{:?} s={}: {}]",
                        e.np_type, e.slave_size, e.outcome
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TuneError {}

/// Result of an auto-tuning run.
#[derive(Debug)]
pub struct TuneResult {
    /// The fastest transformed kernel.
    pub best: Transformed,
    /// Its launch report.
    pub best_report: KernelReport,
    /// The winner's captured interpretation: the frozen block traces its
    /// report was timed from. Re-timing the winner (different watchdog,
    /// artifact export, cache warm-up) replays this instead of
    /// re-interpreting the kernel.
    pub best_capture: CapturedLaunch,
    /// Every candidate's outcome, in candidate order.
    pub entries: Vec<TuneEntry>,
}

/// The paper's default search space: slave sizes {2, 4, 8, 16, 32} crossed
/// with inter-/intra-warp, filtered by the block-size cap and intra-warp
/// warp-containment.
pub fn default_candidates(master_size: u32, max_block_threads: u32) -> Vec<TuneCandidate> {
    let mut out = Vec::new();
    for s in [2u32, 4, 8, 16, 32] {
        if master_size * s > max_block_threads {
            continue;
        }
        out.push(TuneCandidate { opts: NpOptions::inter(s) });
        if s <= 32 {
            out.push(TuneCandidate { opts: NpOptions::intra(s) });
        }
    }
    out
}

/// Candidate set narrowed by the developer's pragma hints (Section 3.6):
/// `num_threads(N)` pins the slave count, `np_type(inter|intra)` pins the
/// distribution scheme, and `sm(V)` sets the target compute capability for
/// every candidate. Hints are taken from the first pragma loop that
/// specifies each of them; without hints this equals
/// [`default_candidates`].
pub fn candidates_from_pragmas(kernel: &Kernel, max_block_threads: u32) -> Vec<TuneCandidate> {
    use np_kernel_ir::stmt::{visit_stmts, Stmt};
    let mut num_threads: Option<u32> = None;
    let mut np_type: Option<NpType> = None;
    let mut sm: Option<u32> = None;
    visit_stmts(&kernel.body, &mut |s| {
        if let Stmt::For { pragma: Some(p), .. } = s {
            num_threads = num_threads.or(p.num_threads);
            np_type = np_type.or(p.np_type);
            sm = sm.or(p.sm_version);
        }
    });
    let mut out = default_candidates(kernel.block_dim.x, max_block_threads);
    if let Some(n) = num_threads {
        out.retain(|c| c.opts.slave_size == n);
        if out.is_empty() {
            // A hinted size outside the default grid is still honoured.
            out.push(TuneCandidate { opts: NpOptions::inter(n) });
            if n.is_power_of_two() && n <= 32 {
                out.push(TuneCandidate { opts: NpOptions::intra(n) });
            }
        }
    }
    if let Some(t) = np_type {
        out.retain(|c| c.opts.np_type == t);
    }
    if let Some(v) = sm {
        for c in &mut out {
            c.opts.sm_version = v;
        }
    }
    out
}

/// Evaluate every candidate and return the fastest. `make_args` builds the
/// launch arguments for one transformed kernel (it must allocate the
/// `extra_global_buffers` named in the transform report — helper:
/// [`alloc_extra_buffers`]).
///
/// Candidates whose transform is rejected, whose generated kernel faults
/// under the sanitizer, or whose launch fails are recorded as typed
/// [`TuneEntry`] rows and skipped; tuning continues with the remaining
/// candidates and errors only if *every* candidate fails (or the set is
/// empty). A worker thread dying never aborts the run: its candidate is
/// recorded as failed.
pub fn autotune(
    kernel: &Kernel,
    dev: &DeviceConfig,
    grid: Dim3,
    make_args: &(dyn Fn(&Transformed) -> Args + Sync),
    sim: &SimOptions,
    candidates: &[TuneCandidate],
) -> Result<TuneResult, TuneError> {
    if candidates.is_empty() {
        return Err(TuneError::NoCandidates);
    }
    type CandResult = (TuneOutcome, Option<(Transformed, KernelReport, CapturedLaunch)>);

    // Observability: the tuner runs candidates on a pool, but the event
    // log must not depend on OS scheduling. Each candidate records into
    // its own forked recorder; after the pool joins, the forks are
    // adopted back in candidate order — the merged log is a pure function
    // of the candidate list.
    let _tune_span = np_obs::span("tune");
    let obs = np_obs::current();
    let forks: Vec<Option<np_obs::Recorder>> = candidates
        .iter()
        .map(|_| obs.as_ref().map(|o| o.rec.fork()))
        .collect();

    // A bounded pool, not one OS thread per candidate: workers claim
    // candidates off a shared counter and park each result in that
    // candidate's slot, so entry order is candidate order no matter how
    // evaluations interleave.
    let n_workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .min(candidates.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<CandResult>>> =
        candidates.iter().map(|_| std::sync::Mutex::new(None)).collect();

    crossbeam::thread::scope(|scope| {
        for _ in 0..n_workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(cand) = candidates.get(i) else { break };
                let eval = || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> CandResult {
                        let _cand_span = np_obs::span("tune.candidate");
                        let t = match transform(kernel, &cand.opts) {
                            Ok(t) => t,
                            Err(e) => return (TuneOutcome::Rejected(e), None),
                        };
                        let mut args = make_args(&t);
                        // One interpretation per candidate; the report is
                        // timed from the frozen capture, which the winner
                        // carries out so later re-timings replay instead of
                        // re-interpreting.
                        match capture_launch(dev, &t.kernel, grid, &mut args, sim) {
                            Ok((rep, cap)) => {
                                let cycles = rep.cycles;
                                (TuneOutcome::Ok { cycles }, Some((t, rep, cap)))
                            }
                            Err(e) => (TuneOutcome::from_launch_err(e), None),
                        }
                    }))
                };
                let run = match &forks[i] {
                    Some(fork) => np_obs::scope(
                        fork,
                        obs.as_ref().and_then(|o| o.registry.as_ref()),
                        obs.as_ref().and_then(|o| o.corr.as_deref()),
                        eval,
                    ),
                    None => eval(),
                };
                // A worker can only panic through a bug in make_args or the
                // simulator itself; record which candidate died (and what it
                // said) and keep tuning.
                let result = run.unwrap_or_else(|payload| {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    (
                        TuneOutcome::LaunchFailed(format!(
                            "tuner worker panicked evaluating {:?} slave_size={}: {msg}",
                            cand.opts.np_type, cand.opts.slave_size
                        )),
                        None,
                    )
                });
                *results[i].lock().expect("tuner slot lock") = Some(result);
            });
        }
    })
    // Internal invariant: the shim's scope only errors on an unjoined child
    // panic, and every worker's panics are caught above.
    .expect("tuner scope");

    // Splice the per-candidate logs back under the tune span, strictly in
    // candidate order (never completion order).
    if let Some(o) = &obs {
        for fork in forks.iter().flatten() {
            o.rec.adopt(fork, o.parent);
        }
    }

    let mut slots: Vec<Option<(Transformed, KernelReport, CapturedLaunch)>> = Vec::new();
    let mut entries: Vec<TuneEntry> = Vec::new();
    for (cand, cell) in candidates.iter().zip(results) {
        let (outcome, slot) = cell
            .into_inner()
            .expect("tuner slot lock")
            .expect("every candidate was evaluated");
        let label = match &outcome {
            TuneOutcome::Ok { .. } => "ok",
            TuneOutcome::Rejected(_) => "rejected",
            TuneOutcome::Faulted(_) => "faulted",
            TuneOutcome::LaunchFailed(_) => "launch_failed",
        };
        np_obs::bump("tuner.candidates.total");
        np_obs::bump(&format!("tuner.candidates.{label}"));
        let mut fields = vec![
            np_obs::kv("slave_size", cand.opts.slave_size),
            np_obs::kv("np_type", format!("{:?}", cand.opts.np_type)),
            np_obs::kv("outcome", label),
        ];
        if let TuneOutcome::Ok { cycles } = &outcome {
            fields.push(np_obs::kv("cycles", *cycles));
        }
        np_obs::event(np_obs::Level::Debug, "tune.outcome", fields);
        entries.push(TuneEntry {
            slave_size: cand.opts.slave_size,
            np_type: cand.opts.np_type,
            outcome,
            profile: slot.as_ref().map(|(_, rep, _)| rep.profile.total.clone()),
            stall: slot.as_ref().map(|(_, rep, _)| rep.timing.stall.clone()),
        });
        slots.push(slot);
    }

    let best_idx = entries
        .iter()
        .enumerate()
        .filter_map(|(i, e)| e.cycles().map(|c| (i, c)))
        .min_by_key(|&(_, c)| c)
        .map(|(i, _)| i);
    let Some(best_idx) = best_idx else {
        return Err(TuneError::AllFailed(entries));
    };
    // Internal invariant: an Ok entry always has its (Transformed, report,
    // capture).
    let (best, best_report, best_capture) = slots[best_idx].take().expect("winner has a slot");
    Ok(TuneResult { best, best_report, best_capture, entries })
}

/// Add the transform's extra global buffers (relocated local arrays) to an
/// argument set, zero-initialized at the right size for `grid`.
pub fn alloc_extra_buffers(mut args: Args, t: &Transformed, grid: Dim3) -> Args {
    for (name, elems_per_block) in &t.report.extra_global_buffers {
        let total = (elems_per_block * grid.count()) as usize;
        args = args.buf_f32(name, vec![0.0; total]);
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::KernelBuilder;

    fn kernel_with_pragma(text: &str) -> Kernel {
        let mut b = KernelBuilder::new("k", 64);
        b.param_global_f32("out");
        b.decl_f32("s", f(0.0));
        b.pragma_for(text, "i", i(0), i(16), |b| {
            b.assign("s", v("s") + f(1.0));
        });
        b.store("out", tidx(), v("s"));
        b.finish()
    }

    #[test]
    fn default_candidates_respect_block_cap() {
        let c = default_candidates(512, 1024);
        assert!(c.iter().all(|c| 512 * c.opts.slave_size <= 1024));
        assert!(!c.is_empty());
    }

    #[test]
    fn num_threads_hint_pins_slave_size() {
        let k = kernel_with_pragma("np parallel for reduction(+:s) num_threads(8)");
        let c = candidates_from_pragmas(&k, 1024);
        assert!(!c.is_empty());
        assert!(c.iter().all(|c| c.opts.slave_size == 8), "{c:?}");
    }

    #[test]
    fn np_type_hint_pins_scheme() {
        let k = kernel_with_pragma("np parallel for reduction(+:s) np_type(intra)");
        let c = candidates_from_pragmas(&k, 1024);
        assert!(!c.is_empty());
        assert!(c.iter().all(|c| c.opts.np_type == NpType::IntraWarp));
    }

    #[test]
    fn sm_hint_propagates_to_all_candidates() {
        let k = kernel_with_pragma("np parallel for reduction(+:s) sm(20)");
        let c = candidates_from_pragmas(&k, 1024);
        assert!(c.iter().all(|c| c.opts.sm_version == 20));
        // sm 20 means intra-warp candidates exist but cannot use shfl.
        assert!(c
            .iter()
            .filter(|c| c.opts.np_type == NpType::IntraWarp)
            .all(|c| !c.opts.shfl_enabled()));
    }

    #[test]
    fn without_hints_equals_default() {
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let c = candidates_from_pragmas(&k, 1024);
        assert_eq!(c.len(), default_candidates(64, 1024).len());
    }

    #[test]
    fn faulting_candidate_is_recorded_and_skipped() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        assert!(candidates.len() > 2, "need a mixed candidate set");
        // Sabotage exactly the slave_size-4 variants: a 1-element output
        // buffer makes their generated kernels store out of bounds.
        let make_args = |t: &Transformed| {
            let n = if t.report.slave_size == 4 { 1 } else { 64 };
            alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; n]), t, grid)
        };
        let r = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
            .expect("non-faulting candidates remain");
        let faulted: Vec<_> = r.entries.iter().filter(|e| e.fault().is_some()).collect();
        assert!(!faulted.is_empty(), "sabotaged candidates must be recorded");
        assert!(faulted.iter().all(|e| e.slave_size == 4), "{faulted:?}");
        assert!(matches!(
            faulted[0].fault().unwrap().kind,
            np_exec::FaultKind::OutOfBounds { .. }
        ));
        assert_ne!(r.best.report.slave_size, 4, "a faulting variant must not win");
        let min = r.entries.iter().filter_map(|e| e.cycles()).min().unwrap();
        assert_eq!(r.best_report.cycles, min, "winner is the fastest clean candidate");
    }

    #[test]
    fn entries_record_profiles_for_completed_candidates() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        let make_args = |t: &Transformed| {
            alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; 64]), t, grid)
        };
        let r = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
            .expect("tuning succeeds");
        for e in &r.entries {
            match &e.outcome {
                TuneOutcome::Ok { .. } => {
                    let p = e.profile.as_ref().expect("completed candidate has counters");
                    assert!(p.instructions > 0);
                    let eff = p.coalescing_efficiency();
                    assert!(eff > 0.0 && eff <= 1.0);
                    let st = e.stall.as_ref().expect("completed candidate has a breakdown");
                    assert!(st.issue > 0, "a completed run must have issued: {st:?}");
                }
                _ => {
                    assert!(e.profile.is_none(), "failed candidate must not carry counters");
                    assert!(e.stall.is_none(), "failed candidate must not carry a breakdown");
                }
            }
        }
        // The winner's entry counters equal the winning report's totals.
        let w = r
            .entries
            .iter()
            .find(|e| e.cycles() == Some(r.best_report.cycles))
            .expect("winner entry");
        assert_eq!(w.profile.as_ref().unwrap(), &r.best_report.profile.total);
    }

    #[test]
    fn panicking_worker_is_recorded_with_candidate_identity() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        assert!(candidates.len() > 2, "need a mixed candidate set");
        // make_args blows up for exactly the inter-warp slave_size-4
        // candidate; every other candidate must still be evaluated.
        let make_args = |t: &Transformed| {
            if t.report.slave_size == 4 && t.report.np_type == Some(NpType::InterWarp) {
                panic!("boom in make_args");
            }
            alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; 64]), t, grid)
        };
        let r = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
            .expect("surviving candidates still produce a winner");
        assert_eq!(r.entries.len(), candidates.len());
        // Entries stay in candidate order.
        for (e, c) in r.entries.iter().zip(&candidates) {
            assert_eq!(e.slave_size, c.opts.slave_size);
            assert_eq!(e.np_type, c.opts.np_type);
        }
        let dead: Vec<_> = r
            .entries
            .iter()
            .filter(|e| matches!(e.outcome, TuneOutcome::LaunchFailed(_)))
            .collect();
        assert_eq!(dead.len(), 1, "{:?}", r.entries);
        assert_eq!(dead[0].slave_size, 4);
        assert_eq!(dead[0].np_type, NpType::InterWarp);
        let TuneOutcome::LaunchFailed(msg) = &dead[0].outcome else { unreachable!() };
        assert!(msg.contains("slave_size=4"), "{msg}");
        assert!(msg.contains("InterWarp"), "{msg}");
        assert!(msg.contains("boom in make_args"), "{msg}");
        assert!(
            !(r.best.report.np_type == Some(NpType::InterWarp) && r.best.report.slave_size == 4),
            "the panicked candidate must not win"
        );
    }

    #[test]
    fn all_candidates_faulting_is_a_typed_error() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let grid = Dim3::x1(1);
        let candidates = default_candidates(64, 1024);
        // Every variant stores past this 1-element output buffer.
        let make_args =
            |t: &Transformed| alloc_extra_buffers(Args::new().buf_f32("out", vec![0.0; 1]), t, grid);
        let err = autotune(&k, &dev, grid, &make_args, &SimOptions::full(), &candidates)
            .unwrap_err();
        match err {
            TuneError::AllFailed(entries) => {
                assert_eq!(entries.len(), candidates.len());
                assert!(entries.iter().all(|e| e.fault().is_some()), "{entries:?}");
            }
            other => panic!("expected AllFailed, got {other:?}"),
        }
    }

    #[test]
    fn empty_candidate_set_is_a_typed_error() {
        let dev = DeviceConfig::gtx680();
        let k = kernel_with_pragma("np parallel for reduction(+:s)");
        let err = autotune(
            &k,
            &dev,
            Dim3::x1(1),
            &|_| Args::new(),
            &SimOptions::full(),
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, TuneError::NoCandidates));
    }

    #[test]
    fn off_grid_hint_is_still_honoured() {
        let k = kernel_with_pragma("np parallel for reduction(+:s) num_threads(6)");
        let c = candidates_from_pragmas(&k, 1024);
        assert_eq!(c.len(), 1, "6 is not a power of two: inter-warp only");
        assert_eq!(c[0].opts.slave_size, 6);
        assert_eq!(c[0].opts.np_type, NpType::InterWarp);
    }
}
