//! Transformation conformance: every paper workload's transformed kernel
//! is race-free under the happens-before checker at several slave sizes,
//! reports are byte-identical across reruns, and known-broken mutants
//! (dropped barrier, un-gated broadcast) are always flagged with both
//! access sites identified.

use cuda_np::conformance::{drop_barrier, drop_broadcast_guard, gating_policy};
use cuda_np::tuner::alloc_extra_buffers;
use cuda_np::{transform, NpOptions, Transformed};
use np_exec::{launch, KernelReport, RaceCheckMode, SimOptions};
use np_gpu_sim::racecheck::{RaceCheckOptions, RaceFinding};
use np_gpu_sim::DeviceConfig;
use np_kernel_ir::analysis::barriers::count_barriers;
use np_kernel_ir::kernel::Kernel;
use np_workloads::{all_workloads, Scale, Workload};

const SLAVE_SIZES: [u32; 3] = [2, 4, 8];

fn race_armed(base: SimOptions, t: Option<&Transformed>) -> SimOptions {
    base.with_race_check(RaceCheckMode::Record).with_race_options(RaceCheckOptions {
        max_findings: None,
        policy: t.and_then(gating_policy),
    })
}

/// Launch a (possibly mutated) transformed kernel of `w` with the checker
/// recording.
fn launch_checked(
    w: &dyn Workload,
    dev: &DeviceConfig,
    t: &Transformed,
    kernel: &Kernel,
) -> KernelReport {
    let mut args = alloc_extra_buffers(w.make_args(), t, w.grid());
    launch(dev, kernel, w.grid(), &mut args, &race_armed(w.sim_options(), Some(t)))
        .unwrap_or_else(|e| panic!("{} ({}): launch failed: {e}", w.name(), kernel.name))
}

#[test]
fn transformed_workloads_are_race_free_across_slave_sizes() {
    let dev = DeviceConfig::gtx680();
    let mut checked = 0;
    for w in all_workloads(Scale::Test) {
        for s in SLAVE_SIZES {
            for opts in [NpOptions::inter(s), NpOptions::intra(s)] {
                let Ok(t) = transform(&w.kernel(), &opts) else {
                    continue; // legitimately untransformable at this config
                };
                let rep = launch_checked(w.as_ref(), &dev, &t, &t.kernel);
                assert!(rep.race.checked, "{} s={s}: checker must be armed", w.name());
                assert!(
                    rep.race.is_clean(),
                    "{} s={s} {}: transformed kernel races:\n{}",
                    w.name(),
                    t.kernel.name,
                    rep.race.narrative()
                );
                assert!(rep.race.accesses_checked > 0, "{} s={s}: no accesses seen", w.name());
                // Byte-identical report across reruns.
                let again = launch_checked(w.as_ref(), &dev, &t, &t.kernel);
                assert_eq!(
                    rep.race.to_json(),
                    again.race.to_json(),
                    "{} s={s}: report must be deterministic",
                    w.name()
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 30, "only {checked} workload configs transformed");
}

#[test]
fn baseline_workloads_are_race_free() {
    let dev = DeviceConfig::gtx680();
    for w in all_workloads(Scale::Test) {
        let mut args = w.make_args();
        let rep = launch(
            &dev,
            &w.kernel(),
            w.grid(),
            &mut args,
            &race_armed(w.sim_options(), None),
        )
        .unwrap_or_else(|e| panic!("{} baseline: {e}", w.name()));
        assert!(rep.race.checked);
        assert!(
            rep.race.is_clean(),
            "{} baseline races:\n{}",
            w.name(),
            rep.race.narrative()
        );
    }
}

/// The acceptance criterion: for every workload whose transformed kernel
/// has barriers, some dropped barrier is reported as a race naming both
/// access sites.
#[test]
fn dropped_barrier_mutants_are_flagged() {
    let dev = DeviceConfig::gtx680();
    let mut workloads_with_barriers = 0;
    for w in all_workloads(Scale::Test) {
        let Ok(t) = transform(&w.kernel(), &NpOptions::inter(4)) else { continue };
        let n = count_barriers(&t.kernel);
        if n == 0 {
            continue;
        }
        workloads_with_barriers += 1;
        let mut detected = false;
        for site in 0..n {
            let mutant = drop_barrier(&t.kernel, site).expect("site exists");
            let rep = launch_checked(w.as_ref(), &dev, &t, &mutant);
            if let Some(RaceFinding::MemoryRace { first, second, .. }) = rep
                .race
                .findings
                .iter()
                .find(|f| matches!(f, RaceFinding::MemoryRace { .. }))
            {
                assert_ne!(first.thread, second.thread, "{}: two distinct threads", w.name());
                assert!(first.pc < second.pc, "{}: sites ordered by pc", w.name());
                detected = true;
            }
        }
        assert!(
            detected,
            "{}: no dropped barrier out of {n} was reported as a race",
            w.name()
        );
    }
    assert!(
        workloads_with_barriers >= 3,
        "only {workloads_with_barriers} inter-transformed workloads have barriers"
    );
}

/// Un-gating a broadcast staging store makes every slave write the
/// master's slot: flagged as a gating violation (policy) and a race.
#[test]
fn unguarded_broadcast_mutants_are_flagged() {
    let dev = DeviceConfig::gtx680();
    let mut mutated = 0;
    for w in all_workloads(Scale::Test) {
        let Ok(t) = transform(&w.kernel(), &NpOptions::inter(4)) else { continue };
        let Some(mutant) = drop_broadcast_guard(&t.kernel) else { continue };
        mutated += 1;
        let rep = launch_checked(w.as_ref(), &dev, &t, &mutant);
        assert!(
            !rep.race.is_clean(),
            "{}: un-gated broadcast must be flagged",
            w.name()
        );
        assert!(
            rep.race
                .findings
                .iter()
                .any(|f| matches!(f, RaceFinding::MasterGatingViolation { .. })),
            "{}: expected a gating violation, got:\n{}",
            w.name(),
            rep.race.narrative()
        );
    }
    assert!(mutated >= 2, "only {mutated} workloads had a guarded broadcast to drop");
}
