//! Cross-device differential invariance: the device descriptor is a
//! *timing* model, so functional outputs and race reports must be a pure
//! function of kernel + arguments — byte-identical on every registry
//! device — while cycle counts genuinely move between devices (otherwise
//! the device matrix measures nothing).
//!
//! Also pins per-device golden counter + stall snapshots for a fixed
//! workload, so a change to one device's memory system or scheduler shows
//! up as a reviewed golden diff, not silent drift. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p cuda-np --test device_invariance
//! ```

use cuda_np::{gating_policy, transform, tuner::alloc_extra_buffers, NpOptions};
use np_exec::{launch, Args, RaceCheckMode, SimOptions};
use np_gpu_sim::capture::fnv64;
use np_gpu_sim::racecheck::RaceCheckOptions;
use np_gpu_sim::{DeviceConfig, REGISTRY};
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::types::Dim3;
use np_workloads::{all_workloads, Scale, Workload};
use std::collections::HashSet;
use std::path::PathBuf;

fn registry_devices() -> Vec<DeviceConfig> {
    REGISTRY.iter().map(|n| np_gpu_sim::device::from_name(n).unwrap()).collect()
}

/// Everything one launch exposes, split by the invariance contract:
/// `functional` and `race_json` must match across devices; `cycles` may
/// (and must, somewhere) differ.
struct Observed {
    functional: u64,
    race_json: String,
    cycles: u64,
}

/// Launch on one device. A capacity rejection (the config simply does not
/// fit the device — e.g. `small_test`'s 16 KB shared memory) returns
/// `None`; any other failure panics. Devices large enough to run the
/// paper's workloads must never return `None` (asserted by the caller).
fn observe(
    dev: &DeviceConfig,
    kernel: &Kernel,
    grid: Dim3,
    mut args: Args,
    sim: &SimOptions,
    out_name: &str,
    ctx: &str,
) -> Option<Observed> {
    let rep = match launch(dev, kernel, grid, &mut args, sim) {
        Ok(rep) => rep,
        Err(e) if e.to_string().contains("launch rejected") => return None,
        Err(e) => panic!("{ctx} on {}: launch failed: {e}", dev.name),
    };
    let mut bytes = Vec::new();
    for x in args.get_f32(out_name).unwrap() {
        bytes.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    Some(Observed { functional: fnv64(&bytes), race_json: rep.race.to_json(), cycles: rep.cycles })
}

/// All ten workloads × {baseline, slave {2,4,8} × {inter, intra}} on every
/// registry device: output-buffer bits and race-report JSON byte-identical
/// everywhere, and every device *pair* separated by at least one differing
/// cycle count across the sweep.
#[test]
fn functional_outputs_and_race_reports_are_device_invariant() {
    let devices = registry_devices();
    let mut differing_pairs: HashSet<(usize, usize)> = HashSet::new();
    let mut compared = 0u32;
    for w in all_workloads(Scale::Test) {
        let w: &dyn Workload = w.as_ref();
        let kernel = w.kernel();
        let grid = w.grid();

        // (config label, kernel to run, sim options, args builder).
        type ArgsBuilder<'a> = Box<dyn Fn() -> Args + 'a>;
        let mut runs: Vec<(String, Kernel, SimOptions, ArgsBuilder)> = vec![(
            format!("{} baseline", w.name()),
            kernel.clone(),
            w.sim_options().with_race_check(RaceCheckMode::Record),
            Box::new(move || w.make_args()),
        )];
        for s in [2u32, 4, 8] {
            for opts in [NpOptions::inter(s), NpOptions::intra(s)] {
                let Ok(t) = transform(&kernel, &opts) else { continue };
                let sim = w
                    .sim_options()
                    .with_race_check(RaceCheckMode::Record)
                    .with_race_options(RaceCheckOptions {
                        max_findings: None,
                        policy: gating_policy(&t),
                    });
                let ctx = format!("{} {:?} slave_size={s}", w.name(), opts.np_type);
                let tk = t.kernel.clone();
                let mk: ArgsBuilder =
                    Box::new(move || alloc_extra_buffers(w.make_args(), &t, grid));

                runs.push((ctx, tk, sim, mk));
            }
        }

        for (ctx, k, sim, mk) in &runs {
            let obs: Vec<Option<Observed>> = devices
                .iter()
                .map(|d| observe(d, k, grid, mk(), sim, w.output_name(), ctx))
                .collect();
            // Capacity rejections are device-dependent and legitimate: the
            // tiny `small_test` device rejects most widened blocks, and
            // even paper-sized devices refuse a config whose single block
            // over-subscribes an SMX (e.g. a 1024-thread block whose
            // register demand exceeds the whole register file — zero
            // blocks could ever become resident). What must hold is that
            // at least one paper device runs each config, and that every
            // device that does run it observes identical bits.
            let ran: Vec<(usize, &Observed)> =
                obs.iter().enumerate().filter_map(|(i, o)| Some((i, o.as_ref()?))).collect();
            assert!(
                REGISTRY
                    .iter()
                    .zip(&obs)
                    .any(|(spec, o)| o.is_some() && *spec != "small_test"),
                "{ctx}: every paper device rejected this config"
            );
            let (_, first) = ran[0];
            for &(i, o) in &ran[1..] {
                assert_eq!(
                    o.functional, first.functional,
                    "{ctx}: output bits differ between {} and {}",
                    devices[0].name, devices[i].name
                );
                assert_eq!(
                    o.race_json, first.race_json,
                    "{ctx}: race report differs between {} and {}",
                    devices[0].name, devices[i].name
                );
            }
            for a in 0..ran.len() {
                for b in a + 1..ran.len() {
                    if ran[a].1.cycles != ran[b].1.cycles {
                        differing_pairs.insert((ran[a].0, ran[b].0));
                    }
                }
            }
            compared += 1;
        }
    }
    // 10 workloads × (1 baseline + up to 6 transformed configs), minus
    // legitimate transform rejections.
    assert!(compared >= 40, "only {compared} configurations compared");
    for (i, a) in REGISTRY.iter().enumerate() {
        for (j, b) in REGISTRY.iter().enumerate().skip(i + 1) {
            assert!(
                differing_pairs.contains(&(i, j)),
                "devices {a} and {b} never differed in simulated cycles — the \
                 matrix would be measuring nothing"
            );
        }
    }
}

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

/// Per-device golden counter + stall snapshots on TMV (baseline and two
/// NP variants): the paper's mechanisms — coalescing, divergence, shfl
/// traffic, barrier waits — and the timeline's stall attribution are
/// pinned per device, so only *reviewed* changes move them.
#[test]
fn per_device_counter_and_stall_snapshots_are_stable() {
    use np_workloads::{tmv::Tmv, Workload};
    let update = std::env::var("UPDATE_GOLDENS").is_ok_and(|v| v == "1");
    if update {
        std::fs::create_dir_all(goldens_dir()).expect("create goldens dir");
    }
    let w = Tmv::new(Scale::Test);
    let kernel = w.kernel();
    let grid = w.grid();
    let mut drifted = Vec::new();
    for (name, dev) in REGISTRY.iter().zip(registry_devices()) {
        let mut doc = format!(
            "{{\n  \"schema\": \"np-device-metrics-v1\",\n  \"device\": \"{}\",\n  \
             \"device_digest\": \"{}\",\n",
            dev.name,
            dev.digest_hex()
        );
        let section = |label: &str, k: &Kernel, args: Args, sim: &SimOptions| {
            let mut args = args;
            let rep = launch(&dev, k, grid, &mut args, sim)
                .unwrap_or_else(|e| panic!("TMV {label} on {}: {e}", dev.name));
            format!(
                "  \"{label}\": {{\"cycles\":{},\"stall\":{},\"profile\":{}}}",
                rep.cycles,
                rep.timing.stall.to_json(),
                rep.profile.total.to_json()
            )
        };
        doc.push_str(&section("baseline", &kernel, w.make_args(), &w.sim_options()));
        for (label, opts) in [("inter4", NpOptions::inter(4)), ("intra4", NpOptions::intra(4))] {
            let t = transform(&kernel, &opts).expect("TMV transforms at slave 4");
            let args = alloc_extra_buffers(w.make_args(), &t, grid);
            doc.push_str(",\n");
            doc.push_str(&section(label, &t.kernel, args, &w.sim_options()));
        }
        doc.push_str("\n}\n");

        let path = goldens_dir().join(format!("device_metrics.{name}.json"));
        if update {
            std::fs::write(&path, &doc)
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden {} ({e}); regenerate with \
                 UPDATE_GOLDENS=1 cargo test -p cuda-np --test device_invariance",
                path.display()
            )
        });
        if doc != golden {
            drifted.push(name.to_string());
        }
    }
    assert!(
        drifted.is_empty(),
        "per-device metric snapshots drifted for {drifted:?}; if intentional, regenerate \
         with UPDATE_GOLDENS=1 cargo test -p cuda-np --test device_invariance"
    );
}
