//! The core correctness property of the whole reproduction: for every
//! kernel shape the paper's compiler handles, the CUDA-NP transformation
//! must be *semantics-preserving* — the transformed kernel computes the
//! same outputs as the baseline, for every slave count, NP type, shfl
//! setting, and local-array strategy.

use cuda_np::{gating_policy, transform, tuner::alloc_extra_buffers, LocalArrayStrategy, NpOptions};
use np_exec::{launch, Args, RaceCheckMode, SimOptions};
use np_gpu_sim::racecheck::RaceCheckOptions;
use np_gpu_sim::DeviceConfig;
use np_kernel_ir::expr::dsl::*;
use np_kernel_ir::pragma::NpType;
use np_kernel_ir::types::Dim3;
use np_kernel_ir::{Kernel, KernelBuilder, Scalar};

fn dev() -> DeviceConfig {
    DeviceConfig::gtx680()
}

/// Run `kernel` and return the contents of its "out" buffer.
fn run(kernel: &Kernel, grid: u32, mut args: Args) -> Vec<f32> {
    launch(&dev(), kernel, Dim3::x1(grid), &mut args, &SimOptions::full()).unwrap();
    args.get_f32("out").unwrap().to_vec()
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let denom = x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() / denom <= tol,
            "{ctx}: out[{i}] differs: baseline {x} vs transformed {y}"
        );
    }
}

/// All (slave_size, np_type) combinations that fit a given master size.
fn all_configs(master: u32) -> Vec<NpOptions> {
    let mut v = Vec::new();
    for s in [2u32, 3, 4, 6, 8, 16, 32] {
        if master * s <= 1024 {
            v.push(NpOptions::inter(s));
            if s.is_power_of_two() && s <= 32 {
                v.push(NpOptions::intra(s));
                let mut no_shfl = NpOptions::intra(s);
                no_shfl.sm_version = 20; // forces shared-memory comms
                v.push(no_shfl);
            }
        }
    }
    v
}

fn check_equivalence(
    kernel: &Kernel,
    grid: u32,
    make_args: &dyn Fn() -> Args,
    configs: &[NpOptions],
    tol: f32,
) {
    let baseline = run(kernel, grid, make_args());
    for opts in configs {
        let t = match transform(kernel, opts) {
            Ok(t) => t,
            Err(e) => panic!(
                "transform failed for {:?}/{}: {e}",
                opts.np_type, opts.slave_size
            ),
        };
        let args = alloc_extra_buffers(make_args(), &t, Dim3::x1(grid));
        let got = run(&t.kernel, grid, args);
        assert_close(
            &baseline,
            &got,
            tol,
            &format!(
                "{:?} slave_size={} shfl={}",
                opts.np_type,
                opts.slave_size,
                opts.shfl_enabled()
            ),
        );
    }
}

/// Figure 2: TMV with a `reduction(+:sum)` loop over a runtime bound.
fn tmv_kernel(block: u32) -> Kernel {
    let mut b = KernelBuilder::new("tmv", block);
    b.param_global_f32("a");
    b.param_global_f32("b");
    b.param_global_f32("out");
    b.param_scalar_i32("w");
    b.param_scalar_i32("h");
    b.decl_f32("sum", f(0.0));
    b.decl_i32("tx", tidx() + bidx() * bdimx());
    b.pragma_for("np parallel for reduction(+:sum)", "i", i(0), p("h"), |b| {
        b.assign("sum", v("sum") + load("a", v("i") * p("w") + v("tx")) * load("b", v("i")));
    });
    b.store("out", v("tx"), v("sum"));
    b.finish()
}

fn tmv_args(w: usize, h: usize) -> Args {
    let a: Vec<f32> = (0..w * h).map(|i| ((i * 37 % 101) as f32 - 50.0) / 25.0).collect();
    let bvec: Vec<f32> = (0..h).map(|i| ((i * 13 % 53) as f32 - 26.0) / 13.0).collect();
    Args::new()
        .buf_f32("a", a)
        .buf_f32("b", bvec)
        .buf_f32("out", vec![0.0; w])
        .i32("w", w as i32)
        .i32("h", h as i32)
}

#[test]
fn tmv_equivalent_across_all_configs() {
    let k = tmv_kernel(32);
    check_equivalence(&k, 2, &|| tmv_args(64, 50), &all_configs(32), 1e-4);
}

#[test]
fn tmv_report_records_the_reduction() {
    let k = tmv_kernel(32);
    let t = transform(&k, &NpOptions::inter(8)).unwrap();
    assert_eq!(t.report.reductions.len(), 1);
    assert_eq!(t.report.reductions[0].0, "sum");
    assert!(t.report.redundant.contains(&"tx".to_string()), "{:?}", t.report);
    assert_eq!(t.kernel.block_dim, np_kernel_ir::Dim3::xy(32, 8));
}

/// Figure 3: lud_perimeter-like shared-memory fill with a uniform live-in.
#[test]
fn figure3_shared_fill_equivalent() {
    let block = 16u32;
    let mut b = KernelBuilder::new("lud_perimeter", block);
    b.param_global_f32("m");
    b.param_global_f32("out");
    b.param_scalar_i32("matrix_dim");
    b.param_scalar_i32("offset");
    b.shared_array("peri_row", Scalar::F32, 16 * 16);
    b.decl_i32("idx", tidx());
    b.decl_i32("array_offset", p("offset") * p("matrix_dim") + p("offset"));
    b.pragma_for("np parallel for", "i", i(0), i(16), |b| {
        b.store(
            "peri_row",
            v("i") * i(16) + v("idx"),
            load("m", v("array_offset") + bidx() * i(16) + p("matrix_dim") * v("i") + v("idx")),
        );
    });
    b.sync();
    // Write the tile back out so the test can observe it.
    b.pragma_for("np parallel for", "i", i(0), i(16), |b| {
        b.store("out", bidx() * i(256) + v("i") * i(16) + v("idx"),
            load("peri_row", v("i") * i(16) + v("idx")));
    });
    let k = b.finish();

    let make_args = || {
        let m: Vec<f32> = (0..64 * 64).map(|i| (i % 97) as f32).collect();
        Args::new()
            .buf_f32("m", m)
            .buf_f32("out", vec![0.0; 512])
            .i32("matrix_dim", 64)
            .i32("offset", 4)
    };
    check_equivalence(&k, 2, &make_args, &all_configs(block), 0.0);
}

/// Figure 5/6: LE-like kernel with a live local array, exercised under all
/// four relocation strategies.
fn le_kernel(npoints: i32) -> Kernel {
    let mut b = KernelBuilder::new("le", 32);
    b.param_tex_f32("grad_src");
    b.param_global_f32("out");
    b.local_array("Grad", Scalar::F32, npoints as u32);
    b.decl_f32("sum", f(0.0));
    b.decl_f32("varr", f(0.0));
    b.decl_f32("ep", f(0.0));
    b.decl_i32("tx", tidx() + bidx() * bdimx());
    b.pragma_for("np parallel for", "n", i(0), i(npoints), |b| {
        b.store("Grad", v("n"), load("grad_src", v("tx") % i(7) + v("n")));
    });
    b.pragma_for("np parallel for reduction(+:sum)", "n", i(0), i(npoints), |b| {
        b.assign("sum", v("sum") + load("Grad", v("n")));
    });
    b.decl_f32("ave", v("sum") / f(npoints as f32));
    b.pragma_for("np parallel for reduction(+:varr,ep)", "n", i(0), i(npoints), |b| {
        b.decl_f32("d", load("Grad", v("n")) - v("ave"));
        b.assign("varr", v("varr") + v("d") * v("d"));
        b.assign("ep", v("ep") + v("d"));
    });
    b.store("out", v("tx"), v("ave") * v("ave") / (v("varr") + f(1.0)) + v("ep"));
    b.finish()
}

fn le_args(npoints: usize) -> Args {
    let src: Vec<f32> = (0..npoints + 8).map(|i| ((i * 29 % 83) as f32 - 41.0) / 20.0).collect();
    Args::new().buf_f32("grad_src", src).buf_f32("out", vec![0.0; 64])
}

#[test]
fn le_local_array_equivalent_under_every_strategy() {
    let k = le_kernel(150);
    let baseline = run(&k, 2, le_args(150));
    for strategy in [
        LocalArrayStrategy::Auto,
        LocalArrayStrategy::ForceRegister,
        LocalArrayStrategy::ForceShared,
        LocalArrayStrategy::ForceGlobal,
    ] {
        for npt in [NpType::InterWarp, NpType::IntraWarp] {
            let mut opts = NpOptions::new(8, npt);
            opts.local_array = strategy;
            let t = transform(&k, &opts)
                .unwrap_or_else(|e| panic!("{strategy:?}/{npt:?}: {e}"));
            let args = alloc_extra_buffers(le_args(150), &t, Dim3::x1(2));
            let got = run(&t.kernel, 2, args);
            assert_close(&baseline, &got, 1e-3, &format!("{strategy:?} {npt:?}"));
        }
    }
}

#[test]
fn le_auto_strategy_partitions_into_registers() {
    let k = le_kernel(150);
    let t = transform(&k, &NpOptions::inter(8)).unwrap();
    assert!(matches!(
        t.report.local_arrays[0].choice,
        cuda_np::LocalArrayChoice::Register { per_slave_len: 19 }
    ));
}

#[test]
fn le_padding_is_equivalent() {
    let k = le_kernel(150);
    let baseline = run(&k, 2, le_args(150));
    for s in [2u32, 4, 8, 16] {
        let mut opts = NpOptions::inter(s);
        opts.pad = true;
        let t = transform(&k, &opts).unwrap();
        assert_eq!(t.report.padded_loops > 0, 150 % s != 0, "padding iff 150 % {s} != 0");
        let args = alloc_extra_buffers(le_args(150), &t, Dim3::x1(2));
        let got = run(&t.kernel, 2, args);
        assert_close(&baseline, &got, 1e-3, &format!("padded s={s}"));
    }
}

/// LU-like: parallel loops nested inside divergent `master_id < 16` control
/// flow (the guard-sinking path).
#[test]
fn divergent_guard_equivalent() {
    let mut b = KernelBuilder::new("lu_like", 32);
    b.param_global_f32("a");
    b.param_global_f32("out");
    b.decl_i32("tx", tidx());
    b.decl_f32("acc", f(0.0));
    b.if_else(
        lt(v("tx"), i(16)),
        |b| {
            b.pragma_for("np parallel for reduction(+:acc)", "j", i(0), i(32), |b| {
                b.assign("acc", v("acc") + load("a", v("tx") * i(32) + v("j")));
            });
        },
        |b| {
            b.pragma_for("np parallel for reduction(+:acc)", "j", i(0), i(32), |b| {
                b.assign("acc", v("acc") + load("a", v("j") * i(32) + (v("tx") - i(16))) * f(2.0));
            });
        },
    );
    b.store("out", tidx() + bidx() * i(32), v("acc"));
    let k = b.finish();

    let make_args = || {
        let a: Vec<f32> = (0..32 * 32).map(|i| ((i * 7 % 61) as f32 - 30.0) / 10.0).collect();
        Args::new().buf_f32("a", a).buf_f32("out", vec![0.0; 64])
    };
    check_equivalence(&k, 2, &make_args, &all_configs(32), 1e-4);
}

/// MV-like: a sequential tile loop containing a barrier and a parallel
/// dot-product loop.
#[test]
fn tiled_loop_with_barrier_equivalent() {
    let block = 32u32;
    let tiles = 4;
    let tile = 32;
    let mut b = KernelBuilder::new("mv_like", block);
    b.param_global_f32("a");
    b.param_global_f32("x");
    b.param_global_f32("out");
    b.shared_array("xs", Scalar::F32, tile as u32);
    b.decl_i32("row", tidx() + bidx() * bdimx());
    b.decl_f32("sum", f(0.0));
    b.for_loop("t", i(0), i(tiles), |b| {
        // Cooperative tile load by the original threads.
        b.sync();
        b.store("xs", tidx(), load("x", v("t") * i(tile) + tidx()));
        b.sync();
        b.pragma_for("np parallel for reduction(+:sum)", "j", i(0), i(tile), |b| {
            b.assign(
                "sum",
                v("sum")
                    + load("a", v("row") * i(tiles * tile) + v("t") * i(tile) + v("j"))
                        * load("xs", v("j")),
            );
        });
    });
    b.store("out", v("row"), v("sum"));
    let k = b.finish();

    let n = (tiles * tile) as usize;
    let make_args = || {
        let a: Vec<f32> = (0..64 * n).map(|i| ((i * 11 % 71) as f32 - 35.0) / 17.0).collect();
        let x: Vec<f32> = (0..n).map(|i| ((i * 5 % 31) as f32 - 15.0) / 7.0).collect();
        Args::new().buf_f32("a", a).buf_f32("x", x).buf_f32("out", vec![0.0; 64])
    };
    check_equivalence(&k, 2, &make_args, &all_configs(block), 1e-4);
}

/// Scan: LIB-like additive prefix over a loop, value used per iteration.
#[test]
fn scan_loop_equivalent() {
    let mut b = KernelBuilder::new("lib_like", 32);
    b.param_global_f32("delta");
    b.param_global_f32("out");
    b.param_global_f32("path_out");
    b.decl_i32("tx", tidx() + bidx() * bdimx());
    b.decl_f32("acc", f(1.5));
    b.pragma_for("np parallel for scan(+:acc)", "n", i(0), i(80), |b| {
        b.assign("acc", v("acc") + load("delta", v("tx") % i(5) + v("n")));
        b.store("path_out", v("tx") * i(80) + v("n"), v("acc"));
    });
    b.store("out", v("tx"), v("acc"));
    let k = b.finish();

    let make_args = || {
        let d: Vec<f32> = (0..85).map(|i| ((i * 19 % 43) as f32 - 21.0) / 11.0).collect();
        Args::new()
            .buf_f32("delta", d)
            .buf_f32("out", vec![0.0; 64])
            .buf_f32("path_out", vec![0.0; 64 * 80])
    };

    let baseline_out = run(&k, 2, make_args());
    let baseline_path = {
        let mut args = make_args();
        launch(&dev(), &k, Dim3::x1(2), &mut args, &SimOptions::full()).unwrap();
        args.get_f32("path_out").unwrap().to_vec()
    };
    for opts in all_configs(32) {
        let t = transform(&k, &opts).unwrap();
        let mut args = alloc_extra_buffers(make_args(), &t, Dim3::x1(2));
        launch(&dev(), &t.kernel, Dim3::x1(2), &mut args, &SimOptions::full()).unwrap();
        let ctx = format!("scan {:?}/{}", opts.np_type, opts.slave_size);
        assert_close(&baseline_out, args.get_f32("out").unwrap(), 1e-3, &ctx);
        assert_close(&baseline_path, args.get_f32("path_out").unwrap(), 1e-3, &ctx);
    }
}

/// Section 3.2's "if (i == 3) x = a[i]" conditional live-out via select().
#[test]
fn select_liveout_equivalent() {
    let mut b = KernelBuilder::new("sel", 32);
    b.param_global_f32("a");
    b.param_global_f32("out");
    b.decl_f32("x", f(0.0));
    b.decl_i32("tx", tidx());
    b.pragma_for("np parallel for select(x)", "n", i(0), i(64), |b| {
        b.if_(eq(v("n"), i(3)), |b| {
            b.assign("x", load("a", v("n") + v("tx")));
        });
    });
    b.store("out", v("tx"), v("x"));
    let k = b.finish();
    let make_args = || {
        let a: Vec<f32> = (0..128).map(|i| i as f32).collect();
        Args::new().buf_f32("a", a).buf_f32("out", vec![0.0; 32])
    };
    check_equivalence(&k, 1, &make_args, &all_configs(32), 0.0);
}

/// Redundant-uniform on vs off must not change results.
#[test]
fn redundant_uniform_toggle_equivalent() {
    let k = tmv_kernel(32);
    let baseline = run(&k, 2, tmv_args(64, 40));
    for redundant in [false, true] {
        let mut opts = NpOptions::inter(4);
        opts.redundant_uniform = redundant;
        let t = transform(&k, &opts).unwrap();
        if !redundant {
            assert!(t.report.redundant.is_empty());
            assert!(t.report.broadcasts.contains(&"tx".to_string()));
        }
        let got = run(&t.kernel, 2, tmv_args(64, 40));
        assert_close(&baseline, &got, 1e-4, &format!("redundant={redundant}"));
    }
}

#[test]
fn error_cases_are_reported() {
    use cuda_np::TransformError;

    // No pragma loops at all.
    let mut b = KernelBuilder::new("plain", 32);
    b.param_global_f32("out");
    b.store("out", tidx(), f(1.0));
    assert!(matches!(
        transform(&b.finish(), &NpOptions::inter(4)),
        Err(TransformError::NoPragmaLoops)
    ));

    // Unhandled live-out.
    let mut b = KernelBuilder::new("liveout", 32);
    b.param_global_f32("out");
    b.decl_f32("x", f(0.0));
    b.pragma_for("np parallel for", "n", i(0), i(8), |b| {
        b.assign("x", v("x") + f(1.0));
    });
    b.store("out", tidx(), v("x"));
    assert!(matches!(
        transform(&b.finish(), &NpOptions::inter(4)),
        Err(TransformError::UnhandledLiveOut(x)) if x == "x"
    ));

    // Block too large.
    let k = tmv_kernel(512);
    assert!(matches!(
        transform(&k, &NpOptions::inter(4)),
        Err(TransformError::BlockTooLarge { .. })
    ));

    // Intra-warp with non-pow2 slaves.
    let k = tmv_kernel(32);
    assert!(matches!(
        transform(&k, &NpOptions::intra(6)),
        Err(TransformError::IntraWarpSlaveSize(6))
    ));

    // slave_size < 2.
    assert!(matches!(
        transform(&k, &NpOptions::inter(1)),
        Err(TransformError::SlaveSizeTooSmall)
    ));
}

#[test]
fn transformed_source_matches_figure3_shape() {
    let k = tmv_kernel(32);
    let t = transform(&k, &NpOptions::inter(8)).unwrap();
    let src = np_kernel_ir::printer::print_kernel(&t.kernel);
    // Master/slave prologue, slave-strided loop, guarded sequential code.
    assert!(src.contains("__np_master_id = threadIdx.x"), "{src}");
    assert!(src.contains("__np_slave_id = threadIdx.y"), "{src}");
    assert!(src.contains("i += 8"), "{src}");
    assert!(src.contains("(__np_slave_id == 0)"), "{src}");
}

/// Two-loop kernel for the adaptive-gating tests: a tiny trip-4 reduction
/// whose result feeds a long trip-64 reduction (so gating the first loop
/// forces a live-in broadcast into the second).
fn gating_kernel() -> Kernel {
    let mut b = KernelBuilder::new("gated", 32);
    b.param_global_f32("a");
    b.param_global_f32("out");
    b.decl_f32("bias", f(0.0));
    b.decl_f32("sum", f(0.0));
    b.decl_i32("tx", tidx() + bidx() * bdimx());
    b.pragma_for("np parallel for reduction(+:bias)", "j", i(0), i(4), |b| {
        b.assign("bias", v("bias") + load("a", v("j") + v("tx")));
    });
    b.pragma_for("np parallel for reduction(+:sum)", "n", i(0), i(64), |b| {
        b.assign("sum", v("sum") + load("a", v("n")) * v("bias"));
    });
    b.store("out", v("tx"), v("sum"));
    b.finish()
}

fn gating_args() -> Args {
    let a: Vec<f32> = (0..128).map(|i| ((i * 23 % 67) as f32 - 33.0) / 16.0).collect();
    Args::new().buf_f32("a", a).buf_f32("out", vec![0.0; 64])
}

/// `serial_below` gates the tiny loop to master-serial execution; results
/// must match the ungated baseline, the gate must be reported, and the
/// gated live-out must be re-broadcast into the next parallel loop.
#[test]
fn small_loop_gating_equivalent_and_reported() {
    let k = gating_kernel();
    let baseline = run(&k, 2, gating_args());
    for base in [NpOptions::inter(8), NpOptions::intra(8)] {
        let opts = base.clone().with_serial_below(8);
        let t = transform(&k, &opts).unwrap();
        assert_eq!(t.report.gated_loops, vec![("j".to_string(), 4)]);
        assert!(
            t.report.broadcasts.contains(&"bias".to_string()),
            "gated live-out must be broadcast into the next parallel loop: {:?}",
            t.report
        );
        let got = run(&t.kernel, 2, alloc_extra_buffers(gating_args(), &t, Dim3::x1(2)));
        assert_close(&baseline, &got, 1e-4, &format!("gated {:?}", base.np_type));

        // Threshold below every trip: nothing gates.
        let t = transform(&k, &base.clone().with_serial_below(2)).unwrap();
        assert!(t.report.gated_loops.is_empty());

        // Threshold above every trip: everything gates, output unchanged.
        let t = transform(&k, &base.clone().with_serial_below(100)).unwrap();
        assert_eq!(t.report.gated_loops.len(), 2);
        let got = run(&t.kernel, 2, alloc_extra_buffers(gating_args(), &t, Dim3::x1(2)));
        assert_close(&baseline, &got, 1e-4, &format!("all-gated {:?}", base.np_type));
    }
}

/// Gating under divergent control flow composes with the sunk branch guard.
#[test]
fn gating_inside_divergent_guard_equivalent() {
    let mut b = KernelBuilder::new("lu_gated", 32);
    b.param_global_f32("a");
    b.param_global_f32("out");
    b.decl_i32("tx", tidx());
    b.decl_f32("acc", f(0.0));
    b.if_else(
        lt(v("tx"), i(16)),
        |b| {
            b.pragma_for("np parallel for reduction(+:acc)", "j", i(0), i(6), |b| {
                b.assign("acc", v("acc") + load("a", v("tx") * i(6) + v("j")));
            });
        },
        |b| {
            b.pragma_for("np parallel for reduction(+:acc)", "j", i(0), i(6), |b| {
                b.assign("acc", v("acc") + load("a", v("j") * i(16) + (v("tx") - i(16))) * f(2.0));
            });
        },
    );
    b.store("out", v("tx"), v("acc"));
    let k = b.finish();
    let make_args = || {
        let a: Vec<f32> = (0..256).map(|i| ((i * 7 % 61) as f32 - 30.0) / 10.0).collect();
        Args::new().buf_f32("a", a).buf_f32("out", vec![0.0; 32])
    };
    let baseline = run(&k, 1, make_args());
    let opts = NpOptions::inter(4).with_serial_below(8);
    let t = transform(&k, &opts).unwrap();
    assert_eq!(t.report.gated_loops.len(), 2, "{:?}", t.report.gated_loops);
    let got = run(&t.kernel, 1, alloc_extra_buffers(make_args(), &t, Dim3::x1(1)));
    assert_close(&baseline, &got, 1e-4, "gated under guard");
}

/// Loops touching relocated local arrays must never gate: register
/// partitions (and the shared/global layouts) assume the cyclic slave
/// distribution, which a master-serial loop would violate.
#[test]
fn gating_skips_loops_touching_relocated_arrays() {
    let k = le_kernel(150);
    let baseline = run(&k, 2, le_args(150));
    let opts = NpOptions::inter(8).with_serial_below(200); // above every trip
    let t = transform(&k, &opts).unwrap();
    assert!(
        t.report.gated_loops.is_empty(),
        "loops over the register-partitioned array gated: {:?}",
        t.report.gated_loops
    );
    let got = run(&t.kernel, 2, alloc_extra_buffers(le_args(150), &t, Dim3::x1(2)));
    assert_close(&baseline, &got, 1e-3, "le with gating threshold");
}

/// Per-loop communication overrides: an intra-warp kernel can force one
/// loop onto the shared-memory scheme while the rest keep `__shfl`.
#[test]
fn loop_comm_override_applies_and_stays_equivalent() {
    let k = gating_kernel();
    let baseline = run(&k, 2, gating_args());

    // Default intra-warp: both loops use shfl.
    let t = transform(&k, &NpOptions::intra(8)).unwrap();
    let src = np_kernel_ir::printer::print_kernel(&t.kernel);
    assert!(src.contains("__shfl"), "{src}");

    // Override loop 0 to shared memory; loop 1 keeps shfl.
    let opts = NpOptions::intra(8).with_loop_comm(0, false);
    let t = transform(&k, &opts).unwrap();
    assert_eq!(t.report.comm_overrides, vec![(0, false)]);
    let got = run(&t.kernel, 2, alloc_extra_buffers(gating_args(), &t, Dim3::x1(2)));
    assert_close(&baseline, &got, 1e-4, "loop 0 forced to shared comm");

    // Override both loops to shared: no shfl anywhere in the output.
    let opts = NpOptions::intra(8).with_loop_comm(0, false).with_loop_comm(1, false);
    let t = transform(&k, &opts).unwrap();
    assert_eq!(t.report.comm_overrides, vec![(0, false), (1, false)]);
    let src = np_kernel_ir::printer::print_kernel(&t.kernel);
    assert!(!src.contains("__shfl"), "{src}");
    let got = run(&t.kernel, 2, alloc_extra_buffers(gating_args(), &t, Dim3::x1(2)));
    assert_close(&baseline, &got, 1e-4, "both loops forced to shared comm");
}

/// A `use_shfl` override is rejected when slave groups do not share a warp
/// or the target lacks `__shfl`.
#[test]
fn loop_comm_shfl_request_validated() {
    use cuda_np::TransformError;
    let k = gating_kernel();

    // Inter-warp slaves never share a warp.
    assert!(matches!(
        transform(&k, &NpOptions::inter(8).with_loop_comm(0, true)),
        Err(TransformError::ShflUnsupported)
    ));

    // Intra-warp but pre-sm_30 target.
    let mut opts = NpOptions::intra(8).with_loop_comm(0, true);
    opts.sm_version = 20;
    assert!(matches!(transform(&k, &opts), Err(TransformError::ShflUnsupported)));

    // Requesting shared comm (false) is always fine, even inter-warp.
    let t = transform(&k, &NpOptions::inter(8).with_loop_comm(0, false)).unwrap();
    assert_eq!(t.report.comm_overrides, vec![(0, false)]);
}

/// Everything observable about one launch, rendered to bytes.
struct ReportBytes {
    cycles: u64,
    time_us: f64,
    profile_json: String,
    race_json: String,
    chrome_trace: String,
    out_bits: Vec<u32>,
}

fn report_bytes(
    kernel: &Kernel,
    grid: Dim3,
    mut args: Args,
    sim: &SimOptions,
    out_name: &str,
    ctx: &str,
) -> ReportBytes {
    let rep = launch(&dev(), kernel, grid, &mut args, sim)
        .unwrap_or_else(|e| panic!("{ctx}: launch failed: {e}"));
    ReportBytes {
        cycles: rep.cycles,
        time_us: rep.time_us,
        profile_json: rep.profile.to_json(),
        race_json: rep.race.to_json(),
        chrome_trace: rep.chrome_trace(),
        out_bits: args.get_f32(out_name).unwrap().iter().map(|x| x.to_bits()).collect(),
    }
}

/// Launch the same kernel twice — forced-sequential and forced-parallel
/// interpretation — and require every observable byte to match: output
/// buffer bits, cycle counts, golden profile counters, race report, chrome
/// trace.
fn assert_serial_parallel_identical(
    kernel: &Kernel,
    grid: Dim3,
    make_args: &dyn Fn() -> Args,
    sim: &SimOptions,
    out_name: &str,
    ctx: &str,
) {
    let serial = report_bytes(
        kernel,
        grid,
        make_args(),
        &sim.clone().with_interp_threads(Some(1)),
        out_name,
        &format!("{ctx} [serial]"),
    );
    let parallel = report_bytes(
        kernel,
        grid,
        make_args(),
        &sim.clone().with_interp_threads(Some(4)),
        out_name,
        &format!("{ctx} [parallel]"),
    );
    assert_eq!(serial.out_bits, parallel.out_bits, "{ctx}: output bits differ");
    assert_eq!(serial.cycles, parallel.cycles, "{ctx}: cycles differ");
    assert_eq!(serial.time_us.to_bits(), parallel.time_us.to_bits(), "{ctx}: time differs");
    assert_eq!(serial.profile_json, parallel.profile_json, "{ctx}: profile JSON differs");
    assert_eq!(serial.race_json, parallel.race_json, "{ctx}: race JSON differs");
    assert_eq!(serial.chrome_trace, parallel.chrome_trace, "{ctx}: chrome trace differs");
}

/// The tentpole's byte-equivalence contract: for all ten workloads, slave
/// sizes {2, 4, 8} × {inter-warp, intra-warp} (plus the untransformed
/// baseline), parallel per-block interpretation must reproduce sequential
/// interpretation byte for byte — outputs, golden counters, race reports,
/// chrome traces, cycles.
#[test]
fn serial_and_parallel_interpretation_are_byte_identical() {
    let mut compared = 0u32;
    for w in np_workloads::all_workloads(np_workloads::Scale::Test) {
        let kernel = w.kernel();
        let grid = w.grid();
        let base_sim = w.sim_options().with_race_check(RaceCheckMode::Record);
        assert_serial_parallel_identical(
            &kernel,
            grid,
            &|| w.make_args(),
            &base_sim,
            w.output_name(),
            &format!("{} baseline", w.name()),
        );
        for s in [2u32, 4, 8] {
            for opts in [NpOptions::inter(s), NpOptions::intra(s)] {
                let Ok(t) = transform(&kernel, &opts) else { continue };
                let sim = w
                    .sim_options()
                    .with_race_check(RaceCheckMode::Record)
                    .with_race_options(RaceCheckOptions {
                        max_findings: None,
                        policy: gating_policy(&t),
                    });
                assert_serial_parallel_identical(
                    &t.kernel,
                    grid,
                    &|| alloc_extra_buffers(w.make_args(), &t, grid),
                    &sim,
                    w.output_name(),
                    &format!("{} {:?} slave_size={s}", w.name(), opts.np_type),
                );
                compared += 1;
            }
        }
    }
    // 10 workloads x 6 configs minus legitimate transform rejections.
    assert!(compared >= 30, "only {compared} transformed configurations compared");
}

/// Differential-equivalence sweep over the paper's ten workloads: every
/// transformed variant across slave counts {2, 4, 8, 16} x {inter-warp,
/// intra-warp} must reproduce the *scalar CPU reference* (not merely the
/// GPU baseline), within the workload's tolerance — and both the baseline
/// and every transformed launch must come back clean from the
/// happens-before race checker. Transform rejections (block-size cap,
/// warp containment) are legitimate pruning; a launch fault, a wrong
/// output, or a race finding is a bug.
#[test]
fn every_workload_matches_reference_across_slave_sweep() {
    let dev = dev();
    let mut checked = 0u32;
    for w in np_workloads::all_workloads(np_workloads::Scale::Test) {
        let kernel = w.kernel();
        let reference = w.reference();
        let grid = w.grid();
        let tol = w.tolerance().max(1e-3); // reductions reorder

        let base_sim = w.sim_options().with_race_check(RaceCheckMode::Record);
        let mut base_args = w.make_args();
        let base_rep = launch(&dev, &kernel, grid, &mut base_args, &base_sim)
            .unwrap_or_else(|e| panic!("{} baseline: launch failed: {e}", w.name()));
        assert!(base_rep.race.checked);
        assert!(
            base_rep.race.is_clean(),
            "{} baseline races:\n{}",
            w.name(),
            base_rep.race.narrative()
        );

        for s in [2u32, 4, 8, 16] {
            for opts in [NpOptions::inter(s), NpOptions::intra(s)] {
                let ctx = format!("{} {:?} slave_size={s}", w.name(), opts.np_type);
                let t = match transform(&kernel, &opts) {
                    Ok(t) => t,
                    Err(_) => continue, // rejected config, not an error
                };
                let sim = w
                    .sim_options()
                    .with_race_check(RaceCheckMode::Record)
                    .with_race_options(RaceCheckOptions {
                        max_findings: None,
                        policy: gating_policy(&t),
                    });
                let mut args = alloc_extra_buffers(w.make_args(), &t, grid);
                let rep = launch(&dev, &t.kernel, grid, &mut args, &sim)
                    .unwrap_or_else(|e| panic!("{ctx}: launch failed: {e}"));
                assert!(rep.race.checked, "{ctx}: checker must be armed");
                assert!(
                    rep.race.is_clean(),
                    "{ctx}: transformed kernel races:\n{}",
                    rep.race.narrative()
                );
                np_workloads::assert_close(
                    &reference,
                    args.get_f32(w.output_name()).unwrap(),
                    tol,
                    &ctx,
                );
                checked += 1;
            }
        }
    }
    // 10 workloads x 8 configs minus legitimate rejections; well over half
    // must actually run or the sweep is vacuous.
    assert!(checked >= 40, "only {checked} configurations ran");
}
