//! End-to-end tests of the `npcc` binary, driven through the printed
//! sources of real paper workloads (the printer/parser round-trip makes
//! this equivalent to feeding hand-written `.cu` files).

use np_kernel_ir::printer::print_kernel;
use np_workloads::{lu::Lu, mv::Mv, Scale, Workload};
use std::process::Command;

fn npcc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_npcc"))
}

fn write_kernel(w: &dyn Workload) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("npcc_cli_{}.cu", w.name()));
    std::fs::write(&path, print_kernel(&w.kernel())).expect("write kernel source");
    path
}

/// The acceptance criterion: `npcc --timeline` renders a per-SMX stall
/// timeline for (at least) the MV and LU workloads.
#[test]
fn timeline_renders_for_mv_and_lu() {
    let workloads: [Box<dyn Workload>; 2] =
        [Box::new(Mv::new(Scale::Test)), Box::new(Lu::new(Scale::Test))];
    for w in workloads {
        let path = write_kernel(w.as_ref());
        let out = npcc()
            .args(["--slave-size", "4", "--timeline"])
            .arg(&path)
            .output()
            .expect("run npcc");
        let stderr = String::from_utf8_lossy(&out.stderr);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "{}: npcc --timeline failed\nstderr: {stderr}",
            w.name()
        );
        assert!(stdout.contains("__global__"), "{}: kernel still emitted", w.name());
        assert!(stderr.contains("# SMX timeline"), "{}: {stderr}", w.name());
        assert!(stderr.contains("SMX  0 |"), "{}: {stderr}", w.name());
        assert!(stderr.contains("legend:"), "{}: {stderr}", w.name());
        assert!(stderr.contains("device:"), "{}: {stderr}", w.name());
    }
}

/// `--explain` gains the flight-recorder narrative: a cycle-attribution
/// line for the winner and the stall shift vs the baseline.
#[test]
fn explain_reports_stall_attribution() {
    let w = Mv::new(Scale::Test);
    let path = write_kernel(&w);
    let out = npcc().arg("--explain").arg(&path).output().expect("run npcc");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "npcc --explain failed\nstderr: {stderr}");
    assert!(stderr.contains("cycle attribution:"), "{stderr}");
    assert!(stderr.contains("stall shift vs baseline:"), "{stderr}");
}

/// `--check-races` on a clean transformed workload exits 0 and prints a
/// clean report.
#[test]
fn check_races_exits_zero_on_clean_kernel() {
    let w = Mv::new(Scale::Test);
    let path = write_kernel(&w);
    let out = npcc()
        .args(["--slave-size", "4", "--check-races"])
        .arg(&path)
        .output()
        .expect("run npcc");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "clean kernel must pass\nstderr: {stderr}");
    assert!(stderr.contains("race check for"), "{stderr}");
    assert!(stderr.contains(": clean"), "{stderr}");
    assert!(stderr.contains("\"checked\":true"), "{stderr}");
    assert!(stderr.contains("\"findings\":[]"), "{stderr}");
}

/// `--check-races` with an injected dropped barrier exits nonzero and the
/// report contains a race finding.
#[test]
fn check_races_exits_nonzero_on_dropped_barrier() {
    let w = Mv::new(Scale::Test);
    let path = write_kernel(&w);
    let out = npcc()
        .args(["--slave-size", "4", "--check-races", "--mutate", "drop-barrier:1"])
        .arg(&path)
        .output()
        .expect("run npcc");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "mutant must fail the gate\nstderr: {stderr}");
    assert!(stderr.contains("RACES FOUND"), "{stderr}");
    assert!(
        stderr.contains("ww-race") || stderr.contains("rw-race"),
        "{stderr}"
    );
}

/// `--explain` with `--check-races` narrates the race: both access sites
/// named by pc, with the space and address of the conflicting word.
#[test]
fn check_races_explain_names_both_access_sites() {
    let w = Mv::new(Scale::Test);
    let path = write_kernel(&w);
    let out = npcc()
        .args(["--slave-size", "4", "--check-races", "--explain", "--mutate", "drop-barrier:1"])
        .arg(&path)
        .output()
        .expect("run npcc");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "{stderr}");
    // The narrative names the conflicting word ("shared xs[…]") and both
    // racing accesses by pc.
    assert!(stderr.contains("shared "), "{stderr}");
    assert!(stderr.matches("pc ").count() >= 2, "{stderr}");
    assert!(stderr.contains("block "), "{stderr}");
}

/// An out-of-range or unknown mutation spec is a usage error, not a silent
/// no-op that would let a broken CI gate pass vacuously.
#[test]
fn bad_mutation_specs_are_rejected() {
    let w = Mv::new(Scale::Test);
    let path = write_kernel(&w);
    for spec in ["drop-barrier:99", "unknown-mutation"] {
        let out = npcc()
            .args(["--check-races", "--mutate", spec])
            .arg(&path)
            .output()
            .expect("run npcc");
        assert!(!out.status.success(), "spec {spec:?} must be rejected");
    }
}

/// The `--check-races` report is byte-identical across reruns.
#[test]
fn check_races_report_is_deterministic() {
    let w = Mv::new(Scale::Test);
    let path = write_kernel(&w);
    let run = || {
        let out = npcc()
            .args(["--slave-size", "4", "--check-races", "--mutate", "drop-barrier:1"])
            .arg(&path)
            .output()
            .expect("run npcc");
        String::from_utf8_lossy(&out.stderr).into_owned()
    };
    assert_eq!(run(), run());
}

/// `--watchdog` threads a step budget into every simulation the CLI runs:
/// `none` disarms it, a generous budget changes nothing, and a starvation
/// budget kills every tuning candidate — which the exit code reports.
#[test]
fn watchdog_flag_gates_runaway_budgets() {
    let w = Mv::new(Scale::Test);
    let path = write_kernel(&w);
    for b in ["none", "100000000"] {
        let out = npcc()
            .args(["--explain", "--watchdog", b])
            .arg(&path)
            .output()
            .expect("run npcc");
        assert!(
            out.status.success(),
            "--watchdog {b} must pass\nstderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = npcc()
        .args(["--explain", "--watchdog", "10"])
        .arg(&path)
        .output()
        .expect("run npcc");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "a 10-step budget must starve every candidate");
    assert!(stderr.contains("no tuning candidate ran to completion"), "{stderr}");
}

/// A zero or unparsable watchdog budget is a usage error (exit 2), not a
/// silently-disarmed watchdog.
#[test]
fn watchdog_flag_rejects_zero_and_garbage() {
    let w = Mv::new(Scale::Test);
    let path = write_kernel(&w);
    for bad in ["0", "soon"] {
        let out = npcc().args(["--watchdog", bad]).arg(&path).output().expect("run npcc");
        assert!(!out.status.success(), "--watchdog {bad} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--watchdog"), "{stderr}");
    }
}

/// `npcc serve` smoke over real pipes: one JSONL request on stdin produces
/// exactly one `ok` JSONL response on stdout, then EOF drains the daemon
/// cleanly (exit 0, cache index flushed to stderr).
#[test]
fn serve_answers_jsonl_on_stdio_and_drains_on_eof() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::Stdio;

    let kernel = "
// blockDim = (32, 1, 1)
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++) {
    sum += a[i * w + tx] * b[i];
  }
  c[tx] = sum;
}
";
    let escaped = kernel.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
    let mut child = npcc()
        .args(["serve", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn npcc serve");

    let mut stdin = child.stdin.take().unwrap();
    writeln!(stdin, "{{\"id\":\"smoke\",\"kernel\":\"{escaped}\"}}").unwrap();
    drop(stdin); // EOF: the daemon drains and exits.

    let stdout = BufReader::new(child.stdout.take().unwrap());
    let lines: Vec<String> = stdout.lines().map(|l| l.unwrap()).collect();
    let status = child.wait().expect("npcc serve exits");
    assert!(status.success(), "clean drain must exit 0");
    assert_eq!(lines.len(), 1, "exactly one response line: {lines:?}");
    assert!(lines[0].contains("\"id\":\"smoke\""), "{}", lines[0]);
    assert!(lines[0].contains("\"status\":\"ok\""), "{}", lines[0]);
    assert!(lines[0].contains("\"cycles\":"), "{}", lines[0]);

    let mut stderr = String::new();
    std::io::Read::read_to_string(&mut child.stderr.take().unwrap(), &mut stderr).ok();
    assert!(stderr.contains("np-serve-cache-index-v1"), "{stderr}");
    assert!(stderr.contains("drained cleanly"), "{stderr}");
}

/// Timeline output is deterministic: two invocations render byte-identical
/// Gantt charts.
#[test]
fn timeline_is_deterministic_across_runs() {
    let w = Mv::new(Scale::Test);
    let path = write_kernel(&w);
    let run = || {
        let out = npcc()
            .args(["--slave-size", "4", "--timeline"])
            .arg(&path)
            .output()
            .expect("run npcc");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stderr).into_owned()
    };
    assert_eq!(run(), run());
}

/// `--list-devices`: every registry name, its marketing name, and its
/// descriptor digest, one per line on stdout.
#[test]
fn list_devices_prints_registry_and_digests() {
    let out = npcc().arg("--list-devices").output().expect("run npcc");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for (name, dev) in ["gtx680", "k20c", "maxwell", "small_test"]
        .iter()
        .zip(np_gpu_sim::REGISTRY.iter().map(|n| np_gpu_sim::device::from_name(n).unwrap()))
    {
        let line = stdout
            .lines()
            .find(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("--list-devices missing {name}:\n{stdout}"));
        assert!(line.contains(&dev.name), "{line}");
        assert!(line.contains(&format!("digest {}", dev.digest_hex())), "{line}");
    }
}

/// An unknown `--device` name fails fast (exit 2) and the error names the
/// available registry devices.
#[test]
fn unknown_device_is_rejected_with_the_available_list() {
    let w = Mv::new(Scale::Test);
    let path = write_kernel(&w);
    let out = npcc().args(["--device", "titan"]).arg(&path).output().expect("run npcc");
    assert_eq!(out.status.code(), Some(2), "unknown device is a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown device 'titan'"), "{stderr}");
    assert!(stderr.contains("gtx680, k20c, maxwell, small_test"), "{stderr}");
}

/// Pull the first `"cycles":N` value out of a replay's report JSON.
fn cycles_of(stdout: &str) -> u64 {
    let at = stdout.find("\"cycles\":").expect("report JSON has cycles");
    stdout[at + 9..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("cycles parse")
}

/// A frozen trace replays under a *different* device config: replay is a
/// pure re-timing, so the device may change freely (same interpretation,
/// new cycle counts), the report echoes the device it was timed on, and a
/// descriptor loaded from a file behaves exactly like its registry twin.
#[test]
fn replay_retimes_under_a_different_device() {
    let w = Mv::new(Scale::Test);
    let path = write_kernel(&w);
    let trace = std::env::temp_dir().join("npcc_cli_device_replay.nptrace");
    let out = npcc()
        .args(["--slave-size", "4", "--emit-trace"])
        .arg(&trace)
        .arg(&path)
        .output()
        .expect("run npcc");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let replay = |device: Option<&str>| {
        let mut cmd = npcc();
        cmd.arg("--replay").arg(&trace);
        if let Some(d) = device {
            cmd.args(["--device", d]);
        }
        let out = cmd.output().expect("run npcc --replay");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let default = replay(None);
    assert!(default.contains("\"device\":\"gtx680\""), "{default}");
    let k20c = replay(Some("k20c"));
    assert!(k20c.contains("\"device\":\"k20c\""), "{k20c}");
    assert_ne!(
        cycles_of(&default),
        cycles_of(&k20c),
        "a 13-SMX K20c must not time like an 8-SMX GTX 680"
    );

    // A descriptor *file* with the K20c's parameters times identically to
    // the registry preset — resolution is transparent to the simulation.
    let desc = std::env::temp_dir().join("npcc_cli_k20c_twin.json");
    std::fs::write(&desc, np_gpu_sim::device::from_name("k20c").unwrap().descriptor_json())
        .expect("write descriptor");
    let twin = replay(Some(desc.to_str().unwrap()));
    assert_eq!(cycles_of(&twin), cycles_of(&k20c), "file descriptor must time like its twin");
    assert!(twin.contains(&format!("\"device\":\"{}\"", desc.display())), "{twin}");

    // An invalid descriptor file is rejected with the violated rule.
    let bad = std::env::temp_dir().join("npcc_cli_bad_device.json");
    let mut dev = np_gpu_sim::device::from_name("gtx680").unwrap();
    dev.num_smx = 0;
    std::fs::write(&bad, dev.descriptor_json()).expect("write descriptor");
    let out = npcc().arg("--replay").arg(&trace).arg("--device").arg(&bad).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("`num_smx` must be greater than zero"), "{stderr}");
}
