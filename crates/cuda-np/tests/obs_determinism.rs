//! np-obs determinism and correlation contracts.
//!
//! The np-obs-v1 determinism contract: after stripping every `wall_*`
//! field, an event log and a registry snapshot are pure functions of the
//! workload — two runs of the same (kernel, config, seed) must be
//! byte-identical, including across the tuner's thread pool (fork/adopt
//! splices candidate logs back in candidate order, never completion
//! order). On top of that, span trees must be well-formed, and in serve
//! every request gets one correlation id that is unique to it, rides on
//! every event it emits, and is echoed in the wire response.

use cuda_np::serve::{soak, synth_args, ChaosConfig, RetryPolicy, ServeConfig, Server, SoakConfig};
use cuda_np::tuner::{alloc_extra_buffers, autotune, default_candidates};
use cuda_np::{transform, NpOptions};
use np_exec::SimOptions;
use np_gpu_sim::DeviceConfig;
use np_kernel_ir::parse_kernel;
use np_kernel_ir::types::Dim3;
use proptest::prelude::*;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

const TMV: &str = "
// blockDim = (32, 1, 1)
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++) {
    sum += a[i * w + tx] * b[i];
  }
  c[tx] = sum;
}
";

fn event_name(ev: &np_obs::RawEvent) -> &str {
    match &ev.kind {
        np_obs::EvKind::Open { name, .. } => name,
        np_obs::EvKind::Close { name, .. } => name,
        np_obs::EvKind::Event { name, .. } => name,
    }
}

/// One transform + capture + replay pipeline under a fresh recorder and
/// registry; returns the stripped event log and stripped registry doc.
fn record_pipeline(slave_size: u32, intra: bool) -> (String, String) {
    let rec = np_obs::Recorder::buffer(1 << 20);
    let reg = np_obs::Registry::new();
    np_obs::scope(&rec, Some(&reg), None, || {
        let kernel = parse_kernel(TMV).expect("parse");
        let opts =
            if intra { NpOptions::intra(slave_size) } else { NpOptions::inter(slave_size) };
        let t = transform(&kernel, &opts).expect("transform");
        let dev = DeviceConfig::gtx680();
        let grid = Dim3::x1(4);
        let mut args = alloc_extra_buffers(synth_args(&t.kernel), &t, grid);
        let (_rep, cap) = np_exec::capture_launch(&dev, &t.kernel, grid, &mut args, &SimOptions::full())
            .expect("capture");
        let bytes = cap.encode();
        let decoded = np_gpu_sim::CapturedLaunch::decode(&bytes).expect("decode");
        np_exec::replay_launch(&dev, &decoded, &SimOptions::full()).expect("replay");
    });
    assert_eq!(rec.dropped(), 0, "buffered recorder must not overflow");
    let events = rec.drain();
    np_obs::check_well_formed(&events).expect("well-formed span tree");
    assert!(
        events.iter().any(|e| event_name(e) == "trace.decode"),
        "pipeline spans must cover the codec"
    );
    (np_obs::render_jsonl(&events, true), reg.snapshot_json(true))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two runs of the same (kernel, config) produce byte-identical
    /// stripped logs and registry snapshots, across the NP config space.
    #[test]
    fn reruns_are_byte_identical(log2_slave in 1u32..=3, variant in 0u32..=1) {
        let slave_size = 1u32 << log2_slave;
        let intra = variant == 1;
        let (log_a, reg_a) = record_pipeline(slave_size, intra);
        let (log_b, reg_b) = record_pipeline(slave_size, intra);
        prop_assert!(!log_a.is_empty());
        prop_assert_eq!(log_a, log_b);
        prop_assert_eq!(reg_a, reg_b);
    }
}

/// The tuner evaluates candidates on a thread pool; fork/adopt must make
/// the merged log independent of completion order, so two sweeps are
/// byte-identical after stripping.
#[test]
fn tuner_fork_adopt_is_deterministic() {
    let run = || {
        let rec = np_obs::Recorder::buffer(1 << 20);
        let reg = np_obs::Registry::new();
        np_obs::scope(&rec, Some(&reg), None, || {
            let kernel = parse_kernel(TMV).expect("parse");
            let dev = DeviceConfig::gtx680();
            let grid = Dim3::x1(4);
            let candidates = default_candidates(kernel.block_dim.x, 1024);
            let make_args = |t: &cuda_np::Transformed| alloc_extra_buffers(synth_args(&t.kernel), t, grid);
            autotune(&kernel, &dev, grid, &make_args, &SimOptions::full(), &candidates)
                .expect("tunes");
        });
        let events = rec.drain();
        np_obs::check_well_formed(&events).expect("well-formed span tree");
        let cand_spans = events
            .iter()
            .filter(|e| matches!(&e.kind, np_obs::EvKind::Open { name, .. } if name == "tune.candidate"))
            .count();
        assert!(cand_spans > 1, "the sweep must have adopted candidate spans, got {cand_spans}");
        (np_obs::render_jsonl(&events, true), reg.snapshot_json(true))
    };
    let (log_a, reg_a) = run();
    let (log_b, reg_b) = run();
    assert_eq!(log_a, log_b, "stripped tuner logs must be byte-identical");
    assert_eq!(reg_a, reg_b, "stripped registry snapshots must be byte-identical");
    assert!(reg_a.contains("\"tuner.candidates.total\""), "{reg_a}");
}

fn req_line(id: &str) -> String {
    format!("{{\"id\":\"{id}\",\"kernel\":\"{}\"}}", cuda_np::serve::json::escape(TMV))
}

/// Every serve request — including malformed ones — gets a correlation id
/// that is unique, present on every one of its events, and echoed in the
/// wire response.
#[test]
fn serve_corr_ids_are_unique_and_echoed() {
    let rec = np_obs::Recorder::buffer(1 << 20);
    let srv = Server::start(ServeConfig {
        workers: 2,
        obs: Some(rec.clone()),
        ..Default::default()
    });
    let (tx, rx) = channel();
    const N: usize = 8;
    for i in 0..N {
        srv.submit(&req_line(&format!("r{i}")), &tx);
    }
    srv.submit("this is not json", &tx);
    let mut resp_corrs = Vec::new();
    for _ in 0..N + 1 {
        let resp = rx.recv_timeout(Duration::from_secs(60)).expect("response");
        resp_corrs.push(resp.corr.clone().expect("every response echoes its corr"));
        assert!(resp.to_json_line().contains("\"corr\":\""), "{}", resp.to_json_line());
    }
    let report = srv.shutdown();
    assert!(
        report.registry_json.contains("\"schema\":\"np-obs-registry-v1\""),
        "{}",
        report.registry_json
    );

    // No global well-formedness check here: two workers interleave into
    // one shared recorder, so the merged stream is not a single span tree
    // (that contract applies to single-threaded and fork/adopted logs).
    let events = rec.drain();
    for ev in &events {
        if event_name(ev).starts_with("req.") {
            assert!(ev.corr.is_some(), "request event without corr: {:?}", event_name(ev));
        }
    }
    let mut responds: Vec<String> = events
        .iter()
        .filter(|e| event_name(e) == "req.respond")
        .map(|e| e.corr.clone().unwrap())
        .collect();
    assert_eq!(responds.len(), N + 1, "one req.respond per submission");
    responds.sort();
    responds.dedup();
    assert_eq!(responds.len(), N + 1, "correlation ids must be unique per request");
    let mut echoed = resp_corrs.clone();
    echoed.sort();
    echoed.dedup();
    assert_eq!(echoed.len(), N + 1, "wire responses echo distinct corr ids");
    assert!(responds.iter().all(|c| echoed.contains(c)), "log and wire corr sets agree");
}

/// Under a full chaos soak (delays, panics, faults, corruption, retries),
/// correlation ids stay unique per submission and present on every
/// request-scoped event.
#[test]
fn chaos_soak_keeps_corr_ids_coherent() {
    let rec = np_obs::Recorder::buffer(1 << 21);
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 4,
        chaos: Some(ChaosConfig::standard(42)),
        obs: Some(rec.clone()),
        ..Default::default()
    };
    let srv = Arc::new(Server::start(cfg));
    let report = soak(
        srv,
        &SoakConfig {
            seed: 42,
            clients: 4,
            duration: Duration::from_secs(2),
            retry: RetryPolicy::default(),
        },
    );
    assert!(report.passed(), "soak invariants hold with obs armed: {}", report.summary());

    let events = rec.drain();
    let mut responds = Vec::new();
    for ev in &events {
        if event_name(ev).starts_with("req.") {
            assert!(ev.corr.is_some(), "request event without corr: {:?}", event_name(ev));
        }
        if event_name(ev) == "req.respond" {
            responds.push(ev.corr.clone().unwrap());
        }
    }
    assert!(responds.len() > 10, "the soak must have answered requests, got {}", responds.len());
    let total = responds.len();
    responds.sort();
    responds.dedup();
    assert_eq!(responds.len(), total, "correlation ids must be unique per request");
}
