//! Property-based determinism tests for parallel per-block interpretation:
//! over random grid sizes and worker-pool sizes, a launch run with the
//! parallel interpreter must be byte-identical to the forced-sequential
//! run — output buffer bits, cycle counts, golden profile counters, and
//! race reports. Three kernel families stress the three interesting paths:
//!
//! 1. barrier-communication kernels (shared memory, no cross-block
//!    traffic) — the common fast path;
//! 2. a read-modify-write kernel whose global array is both loaded and
//!    stored (each block stays in its own slice) — exercises the
//!    copy-on-write overlay in the logged-memory journal;
//! 3. a cross-block-RAW kernel where every later block reads a slot that
//!    block 0 writes — the merge must detect the dependency and fall back
//!    to sequential re-execution with identical results.
//!
//! A CUDA-NP transformed kernel rides along so the sweep covers the
//! master/slave remapping the paper is about, not just hand-written IR.

use cuda_np::{gating_policy, transform, tuner::alloc_extra_buffers, NpOptions};
use np_exec::{launch, Args, KernelReport, RaceCheckMode, SimOptions};
use np_gpu_sim::racecheck::{GatingPolicy, RaceCheckOptions};
use np_gpu_sim::DeviceConfig;
use np_kernel_ir::expr::dsl::*;
use np_kernel_ir::types::Dim3;
use np_kernel_ir::{Kernel, KernelBuilder, Scalar};
use proptest::prelude::*;

fn dev() -> DeviceConfig {
    DeviceConfig::gtx680()
}

fn armed(threads: Option<usize>, policy: Option<GatingPolicy>) -> SimOptions {
    SimOptions::full()
        .with_race_check(RaceCheckMode::Record)
        .with_race_options(RaceCheckOptions { max_findings: None, policy })
        .with_interp_threads(threads)
}

/// Launch and return (report, output bits) — bits, not floats, because the
/// contract is byte identity, not numeric closeness.
fn run_bits(
    kernel: &Kernel,
    grid: u32,
    mut args: Args,
    sim: &SimOptions,
    out: &str,
) -> (KernelReport, Vec<u32>) {
    let rep = launch(&dev(), kernel, Dim3::x1(grid), &mut args, sim)
        .expect("record mode never faults on races");
    let bits = args.get_f32(out).unwrap().iter().map(|x| x.to_bits()).collect();
    (rep, bits)
}

/// The actual property: serial (1 worker) and parallel (`pool` workers)
/// interpretation of the same launch agree on every observable byte.
fn assert_deterministic(
    kernel: &Kernel,
    grid: u32,
    make_args: &dyn Fn() -> Args,
    pool: usize,
    policy: Option<GatingPolicy>,
    out: &str,
    ctx: &str,
) {
    let (serial, serial_bits) =
        run_bits(kernel, grid, make_args(), &armed(Some(1), policy.clone()), out);
    let (parallel, parallel_bits) =
        run_bits(kernel, grid, make_args(), &armed(Some(pool), policy), out);
    assert_eq!(serial_bits, parallel_bits, "{ctx}: output bits differ");
    assert_eq!(serial.cycles, parallel.cycles, "{ctx}: cycles differ");
    assert_eq!(
        serial.profile.to_json(),
        parallel.profile.to_json(),
        "{ctx}: profile counters differ"
    );
    assert_eq!(serial.race.to_json(), parallel.race.to_json(), "{ctx}: race reports differ");
    assert_eq!(
        serial.chrome_trace(),
        parallel.chrome_trace(),
        "{ctx}: chrome traces differ"
    );
}

/// Barrier communication through a shared tile: `rounds` write/sync/read
/// rounds, then each thread stores its accumulator to a private `out` slot.
fn comm_kernel(warps: u32, rounds: u32, offset: u32) -> Kernel {
    let n = warps * 32;
    let mut b = KernelBuilder::new("pcomm", n);
    b.param_global_f32("src");
    b.param_global_f32("out");
    b.shared_array("tile", Scalar::F32, n);
    b.decl_f32("acc", f(0.0));
    for r in 0..rounds {
        b.store("tile", tidx(), load("src", tidx() + i(r as i32)) + v("acc"));
        b.sync();
        b.assign(
            "acc",
            v("acc") + load("tile", (tidx() + i(offset as i32)) % i(n as i32)),
        );
        if r + 1 < rounds {
            b.sync();
        }
    }
    b.store("out", tidx() + bidx() * bdimx(), v("acc"));
    b.finish()
}

fn comm_args(warps: u32, grid: u32) -> Args {
    let n = (warps * 32) as usize;
    Args::new()
        .buf_f32("src", (0..n + 8).map(|i| ((i * 31 % 67) as f32 - 33.0) / 16.0).collect())
        .buf_f32("out", vec![0.0; n * grid as usize])
}

/// Read-modify-write on a global array: `data` is both loaded and stored,
/// but every block only touches its own slice, so the parallel path must
/// run all blocks through copy-on-write overlays and still merge cleanly.
fn rmw_kernel(block: u32) -> Kernel {
    let mut b = KernelBuilder::new("rmw", block);
    b.param_global_f32("data");
    b.decl_i32("gid", tidx() + bidx() * bdimx());
    b.decl_f32("x", load("data", v("gid")));
    b.store("data", v("gid"), v("x") * f(2.0) + f(1.0));
    b.finish()
}

/// Cross-block read-after-write: every block writes its own slot of `out`,
/// but blocks other than 0 first read `out[0]` — which block 0 writes. The
/// merge's RAW check must detect the intersection and fall back to
/// sequential execution, where block b really does observe block 0's store
/// (grid-sequential interpreter semantics), byte-identically to a forced
/// serial run.
fn raw_kernel(block: u32) -> Kernel {
    let mut b = KernelBuilder::new("crossraw", block);
    b.param_global_f32("out");
    b.decl_i32("gid", tidx() + bidx() * bdimx());
    b.decl_f32("seed", load("out", i(0)));
    b.store("out", v("gid"), v("seed") + cast(Scalar::F32, v("gid")) * f(0.5));
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shared-memory barrier kernels over random shapes: parallel blocks,
    /// no cross-block traffic — the common path.
    #[test]
    fn comm_kernels_are_pool_size_invariant(
        warps in 1u32..=3,
        rounds in 1u32..=3,
        offset in 1u32..=31,
        grid in 2u32..=9,
        pool in 2usize..=8,
    ) {
        let k = comm_kernel(warps, rounds, offset % (warps * 32 - 1) + 1);
        assert_deterministic(
            &k,
            grid,
            &|| comm_args(warps, grid),
            pool,
            None,
            "out",
            &format!("comm warps={warps} rounds={rounds} grid={grid} pool={pool}"),
        );
    }

    /// A global array that is both loaded and stored (block-disjoint
    /// slices) exercises the copy-on-write overlay without triggering the
    /// sequential fallback.
    #[test]
    fn rmw_kernels_are_pool_size_invariant(
        warps in 1u32..=2,
        grid in 2u32..=9,
        pool in 2usize..=8,
    ) {
        let block = warps * 32;
        let k = rmw_kernel(block);
        let n = (block * grid) as usize;
        assert_deterministic(
            &k,
            grid,
            &|| Args::new().buf_f32("data", (0..n).map(|i| (i % 23) as f32 - 11.0).collect()),
            pool,
            None,
            "data",
            &format!("rmw block={block} grid={grid} pool={pool}"),
        );
    }

    /// Genuine cross-block read-after-write forces the merge down the
    /// sequential-fallback path; results must still match a forced-serial
    /// run byte for byte.
    #[test]
    fn cross_block_raw_falls_back_deterministically(
        grid in 2u32..=9,
        pool in 2usize..=8,
        seed in -8i32..=8,
    ) {
        let k = raw_kernel(32);
        let n = (32 * grid) as usize;
        let make = || {
            let mut v = vec![0.0f32; n];
            v[0] = seed as f32 * 0.25;
            Args::new().buf_f32("out", v)
        };
        assert_deterministic(
            &k,
            grid,
            &make,
            pool,
            None,
            "out",
            &format!("crossraw grid={grid} pool={pool} seed={seed}"),
        );
    }

    /// The transformed master/slave kernel (TMV, inter- and intra-warp)
    /// under random grids and pools: the paper's own workload shape stays
    /// deterministic through the parallel interpreter.
    #[test]
    fn transformed_tmv_is_pool_size_invariant(
        grid in 1u32..=6,
        pool in 2usize..=8,
        slave_pow in 1u32..=3,
        inter in any::<bool>(),
    ) {
        let s = 1u32 << slave_pow; // 2, 4, 8
        let mut b = KernelBuilder::new("tmv", 32);
        b.param_global_f32("a");
        b.param_global_f32("b");
        b.param_global_f32("out");
        b.param_scalar_i32("w");
        b.param_scalar_i32("h");
        b.decl_f32("sum", f(0.0));
        b.decl_i32("tx", tidx() + bidx() * bdimx());
        b.pragma_for("np parallel for reduction(+:sum)", "i", i(0), p("h"), |b| {
            b.assign("sum", v("sum") + load("a", v("i") * p("w") + v("tx")) * load("b", v("i")));
        });
        b.store("out", v("tx"), v("sum"));
        let k = b.finish();

        let opts = if inter { NpOptions::inter(s) } else { NpOptions::intra(s) };
        let t = transform(&k, &opts).expect("tmv accepts all swept configs");
        let w = (32 * grid) as usize;
        let h = 24usize;
        let make = || {
            let a: Vec<f32> = (0..w * h).map(|i| ((i * 37 % 101) as f32 - 50.0) / 25.0).collect();
            let bv: Vec<f32> = (0..h).map(|i| ((i * 13 % 53) as f32 - 26.0) / 13.0).collect();
            let args = Args::new()
                .buf_f32("a", a)
                .buf_f32("b", bv)
                .buf_f32("out", vec![0.0; w])
                .i32("w", w as i32)
                .i32("h", h as i32);
            alloc_extra_buffers(args, &t, Dim3::x1(grid))
        };
        assert_deterministic(
            &t.kernel,
            grid,
            &make,
            pool,
            gating_policy(&t),
            "out",
            &format!("tmv {:?} slave_size={s} grid={grid} pool={pool}", opts.np_type),
        );
    }
}
