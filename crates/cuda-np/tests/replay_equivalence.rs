//! The capture/replay equivalence gate: for every Table-1 workload,
//! every transform configuration the issue names (slave sizes {2, 4, 8}
//! crossed with inter-/intra-warp), interpreting once into a
//! `CapturedLaunch` and replaying it must produce a `KernelReport`
//! *byte-identical* to a direct `launch` — timing, stall breakdown,
//! profile counters, race findings, and the rendered chrome trace all
//! included. The same holds through a full encode/decode round trip of
//! the `np-trace-v1` bytes, so an artifact written to disk (or a serve
//! cache) replays to the same answer as the live capture.
//!
//! Also pinned here: the autotuner interprets each runnable candidate
//! exactly once (the interpretation-count probe), and its winner's
//! stored capture replays to the winner's exact report.

use cuda_np::tuner::{alloc_extra_buffers, autotune, default_candidates};
use cuda_np::{transform, NpOptions};
use np_exec::{
    capture_launch, interpretation_count, launch, replay_launch, KernelReport,
};
use np_gpu_sim::{CapturedLaunch, DeviceConfig};
use np_workloads::{all_workloads, Scale, Workload};

fn dev() -> DeviceConfig {
    DeviceConfig::gtx680()
}

/// Every observable byte of a report, concatenated. Two reports with the
/// same fingerprint are indistinguishable to any consumer: the timing
/// counters (Debug covers every field), the profile and race JSON
/// documents, the stall breakdown, the chrome trace, and the hoisted
/// cycle count.
fn fingerprint(r: &KernelReport) -> String {
    format!(
        "{:?}|{}|{}|{}|{}|{}",
        r.timing,
        r.timing.stall.to_json(),
        r.profile.to_json(),
        r.race.to_json(),
        r.chrome_trace(),
        r.cycles
    )
}

/// The issue's configuration matrix for one workload's kernel: slave
/// sizes {2, 4, 8} × {inter, intra}, skipping combinations the transform
/// legitimately rejects (e.g. a master size that overflows the block cap).
fn configs() -> Vec<NpOptions> {
    let mut v = Vec::new();
    for s in [2u32, 4, 8] {
        v.push(NpOptions::inter(s));
        v.push(NpOptions::intra(s));
    }
    v
}

#[test]
fn replay_is_byte_identical_to_direct_launch_for_all_workloads() {
    let dev = dev();
    let mut checked = 0usize;
    for w in all_workloads(Scale::Test) {
        let kernel = w.kernel();
        let grid = w.grid();
        let opts = w.sim_options();

        // Baseline kernel first: capture+replay vs direct.
        check_one(&dev, &kernel, w.as_ref(), &format!("{} baseline", w.name()));
        checked += 1;

        // Then the full transform matrix.
        for np in configs() {
            let label = format!(
                "{} slave={} {:?}",
                w.name(),
                np.slave_size,
                np.np_type
            );
            let t = match transform(&kernel, &np) {
                Ok(t) => t,
                Err(_) => continue, // config rejected for this kernel: not a replay concern
            };
            let mut direct_args = alloc_extra_buffers(w.make_args(), &t, grid);
            let direct = launch(&dev, &t.kernel, grid, &mut direct_args, &opts)
                .unwrap_or_else(|e| panic!("{label}: direct launch failed: {e}"));

            let mut cap_args = alloc_extra_buffers(w.make_args(), &t, grid);
            let (via_capture, cap) =
                capture_launch(&dev, &t.kernel, grid, &mut cap_args, &opts)
                    .unwrap_or_else(|e| panic!("{label}: capture failed: {e}"));
            assert_eq!(
                fingerprint(&direct),
                fingerprint(&via_capture),
                "{label}: capture-path report != direct report"
            );

            // Round-trip the artifact through the codec, then replay the
            // decoded capture: still byte-identical.
            let decoded = CapturedLaunch::decode(&cap.encode())
                .unwrap_or_else(|e| panic!("{label}: round trip failed: {e}"));
            let replayed = replay_launch(&dev, &decoded, &opts)
                .unwrap_or_else(|e| panic!("{label}: replay failed: {e}"));
            assert_eq!(
                fingerprint(&direct),
                fingerprint(&replayed),
                "{label}: replayed report != direct report"
            );
            checked += 1;
        }
    }
    // 10 workloads × (1 baseline + up to 6 configs): a collapsed matrix
    // means the transform rejected everything, which is its own bug.
    assert!(checked >= 40, "only {checked} configurations exercised");
}

fn check_one(dev: &DeviceConfig, kernel: &np_kernel_ir::Kernel, w: &dyn Workload, label: &str) {
    let grid = w.grid();
    let opts = w.sim_options();
    let direct = launch(dev, kernel, grid, &mut w.make_args(), &opts)
        .unwrap_or_else(|e| panic!("{label}: direct launch failed: {e}"));
    let (via_capture, cap) = capture_launch(dev, kernel, grid, &mut w.make_args(), &opts)
        .unwrap_or_else(|e| panic!("{label}: capture failed: {e}"));
    assert_eq!(
        fingerprint(&direct),
        fingerprint(&via_capture),
        "{label}: capture-path report != direct report"
    );
    let decoded = CapturedLaunch::decode(&cap.encode())
        .unwrap_or_else(|e| panic!("{label}: round trip failed: {e}"));
    let replayed = replay_launch(dev, &decoded, &opts)
        .unwrap_or_else(|e| panic!("{label}: replay failed: {e}"));
    assert_eq!(
        fingerprint(&direct),
        fingerprint(&replayed),
        "{label}: replayed report != direct report"
    );
}

/// The tuner's winner carries its capture; replaying that capture must
/// reproduce the winner's report exactly, and a second autotune run must
/// elect the same winner with identical entries (the sweep is
/// deterministic end to end).
#[test]
fn autotune_winner_capture_replays_to_winner_report() {
    let dev = dev();
    for w in all_workloads(Scale::Test) {
        let kernel = w.kernel();
        let grid = w.grid();
        let opts = w.sim_options();
        let candidates = default_candidates(kernel.block_dim.x, 1024);
        let run = |_: ()| {
            autotune(
                &kernel,
                &dev,
                grid,
                &|t| alloc_extra_buffers(w.make_args(), t, grid),
                &opts,
                &candidates,
            )
            .unwrap_or_else(|e| panic!("{}: autotune failed: {e}", w.name()))
        };
        let a = run(());
        let b = run(());

        // Same winner, same entries, both runs.
        assert_eq!(
            a.best.report.slave_size, b.best.report.slave_size,
            "{}: winner slave size unstable",
            w.name()
        );
        assert_eq!(
            a.best.report.np_type, b.best.report.np_type,
            "{}: winner NP type unstable",
            w.name()
        );
        assert_eq!(a.entries.len(), b.entries.len(), "{}: entry count unstable", w.name());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(
                format!("{:?}", x.outcome),
                format!("{:?}", y.outcome),
                "{}: entry outcome unstable (slave={} {:?})",
                w.name(),
                x.slave_size,
                x.np_type
            );
        }
        assert_eq!(
            fingerprint(&a.best_report),
            fingerprint(&b.best_report),
            "{}: winner report unstable across runs",
            w.name()
        );

        // The stored capture IS the winner's interpretation: replaying it
        // (with the sweep's own options) reproduces the report exactly.
        let replayed = replay_launch(&dev, &a.best_capture, &opts)
            .unwrap_or_else(|e| panic!("{}: winner capture replay failed: {e}", w.name()));
        assert_eq!(
            fingerprint(&a.best_report),
            fingerprint(&replayed),
            "{}: winner capture does not replay to winner report",
            w.name()
        );
    }
}

/// The interpretation-count probe from the acceptance criteria: one
/// autotune sweep interprets each runnable candidate exactly once —
/// replays and report plumbing add zero interpretations. Counted with
/// the process-global probe, so this test runs the sweep serially and
/// tolerates no concurrent launches of its own making (the probe delta
/// is measured around a single call).
#[test]
fn autotune_interprets_each_candidate_exactly_once() {
    let dev = dev();
    let w = &all_workloads(Scale::Test)[0]; // MC: every candidate is runnable
    let kernel = w.kernel();
    let grid = w.grid();
    let opts = w.sim_options();
    let candidates = default_candidates(kernel.block_dim.x, 1024);

    let before = interpretation_count();
    let result = autotune(
        &kernel,
        &dev,
        grid,
        &|t| alloc_extra_buffers(w.make_args(), t, grid),
        &opts,
        &candidates,
    )
    .unwrap_or_else(|e| panic!("autotune failed: {e}"));
    let interpreted = interpretation_count() - before;

    // Candidates that never reached the simulator (transform rejection)
    // cost zero interpretations; everything else costs exactly one.
    let launched = result
        .entries
        .iter()
        .filter(|e| !matches!(e.outcome, cuda_np::tuner::TuneOutcome::Rejected(_)))
        .count() as u64;
    assert_eq!(
        interpreted, launched,
        "sweep interpreted {interpreted} times for {launched} launched candidates \
         (entries: {})",
        result.entries.len()
    );

    // And replaying the winner afterwards adds none.
    let before = interpretation_count();
    replay_launch(&dev, &result.best_capture, &opts).expect("winner replays");
    assert_eq!(
        interpretation_count() - before,
        0,
        "replay must not interpret"
    );
}
