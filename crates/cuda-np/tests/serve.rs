//! Integration tests for `cuda_np::serve`: the crash-isolated batch
//! compile/sim service behind `npcc serve`.
//!
//! Each test stands up a real [`Server`] (worker pool, bounded queue,
//! checksummed cache) and drives it through one failure mode — overload
//! shedding, queue-expired deadlines, panic quarantine, cache corruption —
//! plus a short seeded chaos soak exercising all of them at once. Chaos
//! rates are per-hazard, so a test can arm exactly the hazard it is about
//! (e.g. `panic_one_in: 1` panics every job) and leave the rest off.

use cuda_np::serve::{soak, ChaosConfig, RetryPolicy, ServeConfig, Server, SoakConfig, Status};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

/// Figure-2-shaped TMV kernel: pragma loop, 32-thread block, terminates in
/// a couple thousand simulated cycles at the default synthetic scale.
const TMV: &str = "
// blockDim = (32, 1, 1)
__global__ void tmv(float* a, float* b, float* c, int w, int h) {
  float sum = 0.0f;
  int tx = threadIdx.x + blockIdx.x * blockDim.x;
  #pragma np parallel for reduction(+:sum)
  for (int i = 0; i < h; i++) {
    sum += a[i * w + tx] * b[i];
  }
  c[tx] = sum;
}
";

fn line(id: &str, extra: &str) -> String {
    format!("{{\"id\":\"{id}\",\"kernel\":\"{}\"{extra}}}", cuda_np::serve::json::escape(TMV))
}

/// A chaos config with every hazard off; tests arm one at a time.
fn no_chaos(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        delay_one_in: 0,
        delay_max_ms: 0,
        panic_one_in: 0,
        fault_one_in: 0,
        corrupt_one_in: 0,
    }
}

#[test]
fn overload_sheds_with_typed_retryable_responses() {
    // One worker that sleeps on every job, a queue of one: a rapid burst
    // must shed most of its jobs with `overloaded`, never block or drop.
    let srv = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 1,
        chaos: Some(ChaosConfig { delay_one_in: 1, delay_max_ms: 30, ..no_chaos(5) }),
        ..Default::default()
    });
    let (tx, rx) = channel();
    const BURST: usize = 10;
    for i in 0..BURST {
        srv.submit(&line(&format!("b{i}"), ""), &tx);
    }
    let responses: Vec<_> = (0..BURST).map(|_| rx.recv().expect("one response per submit")).collect();
    assert!(rx.try_recv().is_err(), "no duplicate responses");

    let shed: Vec<_> =
        responses.iter().filter(|r| r.status == Status::Overloaded).collect();
    assert!(!shed.is_empty(), "a burst of {BURST} into a queue of 1 must shed");
    for r in &shed {
        assert!(r.retryable, "overload is transient");
        assert!(r.retry_after_ms.is_some(), "overload carries a backoff hint");
    }
    let end = srv.shutdown();
    assert_eq!(end.snapshot.shed_overloaded, shed.len() as u64);
    assert_eq!(end.snapshot.submitted, BURST as u64);
    assert_eq!(end.snapshot.answered, BURST as u64, "exactly once each");
    assert_eq!(end.worker_panics, 0);
}

#[test]
fn zero_deadline_expires_in_the_queue() {
    let srv = Server::start(ServeConfig { workers: 1, ..Default::default() });
    let (tx, rx) = channel();
    srv.submit(&line("dead", ",\"deadline_ms\":0"), &tx);
    let resp = rx.recv().unwrap();
    assert_eq!(resp.status, Status::Deadline, "{:?}", resp.error);
    assert!(resp.retryable, "a deadline miss is worth one more try");
    assert_eq!(srv.shutdown().snapshot.deadline_exceeded, 1);
}

#[test]
fn panicking_kernel_is_quarantined_after_threshold() {
    // Chaos panics every job; the same kernel strikes out after two and is
    // then rejected at admission without ever reaching a worker.
    let srv = Server::start(ServeConfig {
        workers: 1,
        quarantine_threshold: 2,
        chaos: Some(ChaosConfig { panic_one_in: 1, ..no_chaos(9) }),
        ..Default::default()
    });
    let (tx, rx) = channel();

    srv.submit(&line("p1", ""), &tx);
    let first = rx.recv().unwrap();
    assert_eq!(first.status, Status::Panicked);
    assert!(first.retryable, "first strike: could be environmental");

    srv.submit(&line("p2", ""), &tx);
    let second = rx.recv().unwrap();
    assert_eq!(second.status, Status::Panicked);
    assert!(!second.retryable, "second strike: poison, stop retrying");

    srv.submit(&line("p3", ""), &tx);
    let third = rx.recv().unwrap();
    assert_eq!(third.status, Status::Quarantined, "{:?}", third.error);
    assert!(!third.retryable);

    let end = srv.shutdown();
    assert_eq!(end.snapshot.panicked, 2);
    assert_eq!(end.snapshot.quarantined_rejects, 1);
    assert_eq!(end.worker_panics, 0, "every panic was caught");
}

#[test]
fn corrupted_cache_entry_is_evicted_and_recomputed() {
    // Chaos flips a byte of a cached entry (without fixing the checksum)
    // after every job. The next identical request must detect the damage,
    // evict, recompute — and still produce a byte-identical payload.
    let srv = Server::start(ServeConfig {
        workers: 1,
        chaos: Some(ChaosConfig { corrupt_one_in: 1, ..no_chaos(3) }),
        ..Default::default()
    });
    let (tx, rx) = channel();

    srv.submit(&line("c1", ""), &tx);
    let cold = rx.recv().unwrap();
    assert_eq!(cold.status, Status::Ok, "{:?}", cold.error);
    assert!(!cold.cached);

    srv.submit(&line("c2", ""), &tx);
    let redo = rx.recv().unwrap();
    assert_eq!(redo.status, Status::Ok, "{:?}", redo.error);
    assert!(!redo.cached, "corrupt entry must not be served as a hit");
    assert_eq!(cold.payload, redo.payload, "recompute is byte-identical");

    let end = srv.shutdown();
    assert_eq!(end.snapshot.cache_hits, 0);
    assert!(end.snapshot.cache_corrupt_evicted >= 1);
    assert!(end.snapshot.chaos_corruptions >= 1);
}

#[test]
fn clean_repeat_requests_hit_the_cache() {
    let srv = Server::start(ServeConfig { workers: 1, ..Default::default() });
    let (tx, rx) = channel();
    srv.submit(&line("h1", ""), &tx);
    let cold = rx.recv().unwrap();
    srv.submit(&line("h2", ""), &tx);
    let warm = rx.recv().unwrap();
    assert_eq!((cold.status, warm.status), (Status::Ok, Status::Ok));
    assert!(warm.cached);
    assert_eq!(cold.payload, warm.payload);
    // A different transform config misses: the key covers the config.
    srv.submit(&line("h3", ",\"slave_size\":2"), &tx);
    let other = rx.recv().unwrap();
    assert_eq!(other.status, Status::Ok, "{:?}", other.error);
    assert!(!other.cached, "different slave_size is a different key");
    assert_eq!(srv.shutdown().snapshot.cache_hits, 1);
}

#[test]
fn drain_answers_every_accepted_job_exactly_once() {
    // Submit a burst, then immediately shut down: every submission already
    // answered or still queued must still get exactly one terminal
    // response — accepted jobs drain, they are not dropped.
    let srv = Arc::new(Server::start(ServeConfig {
        workers: 2,
        queue_cap: 16,
        chaos: Some(ChaosConfig { delay_one_in: 2, delay_max_ms: 10, ..no_chaos(11) }),
        ..Default::default()
    }));
    let (tx, rx) = channel();
    const N: usize = 12;
    for i in 0..N {
        srv.submit(&line(&format!("d{i}"), ""), &tx);
    }
    let end = srv.shutdown();
    drop(tx);
    let mut ids: Vec<String> = rx.iter().map(|r| r.id.unwrap()).collect();
    ids.sort();
    let mut want: Vec<String> = (0..N).map(|i| format!("d{i}")).collect();
    want.sort();
    assert_eq!(ids, want, "exactly one response per submission, none lost");
    assert_eq!(end.snapshot.answered, N as u64);
    assert_eq!(end.worker_panics, 0);
}

#[test]
fn short_chaos_soak_holds_the_invariants() {
    // The full chaos mix for about a second: delays, panics, forced sim
    // faults, cache corruption, plus overload shedding from more clients
    // than queue slots. The soak's own gate checks exactly-once delivery,
    // byte-identical ok payloads, and zero escaped worker panics.
    let srv = Arc::new(Server::start(ServeConfig {
        workers: 2,
        queue_cap: 4,
        chaos: Some(ChaosConfig::standard(42)),
        ..Default::default()
    }));
    let report = soak(
        Arc::clone(&srv),
        &SoakConfig {
            seed: 42,
            clients: 4,
            duration: Duration::from_millis(900),
            retry: RetryPolicy::default(),
        },
    );
    assert!(report.passed(), "soak failed: {}", report.summary());
    assert!(report.requests > 0);
    let snap = report.snapshot.as_ref().unwrap();
    assert_eq!(snap.submitted, report.submissions, "server saw every submission");
    assert!(report.cache_index.contains("np-serve-cache-index-v1"));
}
