//! Property tests for the serve result cache: the key is a *pure* function
//! of `(kernel canon, transform config, sim config)` — equal inputs always
//! collide, any single-field change separates, and field boundaries cannot
//! be confused (the key hashes each field with a tag and length prefix).
//! Plus the corruption property: flip any byte of a stored payload and the
//! next lookup must detect it, evict, and report a miss — never serve it.

use cuda_np::serve::cache::{cache_key, fnv64, Cache, Lookup};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Purity: the key depends only on the three field values.
    #[test]
    fn cache_key_is_pure(
        kernel in "[a-z{}()+;= ]{0,40}",
        tcfg in "[a-z0-9=;]{0,20}",
        scfg in "[a-z0-9=;]{0,20}",
    ) {
        prop_assert_eq!(
            cache_key(&kernel, &tcfg, &scfg),
            cache_key(&kernel, &tcfg, &scfg)
        );
        // Key bits actually come from the content, not object identity:
        // fresh allocations of equal strings still agree.
        let (k2, t2, s2) = (kernel.clone(), tcfg.clone(), scfg.clone());
        prop_assert_eq!(cache_key(&kernel, &tcfg, &scfg), cache_key(&k2, &t2, &s2));
    }

    /// Sensitivity: perturbing any one field changes the key.
    #[test]
    fn cache_key_separates_single_field_changes(
        kernel in "[a-z ]{1,30}",
        tcfg in "[a-z0-9]{1,15}",
        scfg in "[a-z0-9]{1,15}",
        salt in "[A-Z]{1,4}",
    ) {
        let base = cache_key(&kernel, &tcfg, &scfg);
        let bump = |s: &str| format!("{s}{salt}");
        prop_assert_ne!(base, cache_key(&bump(&kernel), &tcfg, &scfg));
        prop_assert_ne!(base, cache_key(&kernel, &bump(&tcfg), &scfg));
        prop_assert_ne!(base, cache_key(&kernel, &tcfg, &bump(&scfg)));
    }

    /// Field boundaries are unambiguous: moving a suffix of one field onto
    /// the front of the next produces a different key, because every field
    /// is hashed behind its own tag and length prefix.
    #[test]
    fn cache_key_fields_cannot_bleed(
        head in "[a-z]{1,10}",
        tail in "[a-z]{1,10}",
        scfg in "[a-z0-9]{0,12}",
    ) {
        let glued = format!("{head}{tail}");
        prop_assert_ne!(
            cache_key(&glued, "", &scfg),
            cache_key(&head, &tail, &scfg),
            "kernel/transform boundary must be part of the key"
        );
        prop_assert_ne!(
            cache_key("", &glued, &scfg),
            cache_key(&head, &tail, &scfg),
            "splitting one field into two must change the key"
        );
    }

    /// Corruption: flip any single byte of a cached payload and the next
    /// lookup detects the checksum mismatch, evicts, and recomputes — the
    /// damaged bytes are never served.
    #[test]
    fn byte_flipped_entry_is_detected_and_recomputed(
        payload in "[a-z0-9:{},\"]{1,60}",
        nth in 0usize..64,
        xor in 1u8..128,
    ) {
        let key = cache_key("k", "t", "s");
        let mut cache = Cache::new(8);
        cache.insert(key, payload.clone());
        prop_assert!(matches!(cache.lookup(key), Lookup::Hit(p) if p == payload));

        // Flip one byte in place (corrupt_nth targets payload bytes only).
        prop_assert!(cache.corrupt_nth(nth, xor).is_some());
        prop_assert!(
            matches!(cache.lookup(key), Lookup::CorruptEvicted),
            "damaged entry must be evicted, not served"
        );
        prop_assert!(matches!(cache.lookup(key), Lookup::Miss), "gone after eviction");

        // Recompute path: a fresh insert restores byte-identical service.
        cache.insert(key, payload.clone());
        prop_assert!(matches!(cache.lookup(key), Lookup::Hit(p) if p == payload));
    }

    /// The checksum itself is content-addressed: equal payloads hash equal,
    /// and the FNV of the payload matches what the index reports against.
    #[test]
    fn fnv_is_stable_for_equal_bytes(payload in "[ -~]{0,50}") {
        prop_assert_eq!(fnv64(payload.as_bytes()), fnv64(payload.clone().as_bytes()));
    }
}
