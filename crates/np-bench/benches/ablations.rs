//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! redundant recomputation of uniform live-ins (Section 3.1), the
//! local-array policy threshold (Section 3.3), wave sampling, and the raw
//! substrate costs (interpreter vs timing engine).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use cuda_np::tuner::alloc_extra_buffers;
use cuda_np::{transform, NpOptions};
use np_exec::{launch, SimOptions};
use np_gpu_sim::DeviceConfig;
use np_workloads::{le::Le, tmv::Tmv, Scale, Workload};
use std::hint::black_box;

/// Section 3.1 ablation: broadcast every live-in vs let slaves recompute
/// uniform values redundantly.
fn ablation_redundant_uniform(c: &mut Criterion) {
    let dev = DeviceConfig::gtx680();
    let w = Tmv::new(Scale::Test);
    let mut g = c.benchmark_group("ablation/uniform");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for (label, redundant) in [("redundant", true), ("broadcast_all", false)] {
        let mut opts = NpOptions::inter(8);
        opts.redundant_uniform = redundant;
        let t = transform(&w.kernel(), &opts).unwrap();
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut args = alloc_extra_buffers(w.make_args(), &t, w.grid());
                black_box(
                    launch(&dev, &t.kernel, w.grid(), &mut args, &w.sim_options()).unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// Section 3.3 ablation: sweep the shared-memory budget that decides when
/// a local array moves to shared memory instead of global.
fn ablation_policy_threshold(c: &mut Criterion) {
    let dev = DeviceConfig::gtx680();
    let w = Le::new(Scale::Test);
    let mut g = c.benchmark_group("ablation/policy_budget");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    // LE's array is partitionable; disable partitioning via an offset
    // access? Instead sweep the budget with ForceShared vs Auto on the
    // standard kernel: budget only matters when partitioning is illegal,
    // so this measures the policy evaluation cost + shared path.
    for budget in [128u32, 384, 1024] {
        let mut opts = NpOptions::inter(8);
        opts.local_array = cuda_np::LocalArrayStrategy::ForceShared;
        opts.shared_budget_per_thread = budget;
        let t = transform(&w.kernel(), &opts).unwrap();
        g.bench_function(format!("budget_{budget}"), |b| {
            b.iter(|| {
                let mut args = alloc_extra_buffers(w.make_args(), &t, w.grid());
                black_box(
                    launch(&dev, &t.kernel, w.grid(), &mut args, &w.sim_options()).unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// Wave sampling ablation: full simulation vs sampled at the same logical
/// grid (cost of fidelity).
fn ablation_wave_sampling(c: &mut Criterion) {
    let dev = DeviceConfig::gtx680();
    let w = Tmv::with_size(2048, 512);
    let kernel = w.kernel();
    let mut g = c.benchmark_group("ablation/sampling");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for (label, sim) in [("full", SimOptions::full()), ("sampled_4", SimOptions::sampled(4))] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut args = w.make_args();
                black_box(launch(&dev, &kernel, w.grid(), &mut args, &sim).unwrap())
            })
        });
    }
    g.finish();
}

/// Substrate microbenchmarks: interpreter throughput and the timing
/// engine's event processing rate.
fn substrate_throughput(c: &mut Criterion) {
    use np_gpu_sim::occupancy::{occupancy, KernelResources};
    use np_gpu_sim::trace::{BlockTrace, TraceBuilder};

    let dev = DeviceConfig::gtx680();
    let mut g = c.benchmark_group("substrate");
    // Pure timing engine: 64 blocks of 8 warps with 256 ALU+load pairs.
    let res = KernelResources {
        block_size: 256,
        regs_per_thread: 16,
        shared_per_block: 0,
        local_per_thread: 0,
    };
    let occ = occupancy(&dev, &res).unwrap();
    let mk_blocks = || -> Vec<BlockTrace> {
        (0..64u64)
            .map(|blk| {
                let mut bt = BlockTrace::default();
                for wp in 0..8u64 {
                    let mut b = TraceBuilder::new(dev.txn_bytes, dev.l1_line);
                    for it in 0..256u64 {
                        b.alu(4);
                        let base = (blk * 8 + wp) * 256 * 128 + it * 128;
                        let addrs = np_gpu_sim::mem::lane_addrs(
                            (0..32).map(|l| (l, base + 4 * l as u64)),
                        );
                        b.global(&addrs, 4, false);
                    }
                    bt.warps.push(b.finish());
                }
                bt
            })
            .collect()
    };
    g.bench_function("timing_engine_131k_ops", |b| {
        b.iter(|| black_box(np_gpu_sim::simulate_blocks(&dev, &occ, mk_blocks(), 64)))
    });

    // Full stack: interpreter + engine on the TMV workload.
    let w = Tmv::new(Scale::Test);
    g.bench_function("interpreter_plus_engine_tmv", |b| {
        b.iter(|| {
            let mut args = w.make_args();
            black_box(
                launch(&dev, &w.kernel(), w.grid(), &mut args, &w.sim_options()).unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = ablations;
    config = fast_criterion();
    targets =
    ablation_redundant_uniform,
    ablation_policy_threshold,
    ablation_wave_sampling,
    substrate_throughput,
}
fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(10)
}
criterion_main!(ablations);
