//! Criterion benchmarks, one group per paper table/figure. Each benchmark
//! measures the wall time of regenerating (a representative slice of) the
//! corresponding experiment on the simulator — these are the `cargo bench`
//! entry points that pin the reproduction pipeline's performance.
//!
//! Inputs are the Test-scale workloads so a full `cargo bench` stays in CI
//! budget; the `np-harness` binary runs the paper-scale versions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use cuda_np::tuner::{alloc_extra_buffers, autotune, default_candidates};
use cuda_np::{transform, LocalArrayStrategy, NpOptions};
use np_exec::launch;
use np_gpu_sim::DeviceConfig;
use np_workloads::{all_workloads, le::Le, memcopy, tmv::Tmv, Scale, Workload};
use std::hint::black_box;

/// Figure 1: the dynamic-parallelism memcpy sweep.
fn fig01_dynpar_memcpy(c: &mut Criterion) {
    let dev = DeviceConfig::k20c();
    c.bench_function("fig01/dynpar_memcpy_sweep", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for m in [4u64, 64, 1024] {
                out.push(memcopy::run_copy_dynpar(&dev, 1 << 18, m));
            }
            black_box(out)
        })
    });
}

/// Table 1: deriving every benchmark's characteristics and resources.
fn table1_characterize(c: &mut Criterion) {
    c.bench_function("table1/characterize_all", |b| {
        b.iter(|| {
            for w in all_workloads(Scale::Test) {
                let k = w.kernel();
                black_box(np_workloads::spec::characterize(&k, &[]));
                black_box(np_exec::estimate_resources(&k, 63));
            }
        })
    });
}

/// Figure 10: baseline + one NP simulation per benchmark.
fn fig10_speedups(c: &mut Criterion) {
    let dev = DeviceConfig::gtx680();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for w in all_workloads(Scale::Test) {
        g.bench_function(format!("baseline/{}", w.name()), |b| {
            b.iter(|| {
                let mut args = w.make_args();
                black_box(
                    launch(&dev, &w.kernel(), w.grid(), &mut args, &w.sim_options()).unwrap(),
                )
            })
        });
        let t = transform(&w.kernel(), &NpOptions::inter(4)).unwrap();
        g.bench_function(format!("np_inter4/{}", w.name()), |b| {
            b.iter(|| {
                let mut args = alloc_extra_buffers(w.make_args(), &t, w.grid());
                black_box(
                    launch(&dev, &t.kernel, w.grid(), &mut args, &w.sim_options()).unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// Figure 11: the transform itself across the slave-size sweep (compile
/// cost, not simulation cost).
fn fig11_transform_sweep(c: &mut Criterion) {
    let w = Tmv::new(Scale::Test);
    let kernel = w.kernel();
    c.bench_function("fig11/transform_all_configs", |b| {
        b.iter(|| {
            for s in [2u32, 4, 8, 16] {
                black_box(transform(&kernel, &NpOptions::inter(s)).unwrap());
                black_box(transform(&kernel, &NpOptions::intra(s)).unwrap());
            }
        })
    });
}

/// Figure 12: padded vs unpadded LE transforms + runs.
fn fig12_padding(c: &mut Criterion) {
    let dev = DeviceConfig::gtx680();
    let w = Le::new(Scale::Test);
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for (label, s, pad) in [("pad8", 8u32, true), ("nopad5", 5, false)] {
        let mut opts = NpOptions::inter(s);
        opts.pad = pad;
        let t = transform(&w.kernel(), &opts).unwrap();
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut args = alloc_extra_buffers(w.make_args(), &t, w.grid());
                black_box(
                    launch(&dev, &t.kernel, w.grid(), &mut args, &w.sim_options()).unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// Figures 13/14: the auto-tuner end to end on TMV (the library-comparison
/// pipeline).
fn fig13_autotune(c: &mut Criterion) {
    let dev = DeviceConfig::gtx680();
    let w = Tmv::new(Scale::Test);
    let kernel = w.kernel();
    let grid = w.grid();
    let candidates = default_candidates(kernel.block_dim.x, 1024);
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    g.bench_function("autotune_tmv", |b| {
        b.iter(|| {
            black_box(
                autotune(
                    &kernel,
                    &dev,
                    grid,
                    &|t| alloc_extra_buffers(w.make_args(), t, grid),
                    &w.sim_options(),
                    &candidates,
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

/// Figure 15: the three local-array strategies on LE.
fn fig15_local_array(c: &mut Criterion) {
    let dev = DeviceConfig::gtx680();
    let w = Le::new(Scale::Test);
    let mut g = c.benchmark_group("fig15");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for (label, strategy) in [
        ("global", LocalArrayStrategy::ForceGlobal),
        ("shared", LocalArrayStrategy::ForceShared),
        ("register", LocalArrayStrategy::ForceRegister),
    ] {
        let mut opts = NpOptions::inter(8);
        opts.local_array = strategy;
        let t = transform(&w.kernel(), &opts).unwrap();
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut args = alloc_extra_buffers(w.make_args(), &t, w.grid());
                black_box(
                    launch(&dev, &t.kernel, w.grid(), &mut args, &w.sim_options()).unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// Figure 16: shfl vs shared-memory communication codegen + run.
fn fig16_shfl(c: &mut Criterion) {
    let dev = DeviceConfig::gtx680();
    let w = Tmv::new(Scale::Test);
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_millis(900));
    for (label, use_shfl) in [("shfl", true), ("shared", false)] {
        let mut opts = NpOptions::intra(8);
        opts.use_shfl = Some(use_shfl);
        let t = transform(&w.kernel(), &opts).unwrap();
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut args = alloc_extra_buffers(w.make_args(), &t, w.grid());
                black_box(
                    launch(&dev, &t.kernel, w.grid(), &mut args, &w.sim_options()).unwrap(),
                )
            })
        });
    }
    g.finish();
}

/// Profile counters: assert the paper's mechanisms hold alongside the cycle
/// numbers (an incidental regression in the counters fails `cargo bench`
/// even when timing still looks plausible), then measure the deterministic
/// JSON/chrome-trace export.
fn profile_counters(c: &mut Criterion) {
    let dev = DeviceConfig::gtx680();
    let w = Tmv::new(Scale::Test);

    let baseline = {
        let mut args = w.make_args();
        launch(&dev, &w.kernel(), w.grid(), &mut args, &w.sim_options()).unwrap()
    };
    let run_intra8 = |use_shfl: bool| {
        let mut opts = NpOptions::intra(8);
        opts.use_shfl = Some(use_shfl);
        let t = transform(&w.kernel(), &opts).unwrap();
        let mut args = alloc_extra_buffers(w.make_args(), &t, w.grid());
        launch(&dev, &t.kernel, w.grid(), &mut args, &w.sim_options()).unwrap()
    };
    let shfl = run_intra8(true);
    let shared = run_intra8(false);

    // Figure 16's mechanism: the shfl variant combines live-outs in
    // registers; the shared variant stages through shared memory instead.
    assert!(shfl.profile.total.shfl_ops() > 0, "intra+shfl must emit shfl traffic");
    assert_eq!(shared.profile.total.shfl_ops(), 0, "no-shfl variant must not shfl");
    assert!(
        shared.profile.total.shared_accesses > shfl.profile.total.shared_accesses,
        "shared-memory staging must show up in the counters"
    );
    // Section 5.3's mechanism, on the workload that exhibits it: NN's
    // baseline loop is badly strided, and slave threads coalesce it.
    {
        let nn = np_workloads::nn::Nn::new(Scale::Test);
        let base_nn = {
            let mut args = nn.make_args();
            launch(&dev, &nn.kernel(), nn.grid(), &mut args, &nn.sim_options()).unwrap()
        };
        let t = transform(&nn.kernel(), &NpOptions::intra(8)).unwrap();
        let mut args = alloc_extra_buffers(nn.make_args(), &t, nn.grid());
        let np_nn = launch(&dev, &t.kernel, nn.grid(), &mut args, &nn.sim_options()).unwrap();
        assert!(
            np_nn.profile.coalescing_efficiency() > base_nn.profile.coalescing_efficiency(),
            "NP transform must improve NN coalescing: {:.3} -> {:.3}",
            base_nn.profile.coalescing_efficiency(),
            np_nn.profile.coalescing_efficiency()
        );
    }
    for rep in [&baseline, &shfl, &shared] {
        let e = rep.profile.coalescing_efficiency();
        assert!(e > 0.0 && e <= 1.0, "efficiency out of range: {e}");
        assert!(rep.profile.total.instructions > 0);
    }
    // Determinism: a rerun exports byte-identical JSON.
    assert_eq!(run_intra8(true).profile.to_json(), shfl.profile.to_json());

    c.bench_function("profile/json_export", |b| {
        b.iter(|| {
            black_box(shfl.profile.to_json());
            black_box(shfl.chrome_trace())
        })
    });
}

/// Bench trajectory: regenerate the machine-readable perf record
/// (`BENCH_results.json` at the repo root) from a Test-scale sweep, assert
/// it is byte-identical across two back-to-back generations, and measure
/// the sweep+serialize cost. CI diffs the file against the committed
/// `BENCH_baseline.json` with tolerances.
fn bench_trajectory(c: &mut Criterion) {
    use np_harness::{runner, trajectory};
    let dev = DeviceConfig::gtx680();
    let doc = trajectory::to_json(&runner::sweep(&dev, Scale::Test), &dev, "test");
    let again = trajectory::to_json(&runner::sweep(&dev, Scale::Test), &dev, "test");
    assert_eq!(doc, again, "bench trajectory must be byte-identical across reruns");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_results.json");
    std::fs::write(path, &doc).expect("write BENCH_results.json");
    c.bench_function("trajectory/serialize", |b| {
        b.iter(|| {
            // Serialization only; the sweep itself is fig10's territory.
            black_box(doc.len())
        })
    });
}

criterion_group! {
    name = figures;
    config = fast_criterion();
    targets =
    fig01_dynpar_memcpy,
    table1_characterize,
    fig10_speedups,
    fig11_transform_sweep,
    fig12_padding,
    fig13_autotune,
    fig15_local_array,
    fig16_shfl,
    profile_counters,
    bench_trajectory,
}
fn fast_criterion() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(10)
}
criterion_main!(figures);
