//! Typed simulation faults — the compute-sanitizer layer.
//!
//! A [`SimFault`] is a kernel contract violation *detected by the
//! simulator*: out-of-bounds accesses, shared-memory races, divergent
//! barriers, undeclared or ill-typed names, runaway kernels caught by the
//! watchdog, and injected hardware faults. Faults are ordinary values —
//! the interpreter threads them out through `Result` instead of
//! panicking, so one illegal transformed kernel cannot take down an
//! autotuning run or a harness sweep (the paper's Section-5 tuner runs
//! many generated variants; a bad candidate must be *reported*, not
//! fatal).

use np_gpu_sim::mem::inject::InjectSpace;
use np_kernel_ir::types::MemSpace;

/// What went wrong. Marked non-exhaustive: downstream matches must keep a
/// wildcard arm so new detectors can be added without a breaking change.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// An access outside an array's bounds, in any memory space.
    OutOfBounds {
        space: MemSpace,
        array: String,
        /// The lane's index expression value (may be negative).
        index: i64,
        len: usize,
        write: bool,
    },
    /// Two warps touched the same shared-memory word between barriers
    /// with at least one write.
    SharedRace {
        array: String,
        index: usize,
        prev_warp: u64,
        prev_write: bool,
        warp: u64,
        write: bool,
    },
    /// A `__syncthreads()` executed under non-uniform control flow.
    BarrierDivergence { detail: String },
    /// A scalar, parameter, or array name with no binding.
    UndeclaredName { name: String },
    /// A type error the kernel's own code committed (mismatched store
    /// type, non-integer index, non-bool condition, ...).
    IllTyped { detail: String },
    /// A dynamically invalid operation (division by zero, bad `__shfl`
    /// width, array declared in a non-array space, ...).
    InvalidOperation { detail: String },
    /// The kernel exceeded the interpreter step budget
    /// ([`crate::SimOptions::watchdog_steps`]): an infinite or runaway
    /// loop.
    Watchdog { limit: u64 },
    /// The launch outlived its wall-clock deadline
    /// ([`crate::SimOptions::deadline`]). Unlike [`FaultKind::Watchdog`]
    /// (a deterministic step budget naming a runaway kernel), a deadline
    /// names an *overloaded or slow host* — serving layers classify it as
    /// transient and retryable.
    Deadline { budget_ms: u64 },
    /// A fault forced by the seeded injector
    /// ([`np_gpu_sim::mem::inject`]).
    Injected { space: InjectSpace, addr: u64 },
    /// The happens-before race checker found a violation while running in
    /// fatal mode ([`crate::RaceCheckMode::Fatal`]). The detail is the
    /// finding's rendered narrative, naming both access sites.
    RaceDetected { detail: String },
    /// The host code violated the launch API contract (e.g. binding the
    /// same argument name twice). Detected at launch setup, before any
    /// kernel code runs.
    ContractViolation { detail: String },
}

impl FaultKind {
    /// Short stable tag for summaries and tuning tables.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::OutOfBounds { .. } => "out-of-bounds",
            FaultKind::SharedRace { .. } => "shared-memory race",
            FaultKind::BarrierDivergence { .. } => "barrier divergence",
            FaultKind::UndeclaredName { .. } => "undeclared name",
            FaultKind::IllTyped { .. } => "ill-typed",
            FaultKind::InvalidOperation { .. } => "invalid operation",
            FaultKind::Watchdog { .. } => "watchdog timeout",
            FaultKind::Deadline { .. } => "deadline exceeded",
            FaultKind::Injected { .. } => "injected fault",
            FaultKind::RaceDetected { .. } => "race detected",
            FaultKind::ContractViolation { .. } => "contract violation",
        }
    }

    /// Whether a retry of the *same* kernel could plausibly succeed.
    ///
    /// Deadlines depend on host load and injected faults model transient
    /// hardware blips; everything else is a deterministic property of the
    /// kernel (re-running reproduces it), so serving layers should report
    /// it as permanent rather than burn retries.
    pub fn transient(&self) -> bool {
        matches!(self, FaultKind::Deadline { .. } | FaultKind::Injected { .. })
    }
}

/// One detected violation, with as much execution context as the
/// detection site had: which kernel, which warp and lane, and what the
/// surrounding statement was doing.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct SimFault {
    pub kernel: String,
    pub kind: FaultKind,
    /// Global warp id (block-major) of the faulting warp, when the fault
    /// is attributable to one warp.
    pub warp: Option<u64>,
    /// Lane within the warp, when attributable to one lane.
    pub lane: Option<usize>,
    /// Free-form statement context, e.g. `"load tile[i]"`.
    pub context: Option<String>,
}

impl SimFault {
    pub fn new(kernel: &str, kind: FaultKind) -> Self {
        SimFault { kernel: kernel.to_string(), kind, warp: None, lane: None, context: None }
    }

    pub fn at_warp(mut self, warp: u64) -> Self {
        self.warp = Some(warp);
        self
    }

    pub fn at_lane(mut self, lane: usize) -> Self {
        self.lane = Some(lane);
        self
    }

    pub fn with_context(mut self, context: impl Into<String>) -> Self {
        self.context = Some(context.into());
        self
    }
}

impl std::fmt::Display for SimFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in kernel {:?}", self.kind.tag(), self.kernel)?;
        if let Some(w) = self.warp {
            write!(f, ", warp {w}")?;
        }
        if let Some(l) = self.lane {
            write!(f, ", lane {l}")?;
        }
        match &self.kind {
            FaultKind::OutOfBounds { space, array, index, len, write } => write!(
                f,
                ": {} {array}[{index}] (len {len}, {space:?} space)",
                if *write { "write" } else { "read" },
            )?,
            FaultKind::SharedRace { array, index, prev_warp, prev_write, warp, write } => write!(
                f,
                ": {array}[{index}] accessed by warp {prev_warp} ({}) and warp {warp} ({}) \
                 without an intervening __syncthreads()",
                if *prev_write { "write" } else { "read" },
                if *write { "write" } else { "read" },
            )?,
            FaultKind::BarrierDivergence { detail } => write!(f, ": {detail}")?,
            FaultKind::UndeclaredName { name } => write!(f, ": {name:?}")?,
            FaultKind::IllTyped { detail } => write!(f, ": {detail}")?,
            FaultKind::InvalidOperation { detail } => write!(f, ": {detail}")?,
            FaultKind::Watchdog { limit } => {
                write!(f, ": exceeded {limit} interpreted steps (infinite loop?)")?
            }
            FaultKind::Deadline { budget_ms } => {
                write!(f, ": exceeded the {budget_ms} ms wall-clock budget")?
            }
            FaultKind::Injected { space, addr } => {
                write!(f, ": forced at {space:?} address {addr:#x}")?
            }
            FaultKind::RaceDetected { detail } => write!(f, ": {detail}")?,
            FaultKind::ContractViolation { detail } => write!(f, ": {detail}")?,
        }
        if let Some(c) = &self.context {
            write!(f, " [{c}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for SimFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_warp_lane_and_context() {
        let f = SimFault::new(
            "k",
            FaultKind::OutOfBounds {
                space: MemSpace::Global,
                array: "out".into(),
                index: 132,
                len: 32,
                write: true,
            },
        )
        .at_warp(3)
        .at_lane(17)
        .with_context("store out[t]");
        let s = f.to_string();
        for needle in ["out-of-bounds", "\"k\"", "warp 3", "lane 17", "132", "len 32", "store out[t]"] {
            assert!(s.contains(needle), "{s:?} missing {needle:?}");
        }
    }

    #[test]
    fn tags_are_distinct() {
        let kinds = [
            FaultKind::BarrierDivergence { detail: String::new() },
            FaultKind::UndeclaredName { name: String::new() },
            FaultKind::IllTyped { detail: String::new() },
            FaultKind::InvalidOperation { detail: String::new() },
            FaultKind::Watchdog { limit: 0 },
            FaultKind::Deadline { budget_ms: 0 },
        ];
        let tags: std::collections::HashSet<_> = kinds.iter().map(|k| k.tag()).collect();
        assert_eq!(tags.len(), kinds.len());
    }

    #[test]
    fn only_host_dependent_kinds_are_transient() {
        assert!(FaultKind::Deadline { budget_ms: 5 }.transient());
        assert!(FaultKind::Injected { space: InjectSpace::Global, addr: 0 }.transient());
        assert!(!FaultKind::Watchdog { limit: 1 }.transient());
        assert!(!FaultKind::IllTyped { detail: String::new() }.transient());
        assert!(!FaultKind::UndeclaredName { name: String::new() }.transient());
    }
}
