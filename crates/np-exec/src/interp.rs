//! The SIMT interpreter: functional lockstep execution of one thread block,
//! emitting a timing trace as a side effect.
//!
//! Execution model:
//! * warps execute statements in SIMT lockstep with an active-lane mask;
//!   `If`/`For` divergence serializes both paths / extra iterations, which
//!   shows up in the trace exactly as it would on hardware;
//! * statements that contain no `__syncthreads` execute warp-at-a-time;
//!   statements that do contain a barrier (bare syncs, uniform loops or
//!   conditionals with syncs inside) execute in block-level lockstep, and
//!   the interpreter *checks* the CUDA contract that control flow around
//!   barriers is uniform across the block;
//! * warps of one block run sequentially in warp-id order between barriers,
//!   so functional results are deterministic even for racy kernels.
//!
//! Contract violations never panic: every check surfaces as a typed
//! [`SimFault`] threaded out through `Result` (see [`crate::fault`]). The
//! per-launch [`LaunchCtx`] additionally carries the watchdog step budget
//! and the optional memory fault injector.

// Interpreter internals thread `SimFault` by value so detection sites can
// chain `.at_warp()/.at_lane()/.with_context()` without re-boxing at every
// hop; a fault occurs at most once per launch, and the public boundary
// (`ExecError::Fault`) boxes it.
#![allow(clippy::result_large_err)]

use crate::fault::{FaultKind, SimFault};
use crate::machine::{ArgValue, GlobalState};
use crate::value::{lanes, Mask, ValueError, WVal, LANES};
use np_gpu_sim::config::DeviceConfig;
use np_gpu_sim::mem::inject::{FaultInjector, InjectConfig, InjectSpace, Injection};
use np_gpu_sim::mem::local::LocalLayout;
use np_gpu_sim::mem::LaneAddrs;
use np_gpu_sim::racecheck::{RaceRecorder, RaceSpace};
use np_gpu_sim::trace::{BlockTrace, ShflKind, TraceBuilder};
use np_kernel_ir::expr::{Expr, ShflMode, Special};
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::stmt::{visit_stmts, Stmt};
use np_kernel_ir::types::{Dim3, MemSpace, Scalar};
use std::collections::HashMap;

/// Watchdog state: a per-launch budget of interpreted steps.
struct Watchdog {
    left: u64,
    limit: u64,
}

/// Per-launch sanitizer state shared by every block of one launch: the
/// bound globals, the watchdog budget, and the fault injector. Keeping it
/// launch-scoped makes the watchdog a whole-kernel bound and the injector's
/// access counter monotone across blocks (so seeded runs are reproducible).
pub(crate) struct LaunchCtx<'a> {
    pub globals: &'a mut GlobalState,
    watchdog: Option<Watchdog>,
    injector: Option<FaultInjector>,
    /// The happens-before race checker, when armed; the bool is fatal mode
    /// (the first finding becomes a [`FaultKind::RaceDetected`] fault).
    race: Option<(RaceRecorder, bool)>,
    /// Monotone interpreted-step counter: the deterministic "pc" race
    /// findings use to name access sites.
    step: u64,
}

impl<'a> LaunchCtx<'a> {
    pub fn new(
        globals: &'a mut GlobalState,
        watchdog_steps: Option<u64>,
        injection: Option<InjectConfig>,
        race: Option<(RaceRecorder, bool)>,
    ) -> Self {
        LaunchCtx {
            globals,
            watchdog: watchdog_steps.map(|limit| Watchdog { left: limit, limit }),
            injector: injection.map(FaultInjector::new),
            race,
            step: 0,
        }
    }

    /// Charge one interpreted step against the watchdog budget.
    fn tick(&mut self, kernel: &Kernel) -> Result<(), SimFault> {
        self.step += 1;
        let Some(wd) = &mut self.watchdog else { return Ok(()) };
        if wd.left == 0 {
            return Err(SimFault::new(&kernel.name, FaultKind::Watchdog { limit: wd.limit }));
        }
        wd.left -= 1;
        Ok(())
    }

    /// Consult the injector for one lane load.
    fn inject(&mut self, space: InjectSpace, addr: u64) -> Option<Injection> {
        self.injector.as_mut()?.decide(space, addr)
    }

    /// Feed one thread-granular access to the race checker; in fatal mode a
    /// triggered finding becomes a fault at the second access's warp.
    #[allow(clippy::too_many_arguments)]
    fn race_access(
        &mut self,
        kernel: &Kernel,
        space: RaceSpace,
        array: &str,
        index: u64,
        thread: u32,
        write: bool,
        warp: u64,
    ) -> Result<(), SimFault> {
        let pc = self.step;
        let Some((rec, fatal)) = &mut self.race else { return Ok(()) };
        let finding = rec.record_access(space, array, index, thread, write, pc);
        if *fatal {
            if let Some(f) = finding {
                return Err(SimFault::new(
                    &kernel.name,
                    FaultKind::RaceDetected { detail: f.to_string() },
                )
                .at_warp(warp)
                .at_lane(thread as usize % LANES));
            }
        }
        Ok(())
    }

    /// Every thread of the current block passed a barrier.
    fn race_barrier_all(&mut self) {
        let pc = self.step;
        if let Some((rec, _)) = &mut self.race {
            rec.barrier_all(pc);
        }
    }

    /// Begin / end race tracking for one block.
    fn race_begin_block(&mut self, block: u64, n_threads: u32) {
        if let Some((rec, _)) = &mut self.race {
            rec.begin_block(block, n_threads);
        }
    }

    fn race_end_block(&mut self) {
        if let Some((rec, _)) = &mut self.race {
            rec.end_block();
        }
    }

    fn race_armed(&self) -> bool {
        self.race.is_some()
    }

    /// Take the recorder out (launch teardown).
    pub fn take_race(&mut self) -> Option<RaceRecorder> {
        self.race.take().map(|(rec, _)| rec)
    }
}

/// Typed raw storage for a shared or local array (element-major for local:
/// index `i` of lane `l` lives at `i * LANES + l`).
struct RawArray {
    ty: Scalar,
    bits: Vec<u32>,
    byte_offset: u32,
    len: u32,
    /// True for register-file arrays: functionally per-thread like local
    /// memory, but accesses cost only ALU work.
    in_registers: bool,
}

/// Per-warp interpreter state.
struct WarpCtx {
    regs: HashMap<String, WVal>,
    local: HashMap<String, RawArray>,
    tid: [WVal; 3],
    exist_mask: Mask,
    warp_global_id: u64,
    /// Block-local warp index: lane `l` of this warp is block-linear
    /// thread `warp_in_block * 32 + l` (race findings are thread-granular).
    warp_in_block: u32,
    builder: TraceBuilder,
}

/// Last accessor of each shared-memory word since the previous barrier:
/// (warp id, was a write), per shared array.
type RaceMap = HashMap<String, Vec<Option<(u64, bool)>>>;

/// Per-block interpreter state.
struct BlockCtx {
    shared: HashMap<String, RawArray>,
    block_idx: (u32, u32),
    block_dim: Dim3,
    grid_dim: Dim3,
    local_layout: LocalLayout,
    /// When armed: the shared-memory race tracker.
    race: Option<RaceMap>,
}

/// Wrap a lane-vector operation error into a fault at a known warp.
fn vfault(kernel: &Kernel, warp: u64, e: ValueError) -> SimFault {
    let kind = if e.ill_typed {
        FaultKind::IllTyped { detail: e.msg }
    } else {
        FaultKind::InvalidOperation { detail: e.msg }
    };
    let mut f = SimFault::new(&kernel.name, kind).at_warp(warp);
    if let Some(l) = e.lane {
        f = f.at_lane(l);
    }
    f
}

impl BlockCtx {
    /// Record one shared-memory access for race detection; faults on a
    /// cross-warp conflict where at least one side writes.
    fn track_shared(
        &mut self,
        array: &str,
        index: usize,
        warp: u64,
        write: bool,
        kernel: &Kernel,
    ) -> Result<(), SimFault> {
        let Some(tracker) = &mut self.race else { return Ok(()) };
        let len = self
            .shared
            .get(array)
            .map(|a| a.len as usize)
            .unwrap_or(0);
        let slots = tracker
            .entry(array.to_string())
            .or_insert_with(|| vec![None; len]);
        if let Some((prev_warp, prev_write)) = slots.get(index).copied().flatten() {
            if prev_warp != warp && (prev_write || write) {
                return Err(SimFault::new(
                    &kernel.name,
                    FaultKind::SharedRace {
                        array: array.to_string(),
                        index,
                        prev_warp,
                        prev_write,
                        warp,
                        write,
                    },
                )
                .at_warp(warp));
            }
        }
        // Writes dominate reads in the recorded state.
        if let Some(slot) = slots.get_mut(index) {
            let keep_write = write || slot.map(|(_, w)| w).unwrap_or(false);
            *slot = Some((warp, keep_write));
        }
        Ok(())
    }

    /// Barrier: all pre-barrier accesses are now ordered before whatever
    /// comes next.
    fn clear_races(&mut self) {
        if let Some(t) = &mut self.race {
            t.clear();
        }
    }
}

/// Execute one thread block functionally; returns its timing trace, or the
/// first fault the sanitizer detected.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_block(
    kernel: &Kernel,
    dev: &DeviceConfig,
    ctx: &mut LaunchCtx,
    block_idx: (u32, u32),
    grid_dim: Dim3,
    first_warp_global_id: u64,
    local_bytes_per_thread: u32,
    detect_races: bool,
) -> Result<BlockTrace, SimFault> {
    let block_dim = kernel.block_dim;
    let n_threads = block_dim.count() as usize;
    let n_warps = n_threads.div_ceil(LANES);

    // Pre-scan array declarations: assign byte offsets so trace addresses
    // are stable, and pre-create storage (declarations become no-ops).
    let mut shared = HashMap::new();
    let mut shared_cursor = 0u32;
    let mut local_decls: Vec<(String, Scalar, u32, u32, bool)> = Vec::new();
    let mut local_cursor = 0u32;
    let mut decl_fault: Option<SimFault> = None;
    visit_stmts(&kernel.body, &mut |s| {
        if let Stmt::DeclArray { name, ty, space, len } = s {
            match space {
                MemSpace::Shared => {
                    if !shared.contains_key(name) {
                        shared.insert(
                            name.clone(),
                            RawArray {
                                ty: *ty,
                                bits: vec![0; *len as usize],
                                byte_offset: shared_cursor,
                                len: *len,
                                in_registers: false,
                            },
                        );
                        shared_cursor += len * 4;
                    }
                }
                MemSpace::Local => {
                    if !local_decls.iter().any(|(n, ..)| n == name) {
                        local_decls.push((name.clone(), *ty, *len, local_cursor, false));
                        local_cursor += len * 4;
                    }
                }
                MemSpace::Register => {
                    if !local_decls.iter().any(|(n, ..)| n == name) {
                        local_decls.push((name.clone(), *ty, *len, 0, true));
                    }
                }
                other => {
                    decl_fault.get_or_insert_with(|| {
                        SimFault::new(
                            &kernel.name,
                            FaultKind::InvalidOperation {
                                detail: format!(
                                    "cannot declare array {name:?} in {other:?} space"
                                ),
                            },
                        )
                    });
                }
            }
        }
    });
    if let Some(f) = decl_fault {
        return Err(f);
    }

    let mut block = BlockCtx {
        shared,
        block_idx,
        block_dim,
        grid_dim,
        local_layout: LocalLayout {
            bytes_per_thread: local_bytes_per_thread.max(local_cursor).max(1),
        },
        race: if detect_races { Some(HashMap::new()) } else { None },
    };

    let mut warps: Vec<WarpCtx> = (0..n_warps)
        .map(|w| {
            let mut tx = [0i32; LANES];
            let mut ty_ = [0i32; LANES];
            let mut tz = [0i32; LANES];
            let mut exist: Mask = 0;
            for l in 0..LANES {
                let t = w * LANES + l;
                if t < n_threads {
                    exist |= 1 << l;
                    tx[l] = (t as u32 % block_dim.x) as i32;
                    ty_[l] = ((t as u32 / block_dim.x) % block_dim.y) as i32;
                    tz[l] = (t as u32 / (block_dim.x * block_dim.y)) as i32;
                }
            }
            let local = local_decls
                .iter()
                .map(|(name, ty, len, off, in_regs)| {
                    (
                        name.clone(),
                        RawArray {
                            ty: *ty,
                            bits: vec![0; *len as usize * LANES],
                            byte_offset: *off,
                            len: *len,
                            in_registers: *in_regs,
                        },
                    )
                })
                .collect();
            WarpCtx {
                regs: HashMap::new(),
                local,
                tid: [WVal::I32(tx), WVal::I32(ty_), WVal::I32(tz)],
                exist_mask: exist,
                warp_global_id: first_warp_global_id + w as u64,
                warp_in_block: w as u32,
                builder: TraceBuilder::new(dev.txn_bytes, dev.l1_line),
            }
        })
        .collect();

    let block_linear = block_idx.1 as u64 * grid_dim.x as u64 + block_idx.0 as u64;
    ctx.race_begin_block(block_linear, n_threads as u32);
    exec_block_level(&kernel.body, kernel, &mut warps, &mut block, ctx)?;
    ctx.race_end_block();

    Ok(BlockTrace { warps: warps.into_iter().map(|w| w.builder.finish()).collect() })
}

/// Execute statements at block level, switching between warp-at-a-time and
/// lockstep execution around barriers.
fn exec_block_level(
    stmts: &[Stmt],
    kernel: &Kernel,
    warps: &mut [WarpCtx],
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
) -> Result<(), SimFault> {
    for s in stmts {
        if !s.contains_sync() {
            for w in warps.iter_mut() {
                let mask = w.exist_mask;
                exec_stmt_warp(s, kernel, w, block, ctx, mask)?;
            }
            continue;
        }
        match s {
            Stmt::SyncThreads => {
                ctx.tick(kernel)?;
                block.clear_races();
                ctx.race_barrier_all();
                for w in warps.iter_mut() {
                    w.builder.bar();
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                ctx.tick(kernel)?;
                let c = eval_uniform_cond(cond, kernel, warps, block, ctx)?;
                if c {
                    exec_block_level(then_body, kernel, warps, block, ctx)?;
                } else {
                    exec_block_level(else_body, kernel, warps, block, ctx)?;
                }
            }
            Stmt::For { var, init, bound, step, body, .. } => {
                // Lockstep loop: every thread follows the same trip count.
                for w in warps.iter_mut() {
                    let mask = w.exist_mask;
                    let v = eval(init, kernel, w, block, ctx, mask)?;
                    set_reg(w, var, v, mask, kernel)?;
                }
                loop {
                    ctx.tick(kernel)?;
                    let cond = Expr::Binary(
                        np_kernel_ir::expr::BinOp::Lt,
                        Box::new(Expr::Var(var.clone())),
                        Box::new(bound.clone()),
                    );
                    if !eval_uniform_cond(&cond, kernel, warps, block, ctx)? {
                        break;
                    }
                    exec_block_level(body, kernel, warps, block, ctx)?;
                    for w in warps.iter_mut() {
                        let mask = w.exist_mask;
                        let stepped = eval(
                            &Expr::Binary(
                                np_kernel_ir::expr::BinOp::Add,
                                Box::new(Expr::Var(var.clone())),
                                Box::new(step.clone()),
                            ),
                            kernel,
                            w,
                            block,
                            ctx,
                            mask,
                        )?;
                        set_reg(w, var, stepped, mask, kernel)?;
                    }
                }
            }
            // Internal invariant: contains_sync() is true only for the
            // statement shapes handled above.
            other => unreachable!("statement cannot contain a barrier: {other:?}"),
        }
    }
    Ok(())
}

/// Evaluate a condition that must be uniform across the entire block
/// (required for barrier-containing control flow).
fn eval_uniform_cond(
    cond: &Expr,
    kernel: &Kernel,
    warps: &mut [WarpCtx],
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
) -> Result<bool, SimFault> {
    let mut result: Option<bool> = None;
    for w in warps.iter_mut() {
        let mask = w.exist_mask;
        let c = eval(cond, kernel, w, block, ctx, mask)?;
        let wid = w.warp_global_id;
        let t = c.true_mask(mask).map_err(|e| vfault(kernel, wid, e))?;
        if t != 0 && t != mask {
            return Err(SimFault::new(
                &kernel.name,
                FaultKind::BarrierDivergence {
                    detail: "barrier under divergent control flow (condition not warp-uniform)"
                        .to_string(),
                },
            )
            .at_warp(wid));
        }
        let this = t == mask && mask != 0;
        match result {
            None => result = Some(this),
            Some(prev) => {
                if prev != this {
                    return Err(SimFault::new(
                        &kernel.name,
                        FaultKind::BarrierDivergence {
                            detail:
                                "barrier under divergent control flow (condition differs across warps)"
                                    .to_string(),
                        },
                    )
                    .at_warp(wid));
                }
            }
        }
    }
    Ok(result.unwrap_or(false))
}

fn set_reg(
    w: &mut WarpCtx,
    name: &str,
    val: WVal,
    mask: Mask,
    kernel: &Kernel,
) -> Result<(), SimFault> {
    let wid = w.warp_global_id;
    match w.regs.get_mut(name) {
        Some(existing) => existing
            .merge_from(&val, mask)
            .map_err(|e| vfault(kernel, wid, e).with_context(format!("assignment to {name:?}")))?,
        None => {
            let mut fresh = WVal::zero(val.ty());
            // Internal invariant: fresh has val's own type.
            fresh.merge_from(&val, mask).expect("fresh register matches value type");
            w.regs.insert(name.to_string(), fresh);
        }
    }
    Ok(())
}

/// Execute one statement for one warp under `mask`.
fn exec_stmt_warp(
    s: &Stmt,
    kernel: &Kernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
    mask: Mask,
) -> Result<(), SimFault> {
    if mask == 0 {
        return Ok(());
    }
    ctx.tick(kernel)?;
    match s {
        Stmt::DeclScalar { name, ty, init } => {
            let val = match init {
                Some(e) => eval(e, kernel, w, block, ctx, mask)?,
                None => WVal::zero(*ty),
            };
            if val.ty() != *ty {
                return Err(SimFault::new(
                    &kernel.name,
                    FaultKind::IllTyped {
                        detail: format!(
                            "initializer type mismatch for {name:?}: declared {ty:?}, got {:?}",
                            val.ty()
                        ),
                    },
                )
                .at_warp(w.warp_global_id));
            }
            // A declaration (re-)initializes: overwrite under mask, default
            // elsewhere if previously absent.
            set_reg(w, name, val, mask, kernel)?;
        }
        Stmt::DeclArray { .. } => { /* pre-created in run_block */ }
        Stmt::Assign { name, value } => {
            let val = eval(value, kernel, w, block, ctx, mask)?;
            set_reg(w, name, val, mask, kernel)?;
        }
        Stmt::Store { array, index, value } => {
            let idx = eval(index, kernel, w, block, ctx, mask)?;
            let val = eval(value, kernel, w, block, ctx, mask)?;
            store_array(array, &idx, &val, kernel, w, block, ctx, mask)?;
        }
        Stmt::If { cond, then_body, else_body } => {
            let c = eval(cond, kernel, w, block, ctx, mask)?;
            let wid = w.warp_global_id;
            let t_mask = c.true_mask(mask).map_err(|e| vfault(kernel, wid, e))?;
            let e_mask = mask & !t_mask;
            // Both sides populated: the warp serializes through each path.
            let diverged = t_mask != 0 && e_mask != 0;
            if diverged {
                w.builder.divergence_event();
                w.builder.enter_divergent();
            }
            // A fault unwinds past the exit_divergent below; that's fine —
            // the faulted launch discards its builder and counters.
            if t_mask != 0 {
                for st in then_body {
                    exec_stmt_warp(st, kernel, w, block, ctx, t_mask)?;
                }
            }
            if e_mask != 0 {
                for st in else_body {
                    exec_stmt_warp(st, kernel, w, block, ctx, e_mask)?;
                }
            }
            if diverged {
                w.builder.exit_divergent();
            }
        }
        Stmt::For { var, init, bound, step, body, .. } => {
            let v0 = eval(init, kernel, w, block, ctx, mask)?;
            set_reg(w, var, v0, mask, kernel)?;
            let mut active = mask;
            // Lanes exit a warp-level loop independently; once the live set
            // shrinks below the entry mask the remaining iterations run
            // divergent (the mask only ever shrinks, so enter once).
            let mut partial = false;
            loop {
                ctx.tick(kernel)?;
                let cond = Expr::Binary(
                    np_kernel_ir::expr::BinOp::Lt,
                    Box::new(Expr::Var(var.clone())),
                    Box::new(bound.clone()),
                );
                let c = eval(&cond, kernel, w, block, ctx, active)?;
                let wid = w.warp_global_id;
                active = c.true_mask(active).map_err(|e| vfault(kernel, wid, e))?;
                if active == 0 {
                    break;
                }
                if !partial && active != mask {
                    partial = true;
                    w.builder.divergence_event();
                    w.builder.enter_divergent();
                }
                for st in body {
                    exec_stmt_warp(st, kernel, w, block, ctx, active)?;
                }
                let stepped = eval(
                    &Expr::Binary(
                        np_kernel_ir::expr::BinOp::Add,
                        Box::new(Expr::Var(var.clone())),
                        Box::new(step.clone()),
                    ),
                    kernel,
                    w,
                    block,
                    ctx,
                    active,
                )?;
                set_reg(w, var, stepped, active, kernel)?;
            }
            if partial {
                w.builder.exit_divergent();
            }
        }
        Stmt::SyncThreads => {
            // Internal invariant: exec_block_level routes every
            // barrier-containing statement away from the warp path.
            unreachable!("barrier must be handled at block level")
        }
    }
    Ok(())
}

/// Evaluate an expression for one warp under `mask`, emitting trace ops.
fn eval(
    e: &Expr,
    kernel: &Kernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
    mask: Mask,
) -> Result<WVal, SimFault> {
    let out = match e {
        Expr::ImmF32(x) => WVal::splat_f32(*x),
        Expr::ImmI32(x) => WVal::splat_i32(*x),
        Expr::ImmU32(x) => WVal::splat_u32(*x),
        Expr::ImmBool(x) => WVal::splat_bool(*x),
        Expr::Var(n) => w
            .regs
            .get(n)
            .ok_or_else(|| {
                SimFault::new(&kernel.name, FaultKind::UndeclaredName { name: n.clone() })
                    .at_warp(w.warp_global_id)
                    .with_context("use of undeclared scalar")
            })?
            .clone(),
        Expr::Param(n) => match ctx.globals.scalars.get(n) {
            Some(ArgValue::F32(x)) => WVal::splat_f32(*x),
            Some(ArgValue::I32(x)) => WVal::splat_i32(*x),
            Some(ArgValue::U32(x)) => WVal::splat_u32(*x),
            _ => {
                return Err(SimFault::new(
                    &kernel.name,
                    FaultKind::UndeclaredName { name: n.clone() },
                )
                .at_warp(w.warp_global_id)
                .with_context("parameter is not a bound scalar"))
            }
        },
        Expr::Special(s) => match s {
            Special::ThreadIdxX => w.tid[0].clone(),
            Special::ThreadIdxY => w.tid[1].clone(),
            Special::ThreadIdxZ => w.tid[2].clone(),
            Special::BlockIdxX => WVal::splat_i32(block.block_idx.0 as i32),
            Special::BlockIdxY => WVal::splat_i32(block.block_idx.1 as i32),
            Special::BlockDimX => WVal::splat_i32(block.block_dim.x as i32),
            Special::BlockDimY => WVal::splat_i32(block.block_dim.y as i32),
            Special::BlockDimZ => WVal::splat_i32(block.block_dim.z as i32),
            Special::GridDimX => WVal::splat_i32(block.grid_dim.x as i32),
            Special::GridDimY => WVal::splat_i32(block.grid_dim.y as i32),
        },
        Expr::Unary(op, a) => {
            let va = eval(a, kernel, w, block, ctx, mask)?;
            if op.is_sfu() {
                w.builder.sfu(1);
            } else {
                w.builder.alu(1);
            }
            let wid = w.warp_global_id;
            WVal::unary(*op, &va, mask).map_err(|e| vfault(kernel, wid, e))?
        }
        Expr::Binary(op, a, b) => {
            let va = eval(a, kernel, w, block, ctx, mask)?;
            let vb = eval(b, kernel, w, block, ctx, mask)?;
            w.builder.alu(1);
            let wid = w.warp_global_id;
            WVal::binary(*op, &va, &vb, mask).map_err(|e| vfault(kernel, wid, e))?
        }
        Expr::Select(c, a, b) => {
            let vc = eval(c, kernel, w, block, ctx, mask)?;
            let va = eval(a, kernel, w, block, ctx, mask)?;
            let vb = eval(b, kernel, w, block, ctx, mask)?;
            w.builder.alu(1);
            let wid = w.warp_global_id;
            let tm = vc.true_mask(mask).map_err(|e| vfault(kernel, wid, e))?;
            let mut out = vb;
            out.merge_from(&va, tm)
                .map_err(|e| vfault(kernel, wid, e).with_context("select arms"))?;
            out
        }
        Expr::Cast(ty, a) => {
            let va = eval(a, kernel, w, block, ctx, mask)?;
            w.builder.alu(1);
            va.cast(*ty, mask)
        }
        Expr::Load { array, index } => {
            let idx = eval(index, kernel, w, block, ctx, mask)?;
            load_array(array, &idx, kernel, w, block, ctx, mask)?
        }
        Expr::Shfl { mode, value, lane, width } => {
            let vv = eval(value, kernel, w, block, ctx, mask)?;
            let vl = eval(lane, kernel, w, block, ctx, mask)?;
            w.builder.shfl(match mode {
                ShflMode::Idx => ShflKind::Broadcast,
                ShflMode::Xor => ShflKind::Xor,
                ShflMode::Up => ShflKind::Up,
                ShflMode::Down => ShflKind::Down,
            });
            let wid = w.warp_global_id;
            shfl_permute(*mode, &vv, &vl, *width, mask, kernel)
                .map_err(|f| f.at_warp(wid))?
        }
    };
    Ok(out)
}

/// CUDA `__shfl` family semantics over a warp-wide value.
fn shfl_permute(
    mode: ShflMode,
    value: &WVal,
    lane_arg: &WVal,
    width: u32,
    mask: Mask,
    kernel: &Kernel,
) -> Result<WVal, SimFault> {
    if !(width.is_power_of_two() && width >= 1 && width as usize <= LANES) {
        return Err(SimFault::new(
            &kernel.name,
            FaultKind::InvalidOperation {
                detail: format!("__shfl width must be a power of two in [1, 32], got {width}"),
            },
        ));
    }
    let wm = width as i64;
    let mut out = value.clone();
    let mut src = [0usize; LANES];
    for (l, s) in src.iter_mut().enumerate() {
        let arg = lane_arg.lane_index(l).ok_or_else(|| {
            SimFault::new(
                &kernel.name,
                FaultKind::IllTyped {
                    detail: format!(
                        "__shfl lane argument must be an integer, found {:?}",
                        lane_arg.ty()
                    ),
                },
            )
            .at_lane(l)
        })?;
        let base = (l as i64 / wm) * wm;
        *s = match mode {
            ShflMode::Idx => (base + arg.rem_euclid(wm)) as usize,
            ShflMode::Up => {
                let x = l as i64 - arg;
                if x < base {
                    l
                } else {
                    x as usize
                }
            }
            ShflMode::Down => {
                let x = l as i64 + arg;
                if x >= base + wm {
                    l
                } else {
                    x as usize
                }
            }
            ShflMode::Xor => {
                let x = l as i64 ^ arg;
                if x >= base + wm || x < base {
                    l
                } else {
                    x as usize
                }
            }
        };
    }
    let bits: [u32; LANES] = std::array::from_fn(|l| value.lane_bits(src[l]));
    let permuted = WVal::from_bits(value.ty(), bits);
    // Internal invariant: permuted has value's own type.
    out.merge_from(&permuted, mask).expect("shfl preserves the value type");
    Ok(out)
}

/// The lane's index value as an integer, or an `IllTyped` fault.
fn lane_index(
    idx: &WVal,
    lane: usize,
    array: &str,
    kernel: &Kernel,
) -> Result<i64, SimFault> {
    idx.lane_index(lane).ok_or_else(|| {
        SimFault::new(
            &kernel.name,
            FaultKind::IllTyped {
                detail: format!("index into {array:?} must be an integer, found {:?}", idx.ty()),
            },
        )
        .at_lane(lane)
    })
}

#[allow(clippy::too_many_arguments)]
fn check_index(
    array: &str,
    idx: i64,
    len: usize,
    space: MemSpace,
    write: bool,
    kernel: &Kernel,
    lane: usize,
) -> Result<usize, SimFault> {
    if idx >= 0 && (idx as usize) < len {
        Ok(idx as usize)
    } else {
        Err(SimFault::new(
            &kernel.name,
            FaultKind::OutOfBounds { space, array: array.to_string(), index: idx, len, write },
        )
        .at_lane(lane))
    }
}

#[allow(clippy::too_many_arguments)]
fn load_array(
    array: &str,
    idx: &WVal,
    kernel: &Kernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
    mask: Mask,
) -> Result<WVal, SimFault> {
    let wid = w.warp_global_id;
    // Declared arrays first (shared / local), then parameter arrays.
    if let Some(arr) = block.shared.get(array) {
        let mut addrs: LaneAddrs = [None; LANES];
        let mut bits = [0u32; LANES];
        let mut touched: Vec<(usize, usize)> = Vec::new();
        let ty = arr.ty;
        let arr_len = arr.len as usize;
        for l in lanes(mask) {
            let li = lane_index(idx, l, array, kernel).map_err(|f| f.at_warp(wid))?;
            let i = check_index(array, li, arr_len, MemSpace::Shared, false, kernel, l)
                .map_err(|f| f.at_warp(wid))?;
            let addr = arr.byte_offset as u64 + i as u64 * 4;
            addrs[l] = Some(addr);
            bits[l] = arr.bits[i];
            match ctx.inject(InjectSpace::Shared, addr) {
                Some(Injection::BitFlip(b)) => bits[l] ^= 1 << b,
                Some(Injection::Fault) => {
                    return Err(SimFault::new(
                        &kernel.name,
                        FaultKind::Injected { space: InjectSpace::Shared, addr },
                    )
                    .at_warp(wid)
                    .at_lane(l)
                    .with_context(format!("load {array}[{li}]")))
                }
                None => {}
            }
            touched.push((l, i));
        }
        if block.race.is_some() {
            for &(_, i) in &touched {
                block.track_shared(array, i, wid, false, kernel)?;
            }
        }
        if ctx.race_armed() {
            let warp_base = w.warp_in_block * LANES as u32;
            for (l, i) in touched {
                ctx.race_access(
                    kernel,
                    RaceSpace::Shared,
                    array,
                    i as u64,
                    warp_base + l as u32,
                    false,
                    wid,
                )?;
            }
        }
        w.builder.shared(&addrs, false);
        return Ok(WVal::from_bits(ty, bits));
    }
    if let Some(arr) = w.local.get(array) {
        let mut offsets = [None; LANES];
        let mut bits = [0u32; LANES];
        let ty = arr.ty;
        let in_regs = arr.in_registers;
        let arr_len = arr.len as usize;
        let byte_offset = arr.byte_offset;
        for l in lanes(mask) {
            let li = lane_index(idx, l, array, kernel).map_err(|f| f.at_warp(wid))?;
            let i = check_index(array, li, arr_len, MemSpace::Local, false, kernel, l)
                .map_err(|f| f.at_warp(wid))?;
            let off = byte_offset + i as u32 * 4;
            offsets[l] = Some(off);
            bits[l] = arr.bits[i * LANES + l];
            // Register-file arrays are not memory: the injector skips them.
            if !in_regs {
                match ctx.inject(InjectSpace::Local, off as u64) {
                    Some(Injection::BitFlip(b)) => bits[l] ^= 1 << b,
                    Some(Injection::Fault) => {
                        return Err(SimFault::new(
                            &kernel.name,
                            FaultKind::Injected { space: InjectSpace::Local, addr: off as u64 },
                        )
                        .at_warp(wid)
                        .at_lane(l)
                        .with_context(format!("load {array}[{li}]")))
                    }
                    None => {}
                }
            }
        }
        if in_regs {
            w.builder.alu(1);
        } else {
            let layout = block.local_layout;
            w.builder.local(layout, wid, &offsets, false);
        }
        return Ok(WVal::from_bits(ty, bits));
    }
    let binding = ctx
        .globals
        .bindings
        .get(array)
        .ok_or_else(|| {
            SimFault::new(&kernel.name, FaultKind::UndeclaredName { name: array.to_string() })
                .at_warp(wid)
                .with_context("load from unknown array")
        })?
        .clone();
    // Internal invariant: bind() always creates buffer and binding together.
    let buf = ctx.globals.buffers.get(array).expect("binding without buffer");
    let mut addrs: LaneAddrs = [None; LANES];
    let mut bits = [0u32; LANES];
    let ty = buf.ty();
    let buf_len = buf.len();
    let mut loaded: Vec<(usize, i64, u64)> = Vec::new();
    for l in lanes(mask) {
        let li = lane_index(idx, l, array, kernel).map_err(|f| f.at_warp(wid))?;
        let i = check_index(array, li, buf_len, binding.space, false, kernel, l)
            .map_err(|f| f.at_warp(wid))?;
        let addr = binding.base_addr + i as u64 * 4;
        addrs[l] = Some(addr);
        bits[l] = buf.read_bits(i);
        loaded.push((l, li, addr));
    }
    // Second pass: the injector needs `ctx` mutably, so it runs after the
    // buffer borrow ends.
    if ctx.race_armed() && binding.space == MemSpace::Global {
        let warp_base = w.warp_in_block * LANES as u32;
        for &(l, li, _) in &loaded {
            ctx.race_access(
                kernel,
                RaceSpace::Global,
                array,
                li as u64,
                warp_base + l as u32,
                false,
                wid,
            )?;
        }
    }
    for (l, li, addr) in loaded {
        match ctx.inject(InjectSpace::Global, addr) {
            Some(Injection::BitFlip(b)) => bits[l] ^= 1 << b,
            Some(Injection::Fault) => {
                return Err(SimFault::new(
                    &kernel.name,
                    FaultKind::Injected { space: InjectSpace::Global, addr },
                )
                .at_warp(wid)
                .at_lane(l)
                .with_context(format!("load {array}[{li}]")))
            }
            None => {}
        }
    }
    match binding.space {
        MemSpace::Global => w.builder.global(&addrs, 4, false),
        MemSpace::Texture => w.builder.tex(&addrs),
        MemSpace::Constant => w.builder.constant(&addrs),
        // Internal invariant: bind() only creates these three spaces.
        _ => unreachable!(),
    }
    Ok(WVal::from_bits(ty, bits))
}

#[allow(clippy::too_many_arguments)]
fn store_array(
    array: &str,
    idx: &WVal,
    val: &WVal,
    kernel: &Kernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
    mask: Mask,
) -> Result<(), SimFault> {
    let wid = w.warp_global_id;
    if let Some(arr) = block.shared.get_mut(array) {
        if val.ty() != arr.ty {
            return Err(ill_typed_store(kernel, "shared", array, arr.ty, val.ty()).at_warp(wid));
        }
        let mut addrs: LaneAddrs = [None; LANES];
        let mut touched: Vec<(usize, usize)> = Vec::new();
        let arr_len = arr.len as usize;
        for l in lanes(mask) {
            let li = lane_index(idx, l, array, kernel).map_err(|f| f.at_warp(wid))?;
            let i = check_index(array, li, arr_len, MemSpace::Shared, true, kernel, l)
                .map_err(|f| f.at_warp(wid))?;
            addrs[l] = Some(arr.byte_offset as u64 + i as u64 * 4);
            arr.bits[i] = val.lane_bits(l);
            touched.push((l, i));
        }
        if block.race.is_some() {
            for &(_, i) in &touched {
                block.track_shared(array, i, wid, true, kernel)?;
            }
        }
        if ctx.race_armed() {
            let warp_base = w.warp_in_block * LANES as u32;
            for (l, i) in touched {
                ctx.race_access(
                    kernel,
                    RaceSpace::Shared,
                    array,
                    i as u64,
                    warp_base + l as u32,
                    true,
                    wid,
                )?;
            }
        }
        w.builder.shared(&addrs, true);
        return Ok(());
    }
    if let Some(arr) = w.local.get_mut(array) {
        if val.ty() != arr.ty {
            return Err(ill_typed_store(kernel, "local", array, arr.ty, val.ty()).at_warp(wid));
        }
        let mut offsets = [None; LANES];
        let arr_len = arr.len as usize;
        for l in lanes(mask) {
            let li = lane_index(idx, l, array, kernel).map_err(|f| f.at_warp(wid))?;
            let i = check_index(array, li, arr_len, MemSpace::Local, true, kernel, l)
                .map_err(|f| f.at_warp(wid))?;
            offsets[l] = Some(arr.byte_offset + i as u32 * 4);
            arr.bits[i * LANES + l] = val.lane_bits(l);
        }
        let in_regs = arr.in_registers;
        if in_regs {
            w.builder.alu(1);
        } else {
            let layout = block.local_layout;
            w.builder.local(layout, wid, &offsets, true);
        }
        return Ok(());
    }
    let binding = ctx
        .globals
        .bindings
        .get(array)
        .ok_or_else(|| {
            SimFault::new(&kernel.name, FaultKind::UndeclaredName { name: array.to_string() })
                .at_warp(wid)
                .with_context("store to unknown array")
        })?
        .clone();
    if binding.space != MemSpace::Global {
        return Err(SimFault::new(
            &kernel.name,
            FaultKind::InvalidOperation {
                detail: format!(
                    "stores are only legal to global memory ({array:?} is {:?})",
                    binding.space
                ),
            },
        )
        .at_warp(wid));
    }
    // Internal invariant: bind() always creates buffer and binding together.
    let buf = ctx.globals.buffers.get_mut(array).expect("binding without buffer");
    if val.ty() != buf.ty() {
        let ty = buf.ty();
        return Err(ill_typed_store(kernel, "global", array, ty, val.ty()).at_warp(wid));
    }
    let mut addrs: LaneAddrs = [None; LANES];
    let mut stored: Vec<(usize, usize)> = Vec::new();
    for l in lanes(mask) {
        let li = lane_index(idx, l, array, kernel).map_err(|f| f.at_warp(wid))?;
        let i = check_index(array, li, buf.len(), MemSpace::Global, true, kernel, l)
            .map_err(|f| f.at_warp(wid))?;
        addrs[l] = Some(binding.base_addr + i as u64 * 4);
        buf.write_bits(i, val.lane_bits(l));
        stored.push((l, i));
    }
    if ctx.race_armed() {
        let warp_base = w.warp_in_block * LANES as u32;
        for (l, i) in stored {
            ctx.race_access(
                kernel,
                RaceSpace::Global,
                array,
                i as u64,
                warp_base + l as u32,
                true,
                wid,
            )?;
        }
    }
    w.builder.global(&addrs, 4, true);
    Ok(())
}

fn ill_typed_store(
    kernel: &Kernel,
    space: &str,
    array: &str,
    expected: Scalar,
    got: Scalar,
) -> SimFault {
    SimFault::new(
        &kernel.name,
        FaultKind::IllTyped {
            detail: format!(
                "store type mismatch into {space} {array:?}: array is {expected:?}, value is {got:?}"
            ),
        },
    )
}
