//! The SIMT interpreter: functional lockstep execution of one thread block,
//! emitting a timing trace as a side effect.
//!
//! Execution model:
//! * warps execute statements in SIMT lockstep with an active-lane mask;
//!   `If`/`For` divergence serializes both paths / extra iterations, which
//!   shows up in the trace exactly as it would on hardware;
//! * statements that contain no `__syncthreads` execute warp-at-a-time;
//!   statements that do contain a barrier (bare syncs, uniform loops or
//!   conditionals with syncs inside) execute in block-level lockstep, and
//!   the interpreter *asserts* the CUDA contract that control flow around
//!   barriers is uniform across the block;
//! * warps of one block run sequentially in warp-id order between barriers,
//!   so functional results are deterministic even for racy kernels.

use crate::machine::{ArgValue, GlobalState};
use crate::value::{lanes, Mask, WVal, LANES};
use np_gpu_sim::config::DeviceConfig;
use np_gpu_sim::mem::local::LocalLayout;
use np_gpu_sim::mem::LaneAddrs;
use np_gpu_sim::trace::{BlockTrace, TraceBuilder};
use np_kernel_ir::expr::{Expr, ShflMode, Special};
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::stmt::{visit_stmts, Stmt};
use np_kernel_ir::types::{Dim3, MemSpace, Scalar};
use std::collections::HashMap;

/// Typed raw storage for a shared or local array (element-major for local:
/// index `i` of lane `l` lives at `i * LANES + l`).
struct RawArray {
    ty: Scalar,
    bits: Vec<u32>,
    byte_offset: u32,
    len: u32,
    /// True for register-file arrays: functionally per-thread like local
    /// memory, but accesses cost only ALU work.
    in_registers: bool,
}

/// Per-warp interpreter state.
struct WarpCtx {
    regs: HashMap<String, WVal>,
    local: HashMap<String, RawArray>,
    tid: [WVal; 3],
    exist_mask: Mask,
    warp_global_id: u64,
    builder: TraceBuilder,
}

/// Last accessor of each shared-memory word since the previous barrier:
/// (warp id, was a write), per shared array.
type RaceMap = HashMap<String, Vec<Option<(u64, bool)>>>;

/// Per-block interpreter state.
struct BlockCtx {
    shared: HashMap<String, RawArray>,
    block_idx: (u32, u32),
    block_dim: Dim3,
    grid_dim: Dim3,
    local_layout: LocalLayout,
    /// When armed: the shared-memory race tracker.
    race: Option<RaceMap>,
}

impl BlockCtx {
    /// Record one shared-memory access for race detection; panics on a
    /// cross-warp conflict where at least one side writes.
    fn track_shared(&mut self, array: &str, index: usize, warp: u64, write: bool, kernel: &str) {
        let Some(tracker) = &mut self.race else { return };
        let len = self
            .shared
            .get(array)
            .map(|a| a.len as usize)
            .unwrap_or(0);
        let slots = tracker
            .entry(array.to_string())
            .or_insert_with(|| vec![None; len]);
        match slots.get(index).copied().flatten() {
            Some((prev_warp, prev_write)) if prev_warp != warp && (prev_write || write) => {
                panic!(
                    "shared-memory race in kernel {kernel:?}: {array}[{index}] accessed by                      warp {prev_warp} ({}) and warp {warp} ({}) without an intervening                      __syncthreads()",
                    if prev_write { "write" } else { "read" },
                    if write { "write" } else { "read" },
                )
            }
            _ => {}
        }
        // Writes dominate reads in the recorded state.
        if let Some(slot) = slots.get_mut(index) {
            let keep_write = write || slot.map(|(_, w)| w).unwrap_or(false);
            *slot = Some((warp, keep_write));
        }
    }

    /// Barrier: all pre-barrier accesses are now ordered before whatever
    /// comes next.
    fn clear_races(&mut self) {
        if let Some(t) = &mut self.race {
            t.clear();
        }
    }
}

/// Execute one thread block functionally; returns its timing trace.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_block(
    kernel: &Kernel,
    dev: &DeviceConfig,
    globals: &mut GlobalState,
    block_idx: (u32, u32),
    grid_dim: Dim3,
    first_warp_global_id: u64,
    local_bytes_per_thread: u32,
    detect_races: bool,
) -> BlockTrace {
    let block_dim = kernel.block_dim;
    let n_threads = block_dim.count() as usize;
    let n_warps = n_threads.div_ceil(LANES);

    // Pre-scan array declarations: assign byte offsets so trace addresses
    // are stable, and pre-create storage (declarations become no-ops).
    let mut shared = HashMap::new();
    let mut shared_cursor = 0u32;
    let mut local_decls: Vec<(String, Scalar, u32, u32, bool)> = Vec::new();
    let mut local_cursor = 0u32;
    visit_stmts(&kernel.body, &mut |s| {
        if let Stmt::DeclArray { name, ty, space, len } = s {
            match space {
                MemSpace::Shared => {
                    if !shared.contains_key(name) {
                        shared.insert(
                            name.clone(),
                            RawArray {
                                ty: *ty,
                                bits: vec![0; *len as usize],
                                byte_offset: shared_cursor,
                                len: *len,
                                in_registers: false,
                            },
                        );
                        shared_cursor += len * 4;
                    }
                }
                MemSpace::Local => {
                    if !local_decls.iter().any(|(n, ..)| n == name) {
                        local_decls.push((name.clone(), *ty, *len, local_cursor, false));
                        local_cursor += len * 4;
                    }
                }
                MemSpace::Register => {
                    if !local_decls.iter().any(|(n, ..)| n == name) {
                        local_decls.push((name.clone(), *ty, *len, 0, true));
                    }
                }
                other => panic!("cannot declare an array in {other:?} space"),
            }
        }
    });

    let mut block = BlockCtx {
        shared,
        block_idx,
        block_dim,
        grid_dim,
        local_layout: LocalLayout {
            bytes_per_thread: local_bytes_per_thread.max(local_cursor).max(1),
        },
        race: if detect_races { Some(HashMap::new()) } else { None },
    };

    let mut warps: Vec<WarpCtx> = (0..n_warps)
        .map(|w| {
            let mut tx = [0i32; LANES];
            let mut ty_ = [0i32; LANES];
            let mut tz = [0i32; LANES];
            let mut exist: Mask = 0;
            for l in 0..LANES {
                let t = w * LANES + l;
                if t < n_threads {
                    exist |= 1 << l;
                    tx[l] = (t as u32 % block_dim.x) as i32;
                    ty_[l] = ((t as u32 / block_dim.x) % block_dim.y) as i32;
                    tz[l] = (t as u32 / (block_dim.x * block_dim.y)) as i32;
                }
            }
            let local = local_decls
                .iter()
                .map(|(name, ty, len, off, in_regs)| {
                    (
                        name.clone(),
                        RawArray {
                            ty: *ty,
                            bits: vec![0; *len as usize * LANES],
                            byte_offset: *off,
                            len: *len,
                            in_registers: *in_regs,
                        },
                    )
                })
                .collect();
            WarpCtx {
                regs: HashMap::new(),
                local,
                tid: [WVal::I32(tx), WVal::I32(ty_), WVal::I32(tz)],
                exist_mask: exist,
                warp_global_id: first_warp_global_id + w as u64,
                builder: TraceBuilder::new(dev.txn_bytes, dev.l1_line),
            }
        })
        .collect();

    exec_block_level(&kernel.body, kernel, &mut warps, &mut block, globals);

    BlockTrace { warps: warps.into_iter().map(|w| w.builder.finish()).collect() }
}

/// Execute statements at block level, switching between warp-at-a-time and
/// lockstep execution around barriers.
fn exec_block_level(
    stmts: &[Stmt],
    kernel: &Kernel,
    warps: &mut [WarpCtx],
    block: &mut BlockCtx,
    globals: &mut GlobalState,
) {
    for s in stmts {
        if !s.contains_sync() {
            for w in warps.iter_mut() {
                let mask = w.exist_mask;
                exec_stmt_warp(s, kernel, w, block, globals, mask);
            }
            continue;
        }
        match s {
            Stmt::SyncThreads => {
                block.clear_races();
                for w in warps.iter_mut() {
                    w.builder.bar();
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                let c = eval_uniform_cond(cond, kernel, warps, block, globals);
                if c {
                    exec_block_level(then_body, kernel, warps, block, globals);
                } else {
                    exec_block_level(else_body, kernel, warps, block, globals);
                }
            }
            Stmt::For { var, init, bound, step, body, .. } => {
                // Lockstep loop: every thread follows the same trip count.
                for w in warps.iter_mut() {
                    let mask = w.exist_mask;
                    let v = eval(init, kernel, w, block, globals, mask);
                    set_reg(w, var, v, mask);
                }
                loop {
                    let cond = Expr::Binary(
                        np_kernel_ir::expr::BinOp::Lt,
                        Box::new(Expr::Var(var.clone())),
                        Box::new(bound.clone()),
                    );
                    if !eval_uniform_cond(&cond, kernel, warps, block, globals) {
                        break;
                    }
                    exec_block_level(body, kernel, warps, block, globals);
                    for w in warps.iter_mut() {
                        let mask = w.exist_mask;
                        let stepped = eval(
                            &Expr::Binary(
                                np_kernel_ir::expr::BinOp::Add,
                                Box::new(Expr::Var(var.clone())),
                                Box::new(step.clone()),
                            ),
                            kernel,
                            w,
                            block,
                            globals,
                            mask,
                        );
                        set_reg(w, var, stepped, mask);
                    }
                }
            }
            other => unreachable!("statement cannot contain a barrier: {other:?}"),
        }
    }
}

/// Evaluate a condition that must be uniform across the entire block
/// (required for barrier-containing control flow).
fn eval_uniform_cond(
    cond: &Expr,
    kernel: &Kernel,
    warps: &mut [WarpCtx],
    block: &mut BlockCtx,
    globals: &mut GlobalState,
) -> bool {
    let mut result: Option<bool> = None;
    for w in warps.iter_mut() {
        let mask = w.exist_mask;
        let c = eval(cond, kernel, w, block, globals, mask);
        let t = c.true_mask(mask);
        assert!(
            t == 0 || t == mask,
            "barrier under divergent control flow (condition not warp-uniform)"
        );
        let this = t == mask && mask != 0;
        match result {
            None => result = Some(this),
            Some(prev) => assert_eq!(
                prev, this,
                "barrier under divergent control flow (condition differs across warps)"
            ),
        }
    }
    result.unwrap_or(false)
}

fn set_reg(w: &mut WarpCtx, name: &str, val: WVal, mask: Mask) {
    match w.regs.get_mut(name) {
        Some(existing) => existing.merge_from(&val, mask),
        None => {
            let mut fresh = WVal::zero(val.ty());
            fresh.merge_from(&val, mask);
            w.regs.insert(name.to_string(), fresh);
        }
    }
}

/// Execute one statement for one warp under `mask`.
fn exec_stmt_warp(
    s: &Stmt,
    kernel: &Kernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    globals: &mut GlobalState,
    mask: Mask,
) {
    if mask == 0 {
        return;
    }
    match s {
        Stmt::DeclScalar { name, ty, init } => {
            let val = match init {
                Some(e) => eval(e, kernel, w, block, globals, mask),
                None => WVal::zero(*ty),
            };
            assert_eq!(val.ty(), *ty, "initializer type mismatch for {name:?}");
            // A declaration (re-)initializes: overwrite under mask, default
            // elsewhere if previously absent.
            set_reg(w, name, val, mask);
        }
        Stmt::DeclArray { .. } => { /* pre-created in run_block */ }
        Stmt::Assign { name, value } => {
            let val = eval(value, kernel, w, block, globals, mask);
            set_reg(w, name, val, mask);
        }
        Stmt::Store { array, index, value } => {
            let idx = eval(index, kernel, w, block, globals, mask);
            let val = eval(value, kernel, w, block, globals, mask);
            store_array(array, &idx, &val, kernel, w, block, globals, mask);
        }
        Stmt::If { cond, then_body, else_body } => {
            let c = eval(cond, kernel, w, block, globals, mask);
            let t_mask = c.true_mask(mask);
            let e_mask = mask & !t_mask;
            if t_mask != 0 {
                for st in then_body {
                    exec_stmt_warp(st, kernel, w, block, globals, t_mask);
                }
            }
            if e_mask != 0 {
                for st in else_body {
                    exec_stmt_warp(st, kernel, w, block, globals, e_mask);
                }
            }
        }
        Stmt::For { var, init, bound, step, body, .. } => {
            let v0 = eval(init, kernel, w, block, globals, mask);
            set_reg(w, var, v0, mask);
            let mut active = mask;
            loop {
                let cond = Expr::Binary(
                    np_kernel_ir::expr::BinOp::Lt,
                    Box::new(Expr::Var(var.clone())),
                    Box::new(bound.clone()),
                );
                let c = eval(&cond, kernel, w, block, globals, active);
                active = c.true_mask(active);
                if active == 0 {
                    break;
                }
                for st in body {
                    exec_stmt_warp(st, kernel, w, block, globals, active);
                }
                let stepped = eval(
                    &Expr::Binary(
                        np_kernel_ir::expr::BinOp::Add,
                        Box::new(Expr::Var(var.clone())),
                        Box::new(step.clone()),
                    ),
                    kernel,
                    w,
                    block,
                    globals,
                    active,
                );
                set_reg(w, var, stepped, active);
            }
        }
        Stmt::SyncThreads => {
            unreachable!("barrier must be handled at block level")
        }
    }
}

/// Evaluate an expression for one warp under `mask`, emitting trace ops.
fn eval(
    e: &Expr,
    kernel: &Kernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    globals: &mut GlobalState,
    mask: Mask,
) -> WVal {
    match e {
        Expr::ImmF32(x) => WVal::splat_f32(*x),
        Expr::ImmI32(x) => WVal::splat_i32(*x),
        Expr::ImmU32(x) => WVal::splat_u32(*x),
        Expr::ImmBool(x) => WVal::splat_bool(*x),
        Expr::Var(n) => w
            .regs
            .get(n)
            .unwrap_or_else(|| panic!("use of undeclared scalar {n:?} in kernel {:?}", kernel.name))
            .clone(),
        Expr::Param(n) => match globals.scalars.get(n) {
            Some(ArgValue::F32(x)) => WVal::splat_f32(*x),
            Some(ArgValue::I32(x)) => WVal::splat_i32(*x),
            Some(ArgValue::U32(x)) => WVal::splat_u32(*x),
            _ => panic!("parameter {n:?} is not a bound scalar"),
        },
        Expr::Special(s) => match s {
            Special::ThreadIdxX => w.tid[0].clone(),
            Special::ThreadIdxY => w.tid[1].clone(),
            Special::ThreadIdxZ => w.tid[2].clone(),
            Special::BlockIdxX => WVal::splat_i32(block.block_idx.0 as i32),
            Special::BlockIdxY => WVal::splat_i32(block.block_idx.1 as i32),
            Special::BlockDimX => WVal::splat_i32(block.block_dim.x as i32),
            Special::BlockDimY => WVal::splat_i32(block.block_dim.y as i32),
            Special::BlockDimZ => WVal::splat_i32(block.block_dim.z as i32),
            Special::GridDimX => WVal::splat_i32(block.grid_dim.x as i32),
            Special::GridDimY => WVal::splat_i32(block.grid_dim.y as i32),
        },
        Expr::Unary(op, a) => {
            let va = eval(a, kernel, w, block, globals, mask);
            if op.is_sfu() {
                w.builder.sfu(1);
            } else {
                w.builder.alu(1);
            }
            WVal::unary(*op, &va, mask)
        }
        Expr::Binary(op, a, b) => {
            let va = eval(a, kernel, w, block, globals, mask);
            let vb = eval(b, kernel, w, block, globals, mask);
            w.builder.alu(1);
            WVal::binary(*op, &va, &vb, mask)
        }
        Expr::Select(c, a, b) => {
            let vc = eval(c, kernel, w, block, globals, mask);
            let va = eval(a, kernel, w, block, globals, mask);
            let vb = eval(b, kernel, w, block, globals, mask);
            w.builder.alu(1);
            let tm = vc.true_mask(mask);
            let mut out = vb;
            out.merge_from(&va, tm);
            out
        }
        Expr::Cast(ty, a) => {
            let va = eval(a, kernel, w, block, globals, mask);
            w.builder.alu(1);
            va.cast(*ty, mask)
        }
        Expr::Load { array, index } => {
            let idx = eval(index, kernel, w, block, globals, mask);
            load_array(array, &idx, kernel, w, block, globals, mask)
        }
        Expr::Shfl { mode, value, lane, width } => {
            let vv = eval(value, kernel, w, block, globals, mask);
            let vl = eval(lane, kernel, w, block, globals, mask);
            w.builder.shfl();
            shfl_permute(*mode, &vv, &vl, *width, mask)
        }
    }
}

/// CUDA `__shfl` family semantics over a warp-wide value.
fn shfl_permute(mode: ShflMode, value: &WVal, lane_arg: &WVal, width: u32, mask: Mask) -> WVal {
    assert!(
        width.is_power_of_two() && width >= 1 && width as usize <= LANES,
        "__shfl width must be a power of two in [1, 32], got {width}"
    );
    let wm = width as i64;
    let mut out = value.clone();
    let src_of = |l: usize| -> usize {
        let base = (l as i64 / wm) * wm;
        let arg = lane_arg.lane_index(l).expect("__shfl lane argument must be an integer");
        match mode {
            ShflMode::Idx => (base + arg.rem_euclid(wm)) as usize,
            ShflMode::Up => {
                let s = l as i64 - arg;
                if s < base {
                    l
                } else {
                    s as usize
                }
            }
            ShflMode::Down => {
                let s = l as i64 + arg;
                if s >= base + wm {
                    l
                } else {
                    s as usize
                }
            }
            ShflMode::Xor => {
                let s = l as i64 ^ arg;
                if s >= base + wm || s < base {
                    l
                } else {
                    s as usize
                }
            }
        }
    };
    let bits: [u32; LANES] = std::array::from_fn(|l| value.lane_bits(src_of(l)));
    let permuted = WVal::from_bits(value.ty(), bits);
    out.merge_from(&permuted, mask);
    out
}

fn check_index(array: &str, idx: i64, len: usize, kernel: &Kernel, lane: usize) -> usize {
    assert!(
        idx >= 0 && (idx as usize) < len,
        "out-of-bounds access {array}[{idx}] (len {len}) in kernel {:?}, lane {lane}",
        kernel.name
    );
    idx as usize
}

#[allow(clippy::too_many_arguments)]
fn load_array(
    array: &str,
    idx: &WVal,
    kernel: &Kernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    globals: &mut GlobalState,
    mask: Mask,
) -> WVal {
    // Declared arrays first (shared / local), then parameter arrays.
    if let Some(arr) = block.shared.get(array) {
        let mut addrs: LaneAddrs = [None; LANES];
        let mut bits = [0u32; LANES];
        let mut touched: Vec<usize> = Vec::new();
        for l in lanes(mask) {
            let i = check_index(array, idx.lane_index(l).expect("index must be integer"),
                arr.len as usize, kernel, l);
            addrs[l] = Some(arr.byte_offset as u64 + i as u64 * 4);
            bits[l] = arr.bits[i];
            touched.push(i);
        }
        let ty = arr.ty;
        if block.race.is_some() {
            let wid = w.warp_global_id;
            for i in touched {
                block.track_shared(array, i, wid, false, &kernel.name);
            }
        }
        w.builder.shared(&addrs, false);
        return WVal::from_bits(ty, bits);
    }
    if let Some(arr) = w.local.get(array) {
        let mut offsets = [None; LANES];
        let mut bits = [0u32; LANES];
        for l in lanes(mask) {
            let i = check_index(array, idx.lane_index(l).expect("index must be integer"),
                arr.len as usize, kernel, l);
            offsets[l] = Some(arr.byte_offset + i as u32 * 4);
            bits[l] = arr.bits[i * LANES + l];
        }
        let ty = arr.ty;
        if arr.in_registers {
            w.builder.alu(1);
        } else {
            let layout = block.local_layout;
            let wid = w.warp_global_id;
            w.builder.local(layout, wid, &offsets, false);
        }
        return WVal::from_bits(ty, bits);
    }
    let binding = globals
        .bindings
        .get(array)
        .unwrap_or_else(|| panic!("unknown array {array:?} in kernel {:?}", kernel.name))
        .clone();
    let buf = globals.buffers.get(array).expect("binding without buffer");
    let mut addrs: LaneAddrs = [None; LANES];
    let mut bits = [0u32; LANES];
    for l in lanes(mask) {
        let i = check_index(array, idx.lane_index(l).expect("index must be integer"),
            buf.len(), kernel, l);
        addrs[l] = Some(binding.base_addr + i as u64 * 4);
        bits[l] = buf.read_bits(i);
    }
    let ty = buf.ty();
    match binding.space {
        MemSpace::Global => w.builder.global(&addrs, 4, false),
        MemSpace::Texture => w.builder.tex(&addrs),
        MemSpace::Constant => w.builder.constant(&addrs),
        _ => unreachable!(),
    }
    WVal::from_bits(ty, bits)
}

#[allow(clippy::too_many_arguments)]
fn store_array(
    array: &str,
    idx: &WVal,
    val: &WVal,
    kernel: &Kernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    globals: &mut GlobalState,
    mask: Mask,
) {
    if let Some(arr) = block.shared.get_mut(array) {
        assert_eq!(val.ty(), arr.ty, "store type mismatch into shared {array:?}");
        let mut addrs: LaneAddrs = [None; LANES];
        let mut touched: Vec<usize> = Vec::new();
        for l in lanes(mask) {
            let i = check_index(array, idx.lane_index(l).expect("index must be integer"),
                arr.len as usize, kernel, l);
            addrs[l] = Some(arr.byte_offset as u64 + i as u64 * 4);
            arr.bits[i] = val.lane_bits(l);
            touched.push(i);
        }
        if block.race.is_some() {
            let wid = w.warp_global_id;
            for i in touched {
                block.track_shared(array, i, wid, true, &kernel.name);
            }
        }
        w.builder.shared(&addrs, true);
        return;
    }
    if let Some(arr) = w.local.get_mut(array) {
        assert_eq!(val.ty(), arr.ty, "store type mismatch into local {array:?}");
        let mut offsets = [None; LANES];
        for l in lanes(mask) {
            let i = check_index(array, idx.lane_index(l).expect("index must be integer"),
                arr.len as usize, kernel, l);
            offsets[l] = Some(arr.byte_offset + i as u32 * 4);
            arr.bits[i * LANES + l] = val.lane_bits(l);
        }
        let in_regs = arr.in_registers;
        if in_regs {
            w.builder.alu(1);
        } else {
            let layout = block.local_layout;
            let wid = w.warp_global_id;
            w.builder.local(layout, wid, &offsets, true);
        }
        return;
    }
    let binding = globals
        .bindings
        .get(array)
        .unwrap_or_else(|| panic!("unknown array {array:?} in kernel {:?}", kernel.name))
        .clone();
    assert_eq!(
        binding.space,
        MemSpace::Global,
        "stores are only legal to global memory ({array:?} is {:?})",
        binding.space
    );
    let buf = globals.buffers.get_mut(array).expect("binding without buffer");
    assert_eq!(val.ty(), buf.ty(), "store type mismatch into global {array:?}");
    let mut addrs: LaneAddrs = [None; LANES];
    for l in lanes(mask) {
        let i = check_index(array, idx.lane_index(l).expect("index must be integer"),
            buf.len(), kernel, l);
        addrs[l] = Some(binding.base_addr + i as u64 * 4);
        buf.write_bits(i, val.lane_bits(l));
    }
    w.builder.global(&addrs, 4, true);
}
