//! The SIMT interpreter: functional lockstep execution of one thread block,
//! emitting a timing trace as a side effect.
//!
//! Execution model:
//! * warps execute statements in SIMT lockstep with an active-lane mask;
//!   `If`/`For` divergence serializes both paths / extra iterations, which
//!   shows up in the trace exactly as it would on hardware;
//! * statements that contain no `__syncthreads` execute warp-at-a-time;
//!   statements that do contain a barrier (bare syncs, uniform loops or
//!   conditionals with syncs inside) execute in block-level lockstep, and
//!   the interpreter *checks* the CUDA contract that control flow around
//!   barriers is uniform across the block;
//! * warps of one block run sequentially in warp-id order between barriers,
//!   so functional results are deterministic even for racy kernels.
//!
//! The interpreter runs over the slot-indexed
//! [`InternedKernel`](np_kernel_ir::slots::InternedKernel): every scalar
//! register, array, and parameter was resolved to a dense index before the
//! first block ran, so the hot path performs no string hashing.
//!
//! Contract violations never panic: every check surfaces as a typed
//! [`SimFault`] threaded out through `Result` (see [`crate::fault`]). The
//! per-launch [`LaunchCtx`] additionally carries the watchdog step budget
//! and the optional memory fault injector.
//!
//! For parallel per-block interpretation, a block can run against a
//! [`GlobalMem::Logged`] view: reads come from an immutable base snapshot
//! (or the block's own prior writes), stores are journaled instead of
//! applied, and race-checker events are logged for deterministic replay —
//! see `launch.rs` for the ordered merge that makes the parallel path
//! byte-identical to sequential execution.

// Interpreter internals thread `SimFault` by value so detection sites can
// chain `.at_warp()/.at_lane()/.with_context()` without re-boxing at every
// hop; a fault occurs at most once per launch, and the public boundary
// (`ExecError::Fault`) boxes it.
#![allow(clippy::result_large_err)]

use crate::fault::{FaultKind, SimFault};
use crate::machine::{ArgValue, ArrayBinding, Buffer, GlobalState};
use crate::value::{lanes, Mask, ValueError, WVal, LANES};
use np_gpu_sim::config::DeviceConfig;
use np_gpu_sim::mem::inject::{FaultInjector, InjectConfig, InjectSpace, Injection};
use np_gpu_sim::mem::local::LocalLayout;
use np_gpu_sim::mem::LaneAddrs;
use np_gpu_sim::racecheck::{RaceRecorder, RaceSpace};
use np_gpu_sim::trace::{BlockTrace, ShflKind, TraceBuilder};
use np_kernel_ir::expr::{BinOp, ShflMode, Special};
use np_kernel_ir::slots::{ArrayRef, IExpr, IStmt, InternedKernel, ParamRef};
use np_kernel_ir::types::{Dim3, MemSpace, Scalar};

/// Watchdog state: a per-launch budget of interpreted steps.
struct Watchdog {
    left: u64,
    limit: u64,
}

/// How often (in interpreted steps) the wall-clock deadline is consulted:
/// every `DEADLINE_CHECK_MASK + 1` steps. `Instant::now()` is tens of
/// nanoseconds — amortized over 4096 steps it vanishes from the hot path
/// while still bounding deadline overshoot to well under a millisecond.
const DEADLINE_CHECK_MASK: u64 = 0xFFF;

/// One journaled global-memory store: array-parameter slot, element index,
/// raw bits, and the interpreted step that produced it (used to cut the
/// journal at a watchdog boundary during the ordered merge).
#[derive(Debug, Clone, Copy)]
pub(crate) struct StoreRec {
    pub arr: u32,
    pub idx: u32,
    pub bits: u32,
    pub step: u64,
}

/// Where a race-checker access landed (name resolution deferred so logged
/// events stay small).
#[derive(Debug, Clone, Copy)]
pub(crate) enum ArraySite {
    /// Index into [`InternedKernel::shared`].
    Shared(u32),
    /// Index into [`InternedKernel::array_params`].
    GlobalParam(u32),
}

impl ArraySite {
    pub fn space(self) -> RaceSpace {
        match self {
            ArraySite::Shared(_) => RaceSpace::Shared,
            ArraySite::GlobalParam(_) => RaceSpace::Global,
        }
    }

    pub fn name(self, ik: &InternedKernel) -> &str {
        match self {
            ArraySite::Shared(i) => &ik.shared[i as usize].name,
            ArraySite::GlobalParam(i) => &ik.array_params[i as usize].name,
        }
    }
}

/// One logged race-checker event, replayed in block order on the main
/// thread after a parallel run. `step` is block-local; replay rebases it by
/// the cumulative step count of all earlier blocks, reproducing the exact
/// `pc` values a sequential run would have recorded.
#[derive(Debug, Clone, Copy)]
pub(crate) enum RaceEvent {
    Access { site: ArraySite, index: u64, thread: u32, write: bool, step: u64 },
    Barrier { step: u64 },
}

/// Global-memory view for one interpreting context.
pub(crate) enum GlobalMem<'a> {
    /// Sequential execution: reads and writes go straight to the bound
    /// buffers.
    Direct(&'a mut GlobalState),
    /// Parallel worker: reads come from the immutable pre-launch snapshot
    /// (or this block's own earlier writes), writes are journaled.
    Logged(LoggedMem<'a>),
}

/// The journaling view one parallel worker runs a block against.
pub(crate) struct LoggedMem<'a> {
    base: &'a GlobalState,
    /// Per array-parameter slot: does the kernel body both load and store
    /// it? Only such arrays can observe a cross-block read-after-write.
    rw: &'a [bool],
    /// Lazy copy-on-write overlay per read-write array, so the block reads
    /// its own earlier stores.
    overlays: Vec<Option<Buffer>>,
    /// Bitmap of elements this block wrote (read-write arrays only).
    written: Vec<Vec<u64>>,
    /// Bitmap of elements this block read *before* writing them itself
    /// (read-write arrays only): the block's cross-block input set.
    reads: Vec<Vec<u64>>,
    stores: Vec<StoreRec>,
}

fn bit_get(bits: &[u64], i: usize) -> bool {
    bits.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0)
}

pub(crate) fn bit_set(bits: &mut Vec<u64>, i: usize, len: usize) {
    if bits.is_empty() {
        bits.resize(len.div_ceil(64), 0);
    }
    bits[i / 64] |= 1 << (i % 64);
}

/// True when two element bitmaps share any set bit.
pub(crate) fn bitmaps_intersect(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).any(|(x, y)| x & y != 0)
}

impl GlobalMem<'_> {
    fn scalar(&self, slot: usize) -> &ArgValue {
        match self {
            GlobalMem::Direct(g) => &g.scalars[slot],
            GlobalMem::Logged(m) => &m.base.scalars[slot],
        }
    }

    fn binding(&self, slot: usize) -> ArrayBinding {
        match self {
            GlobalMem::Direct(g) => g.bindings[slot],
            GlobalMem::Logged(m) => m.base.bindings[slot],
        }
    }

    fn buf_ty_len(&self, slot: usize) -> (Scalar, usize) {
        let b = match self {
            GlobalMem::Direct(g) => &g.buffers[slot],
            GlobalMem::Logged(m) => &m.base.buffers[slot],
        };
        (b.ty(), b.len())
    }

    fn load_bits(&mut self, slot: usize, idx: usize) -> u32 {
        match self {
            GlobalMem::Direct(g) => g.buffers[slot].read_bits(idx),
            GlobalMem::Logged(m) => {
                if m.rw[slot] {
                    if bit_get(&m.written[slot], idx) {
                        // Internal invariant: a written bit implies the
                        // overlay exists.
                        return m.overlays[slot].as_ref().expect("overlay").read_bits(idx);
                    }
                    let len = m.base.buffers[slot].len();
                    bit_set(&mut m.reads[slot], idx, len);
                }
                m.base.buffers[slot].read_bits(idx)
            }
        }
    }

    fn store_bits(&mut self, slot: usize, idx: usize, bits: u32, step: u64) {
        match self {
            GlobalMem::Direct(g) => g.buffers[slot].write_bits(idx, bits),
            GlobalMem::Logged(m) => {
                m.stores.push(StoreRec { arr: slot as u32, idx: idx as u32, bits, step });
                if m.rw[slot] {
                    let base = &m.base.buffers[slot];
                    let len = base.len();
                    let buf = m.overlays[slot].get_or_insert_with(|| base.clone());
                    buf.write_bits(idx, bits);
                    bit_set(&mut m.written[slot], idx, len);
                }
            }
        }
    }
}

/// Where race-checker accesses go for this context.
enum RaceSink {
    Off,
    /// Sequential: feed the recorder directly; `fatal` turns the first
    /// finding into a [`FaultKind::RaceDetected`] fault.
    Recorder { rec: Box<RaceRecorder>, fatal: bool },
    /// Parallel worker: journal events for in-order replay on the main
    /// thread.
    Log(Vec<RaceEvent>),
}

/// Everything a parallel worker hands back for one block, besides the
/// trace itself.
pub(crate) struct BlockLog {
    pub stores: Vec<StoreRec>,
    /// Per read-write array: elements read before this block's own write.
    pub reads_before_write: Vec<Vec<u64>>,
    pub race_events: Vec<RaceEvent>,
    /// Interpreted steps this block consumed.
    pub steps: u64,
}

/// Per-launch sanitizer state shared by every block of one launch: the
/// bound globals, the watchdog budget, and the fault injector. Keeping it
/// launch-scoped makes the watchdog a whole-kernel bound and the injector's
/// access counter monotone across blocks (so seeded runs are reproducible).
/// Parallel workers instead create one context per block over a
/// [`GlobalMem::Logged`] view.
pub(crate) struct LaunchCtx<'a> {
    pub mem: GlobalMem<'a>,
    watchdog: Option<Watchdog>,
    /// Wall-clock bound; only the sequential path ever arms it.
    deadline: Option<crate::launch::DeadlineSpec>,
    injector: Option<FaultInjector>,
    race: RaceSink,
    /// Cached recorder-interned array ids, slot-indexed (shared, param):
    /// the hot path pays one string hash per array per launch instead of
    /// one per lane access.
    race_ids: (Vec<Option<u32>>, Vec<Option<u32>>),
    /// Monotone interpreted-step counter: the deterministic "pc" race
    /// findings use to name access sites.
    step: u64,
}

impl<'a> LaunchCtx<'a> {
    pub fn new(
        globals: &'a mut GlobalState,
        watchdog_steps: Option<u64>,
        deadline: Option<crate::launch::DeadlineSpec>,
        injection: Option<InjectConfig>,
        race: Option<(RaceRecorder, bool)>,
    ) -> Self {
        LaunchCtx {
            mem: GlobalMem::Direct(globals),
            watchdog: watchdog_steps.map(|limit| Watchdog { left: limit, limit }),
            deadline,
            injector: injection.map(FaultInjector::new),
            race: match race {
                Some((rec, fatal)) => RaceSink::Recorder { rec: Box::new(rec), fatal },
                None => RaceSink::Off,
            },
            race_ids: (Vec::new(), Vec::new()),
            step: 0,
        }
    }

    /// A per-block journaling context for one parallel worker. The worker
    /// gets the *full* watchdog budget; the ordered merge later decides
    /// whether a sequential run would have hit the budget earlier.
    pub fn new_logged(
        base: &'a GlobalState,
        rw: &'a [bool],
        watchdog_steps: Option<u64>,
        log_races: bool,
    ) -> Self {
        let n = base.buffers.len();
        LaunchCtx {
            mem: GlobalMem::Logged(LoggedMem {
                base,
                rw,
                overlays: (0..n).map(|_| None).collect(),
                written: vec![Vec::new(); n],
                reads: vec![Vec::new(); n],
                stores: Vec::new(),
            }),
            watchdog: watchdog_steps.map(|limit| Watchdog { left: limit, limit }),
            // Deadlines force the sequential path; a logged worker never
            // carries one.
            deadline: None,
            injector: None,
            race: if log_races { RaceSink::Log(Vec::new()) } else { RaceSink::Off },
            race_ids: (Vec::new(), Vec::new()),
            step: 0,
        }
    }

    /// Tear a worker context down into its journal.
    pub fn finish_logged(self) -> BlockLog {
        let steps = self.step;
        let race_events = match self.race {
            RaceSink::Log(v) => v,
            _ => Vec::new(),
        };
        match self.mem {
            GlobalMem::Logged(m) => BlockLog {
                stores: m.stores,
                reads_before_write: m.reads,
                race_events,
                steps,
            },
            GlobalMem::Direct(_) => {
                BlockLog { stores: Vec::new(), reads_before_write: Vec::new(), race_events, steps }
            }
        }
    }

    /// Charge one interpreted step against the watchdog budget and, every
    /// [`DEADLINE_CHECK_MASK`]+1 steps, against the wall-clock deadline.
    fn tick(&mut self, kernel_name: &str) -> Result<(), SimFault> {
        self.step += 1;
        if let Some(dl) = &self.deadline {
            if self.step & DEADLINE_CHECK_MASK == 0 && dl.expired() {
                return Err(SimFault::new(
                    kernel_name,
                    FaultKind::Deadline { budget_ms: dl.budget_ms },
                ));
            }
        }
        let Some(wd) = &mut self.watchdog else { return Ok(()) };
        if wd.left == 0 {
            return Err(SimFault::new(kernel_name, FaultKind::Watchdog { limit: wd.limit }));
        }
        wd.left -= 1;
        Ok(())
    }

    /// Consult the injector for one lane load.
    fn inject(&mut self, space: InjectSpace, addr: u64) -> Option<Injection> {
        self.injector.as_mut()?.decide(space, addr)
    }

    /// Feed one thread-granular access to the race checker; in fatal mode a
    /// triggered finding becomes a fault at the second access's warp.
    #[allow(clippy::too_many_arguments)]
    fn race_access(
        &mut self,
        ik: &InternedKernel,
        site: ArraySite,
        index: u64,
        thread: u32,
        write: bool,
        warp: u64,
    ) -> Result<(), SimFault> {
        let pc = self.step;
        match &mut self.race {
            RaceSink::Off => Ok(()),
            RaceSink::Log(events) => {
                events.push(RaceEvent::Access { site, index, thread, write, step: pc });
                Ok(())
            }
            RaceSink::Recorder { rec, fatal } => {
                let (shared_ids, param_ids) = &mut self.race_ids;
                let cached = match site {
                    ArraySite::Shared(sl) => {
                        let sl = sl as usize;
                        if shared_ids.len() <= sl {
                            shared_ids.resize(sl + 1, None);
                        }
                        &mut shared_ids[sl]
                    }
                    ArraySite::GlobalParam(pl) => {
                        let pl = pl as usize;
                        if param_ids.len() <= pl {
                            param_ids.resize(pl + 1, None);
                        }
                        &mut param_ids[pl]
                    }
                };
                let id = match *cached {
                    Some(id) => id,
                    None => {
                        let id = rec.intern_id(site.name(ik));
                        *cached = Some(id);
                        id
                    }
                };
                let finding =
                    rec.record_access_by_id(site.space(), id, index, thread, write, pc);
                if *fatal {
                    if let Some(f) = finding {
                        return Err(SimFault::new(
                            &ik.name,
                            FaultKind::RaceDetected { detail: f.to_string() },
                        )
                        .at_warp(warp)
                        .at_lane(thread as usize % LANES));
                    }
                }
                Ok(())
            }
        }
    }

    /// Every thread of the current block passed a barrier.
    fn race_barrier_all(&mut self) {
        let pc = self.step;
        match &mut self.race {
            RaceSink::Off => {}
            RaceSink::Log(events) => events.push(RaceEvent::Barrier { step: pc }),
            RaceSink::Recorder { rec, .. } => rec.barrier_all(pc),
        }
    }

    /// Begin / end race tracking for one block.
    fn race_begin_block(&mut self, block: u64, n_threads: u32) {
        if let RaceSink::Recorder { rec, .. } = &mut self.race {
            rec.begin_block(block, n_threads);
        }
    }

    fn race_end_block(&mut self) {
        if let RaceSink::Recorder { rec, .. } = &mut self.race {
            rec.end_block();
        }
    }

    fn race_armed(&self) -> bool {
        !matches!(self.race, RaceSink::Off)
    }

    /// Total interpreted steps so far (whole-launch on the sequential path).
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Take the recorder out (launch teardown).
    pub fn take_race(&mut self) -> Option<RaceRecorder> {
        match std::mem::replace(&mut self.race, RaceSink::Off) {
            RaceSink::Recorder { rec, .. } => Some(*rec),
            other => {
                self.race = other;
                None
            }
        }
    }
}

/// Typed raw storage for a shared or local array (element-major for local:
/// index `i` of lane `l` lives at `i * LANES + l`).
struct RawArray {
    ty: Scalar,
    bits: Vec<u32>,
    byte_offset: u32,
    len: u32,
    /// True for register-file arrays: functionally per-thread like local
    /// memory, but accesses cost only ALU work.
    in_registers: bool,
}

/// Per-warp interpreter state. Registers and local arrays are slot-indexed
/// by the interned kernel's numbering.
struct WarpCtx {
    regs: Vec<Option<WVal>>,
    local: Vec<RawArray>,
    tid: [WVal; 3],
    exist_mask: Mask,
    warp_global_id: u64,
    /// Block-local warp index: lane `l` of this warp is block-linear
    /// thread `warp_in_block * 32 + l` (race findings are thread-granular).
    warp_in_block: u32,
    builder: TraceBuilder,
}

/// Last accessor of each shared-memory word since the previous barrier:
/// (warp id, was a write), indexed by shared-array slot then element.
type RaceMap = Vec<Vec<Option<(u64, bool)>>>;

/// Per-block interpreter state.
struct BlockCtx {
    shared: Vec<RawArray>,
    block_idx: (u32, u32),
    block_dim: Dim3,
    grid_dim: Dim3,
    local_layout: LocalLayout,
    /// When armed: the shared-memory race tracker.
    race: Option<RaceMap>,
}

/// Wrap a lane-vector operation error into a fault at a known warp.
fn vfault(ik: &InternedKernel, warp: u64, e: ValueError) -> SimFault {
    let kind = if e.ill_typed {
        FaultKind::IllTyped { detail: e.msg }
    } else {
        FaultKind::InvalidOperation { detail: e.msg }
    };
    let mut f = SimFault::new(&ik.name, kind).at_warp(warp);
    if let Some(l) = e.lane {
        f = f.at_lane(l);
    }
    f
}

impl BlockCtx {
    /// Record one shared-memory access for race detection; faults on a
    /// cross-warp conflict where at least one side writes.
    fn track_shared(
        &mut self,
        slot: usize,
        index: usize,
        warp: u64,
        write: bool,
        ik: &InternedKernel,
    ) -> Result<(), SimFault> {
        let Some(tracker) = &mut self.race else { return Ok(()) };
        let slots = &mut tracker[slot];
        if let Some((prev_warp, prev_write)) = slots.get(index).copied().flatten() {
            if prev_warp != warp && (prev_write || write) {
                return Err(SimFault::new(
                    &ik.name,
                    FaultKind::SharedRace {
                        array: ik.shared[slot].name.clone(),
                        index,
                        prev_warp,
                        prev_write,
                        warp,
                        write,
                    },
                )
                .at_warp(warp));
            }
        }
        // Writes dominate reads in the recorded state.
        if let Some(s) = slots.get_mut(index) {
            let keep_write = write || s.map(|(_, w)| w).unwrap_or(false);
            *s = Some((warp, keep_write));
        }
        Ok(())
    }

    /// Barrier: all pre-barrier accesses are now ordered before whatever
    /// comes next.
    fn clear_races(&mut self) {
        if let Some(t) = &mut self.race {
            for s in t.iter_mut() {
                s.fill(None);
            }
        }
    }
}

/// Execute one thread block functionally; returns its timing trace, or the
/// first fault the sanitizer detected.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_block(
    ik: &InternedKernel,
    dev: &DeviceConfig,
    ctx: &mut LaunchCtx,
    block_idx: (u32, u32),
    grid_dim: Dim3,
    first_warp_global_id: u64,
    local_bytes_per_thread: u32,
    detect_races: bool,
) -> Result<BlockTrace, SimFault> {
    let block_dim = ik.block_dim;
    let n_threads = block_dim.count() as usize;
    let n_warps = n_threads.div_ceil(LANES);

    // The interning pre-pass already walked the declarations (same order,
    // same byte-offset cursors as the old per-block scan); an invalid
    // declaration space still faults before anything executes.
    if let Some((name, other)) = &ik.bad_decl {
        return Err(SimFault::new(
            &ik.name,
            FaultKind::InvalidOperation {
                detail: format!("cannot declare array {name:?} in {other:?} space"),
            },
        ));
    }

    let shared: Vec<RawArray> = ik
        .shared
        .iter()
        .map(|d| RawArray {
            ty: d.ty,
            bits: vec![0; d.len as usize],
            byte_offset: d.byte_offset,
            len: d.len,
            in_registers: false,
        })
        .collect();

    let mut block = BlockCtx {
        shared,
        block_idx,
        block_dim,
        grid_dim,
        local_layout: LocalLayout {
            bytes_per_thread: local_bytes_per_thread.max(ik.local_decl_bytes).max(1),
        },
        race: if detect_races {
            Some(ik.shared.iter().map(|d| vec![None; d.len as usize]).collect())
        } else {
            None
        },
    };

    let n_regs = ik.reg_names.len();
    let mut warps: Vec<WarpCtx> = (0..n_warps)
        .map(|w| {
            let mut tx = [0i32; LANES];
            let mut ty_ = [0i32; LANES];
            let mut tz = [0i32; LANES];
            let mut exist: Mask = 0;
            for l in 0..LANES {
                let t = w * LANES + l;
                if t < n_threads {
                    exist |= 1 << l;
                    tx[l] = (t as u32 % block_dim.x) as i32;
                    ty_[l] = ((t as u32 / block_dim.x) % block_dim.y) as i32;
                    tz[l] = (t as u32 / (block_dim.x * block_dim.y)) as i32;
                }
            }
            let local = ik
                .local
                .iter()
                .map(|d| RawArray {
                    ty: d.ty,
                    bits: vec![0; d.len as usize * LANES],
                    byte_offset: d.byte_offset,
                    len: d.len,
                    in_registers: d.in_registers,
                })
                .collect();
            WarpCtx {
                regs: vec![None; n_regs],
                local,
                tid: [WVal::I32(tx), WVal::I32(ty_), WVal::I32(tz)],
                exist_mask: exist,
                warp_global_id: first_warp_global_id + w as u64,
                warp_in_block: w as u32,
                builder: TraceBuilder::new(dev.txn_bytes, dev.l1_line),
            }
        })
        .collect();

    let block_linear = block_idx.1 as u64 * grid_dim.x as u64 + block_idx.0 as u64;
    ctx.race_begin_block(block_linear, n_threads as u32);
    exec_block_level(&ik.body, ik, &mut warps, &mut block, ctx)?;
    ctx.race_end_block();

    Ok(BlockTrace { warps: warps.into_iter().map(|w| w.builder.finish()).collect() })
}

/// Execute statements at block level, switching between warp-at-a-time and
/// lockstep execution around barriers.
fn exec_block_level(
    stmts: &[IStmt],
    ik: &InternedKernel,
    warps: &mut [WarpCtx],
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
) -> Result<(), SimFault> {
    for s in stmts {
        if !s.has_sync() {
            for w in warps.iter_mut() {
                let mask = w.exist_mask;
                exec_stmt_warp(s, ik, w, block, ctx, mask)?;
            }
            continue;
        }
        match s {
            IStmt::SyncThreads => {
                ctx.tick(&ik.name)?;
                block.clear_races();
                ctx.race_barrier_all();
                for w in warps.iter_mut() {
                    w.builder.bar();
                }
            }
            IStmt::If { cond, then_body, else_body, .. } => {
                ctx.tick(&ik.name)?;
                let c = eval_uniform_cond(cond, ik, warps, block, ctx)?;
                if c {
                    exec_block_level(then_body, ik, warps, block, ctx)?;
                } else {
                    exec_block_level(else_body, ik, warps, block, ctx)?;
                }
            }
            IStmt::For { var, init, bound, step, body, .. } => {
                // Lockstep loop: every thread follows the same trip count.
                for w in warps.iter_mut() {
                    let mask = w.exist_mask;
                    let v = eval(init, ik, w, block, ctx, mask)?;
                    set_reg(w, *var, v, mask, ik)?;
                }
                loop {
                    ctx.tick(&ik.name)?;
                    // Inlined `var < bound`: reading the register emits no
                    // trace ops, the bound may, the compare costs one ALU op
                    // — the same sequence the old expression tree produced.
                    if !uniform_loop_cond(*var, bound, ik, warps, block, ctx)? {
                        break;
                    }
                    exec_block_level(body, ik, warps, block, ctx)?;
                    for w in warps.iter_mut() {
                        let mask = w.exist_mask;
                        let va = read_reg(w, *var, ik)?;
                        let vs = eval(step, ik, w, block, ctx, mask)?;
                        w.builder.alu(1);
                        let wid = w.warp_global_id;
                        let stepped = WVal::binary(BinOp::Add, &va, &vs, mask)
                            .map_err(|e| vfault(ik, wid, e))?;
                        set_reg(w, *var, stepped, mask, ik)?;
                    }
                }
            }
            // Internal invariant: has_sync() is true only for the
            // statement shapes handled above.
            other => unreachable!("statement cannot contain a barrier: {other:?}"),
        }
    }
    Ok(())
}

/// Fold one per-warp boolean into the block-uniform result, faulting on any
/// divergence (required for barrier-containing control flow).
fn fold_uniform(
    result: &mut Option<bool>,
    t: Mask,
    mask: Mask,
    wid: u64,
    ik: &InternedKernel,
) -> Result<(), SimFault> {
    if t != 0 && t != mask {
        return Err(SimFault::new(
            &ik.name,
            FaultKind::BarrierDivergence {
                detail: "barrier under divergent control flow (condition not warp-uniform)"
                    .to_string(),
            },
        )
        .at_warp(wid));
    }
    let this = t == mask && mask != 0;
    match *result {
        None => *result = Some(this),
        Some(prev) => {
            if prev != this {
                return Err(SimFault::new(
                    &ik.name,
                    FaultKind::BarrierDivergence {
                        detail:
                            "barrier under divergent control flow (condition differs across warps)"
                                .to_string(),
                    },
                )
                .at_warp(wid));
            }
        }
    }
    Ok(())
}

/// Evaluate a condition that must be uniform across the entire block.
fn eval_uniform_cond(
    cond: &IExpr,
    ik: &InternedKernel,
    warps: &mut [WarpCtx],
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
) -> Result<bool, SimFault> {
    let mut result: Option<bool> = None;
    for w in warps.iter_mut() {
        let mask = w.exist_mask;
        let c = eval(cond, ik, w, block, ctx, mask)?;
        let wid = w.warp_global_id;
        let t = c.true_mask(mask).map_err(|e| vfault(ik, wid, e))?;
        fold_uniform(&mut result, t, mask, wid, ik)?;
    }
    Ok(result.unwrap_or(false))
}

/// Block-uniform `var < bound` for a lockstep loop, with the register read
/// inlined (no per-iteration expression-tree construction).
fn uniform_loop_cond(
    var: u32,
    bound: &IExpr,
    ik: &InternedKernel,
    warps: &mut [WarpCtx],
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
) -> Result<bool, SimFault> {
    let mut result: Option<bool> = None;
    for w in warps.iter_mut() {
        let mask = w.exist_mask;
        let va = read_reg(w, var, ik)?;
        let vb = eval(bound, ik, w, block, ctx, mask)?;
        w.builder.alu(1);
        let wid = w.warp_global_id;
        let c = WVal::binary(BinOp::Lt, &va, &vb, mask).map_err(|e| vfault(ik, wid, e))?;
        let t = c.true_mask(mask).map_err(|e| vfault(ik, wid, e))?;
        fold_uniform(&mut result, t, mask, wid, ik)?;
    }
    Ok(result.unwrap_or(false))
}

/// Read a register slot, faulting like `Expr::Var` evaluation does.
fn read_reg(w: &WarpCtx, slot: u32, ik: &InternedKernel) -> Result<WVal, SimFault> {
    w.regs[slot as usize].clone().ok_or_else(|| {
        SimFault::new(
            &ik.name,
            FaultKind::UndeclaredName { name: ik.reg_names[slot as usize].clone() },
        )
        .at_warp(w.warp_global_id)
        .with_context("use of undeclared scalar")
    })
}

fn set_reg(
    w: &mut WarpCtx,
    slot: u32,
    val: WVal,
    mask: Mask,
    ik: &InternedKernel,
) -> Result<(), SimFault> {
    let wid = w.warp_global_id;
    match &mut w.regs[slot as usize] {
        Some(existing) => existing.merge_from(&val, mask).map_err(|e| {
            vfault(ik, wid, e)
                .with_context(format!("assignment to {:?}", ik.reg_names[slot as usize]))
        })?,
        r @ None => {
            let mut fresh = WVal::zero(val.ty());
            // Internal invariant: fresh has val's own type.
            fresh.merge_from(&val, mask).expect("fresh register matches value type");
            *r = Some(fresh);
        }
    }
    Ok(())
}

/// Execute one statement for one warp under `mask`.
fn exec_stmt_warp(
    s: &IStmt,
    ik: &InternedKernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
    mask: Mask,
) -> Result<(), SimFault> {
    if mask == 0 {
        return Ok(());
    }
    ctx.tick(&ik.name)?;
    match s {
        IStmt::DeclScalar { slot, ty, init } => {
            let val = match init {
                Some(e) => eval(e, ik, w, block, ctx, mask)?,
                None => WVal::zero(*ty),
            };
            if val.ty() != *ty {
                return Err(SimFault::new(
                    &ik.name,
                    FaultKind::IllTyped {
                        detail: format!(
                            "initializer type mismatch for {:?}: declared {ty:?}, got {:?}",
                            ik.reg_names[*slot as usize],
                            val.ty()
                        ),
                    },
                )
                .at_warp(w.warp_global_id));
            }
            // A declaration (re-)initializes: overwrite under mask, default
            // elsewhere if previously absent.
            set_reg(w, *slot, val, mask, ik)?;
        }
        IStmt::DeclArray => { /* pre-created in run_block */ }
        IStmt::Assign { slot, value } => {
            let val = eval(value, ik, w, block, ctx, mask)?;
            set_reg(w, *slot, val, mask, ik)?;
        }
        IStmt::Store { array, index, value } => {
            let idx = eval(index, ik, w, block, ctx, mask)?;
            let val = eval(value, ik, w, block, ctx, mask)?;
            store_array(*array, &idx, &val, ik, w, block, ctx, mask)?;
        }
        IStmt::If { cond, then_body, else_body, .. } => {
            let c = eval(cond, ik, w, block, ctx, mask)?;
            let wid = w.warp_global_id;
            let t_mask = c.true_mask(mask).map_err(|e| vfault(ik, wid, e))?;
            let e_mask = mask & !t_mask;
            // Both sides populated: the warp serializes through each path.
            let diverged = t_mask != 0 && e_mask != 0;
            if diverged {
                w.builder.divergence_event();
                w.builder.enter_divergent();
            }
            // A fault unwinds past the exit_divergent below; that's fine —
            // the faulted launch discards its builder and counters.
            if t_mask != 0 {
                for st in then_body {
                    exec_stmt_warp(st, ik, w, block, ctx, t_mask)?;
                }
            }
            if e_mask != 0 {
                for st in else_body {
                    exec_stmt_warp(st, ik, w, block, ctx, e_mask)?;
                }
            }
            if diverged {
                w.builder.exit_divergent();
            }
        }
        IStmt::For { var, init, bound, step, body, .. } => {
            let v0 = eval(init, ik, w, block, ctx, mask)?;
            set_reg(w, *var, v0, mask, ik)?;
            let mut active = mask;
            // Lanes exit a warp-level loop independently; once the live set
            // shrinks below the entry mask the remaining iterations run
            // divergent (the mask only ever shrinks, so enter once).
            let mut partial = false;
            loop {
                ctx.tick(&ik.name)?;
                // Inlined `var < bound` under the live mask; emission order
                // matches the old expression-tree evaluation exactly.
                let va = read_reg(w, *var, ik)?;
                let vb = eval(bound, ik, w, block, ctx, active)?;
                w.builder.alu(1);
                let wid = w.warp_global_id;
                let c =
                    WVal::binary(BinOp::Lt, &va, &vb, active).map_err(|e| vfault(ik, wid, e))?;
                active = c.true_mask(active).map_err(|e| vfault(ik, wid, e))?;
                if active == 0 {
                    break;
                }
                if !partial && active != mask {
                    partial = true;
                    w.builder.divergence_event();
                    w.builder.enter_divergent();
                }
                for st in body {
                    exec_stmt_warp(st, ik, w, block, ctx, active)?;
                }
                let va = read_reg(w, *var, ik)?;
                let vs = eval(step, ik, w, block, ctx, active)?;
                w.builder.alu(1);
                let stepped =
                    WVal::binary(BinOp::Add, &va, &vs, active).map_err(|e| vfault(ik, wid, e))?;
                set_reg(w, *var, stepped, active, ik)?;
            }
            if partial {
                w.builder.exit_divergent();
            }
        }
        IStmt::SyncThreads => {
            // Internal invariant: exec_block_level routes every
            // barrier-containing statement away from the warp path.
            unreachable!("barrier must be handled at block level")
        }
    }
    Ok(())
}

/// Evaluate an expression for one warp under `mask`, emitting trace ops.
fn eval(
    e: &IExpr,
    ik: &InternedKernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
    mask: Mask,
) -> Result<WVal, SimFault> {
    let out = match e {
        IExpr::ImmF32(x) => WVal::splat_f32(*x),
        IExpr::ImmI32(x) => WVal::splat_i32(*x),
        IExpr::ImmU32(x) => WVal::splat_u32(*x),
        IExpr::ImmBool(x) => WVal::splat_bool(*x),
        IExpr::Var(slot) => read_reg(w, *slot, ik)?,
        IExpr::Param(p) => match p {
            ParamRef::Scalar(s) => match ctx.mem.scalar(*s as usize) {
                ArgValue::F32(x) => WVal::splat_f32(*x),
                ArgValue::I32(x) => WVal::splat_i32(*x),
                ArgValue::U32(x) => WVal::splat_u32(*x),
                // Internal invariant: bind() stores only scalar values in
                // scalar slots.
                ArgValue::Buf(_) => unreachable!("scalar slot holds a buffer"),
            },
            ParamRef::Unknown(u) => {
                return Err(SimFault::new(
                    &ik.name,
                    FaultKind::UndeclaredName { name: ik.unknown_names[*u as usize].clone() },
                )
                .at_warp(w.warp_global_id)
                .with_context("parameter is not a bound scalar"))
            }
        },
        IExpr::Special(s) => match s {
            Special::ThreadIdxX => w.tid[0].clone(),
            Special::ThreadIdxY => w.tid[1].clone(),
            Special::ThreadIdxZ => w.tid[2].clone(),
            Special::BlockIdxX => WVal::splat_i32(block.block_idx.0 as i32),
            Special::BlockIdxY => WVal::splat_i32(block.block_idx.1 as i32),
            Special::BlockDimX => WVal::splat_i32(block.block_dim.x as i32),
            Special::BlockDimY => WVal::splat_i32(block.block_dim.y as i32),
            Special::BlockDimZ => WVal::splat_i32(block.block_dim.z as i32),
            Special::GridDimX => WVal::splat_i32(block.grid_dim.x as i32),
            Special::GridDimY => WVal::splat_i32(block.grid_dim.y as i32),
        },
        IExpr::Unary(op, a) => {
            let va = eval(a, ik, w, block, ctx, mask)?;
            if op.is_sfu() {
                w.builder.sfu(1);
            } else {
                w.builder.alu(1);
            }
            let wid = w.warp_global_id;
            WVal::unary(*op, &va, mask).map_err(|e| vfault(ik, wid, e))?
        }
        IExpr::Binary(op, a, b) => {
            let va = eval(a, ik, w, block, ctx, mask)?;
            let vb = eval(b, ik, w, block, ctx, mask)?;
            w.builder.alu(1);
            let wid = w.warp_global_id;
            WVal::binary(*op, &va, &vb, mask).map_err(|e| vfault(ik, wid, e))?
        }
        IExpr::Select(c, a, b) => {
            let vc = eval(c, ik, w, block, ctx, mask)?;
            let va = eval(a, ik, w, block, ctx, mask)?;
            let vb = eval(b, ik, w, block, ctx, mask)?;
            w.builder.alu(1);
            let wid = w.warp_global_id;
            let tm = vc.true_mask(mask).map_err(|e| vfault(ik, wid, e))?;
            let mut out = vb;
            out.merge_from(&va, tm)
                .map_err(|e| vfault(ik, wid, e).with_context("select arms"))?;
            out
        }
        IExpr::Cast(ty, a) => {
            let va = eval(a, ik, w, block, ctx, mask)?;
            w.builder.alu(1);
            va.cast(*ty, mask)
        }
        IExpr::Load { array, index } => {
            let idx = eval(index, ik, w, block, ctx, mask)?;
            load_array(*array, &idx, ik, w, block, ctx, mask)?
        }
        IExpr::Shfl { mode, value, lane, width } => {
            let vv = eval(value, ik, w, block, ctx, mask)?;
            let vl = eval(lane, ik, w, block, ctx, mask)?;
            w.builder.shfl(match mode {
                ShflMode::Idx => ShflKind::Broadcast,
                ShflMode::Xor => ShflKind::Xor,
                ShflMode::Up => ShflKind::Up,
                ShflMode::Down => ShflKind::Down,
            });
            let wid = w.warp_global_id;
            shfl_permute(*mode, &vv, &vl, *width, mask, &ik.name).map_err(|f| f.at_warp(wid))?
        }
    };
    Ok(out)
}

/// CUDA `__shfl` family semantics over a warp-wide value.
fn shfl_permute(
    mode: ShflMode,
    value: &WVal,
    lane_arg: &WVal,
    width: u32,
    mask: Mask,
    kernel_name: &str,
) -> Result<WVal, SimFault> {
    if !(width.is_power_of_two() && width >= 1 && width as usize <= LANES) {
        return Err(SimFault::new(
            kernel_name,
            FaultKind::InvalidOperation {
                detail: format!("__shfl width must be a power of two in [1, 32], got {width}"),
            },
        ));
    }
    let wm = width as i64;
    let mut out = value.clone();
    let mut src = [0usize; LANES];
    for (l, s) in src.iter_mut().enumerate() {
        let arg = lane_arg.lane_index(l).ok_or_else(|| {
            SimFault::new(
                kernel_name,
                FaultKind::IllTyped {
                    detail: format!(
                        "__shfl lane argument must be an integer, found {:?}",
                        lane_arg.ty()
                    ),
                },
            )
            .at_lane(l)
        })?;
        let base = (l as i64 / wm) * wm;
        *s = match mode {
            ShflMode::Idx => (base + arg.rem_euclid(wm)) as usize,
            ShflMode::Up => {
                let x = l as i64 - arg;
                if x < base {
                    l
                } else {
                    x as usize
                }
            }
            ShflMode::Down => {
                let x = l as i64 + arg;
                if x >= base + wm {
                    l
                } else {
                    x as usize
                }
            }
            ShflMode::Xor => {
                let x = l as i64 ^ arg;
                if x >= base + wm || x < base {
                    l
                } else {
                    x as usize
                }
            }
        };
    }
    let bits: [u32; LANES] = std::array::from_fn(|l| value.lane_bits(src[l]));
    let permuted = WVal::from_bits(value.ty(), bits);
    // Internal invariant: permuted has value's own type.
    out.merge_from(&permuted, mask).expect("shfl preserves the value type");
    Ok(out)
}

/// The lane's index value as an integer, or an `IllTyped` fault.
fn lane_index(
    idx: &WVal,
    lane: usize,
    array: &str,
    kernel_name: &str,
) -> Result<i64, SimFault> {
    idx.lane_index(lane).ok_or_else(|| {
        SimFault::new(
            kernel_name,
            FaultKind::IllTyped {
                detail: format!("index into {array:?} must be an integer, found {:?}", idx.ty()),
            },
        )
        .at_lane(lane)
    })
}

#[allow(clippy::too_many_arguments)]
fn check_index(
    array: &str,
    idx: i64,
    len: usize,
    space: MemSpace,
    write: bool,
    kernel_name: &str,
    lane: usize,
) -> Result<usize, SimFault> {
    if idx >= 0 && (idx as usize) < len {
        Ok(idx as usize)
    } else {
        Err(SimFault::new(
            kernel_name,
            FaultKind::OutOfBounds { space, array: array.to_string(), index: idx, len, write },
        )
        .at_lane(lane))
    }
}


#[allow(clippy::too_many_arguments)]
fn load_array(
    aref: ArrayRef,
    idx: &WVal,
    ik: &InternedKernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
    mask: Mask,
) -> Result<WVal, SimFault> {
    let wid = w.warp_global_id;
    match aref {
        ArrayRef::Shared(si) => {
            let si = si as usize;
            let name = ik.shared[si].name.as_str();
            let mut addrs: LaneAddrs = [None; LANES];
            let mut bits = [0u32; LANES];
            let mut touched = [(0usize, 0usize); LANES];
            let mut ntouched = 0usize;
            let inj = ctx.injector.is_some();
            let arr = &block.shared[si];
            let ty = arr.ty;
            let arr_len = arr.len as usize;
            let byte_offset = arr.byte_offset;
            for l in lanes(mask) {
                let li = lane_index(idx, l, name, &ik.name).map_err(|f| f.at_warp(wid))?;
                let i = check_index(name, li, arr_len, MemSpace::Shared, false, &ik.name, l)
                    .map_err(|f| f.at_warp(wid))?;
                let addr = byte_offset as u64 + i as u64 * 4;
                addrs[l] = Some(addr);
                bits[l] = arr.bits[i];
                if inj {
                    match ctx.inject(InjectSpace::Shared, addr) {
                        Some(Injection::BitFlip(b)) => bits[l] ^= 1 << b,
                        Some(Injection::Fault) => {
                            return Err(SimFault::new(
                                &ik.name,
                                FaultKind::Injected { space: InjectSpace::Shared, addr },
                            )
                            .at_warp(wid)
                            .at_lane(l)
                            .with_context(format!("load {name}[{li}]")))
                        }
                        None => {}
                    }
                }
                touched[ntouched] = (l, i);
                ntouched += 1;
            }
            if block.race.is_some() {
                for &(_, i) in &touched[..ntouched] {
                    block.track_shared(si, i, wid, false, ik)?;
                }
            }
            if ctx.race_armed() {
                let warp_base = w.warp_in_block * LANES as u32;
                for &(l, i) in &touched[..ntouched] {
                    ctx.race_access(
                        ik,
                        ArraySite::Shared(si as u32),
                        i as u64,
                        warp_base + l as u32,
                        false,
                        wid,
                    )?;
                }
            }
            w.builder.shared(&addrs, false);
            Ok(WVal::from_bits(ty, bits))
        }
        ArrayRef::Local(li_slot) => {
            let arr = &w.local[li_slot as usize];
            let name = ik.local[li_slot as usize].name.as_str();
            let mut offsets = [None; LANES];
            let mut bits = [0u32; LANES];
            let ty = arr.ty;
            let in_regs = arr.in_registers;
            let arr_len = arr.len as usize;
            let byte_offset = arr.byte_offset;
            let inj = ctx.injector.is_some();
            for l in lanes(mask) {
                let li = lane_index(idx, l, name, &ik.name).map_err(|f| f.at_warp(wid))?;
                let i = check_index(name, li, arr_len, MemSpace::Local, false, &ik.name, l)
                    .map_err(|f| f.at_warp(wid))?;
                let off = byte_offset + i as u32 * 4;
                offsets[l] = Some(off);
                bits[l] = arr.bits[i * LANES + l];
                // Register-file arrays are not memory: the injector skips
                // them.
                if inj && !in_regs {
                    match ctx.inject(InjectSpace::Local, off as u64) {
                        Some(Injection::BitFlip(b)) => bits[l] ^= 1 << b,
                        Some(Injection::Fault) => {
                            return Err(SimFault::new(
                                &ik.name,
                                FaultKind::Injected {
                                    space: InjectSpace::Local,
                                    addr: off as u64,
                                },
                            )
                            .at_warp(wid)
                            .at_lane(l)
                            .with_context(format!("load {name}[{li}]")))
                        }
                        None => {}
                    }
                }
            }
            if in_regs {
                w.builder.alu(1);
            } else {
                let layout = block.local_layout;
                w.builder.local(layout, wid, &offsets, false);
            }
            Ok(WVal::from_bits(ty, bits))
        }
        ArrayRef::Param(ai) => {
            let ai = ai as usize;
            let name = ik.array_params[ai].name.as_str();
            let binding = ctx.mem.binding(ai);
            let (ty, buf_len) = ctx.mem.buf_ty_len(ai);
            let mut addrs: LaneAddrs = [None; LANES];
            let mut bits = [0u32; LANES];
            let mut loaded = [(0usize, 0i64, 0u64); LANES];
            let mut nloaded = 0usize;
            // Hoist the memory-view dispatch out of the lane loop: on the
            // sequential (Direct) path every lane reads one borrowed buffer;
            // the journaling path keeps its per-lane bookkeeping.
            match &mut ctx.mem {
                GlobalMem::Direct(g) => {
                    let buf = &g.buffers[ai];
                    for l in lanes(mask) {
                        let li =
                            lane_index(idx, l, name, &ik.name).map_err(|f| f.at_warp(wid))?;
                        let i =
                            check_index(name, li, buf_len, binding.space, false, &ik.name, l)
                                .map_err(|f| f.at_warp(wid))?;
                        let addr = binding.base_addr + i as u64 * 4;
                        addrs[l] = Some(addr);
                        bits[l] = buf.read_bits(i);
                        loaded[nloaded] = (l, li, addr);
                        nloaded += 1;
                    }
                }
                mem @ GlobalMem::Logged(_) => {
                    for l in lanes(mask) {
                        let li =
                            lane_index(idx, l, name, &ik.name).map_err(|f| f.at_warp(wid))?;
                        let i =
                            check_index(name, li, buf_len, binding.space, false, &ik.name, l)
                                .map_err(|f| f.at_warp(wid))?;
                        let addr = binding.base_addr + i as u64 * 4;
                        addrs[l] = Some(addr);
                        bits[l] = mem.load_bits(ai, i);
                        loaded[nloaded] = (l, li, addr);
                        nloaded += 1;
                    }
                }
            }
            if ctx.race_armed() && binding.space == MemSpace::Global {
                let warp_base = w.warp_in_block * LANES as u32;
                for &(l, li, _) in &loaded[..nloaded] {
                    ctx.race_access(
                        ik,
                        ArraySite::GlobalParam(ai as u32),
                        li as u64,
                        warp_base + l as u32,
                        false,
                        wid,
                    )?;
                }
            }
            if ctx.injector.is_some() {
                for &(l, li, addr) in &loaded[..nloaded] {
                    match ctx.inject(InjectSpace::Global, addr) {
                        Some(Injection::BitFlip(b)) => bits[l] ^= 1 << b,
                        Some(Injection::Fault) => {
                            return Err(SimFault::new(
                                &ik.name,
                                FaultKind::Injected { space: InjectSpace::Global, addr },
                            )
                            .at_warp(wid)
                            .at_lane(l)
                            .with_context(format!("load {name}[{li}]")))
                        }
                        None => {}
                    }
                }
            }
            match binding.space {
                MemSpace::Global => w.builder.global(&addrs, 4, false),
                MemSpace::Texture => w.builder.tex(&addrs),
                MemSpace::Constant => w.builder.constant(&addrs),
                // Internal invariant: bind() only creates these three
                // spaces.
                _ => unreachable!(),
            }
            Ok(WVal::from_bits(ty, bits))
        }
        ArrayRef::Unknown(u) => Err(SimFault::new(
            &ik.name,
            FaultKind::UndeclaredName { name: ik.unknown_names[u as usize].clone() },
        )
        .at_warp(wid)
        .with_context("load from unknown array")),
    }
}

#[allow(clippy::too_many_arguments)]
fn store_array(
    aref: ArrayRef,
    idx: &WVal,
    val: &WVal,
    ik: &InternedKernel,
    w: &mut WarpCtx,
    block: &mut BlockCtx,
    ctx: &mut LaunchCtx,
    mask: Mask,
) -> Result<(), SimFault> {
    let wid = w.warp_global_id;
    match aref {
        ArrayRef::Shared(si) => {
            let si = si as usize;
            let name = ik.shared[si].name.as_str();
            let arr = &mut block.shared[si];
            if val.ty() != arr.ty {
                return Err(
                    ill_typed_store(&ik.name, "shared", name, arr.ty, val.ty()).at_warp(wid)
                );
            }
            let mut addrs: LaneAddrs = [None; LANES];
            let mut touched = [(0usize, 0usize); LANES];
            let mut ntouched = 0usize;
            let arr_len = arr.len as usize;
            for l in lanes(mask) {
                let li = lane_index(idx, l, name, &ik.name).map_err(|f| f.at_warp(wid))?;
                let i = check_index(name, li, arr_len, MemSpace::Shared, true, &ik.name, l)
                    .map_err(|f| f.at_warp(wid))?;
                addrs[l] = Some(arr.byte_offset as u64 + i as u64 * 4);
                arr.bits[i] = val.lane_bits(l);
                touched[ntouched] = (l, i);
                ntouched += 1;
            }
            if block.race.is_some() {
                for &(_, i) in &touched[..ntouched] {
                    block.track_shared(si, i, wid, true, ik)?;
                }
            }
            if ctx.race_armed() {
                let warp_base = w.warp_in_block * LANES as u32;
                for &(l, i) in &touched[..ntouched] {
                    ctx.race_access(
                        ik,
                        ArraySite::Shared(si as u32),
                        i as u64,
                        warp_base + l as u32,
                        true,
                        wid,
                    )?;
                }
            }
            w.builder.shared(&addrs, true);
            Ok(())
        }
        ArrayRef::Local(li_slot) => {
            let arr = &mut w.local[li_slot as usize];
            let name = ik.local[li_slot as usize].name.as_str();
            if val.ty() != arr.ty {
                return Err(
                    ill_typed_store(&ik.name, "local", name, arr.ty, val.ty()).at_warp(wid)
                );
            }
            let mut offsets = [None; LANES];
            let arr_len = arr.len as usize;
            for l in lanes(mask) {
                let li = lane_index(idx, l, name, &ik.name).map_err(|f| f.at_warp(wid))?;
                let i = check_index(name, li, arr_len, MemSpace::Local, true, &ik.name, l)
                    .map_err(|f| f.at_warp(wid))?;
                offsets[l] = Some(arr.byte_offset + i as u32 * 4);
                arr.bits[i * LANES + l] = val.lane_bits(l);
            }
            let in_regs = arr.in_registers;
            if in_regs {
                w.builder.alu(1);
            } else {
                let layout = block.local_layout;
                w.builder.local(layout, wid, &offsets, true);
            }
            Ok(())
        }
        ArrayRef::Param(ai) => {
            let ai = ai as usize;
            let name = ik.array_params[ai].name.as_str();
            let binding = ctx.mem.binding(ai);
            if binding.space != MemSpace::Global {
                return Err(SimFault::new(
                    &ik.name,
                    FaultKind::InvalidOperation {
                        detail: format!(
                            "stores are only legal to global memory ({name:?} is {:?})",
                            binding.space
                        ),
                    },
                )
                .at_warp(wid));
            }
            let (buf_ty, buf_len) = ctx.mem.buf_ty_len(ai);
            if val.ty() != buf_ty {
                return Err(
                    ill_typed_store(&ik.name, "global", name, buf_ty, val.ty()).at_warp(wid)
                );
            }
            let mut addrs: LaneAddrs = [None; LANES];
            let mut stored = [(0usize, 0usize); LANES];
            let mut nstored = 0usize;
            // Same dispatch hoist as the load path: Direct writes go
            // straight to one borrowed buffer, journaled writes keep their
            // per-lane step stamps.
            let step = ctx.step;
            match &mut ctx.mem {
                GlobalMem::Direct(g) => {
                    let buf = &mut g.buffers[ai];
                    for l in lanes(mask) {
                        let li =
                            lane_index(idx, l, name, &ik.name).map_err(|f| f.at_warp(wid))?;
                        let i =
                            check_index(name, li, buf_len, MemSpace::Global, true, &ik.name, l)
                                .map_err(|f| f.at_warp(wid))?;
                        addrs[l] = Some(binding.base_addr + i as u64 * 4);
                        buf.write_bits(i, val.lane_bits(l));
                        stored[nstored] = (l, i);
                        nstored += 1;
                    }
                }
                mem @ GlobalMem::Logged(_) => {
                    for l in lanes(mask) {
                        let li =
                            lane_index(idx, l, name, &ik.name).map_err(|f| f.at_warp(wid))?;
                        let i =
                            check_index(name, li, buf_len, MemSpace::Global, true, &ik.name, l)
                                .map_err(|f| f.at_warp(wid))?;
                        addrs[l] = Some(binding.base_addr + i as u64 * 4);
                        mem.store_bits(ai, i, val.lane_bits(l), step);
                        stored[nstored] = (l, i);
                        nstored += 1;
                    }
                }
            }
            if ctx.race_armed() {
                let warp_base = w.warp_in_block * LANES as u32;
                for &(l, i) in &stored[..nstored] {
                    ctx.race_access(
                        ik,
                        ArraySite::GlobalParam(ai as u32),
                        i as u64,
                        warp_base + l as u32,
                        true,
                        wid,
                    )?;
                }
            }
            w.builder.global(&addrs, 4, true);
            Ok(())
        }
        ArrayRef::Unknown(u) => Err(SimFault::new(
            &ik.name,
            FaultKind::UndeclaredName { name: ik.unknown_names[u as usize].clone() },
        )
        .at_warp(wid)
        .with_context("store to unknown array")),
    }
}

fn ill_typed_store(
    kernel_name: &str,
    space: &str,
    array: &str,
    expected: Scalar,
    got: Scalar,
) -> SimFault {
    SimFault::new(
        kernel_name,
        FaultKind::IllTyped {
            detail: format!(
                "store type mismatch into {space} {array:?}: array is {expected:?}, value is {got:?}"
            ),
        },
    )
}
