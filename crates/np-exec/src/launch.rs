//! Kernel launching: binds arguments, checks occupancy, streams block
//! traces from the interpreter into the timing engine, and packages the
//! result.
//!
//! ## Parallel per-block interpretation
//!
//! Thread blocks of one kernel launch are independent except for global
//! memory, and the CUDA-NP transform never introduces inter-block
//! communication — so functional interpretation (the hot path) can fan
//! out across host threads. Each worker runs whole blocks against an
//! immutable snapshot of global memory, journaling its stores instead of
//! applying them; the main thread then *merges in block order*, which
//! keeps every observable byte — output buffers, golden counters, race
//! reports, chrome traces — identical to a sequential run:
//!
//! * a block that read an element some earlier block wrote (cross-block
//!   read-after-write, possible only for arrays the kernel both loads and
//!   stores) invalidates the snapshot run; the launch falls back to plain
//!   sequential interpretation from the untouched pre-launch state;
//! * the watchdog budget is a whole-launch bound, so each worker runs
//!   with the full budget and the merge re-cuts: a block whose step count
//!   exceeds the budget remaining *at its sequential position* becomes a
//!   watchdog fault, and its journaled stores are applied only up to the
//!   cut;
//! * a real fault in block `b` stops the merge exactly where a sequential
//!   run would have stopped: earlier blocks' stores land, later blocks'
//!   never ran as far as the caller can tell;
//! * happens-before race events are journaled with block-local step
//!   numbers and replayed into one recorder in block order, rebased by
//!   the cumulative step count — reproducing sequential `pc` values.
//!
//! Fault injection (one seeded counter across blocks) and
//! [`RaceCheckMode::Fatal`] (mid-launch abort at an exact global step)
//! are inherently sequential and force the fallback path.

use crate::fault::{FaultKind, SimFault};
use crate::interp::{
    bit_set, bitmaps_intersect, run_block, BlockLog, LaunchCtx, RaceEvent, StoreRec,
};
use crate::machine::{Args, ExecError, GlobalState};
use crate::resources::estimate_resources;
use np_gpu_sim::capture::{CapturedLaunch, CapturedRaceMode};
use np_gpu_sim::config::DeviceConfig;
use np_gpu_sim::engine::simulate_blocks;
use np_gpu_sim::mem::inject::InjectConfig;
use np_gpu_sim::occupancy::{occupancy, KernelResources, Occupancy};
use np_gpu_sim::profile::ProfileReport;
use np_gpu_sim::racecheck::{RaceCheckOptions, RaceRecorder, RaceReport};
use np_gpu_sim::replay::ReplayError;
use np_gpu_sim::stats::TimingReport;
use np_gpu_sim::trace::BlockTrace;
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::slots::InternedKernel;
use np_kernel_ir::types::Dim3;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Monotone count of functional kernel interpretations this process has
/// performed (one per [`launch`] or [`capture_launch`]; replays do not
/// count). Tests use deltas of this to assert "interpret once, replay
/// many" — e.g. that a tuner sweep interprets each transformed kernel
/// exactly once.
static INTERPRETATIONS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide interpretation counter.
pub fn interpretation_count() -> u64 {
    INTERPRETATIONS.load(Ordering::SeqCst)
}

/// Default watchdog budget: far above anything a legitimate workload
/// interprets, yet reached within seconds by a runaway empty loop.
pub const DEFAULT_WATCHDOG_STEPS: u64 = 1 << 28;

/// A wall-clock bound on one launch. Unlike the watchdog's deterministic
/// step budget this depends on host speed and load: it exists so a serving
/// layer can promise "a stuck worker frees itself within the request's
/// deadline" regardless of how expensive a step happens to be. Expiry
/// surfaces as [`FaultKind::Deadline`], which
/// [`FaultKind::transient`] classifies as retryable.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineSpec {
    /// Absolute expiry instant.
    pub at: std::time::Instant,
    /// The budget the deadline was derived from (carried into the fault so
    /// clients see what they asked for, not what remained at admission).
    pub budget_ms: u64,
}

impl DeadlineSpec {
    /// A deadline `budget_ms` milliseconds from now.
    pub fn in_ms(budget_ms: u64) -> Self {
        DeadlineSpec {
            at: std::time::Instant::now() + std::time::Duration::from_millis(budget_ms),
            budget_ms,
        }
    }

    /// Already past?
    pub fn expired(&self) -> bool {
        std::time::Instant::now() >= self.at
    }
}

/// How the happens-before race checker runs for one launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RaceCheckMode {
    /// Not armed; `KernelReport::race` comes back with `checked == false`.
    #[default]
    Off,
    /// Record every finding into `KernelReport::race`; the launch itself
    /// still succeeds.
    Record,
    /// The first finding aborts the launch with
    /// [`crate::FaultKind::RaceDetected`].
    Fatal,
}

/// Simulation options for one launch.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Simulate at most this many thread blocks and scale cycles linearly
    /// to the full grid (wave sampling). Functional output is then only
    /// produced for the simulated blocks — use full simulation whenever the
    /// numerical result matters.
    pub max_blocks: Option<u64>,
    /// Override the estimated per-thread/per-block resources (used by
    /// benchmark specs that pin Table-1 baseline numbers).
    pub resources_override: Option<KernelResources>,
    /// Fault on shared-memory data races (two different warps touching the
    /// same word between barriers with at least one write). Off by default;
    /// handy when debugging hand-written or transformed kernels.
    pub detect_races: bool,
    /// Watchdog: fault with [`crate::FaultKind::Watchdog`] once the launch
    /// has interpreted this many steps. `None` disables the watchdog
    /// entirely; the default budget is [`DEFAULT_WATCHDOG_STEPS`].
    pub watchdog_steps: Option<u64>,
    /// Wall-clock deadline for the whole launch. Checked every
    /// [`DEADLINE_CHECK_MASK`]+1 interpreted steps; expiry faults with
    /// [`FaultKind::Deadline`]. Arming a deadline forces the sequential
    /// interpretation path (a wall-clock cut has no deterministic
    /// per-block merge position). `None` (the default) disables it.
    pub deadline: Option<DeadlineSpec>,
    /// Seeded memory fault injection (bit flips and forced faults); see
    /// [`np_gpu_sim::mem::inject`]. Off by default.
    pub fault_injection: Option<InjectConfig>,
    /// The thread-granular happens-before race checker (shared + global
    /// spaces, barrier epochs). Independent of the older warp-granular
    /// `detect_races` fast path. Off by default.
    pub check_races: RaceCheckMode,
    /// Finding cap and master/slave gating policy for the race checker.
    pub race_options: RaceCheckOptions,
    /// Host threads for per-block functional interpretation. `None` (the
    /// default) uses `min(available_parallelism, simulated blocks)`;
    /// `Some(1)` forces the sequential path. Purely a host-side throughput
    /// knob: every observable byte of the report is identical either way.
    pub interp_threads: Option<usize>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_blocks: None,
            resources_override: None,
            detect_races: false,
            watchdog_steps: Some(DEFAULT_WATCHDOG_STEPS),
            deadline: None,
            fault_injection: None,
            check_races: RaceCheckMode::Off,
            race_options: RaceCheckOptions::default(),
            interp_threads: None,
        }
    }
}

impl SimOptions {
    /// Full simulation, derived resources.
    pub fn full() -> Self {
        SimOptions::default()
    }

    /// Sampled simulation of at most `n` blocks.
    pub fn sampled(n: u64) -> Self {
        SimOptions { max_blocks: Some(n), ..Default::default() }
    }

    /// Full simulation with the shared-memory race detector armed.
    pub fn checked() -> Self {
        SimOptions { detect_races: true, ..Default::default() }
    }

    /// Replace the watchdog step budget (`None` disables it).
    pub fn with_watchdog(mut self, steps: Option<u64>) -> Self {
        self.watchdog_steps = steps;
        self
    }

    /// Arm a wall-clock deadline (`None` disarms).
    pub fn with_deadline(mut self, deadline: Option<DeadlineSpec>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Arm a wall-clock deadline `budget_ms` milliseconds from now.
    pub fn with_deadline_ms(self, budget_ms: u64) -> Self {
        self.with_deadline(Some(DeadlineSpec::in_ms(budget_ms)))
    }

    /// Arm seeded memory fault injection.
    pub fn with_injection(mut self, cfg: InjectConfig) -> Self {
        self.fault_injection = Some(cfg);
        self
    }

    /// Arm the happens-before race checker in the given mode.
    pub fn with_race_check(mut self, mode: RaceCheckMode) -> Self {
        self.check_races = mode;
        self
    }

    /// Set the race checker's finding cap / gating policy.
    pub fn with_race_options(mut self, opts: RaceCheckOptions) -> Self {
        self.race_options = opts;
        self
    }

    /// Full simulation with the happens-before checker recording findings.
    pub fn race_checked() -> Self {
        SimOptions::default().with_race_check(RaceCheckMode::Record)
    }

    /// Pin the interpreter worker-pool size (`Some(1)` forces the
    /// sequential path, `None` restores the automatic choice).
    pub fn with_interp_threads(mut self, n: Option<usize>) -> Self {
        self.interp_threads = n;
        self
    }
}

/// Everything a launch produces besides the functional output (which lands
/// back in the [`Args`] buffers).
#[derive(Debug, Clone)]
pub struct KernelReport {
    pub kernel_name: String,
    pub timing: TimingReport,
    pub occupancy: Occupancy,
    pub resources: KernelResources,
    /// Deterministic per-launch hardware counters, exact for every simulated
    /// block (never scaled by wave sampling).
    pub profile: ProfileReport,
    /// Happens-before race findings (`checked == false` when the launch ran
    /// with [`RaceCheckMode::Off`]).
    pub race: RaceReport,
    /// Total cycles (same as `timing.cycles`, hoisted for convenience).
    pub cycles: u64,
    /// Wall time at the device clock.
    pub time_us: f64,
}

impl KernelReport {
    /// Effective global-memory bandwidth achieved in GB/s.
    pub fn bandwidth_gbps(&self, dev: &DeviceConfig) -> f64 {
        let bytes = if self.timing.is_sampled() && self.timing.blocks_simulated > 0 {
            // Scale sampled traffic up to the full grid. The simulated-block
            // guard matters: an empty sample (blocks_simulated == 0 with a
            // nonzero grid) would otherwise multiply the already-total byte
            // count by blocks_total — double counting.
            self.timing.global_bytes as f64 * self.timing.blocks_total as f64
                / self.timing.blocks_simulated as f64
        } else {
            self.timing.global_bytes as f64
        };
        dev.bandwidth_gbps(bytes as u64, self.cycles)
    }

    /// Chrome-trace (about://tracing) export: the profile counter events
    /// plus one duration-event track per SMX from the timeline flight
    /// recorder (`tid` "smx N", `ts`/`dur` in cycles).
    pub fn chrome_trace(&self) -> String {
        let s = self.profile.to_chrome_trace(&self.kernel_name);
        let tl = self.timing.timeline.chrome_trace_events(&self.kernel_name);
        if tl.is_empty() {
            return s;
        }
        let base = s.strip_suffix("\n]").unwrap_or(&s);
        let sep = if base == "[" { "\n" } else { ",\n" };
        format!("{base}{sep}{tl}\n]")
    }
}

/// Tag the current obs scope with the device every simulation entry point
/// ran on: name plus descriptor digest, so a log reader can join spans
/// against the exact parameter set (not just the marketing name).
fn device_event(dev: &DeviceConfig) {
    np_obs::event(
        np_obs::Level::Debug,
        "exec.device",
        vec![
            np_obs::kv("device", dev.name.as_str()),
            np_obs::kv("device_digest", dev.digest_hex()),
        ],
    );
}

/// Launch `kernel` over `grid` blocks on `dev`. The kernel's own
/// `block_dim` supplies the block shape. Buffers move out of `args` during
/// execution and are returned (with stores applied) on completion.
///
/// Kernel contract violations (out-of-bounds accesses, races under
/// `detect_races`, divergent barriers, watchdog timeouts, injected faults)
/// never panic: they return [`ExecError::Fault`]. Buffers are returned to
/// `args` even on a fault, holding whatever partial stores preceded it.
pub fn launch(
    dev: &DeviceConfig,
    kernel: &Kernel,
    grid: Dim3,
    args: &mut Args,
    opts: &SimOptions,
) -> Result<KernelReport, ExecError> {
    let _obs = np_obs::span("exec.launch");
    device_event(dev);
    let (run, resources, occ) = interpret_launch(dev, kernel, grid, args, opts)?;
    let timing = {
        let _t = np_obs::span("exec.timing");
        simulate_blocks(dev, &occ, run.traces, grid.count())
    };
    Ok(KernelReport {
        kernel_name: kernel.name.clone(),
        cycles: timing.cycles,
        time_us: dev.cycles_to_us(timing.cycles),
        timing,
        occupancy: occ,
        resources,
        profile: run.profile,
        race: run.race,
    })
}

/// Run `kernel` once and freeze its interpretation into a replayable
/// [`CapturedLaunch`] alongside the usual report. The report is built *by
/// replaying the capture*, so `capture_launch` + [`replay_launch`] is
/// byte-identical to [`launch`] by construction on the capture side, and
/// the equivalence suites gate the launch side.
///
/// Faulting launches return `Err` and produce no artifact (the fault is
/// the outcome; buffers still come back with partial stores applied, as
/// with [`launch`]).
pub fn capture_launch(
    dev: &DeviceConfig,
    kernel: &Kernel,
    grid: Dim3,
    args: &mut Args,
    opts: &SimOptions,
) -> Result<(KernelReport, CapturedLaunch), ExecError> {
    let _obs = np_obs::span("exec.capture");
    device_event(dev);
    let (run, resources, _occ) = interpret_launch(dev, kernel, grid, args, opts)?;
    let total_blocks = grid.count();
    let sim_blocks = run.traces.len() as u64;
    let cap = CapturedLaunch {
        kernel_name: kernel.name.clone(),
        grid: [grid.x, grid.y, grid.z],
        block_dim: [kernel.block_dim.x, kernel.block_dim.y, kernel.block_dim.z],
        total_blocks,
        sim_blocks,
        max_blocks: opts.max_blocks,
        txn_bytes: dev.txn_bytes,
        l1_line: dev.l1_line,
        resources,
        detect_races: opts.detect_races,
        race_mode: captured_race_mode(opts.check_races),
        total_steps: run.steps,
        race: run.race,
        blocks: run.traces,
    };
    let replayed = {
        let _r = np_obs::span("exec.replay");
        np_gpu_sim::replay::replay(dev, &cap).map_err(ExecError::Replay)?
    };
    let report = KernelReport {
        kernel_name: cap.kernel_name.clone(),
        cycles: replayed.timing.cycles,
        time_us: dev.cycles_to_us(replayed.timing.cycles),
        timing: replayed.timing,
        occupancy: replayed.occupancy,
        resources,
        profile: replayed.profile,
        race: cap.race.clone(),
    };
    Ok((report, cap))
}

/// Re-time a capture under `opts` without re-interpreting. The
/// interpretation-affecting options must match what the capture ran under
/// — sampling, race-checker arming, the shared-memory detector, resource
/// overrides — otherwise replay is rejected with a typed
/// [`ExecError::Replay`]: a sampled capture can never be replayed as if
/// full, and a race-unchecked capture can never impersonate a checked run.
/// The watchdog budget *may* differ: the capture records its total
/// interpreted steps, so any budget's verdict is reproduced exactly
/// (over-budget captures fault with [`FaultKind::Watchdog`], as a direct
/// run would). Wall-clock deadlines are ignored — replay performs no
/// interpretation steps for one to expire at.
pub fn replay_launch(
    dev: &DeviceConfig,
    cap: &CapturedLaunch,
    opts: &SimOptions,
) -> Result<KernelReport, ExecError> {
    if opts.fault_injection.is_some() {
        return Err(ExecError::Replay(ReplayError::NeedsInterpretation {
            what: "fault injection",
        }));
    }
    if opts.max_blocks != cap.max_blocks {
        return Err(ExecError::Replay(ReplayError::SamplingMismatch {
            captured: cap.max_blocks,
            requested: opts.max_blocks,
        }));
    }
    let requested_mode = captured_race_mode(opts.check_races);
    if requested_mode != cap.race_mode {
        return Err(ExecError::Replay(ReplayError::RaceConfigMismatch {
            captured: race_mode_tag(cap.race_mode),
            requested: race_mode_tag(requested_mode),
        }));
    }
    if opts.detect_races != cap.detect_races {
        return Err(ExecError::Replay(ReplayError::RaceConfigMismatch {
            captured: if cap.detect_races { "shared-detector" } else { "off" },
            requested: if opts.detect_races { "shared-detector" } else { "off" },
        }));
    }
    if let Some(r) = opts.resources_override {
        if r != cap.resources {
            return Err(ExecError::Replay(ReplayError::NeedsInterpretation {
                what: "a different resources override",
            }));
        }
    }
    if let Some(limit) = opts.watchdog_steps {
        if cap.total_steps > limit {
            return Err(SimFault::new(&cap.kernel_name, FaultKind::Watchdog { limit }).into());
        }
    }
    let _obs = np_obs::span("exec.replay");
    device_event(dev);
    let replayed = np_gpu_sim::replay::replay(dev, cap).map_err(ExecError::Replay)?;
    Ok(KernelReport {
        kernel_name: cap.kernel_name.clone(),
        cycles: replayed.timing.cycles,
        time_us: dev.cycles_to_us(replayed.timing.cycles),
        timing: replayed.timing,
        occupancy: replayed.occupancy,
        resources: cap.resources,
        profile: replayed.profile,
        race: cap.race.clone(),
    })
}

fn captured_race_mode(m: RaceCheckMode) -> CapturedRaceMode {
    match m {
        RaceCheckMode::Off => CapturedRaceMode::Off,
        RaceCheckMode::Record => CapturedRaceMode::Record,
        RaceCheckMode::Fatal => CapturedRaceMode::Fatal,
    }
}

fn race_mode_tag(m: CapturedRaceMode) -> &'static str {
    match m {
        CapturedRaceMode::Off => "off",
        CapturedRaceMode::Record => "record",
        CapturedRaceMode::Fatal => "fatal",
    }
}

/// Shared front half of [`launch`] and [`capture_launch`]: bind, intern,
/// interpret (parallel when possible), unbind — everything up to but not
/// including the timing engine. Counts one interpretation on the probe.
fn interpret_launch(
    dev: &DeviceConfig,
    kernel: &Kernel,
    grid: Dim3,
    args: &mut Args,
    opts: &SimOptions,
) -> Result<(InterpRun, KernelResources, Occupancy), ExecError> {
    let resources = opts
        .resources_override
        .unwrap_or_else(|| estimate_resources(kernel, dev.max_registers_per_thread));
    let occ = occupancy(dev, &resources).map_err(|e| ExecError::Launch(e.to_string()))?;

    let mut globals = GlobalState::bind(kernel, args)?;

    // All name resolution happens once, here: the interpreter itself works
    // over dense slot indices.
    let ik = InternedKernel::from_kernel(kernel);

    let total_blocks = grid.count();
    let sim_blocks = opts.max_blocks.map_or(total_blocks, |m| m.min(total_blocks)).max(
        if total_blocks == 0 { 0 } else { 1 },
    );
    let warps_per_block = kernel.block_dim.count().div_ceil(32);
    let local_per_thread = resources.local_per_thread;

    let pool = opts
        .interp_threads
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .min(sim_blocks.max(1) as usize)
        .max(1);
    let can_parallel = pool > 1
        && sim_blocks > 1
        && opts.fault_injection.is_none()
        && opts.deadline.is_none()
        && opts.check_races != RaceCheckMode::Fatal;

    let env = RunEnv {
        dev,
        ik: &ik,
        grid,
        sim_blocks,
        warps_per_block,
        local_per_thread,
        opts,
    };
    INTERPRETATIONS.fetch_add(1, Ordering::SeqCst);
    let run = {
        let _i = np_obs::span("exec.interpret");
        let run = if can_parallel { interpret_parallel(&env, &mut globals, pool) } else { None };
        match run {
            Some(r) => r,
            None => interpret_sequential(&env, &mut globals),
        }
    };
    if run.race.checked {
        np_obs::event(
            np_obs::Level::Debug,
            "exec.race",
            vec![
                np_obs::kv("blocks_checked", run.race.blocks_checked),
                np_obs::kv("findings", run.race.findings.len() as u64),
            ],
        );
    }

    // Return buffers even on a fault so callers keep their data (holding
    // whatever partial stores completed before the violation).
    globals.unbind(args);
    if let Some(f) = run.fault {
        return Err(f.into());
    }
    Ok((run, resources, occ))
}

/// Per-launch invariants shared by both interpretation strategies.
struct RunEnv<'a> {
    dev: &'a DeviceConfig,
    ik: &'a InternedKernel,
    grid: Dim3,
    sim_blocks: u64,
    warps_per_block: u64,
    local_per_thread: u32,
    opts: &'a SimOptions,
}

impl RunEnv<'_> {
    fn block_idx(&self, bx: u64) -> (u32, u32) {
        ((bx % self.grid.x as u64) as u32, (bx / self.grid.x as u64) as u32)
    }
}

/// What interpretation produces: the materialized block traces, race
/// report, profile, interpreted step total, and the first fault (which,
/// when present, makes the caller discard the rest). Timing is *not* here
/// — the caller hands `traces` to the engine (or freezes them into a
/// [`CapturedLaunch`] and replays later; both roads lead to
/// [`simulate_blocks`]).
struct InterpRun {
    traces: Vec<BlockTrace>,
    race: RaceReport,
    profile: ProfileReport,
    fault: Option<SimFault>,
    steps: u64,
}

/// The classic path: one launch-scoped context, blocks interpreted in
/// order.
fn interpret_sequential(env: &RunEnv, globals: &mut GlobalState) -> InterpRun {
    let opts = env.opts;
    let mut fault: Option<SimFault> = None;
    let mut profile = ProfileReport::default();
    let mut traces: Vec<BlockTrace> = Vec::with_capacity(env.sim_blocks as usize);
    let recorder = match opts.check_races {
        RaceCheckMode::Off => None,
        RaceCheckMode::Record => Some((RaceRecorder::new(opts.race_options.clone()), false)),
        RaceCheckMode::Fatal => Some((RaceRecorder::new(opts.race_options.clone()), true)),
    };
    let mut ctx = LaunchCtx::new(
        globals,
        opts.watchdog_steps,
        opts.deadline,
        opts.fault_injection.clone(),
        recorder,
    );
    for bx in 0..env.sim_blocks {
        match run_block(
            env.ik,
            env.dev,
            &mut ctx,
            env.block_idx(bx),
            env.grid,
            bx * env.warps_per_block,
            env.local_per_thread,
            opts.detect_races,
        ) {
            Ok(trace) => {
                profile.record_block(&trace);
                traces.push(trace);
            }
            Err(f) => {
                fault = Some(f);
                break;
            }
        }
    }
    let steps = ctx.steps();
    let race = ctx.take_race().map(|rec| rec.finish()).unwrap_or_default();
    InterpRun { traces, race, profile, fault, steps }
}

/// One worker's result for one block: the trace (when the block ran to
/// completion) and the store/race journal either way.
enum Outcome {
    Ok(BlockTrace, BlockLog),
    Fault(SimFault, BlockLog),
}

/// Fan blocks out across `pool` worker threads against an immutable
/// snapshot of `globals`, then merge in block order. Returns `None` when a
/// cross-block read-after-write invalidates the snapshot run — `globals`
/// is untouched in that case, so the caller reruns sequentially from the
/// pristine pre-launch state.
fn interpret_parallel(env: &RunEnv, globals: &mut GlobalState, pool: usize) -> Option<InterpRun> {
    let opts = env.opts;
    let ik = env.ik;
    let rw: Vec<bool> = ik.array_params.iter().map(|p| p.loaded && p.stored).collect();
    let log_races = opts.check_races == RaceCheckMode::Record;
    let sim_blocks = env.sim_blocks;

    let next = AtomicU64::new(0);
    // Lowest faulting block index seen so far: no sequential run ever gets
    // past it, so workers stop claiming blocks beyond it.
    let fault_floor = AtomicU64::new(u64::MAX);
    let results: Vec<Mutex<Option<Outcome>>> =
        (0..sim_blocks).map(|_| Mutex::new(None)).collect();
    {
        let base: &GlobalState = globals;
        std::thread::scope(|s| {
            for _ in 0..pool {
                s.spawn(|| loop {
                    let bx = next.fetch_add(1, Ordering::Relaxed);
                    if bx >= sim_blocks || bx > fault_floor.load(Ordering::Relaxed) {
                        break;
                    }
                    let mut ctx =
                        LaunchCtx::new_logged(base, &rw, opts.watchdog_steps, log_races);
                    let r = run_block(
                        ik,
                        env.dev,
                        &mut ctx,
                        env.block_idx(bx),
                        env.grid,
                        bx * env.warps_per_block,
                        env.local_per_thread,
                        opts.detect_races,
                    );
                    let log = ctx.finish_logged();
                    let outcome = match r {
                        Ok(trace) => Outcome::Ok(trace, log),
                        Err(f) => {
                            fault_floor.fetch_min(bx, Ordering::Relaxed);
                            Outcome::Fault(f, log)
                        }
                    };
                    *results[bx as usize].lock().expect("worker slot lock") = Some(outcome);
                });
            }
        });
    }

    // Ordered merge: each block's journal is validated, cut, and applied
    // exactly as a sequential run would have executed it.
    let limit = opts.watchdog_steps;
    let n_arrays = globals.buffers.len();
    let mut written_so_far: Vec<Vec<u64>> = vec![Vec::new(); n_arrays];
    let mut cum_steps: u64 = 0;
    let mut fault: Option<SimFault> = None;
    let mut traces: Vec<BlockTrace> = Vec::with_capacity(sim_blocks as usize);
    let mut logs: Vec<BlockLog> = Vec::with_capacity(sim_blocks as usize);
    for bx in 0..sim_blocks {
        let outcome = results[bx as usize]
            .lock()
            .expect("merge slot lock")
            .take()
            .expect("every block before the first fault was executed");
        let (trace, log, wfault) = match outcome {
            Outcome::Ok(t, l) => (Some(t), l, None),
            Outcome::Fault(f, l) => (None, l, Some(f)),
        };
        // A block that read an element some earlier block wrote saw a
        // stale snapshot: nothing in its journal can be trusted.
        for (ai, reads) in log.reads_before_write.iter().enumerate() {
            if !reads.is_empty() && bitmaps_intersect(reads, &written_so_far[ai]) {
                return None;
            }
        }
        // Re-cut the whole-launch watchdog budget at this block's
        // sequential position: the worker ran with the full budget.
        let t_avail = limit.map(|l| l.saturating_sub(cum_steps));
        if t_avail.is_some_and(|t| log.steps > t) {
            apply_stores(globals, &log.stores, t_avail);
            fault = Some(SimFault::new(
                &ik.name,
                FaultKind::Watchdog { limit: limit.expect("t_avail implies a limit") },
            ));
            break;
        }
        apply_stores(globals, &log.stores, None);
        if let Some(f) = wfault {
            fault = Some(f);
            break;
        }
        for s in &log.stores {
            if rw[s.arr as usize] {
                let len = globals.buffers[s.arr as usize].len();
                bit_set(&mut written_so_far[s.arr as usize], s.idx as usize, len);
            }
        }
        traces.push(trace.expect("fault-free outcome carries a trace"));
        logs.push(log);
        cum_steps += logs.last().expect("just pushed").steps;
    }

    let mut profile = ProfileReport::default();
    for t in &traces {
        profile.record_block(t);
    }

    // Replay journaled race events in block order on one recorder,
    // rebasing block-local steps to the cumulative launch step — the same
    // `pc` values sequential recording would have produced. (On a fault
    // the launch returns `Err` and the report is discarded, so replay is
    // skipped.)
    let race = if log_races && fault.is_none() {
        let mut rec = RaceRecorder::new(opts.race_options.clone());
        let n_threads = ik.block_dim.count() as u32;
        let mut base_step: u64 = 0;
        for (bx, log) in logs.iter().enumerate() {
            let (bix, biy) = env.block_idx(bx as u64);
            let block_linear = biy as u64 * env.grid.x as u64 + bix as u64;
            rec.begin_block(block_linear, n_threads);
            for ev in &log.race_events {
                match *ev {
                    RaceEvent::Access { site, index, thread, write, step } => {
                        rec.record_access(
                            site.space(),
                            site.name(ik),
                            index,
                            thread,
                            write,
                            base_step + step,
                        );
                    }
                    RaceEvent::Barrier { step } => rec.barrier_all(base_step + step),
                }
            }
            rec.end_block();
            base_step += log.steps;
        }
        rec.finish()
    } else {
        RaceReport::default()
    };

    Some(InterpRun { traces, race, profile, fault, steps: cum_steps })
}

/// Apply a block's journaled stores to the real buffers, optionally cut at
/// a watchdog step boundary (journal entries are step-ordered).
fn apply_stores(globals: &mut GlobalState, stores: &[StoreRec], cut: Option<u64>) {
    for s in stores {
        if cut.is_some_and(|c| s.step > c) {
            break;
        }
        globals.buffers[s.arr as usize].write_bits(s.idx as usize, s.bits);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // indexed loops mirror kernel code
mod tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::KernelBuilder;

    /// Vector add: out[i] = a[i] + b[i].
    fn vecadd_kernel() -> Kernel {
        let mut b = KernelBuilder::new("vecadd", 64);
        b.param_global_f32("a");
        b.param_global_f32("b");
        b.param_global_f32("out");
        b.decl_i32("t", tidx() + bidx() * bdimx());
        b.store("out", v("t"), load("a", v("t")) + load("b", v("t")));
        b.finish()
    }

    #[test]
    fn vecadd_computes_correctly() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let n = 256usize;
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        let mut args = Args::new()
            .buf_f32("a", a)
            .buf_f32("b", b)
            .buf_f32("out", vec![0.0; n]);
        let rep =
            launch(&dev, &k, Dim3::x1(4), &mut args, &SimOptions::full()).unwrap();
        let out = args.get_f32("out").unwrap();
        for i in 0..n {
            assert_eq!(out[i], 3.0 * i as f32);
        }
        assert!(rep.cycles > 0);
        assert_eq!(rep.timing.blocks_simulated, 4);
    }

    #[test]
    fn missing_buffer_is_a_setup_error() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let mut args = Args::new();
        assert!(launch(&dev, &k, Dim3::x1(1), &mut args, &SimOptions::full()).is_err());
    }

    #[test]
    fn sampling_reduces_simulated_blocks_but_scales_cycles() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let n = 64 * 64;
        let mk_args = || {
            Args::new()
                .buf_f32("a", vec![1.0; n])
                .buf_f32("b", vec![1.0; n])
                .buf_f32("out", vec![0.0; n])
        };
        let mut full_args = mk_args();
        let full =
            launch(&dev, &k, Dim3::x1(64), &mut full_args, &SimOptions::full()).unwrap();
        let mut s_args = mk_args();
        let sampled =
            launch(&dev, &k, Dim3::x1(64), &mut s_args, &SimOptions::sampled(16)).unwrap();
        assert_eq!(sampled.timing.blocks_simulated, 16);
        assert!(sampled.timing.is_sampled());
        let ratio = sampled.cycles as f64 / full.cycles as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "sampled estimate should be in the ballpark: {ratio}"
        );
    }

    #[test]
    fn divergent_if_executes_both_paths() {
        let dev = DeviceConfig::small_test();
        let mut b = KernelBuilder::new("div", 32);
        b.param_global_f32("out");
        b.decl_i32("t", tidx());
        b.if_else(
            lt(v("t"), i(16)),
            |b| b.store("out", v("t"), f(1.0)),
            |b| b.store("out", v("t"), f(2.0)),
        );
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
        launch(&dev, &k, Dim3::x1(1), &mut args, &SimOptions::full()).unwrap();
        let out = args.get_f32("out").unwrap();
        for i in 0..32 {
            assert_eq!(out[i], if i < 16 { 1.0 } else { 2.0 });
        }
    }

    #[test]
    fn loop_with_runtime_bound_works() {
        let dev = DeviceConfig::small_test();
        let mut b = KernelBuilder::new("sumk", 32);
        b.param_global_f32("out");
        b.param_scalar_i32("n");
        b.decl_f32("acc", f(0.0));
        b.for_loop("i", i(0), p("n"), |b| {
            b.assign("acc", v("acc") + f(1.0));
        });
        b.store("out", tidx(), v("acc"));
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 32]).i32("n", 17);
        launch(&dev, &k, Dim3::x1(1), &mut args, &SimOptions::full()).unwrap();
        assert!(args.get_f32("out").unwrap().iter().all(|&x| x == 17.0));
    }

    #[test]
    fn shared_memory_and_barrier_communicate_across_warps() {
        let dev = DeviceConfig::small_test();
        // Warp 1 reads what warp 0 wrote, through shared memory + barrier,
        // in reverse order.
        let mut b = KernelBuilder::new("smem", 64);
        b.param_global_f32("out");
        b.shared_array("tile", np_kernel_ir::Scalar::F32, 64);
        b.decl_i32("t", tidx());
        b.store("tile", v("t"), cast(np_kernel_ir::Scalar::F32, v("t")));
        b.sync();
        b.store("out", v("t"), load("tile", i(63) - v("t")));
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
        launch(&dev, &k, Dim3::x1(1), &mut args, &SimOptions::full()).unwrap();
        let out = args.get_f32("out").unwrap();
        for i in 0..64 {
            assert_eq!(out[i], (63 - i) as f32);
        }
    }

    #[test]
    fn local_array_round_trips_per_thread() {
        let dev = DeviceConfig::small_test();
        let mut b = KernelBuilder::new("locals", 32);
        b.param_global_f32("out");
        b.local_array("buf", np_kernel_ir::Scalar::F32, 8);
        b.decl_i32("t", tidx());
        b.for_loop("i", i(0), i(8), |b| {
            b.store("buf", v("i"), cast(np_kernel_ir::Scalar::F32, v("t") * i(10) + v("i")));
        });
        b.decl_f32("acc", f(0.0));
        b.for_loop("i", i(0), i(8), |b| {
            b.assign("acc", v("acc") + load("buf", v("i")));
        });
        b.store("out", v("t"), v("acc"));
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
        launch(&dev, &k, Dim3::x1(1), &mut args, &SimOptions::full()).unwrap();
        let out = args.get_f32("out").unwrap();
        for t in 0..32 {
            // sum over i of (t*10 + i) = 80 t + 28
            assert_eq!(out[t], (80 * t + 28) as f32);
        }
    }

    #[test]
    fn shfl_broadcast_from_lane_zero() {
        let dev = DeviceConfig::small_test();
        let mut b = KernelBuilder::new("shflk", 32);
        b.param_global_f32("out");
        b.decl_f32("x", cast(np_kernel_ir::Scalar::F32, tidx()));
        // Broadcast lane 0's value within groups of 8.
        b.assign("x", shfl(v("x"), i(0), 8));
        b.store("out", tidx(), v("x"));
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
        launch(&dev, &k, Dim3::x1(1), &mut args, &SimOptions::full()).unwrap();
        let out = args.get_f32("out").unwrap();
        for t in 0..32 {
            assert_eq!(out[t], ((t / 8) * 8) as f32, "lane {t}");
        }
    }

    #[test]
    fn out_of_bounds_access_faults_with_context() {
        use crate::fault::FaultKind;
        use np_kernel_ir::types::MemSpace;
        let dev = DeviceConfig::small_test();
        let mut b = KernelBuilder::new("oob", 32);
        b.param_global_f32("out");
        b.store("out", tidx() + i(100), f(1.0));
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
        let err = launch(&dev, &k, Dim3::x1(1), &mut args, &SimOptions::full()).unwrap_err();
        let ExecError::Fault(fault) = err else { panic!("expected a fault, got {err:?}") };
        assert_eq!(fault.kernel, "oob");
        assert_eq!(fault.warp, Some(0));
        assert_eq!(fault.lane, Some(0), "lane 0 is the first out of bounds");
        match fault.kind {
            FaultKind::OutOfBounds { space, ref array, index, len, write } => {
                assert_eq!(space, MemSpace::Global);
                assert_eq!(array, "out");
                assert_eq!(index, 100);
                assert_eq!(len, 32);
                assert!(write);
            }
            ref other => panic!("expected OutOfBounds, got {other:?}"),
        }
        // Buffers come back even after a fault.
        assert_eq!(args.get_f32("out").unwrap().len(), 32);
    }

    #[test]
    fn bandwidth_does_not_double_count_with_empty_sample() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let n = 256usize;
        let mut args = Args::new()
            .buf_f32("a", vec![1.0; n])
            .buf_f32("b", vec![1.0; n])
            .buf_f32("out", vec![0.0; n]);
        let mut rep =
            launch(&dev, &k, Dim3::x1(4), &mut args, &SimOptions::full()).unwrap();
        let honest = rep.bandwidth_gbps(&dev);
        // Forge the pathological report shape: sampling looks on
        // (blocks_total > blocks_simulated) yet no block was simulated.
        // The byte count must pass through unscaled instead of being
        // multiplied by blocks_total.
        rep.timing.blocks_simulated = 0;
        rep.timing.blocks_total = 1000;
        let guarded = rep.bandwidth_gbps(&dev);
        assert!(
            (guarded - honest).abs() < 1e-9,
            "empty sample must not scale bytes: {guarded} vs {honest}"
        );
    }

    #[test]
    fn profile_counts_divergence_and_uniform_branches() {
        let dev = DeviceConfig::small_test();
        // Divergent: lanes split 16/16 inside each warp.
        let mut b = KernelBuilder::new("div", 32);
        b.param_global_f32("out");
        b.decl_i32("t", tidx());
        b.if_else(
            lt(v("t"), i(16)),
            |b| b.store("out", v("t"), f(1.0)),
            |b| b.store("out", v("t"), f(2.0)),
        );
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
        let rep = launch(&dev, &k, Dim3::x1(1), &mut args, &SimOptions::full()).unwrap();
        assert_eq!(rep.profile.total.divergence_events, 1);
        assert!(rep.profile.total.divergent_instructions > 0);

        // Uniform: every lane takes the same path -> zero divergence.
        let mut b = KernelBuilder::new("uni", 32);
        b.param_global_f32("out");
        b.decl_i32("t", tidx());
        b.if_else(
            lt(i(0), i(16)),
            |b| b.store("out", v("t"), f(1.0)),
            |b| b.store("out", v("t"), f(2.0)),
        );
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
        let rep = launch(&dev, &k, Dim3::x1(1), &mut args, &SimOptions::full()).unwrap();
        assert_eq!(rep.profile.total.divergence_events, 0);
        assert_eq!(rep.profile.total.divergent_instructions, 0);
    }

    #[test]
    fn profile_counts_memory_shfl_and_barriers() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let n = 256usize;
        let mut args = Args::new()
            .buf_f32("a", vec![1.0; n])
            .buf_f32("b", vec![1.0; n])
            .buf_f32("out", vec![0.0; n]);
        let rep = launch(&dev, &k, Dim3::x1(4), &mut args, &SimOptions::full()).unwrap();
        let p = &rep.profile.total;
        // 2 loads + 1 store per warp, 2 warps per block, 4 blocks; each
        // access moves 32 lanes x 4 bytes.
        assert_eq!(p.global_bytes, 3 * 128 * 2 * 4);
        assert!(p.global_transactions >= p.ideal_global_transactions);
        let e = rep.profile.coalescing_efficiency();
        assert!(e > 0.0 && e <= 1.0);
        assert_eq!(rep.profile.blocks.len(), 4);
        // Per-block totals sum to the launch total.
        let mut sum = np_gpu_sim::profile::ProfileCounters::default();
        for bp in &rep.profile.blocks {
            sum.add(&bp.total);
        }
        assert_eq!(&sum, p);
    }

    #[test]
    fn profile_json_is_byte_identical_across_reruns() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let n = 256usize;
        let run = || {
            let mut args = Args::new()
                .buf_f32("a", vec![1.0; n])
                .buf_f32("b", vec![2.0; n])
                .buf_f32("out", vec![0.0; n]);
            launch(&dev, &k, Dim3::x1(4), &mut args, &SimOptions::full()).unwrap()
        };
        let (r1, r2) = (run(), run());
        assert_eq!(r1.profile.to_json(), r2.profile.to_json());
        assert_eq!(r1.chrome_trace(), r2.chrome_trace());
        let trace = r1.chrome_trace();
        assert!(trace.contains("\"pid\":\"vecadd\""));
        // The timeline flight recorder contributes per-SMX duration tracks
        // and the spliced array stays well-formed.
        assert!(trace.contains("\"tid\":\"smx 0\""), "{trace}");
        assert!(trace.contains("\"ph\":\"X\""), "{trace}");
        assert!(trace.starts_with('[') && trace.ends_with(']'), "{trace}");
        assert!(!trace.contains(",,") && !trace.contains("],["), "{trace}");
    }

    #[test]
    fn two_dimensional_blocks_linearize_like_cuda() {
        let dev = DeviceConfig::small_test();
        // blockDim (8, 4): thread (x,y) has linear id y*8+x.
        let mut b = KernelBuilder::new("twod", 8);
        b.param_global_f32("out");
        b.store("out", tidy() * i(8) + tidx(), cast(np_kernel_ir::Scalar::F32, tidy()));
        let mut k = b.finish();
        k.block_dim = np_kernel_ir::Dim3::xy(8, 4);
        let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
        launch(&dev, &k, Dim3::x1(1), &mut args, &SimOptions::full()).unwrap();
        let out = args.get_f32("out").unwrap();
        for t in 0..32 {
            assert_eq!(out[t], (t / 8) as f32);
        }
    }
}

#[cfg(test)]
mod race_tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::{KernelBuilder, Scalar};

    /// tile[t] then read tile[63 - t]: warps conflict without a barrier.
    fn racy_kernel(with_sync: bool) -> Kernel {
        let mut b = KernelBuilder::new("racy", 64);
        b.param_global_f32("out");
        b.shared_array("tile", Scalar::F32, 64);
        b.decl_i32("t", tidx());
        b.store("tile", v("t"), cast(Scalar::F32, v("t")));
        if with_sync {
            b.sync();
        }
        b.store("out", v("t"), load("tile", i(63) - v("t")));
        b.finish()
    }

    #[test]
    fn detector_catches_missing_barrier() {
        use crate::fault::FaultKind;
        let dev = DeviceConfig::small_test();
        let k = racy_kernel(false);
        let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
        let err = launch(&dev, &k, np_kernel_ir::Dim3::x1(1), &mut args, &SimOptions::checked())
            .unwrap_err();
        let ExecError::Fault(fault) = err else { panic!("expected a fault, got {err:?}") };
        assert_eq!(fault.kernel, "racy");
        match fault.kind {
            FaultKind::SharedRace { ref array, prev_warp, warp, .. } => {
                assert_eq!(array, "tile");
                assert_ne!(prev_warp, warp, "race must be cross-warp");
                assert_eq!(fault.warp, Some(warp));
            }
            ref other => panic!("expected SharedRace, got {other:?}"),
        }
    }

    #[test]
    fn barrier_silences_the_detector() {
        let dev = DeviceConfig::small_test();
        let k = racy_kernel(true);
        let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
        launch(&dev, &k, np_kernel_ir::Dim3::x1(1), &mut args, &SimOptions::checked()).unwrap();
        assert_eq!(args.get_f32("out").unwrap()[0], 63.0);
    }

    #[test]
    fn same_warp_reuse_is_not_a_race() {
        let dev = DeviceConfig::small_test();
        let mut b = KernelBuilder::new("onewarp", 32);
        b.param_global_f32("out");
        b.shared_array("tile", Scalar::F32, 32);
        b.store("tile", tidx(), f(1.0));
        b.store("out", tidx(), load("tile", i(31) - tidx()));
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
        launch(&dev, &k, np_kernel_ir::Dim3::x1(1), &mut args, &SimOptions::checked()).unwrap();
    }

    #[test]
    fn detector_off_by_default() {
        let dev = DeviceConfig::small_test();
        let k = racy_kernel(false);
        let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
        // Racy but tolerated when the detector is off (deterministic
        // warp-order semantics still apply).
        launch(&dev, &k, np_kernel_ir::Dim3::x1(1), &mut args, &SimOptions::full()).unwrap();
    }
}

#[cfg(test)]
mod hb_race_tests {
    use super::race_tests_helpers::racy_kernel;
    use super::*;
    use crate::fault::FaultKind;
    use np_gpu_sim::racecheck::{GatingPolicy, RaceFinding};
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::{Dim3 as KDim3, KernelBuilder, Scalar};

    #[test]
    fn record_mode_reports_both_access_sites() {
        let dev = DeviceConfig::small_test();
        let k = racy_kernel(false);
        let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
        let rep =
            launch(&dev, &k, KDim3::x1(1), &mut args, &SimOptions::race_checked()).unwrap();
        assert!(rep.race.checked);
        assert!(!rep.race.is_clean());
        match &rep.race.findings[0] {
            RaceFinding::MemoryRace { array, first, second, .. } => {
                assert_eq!(array, "tile");
                assert_ne!(first.thread, second.thread);
                assert!(first.pc < second.pc, "sites are ordered by interpreter step");
                assert_eq!(first.epoch, second.epoch, "same barrier epoch = unordered");
            }
            other => panic!("expected MemoryRace, got {other:?}"),
        }
    }

    #[test]
    fn barrier_makes_the_report_clean() {
        let dev = DeviceConfig::small_test();
        let k = racy_kernel(true);
        let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
        let rep =
            launch(&dev, &k, KDim3::x1(1), &mut args, &SimOptions::race_checked()).unwrap();
        assert!(rep.race.checked && rep.race.is_clean(), "{:?}", rep.race.findings);
        assert!(rep.race.barriers_seen > 0);
        assert!(rep.race.accesses_checked > 0);
    }

    #[test]
    fn fatal_mode_faults_with_race_detected() {
        let dev = DeviceConfig::small_test();
        let k = racy_kernel(false);
        let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
        let opts = SimOptions::default().with_race_check(RaceCheckMode::Fatal);
        let err = launch(&dev, &k, KDim3::x1(1), &mut args, &opts).unwrap_err();
        let ExecError::Fault(fault) = err else { panic!("expected a fault, got {err:?}") };
        match &fault.kind {
            FaultKind::RaceDetected { detail } => {
                assert!(detail.contains("tile["), "{detail}");
                assert!(detail.contains("thread"), "{detail}");
            }
            other => panic!("expected RaceDetected, got {other:?}"),
        }
    }

    #[test]
    fn same_warp_conflict_is_caught_at_thread_granularity() {
        // The warp-granular fast path deliberately ignores this (see
        // same_warp_reuse_is_not_a_race); the HB checker must not, because
        // the CUDA-NP transform never relies on implicit warp sync for
        // shared-memory communication.
        let dev = DeviceConfig::small_test();
        let mut b = KernelBuilder::new("onewarp", 32);
        b.param_global_f32("out");
        b.shared_array("tile", Scalar::F32, 32);
        b.store("tile", tidx(), f(1.0));
        b.store("out", tidx(), load("tile", i(31) - tidx()));
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
        let rep =
            launch(&dev, &k, KDim3::x1(1), &mut args, &SimOptions::race_checked()).unwrap();
        assert!(!rep.race.is_clean());
    }

    #[test]
    fn global_space_write_write_race_is_reported() {
        let dev = DeviceConfig::small_test();
        // Every thread writes out[0]: 63 conflicting pairs, one finding
        // (per-word dedupe).
        let mut b = KernelBuilder::new("gracy", 64);
        b.param_global_f32("out");
        b.store("out", i(0), cast(Scalar::F32, tidx()));
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 4]);
        let rep =
            launch(&dev, &k, KDim3::x1(1), &mut args, &SimOptions::race_checked()).unwrap();
        assert_eq!(rep.race.findings.len(), 1, "{:?}", rep.race.findings);
        match &rep.race.findings[0] {
            RaceFinding::MemoryRace { space, array, index, .. } => {
                assert_eq!(*space, np_gpu_sim::racecheck::RaceSpace::Global);
                assert_eq!(array, "out");
                assert_eq!(*index, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn disjoint_global_writes_are_clean_across_blocks() {
        let dev = DeviceConfig::small_test();
        let mut b = KernelBuilder::new("vec", 32);
        b.param_global_f32("out");
        b.store("out", tidx() + bidx() * bdimx(), f(1.0));
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 128]);
        let rep =
            launch(&dev, &k, KDim3::x1(4), &mut args, &SimOptions::race_checked()).unwrap();
        assert!(rep.race.is_clean());
        assert_eq!(rep.race.blocks_checked, 4);
    }

    #[test]
    fn gating_policy_reports_slave_writes_through_launch() {
        let dev = DeviceConfig::small_test();
        // 32x2 block; policy says threadIdx.y is the slave id and "stage"
        // is master-only — yet every thread stores to it.
        let mut b = KernelBuilder::new("gate", 32);
        b.param_global_f32("out");
        b.shared_array("stage", Scalar::F32, 32);
        b.store("stage", tidx(), cast(Scalar::F32, tidy()));
        b.sync();
        b.store("out", tidx() + tidy() * bdimx(), load("stage", tidx()));
        let mut k = b.finish();
        k.block_dim = np_kernel_ir::Dim3::xy(32, 2);
        let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
        let opts = SimOptions::race_checked().with_race_options(RaceCheckOptions {
            max_findings: None,
            policy: Some(GatingPolicy {
                master_size: 32,
                slave_size: 2,
                intra: false,
                master_only: vec!["stage".into()],
            }),
        });
        let rep = launch(&dev, &k, KDim3::x1(1), &mut args, &opts).unwrap();
        assert!(rep
            .race
            .findings
            .iter()
            .any(|f| matches!(f, RaceFinding::MasterGatingViolation { .. })),
            "{:?}",
            rep.race.findings
        );
    }

    #[test]
    fn off_mode_reports_unchecked() {
        let dev = DeviceConfig::small_test();
        let k = racy_kernel(false);
        let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
        let rep = launch(&dev, &k, KDim3::x1(1), &mut args, &SimOptions::full()).unwrap();
        assert!(!rep.race.checked);
        assert!(rep.race.is_clean(), "vacuously clean when unchecked");
    }

    #[test]
    fn race_report_json_is_byte_identical_across_reruns() {
        let dev = DeviceConfig::small_test();
        for clean in [false, true] {
            let k = racy_kernel(clean);
            let run = || {
                let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
                launch(&dev, &k, KDim3::x1(1), &mut args, &SimOptions::race_checked())
                    .unwrap()
                    .race
                    .to_json()
            };
            assert_eq!(run(), run());
        }
    }

    /// Vector add: out[i] = a[i] + b[i] (local copy; the sibling tests
    /// module keeps its own).
    fn vecadd_kernel() -> Kernel {
        let mut b = KernelBuilder::new("vecadd", 64);
        b.param_global_f32("a");
        b.param_global_f32("b");
        b.param_global_f32("out");
        b.decl_i32("t", tidx() + bidx() * bdimx());
        b.store("out", v("t"), load("a", v("t")) + load("b", v("t")));
        b.finish()
    }

    fn vecadd_args(n: usize) -> Args {
        let a: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        Args::new().buf_f32("a", a).buf_f32("b", b).buf_f32("out", vec![0.0; n])
    }

    /// Everything a report says, as one comparable string.
    fn fingerprint(r: &KernelReport) -> String {
        format!(
            "{:?}|{}|{}|{}|{}",
            r.timing,
            r.profile.to_json(),
            r.race.to_json(),
            r.chrome_trace(),
            r.cycles
        )
    }

    #[test]
    fn capture_then_replay_is_byte_identical_to_direct_launch() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let opts = SimOptions::full();

        let mut direct_args = vecadd_args(256);
        let direct = launch(&dev, &k, Dim3::x1(4), &mut direct_args, &opts).unwrap();

        let mut cap_args = vecadd_args(256);
        let (at_capture, cap) =
            capture_launch(&dev, &k, Dim3::x1(4), &mut cap_args, &opts).unwrap();
        assert_eq!(direct_args.get_f32("out"), cap_args.get_f32("out"));
        assert_eq!(fingerprint(&direct), fingerprint(&at_capture));

        let replayed = replay_launch(&dev, &cap, &opts).unwrap();
        assert_eq!(fingerprint(&direct), fingerprint(&replayed));

        // And through the codec: decode(encode(cap)) replays identically.
        let decoded = CapturedLaunch::decode(&cap.encode()).unwrap();
        let re_replayed = replay_launch(&dev, &decoded, &opts).unwrap();
        assert_eq!(fingerprint(&direct), fingerprint(&re_replayed));
    }

    #[test]
    fn capture_counts_one_interpretation_and_replay_counts_none() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let opts = SimOptions::full();
        let before = interpretation_count();
        let (_, cap) =
            capture_launch(&dev, &k, Dim3::x1(4), &mut vecadd_args(256), &opts).unwrap();
        let after_capture = interpretation_count();
        // Other tests run concurrently in this process, so assert "at
        // least mine" rather than an exact delta.
        assert!(after_capture > before);
        for _ in 0..3 {
            replay_launch(&dev, &cap, &opts).unwrap();
        }
        // Replays never interpret; nothing this test did since the capture
        // bumped the counter. (Concurrent launches may have, so this can't
        // be asserted exactly here — the serial probe lives in the
        // replay-equivalence suite.)
        let _ = after_capture;
    }

    #[test]
    fn sampled_capture_cannot_replay_as_full() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let n = 64 * 64;
        let mk = || {
            Args::new()
                .buf_f32("a", vec![1.0; n])
                .buf_f32("b", vec![1.0; n])
                .buf_f32("out", vec![0.0; n])
        };
        let (_, cap) =
            capture_launch(&dev, &k, Dim3::x1(64), &mut mk(), &SimOptions::sampled(16)).unwrap();
        assert!(cap.is_sampled());
        let err = replay_launch(&dev, &cap, &SimOptions::full()).unwrap_err();
        assert!(
            matches!(err, ExecError::Replay(ReplayError::SamplingMismatch { .. })),
            "expected SamplingMismatch, got {err:?}"
        );
        // With the matching sampling config it replays fine.
        replay_launch(&dev, &cap, &SimOptions::sampled(16)).unwrap();
    }

    #[test]
    fn replay_reproduces_watchdog_verdict_for_any_budget() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let opts = SimOptions::full();
        let (_, cap) =
            capture_launch(&dev, &k, Dim3::x1(4), &mut vecadd_args(256), &opts).unwrap();
        assert!(cap.total_steps > 0);

        // A generous budget replays clean.
        let generous = opts.clone().with_watchdog(Some(cap.total_steps));
        replay_launch(&dev, &cap, &generous).unwrap();

        // A budget below the recorded step count faults, exactly as the
        // direct run would have.
        let tight = opts.clone().with_watchdog(Some(cap.total_steps - 1));
        let err = replay_launch(&dev, &cap, &tight).unwrap_err();
        let fault = err.fault().expect("watchdog fault");
        assert!(matches!(fault.kind, FaultKind::Watchdog { .. }));

        let mut direct_args = vecadd_args(256);
        let direct_err =
            launch(&dev, &k, Dim3::x1(4), &mut direct_args, &tight).unwrap_err();
        let direct_fault = direct_err.fault().expect("direct watchdog fault");
        assert!(matches!(direct_fault.kind, FaultKind::Watchdog { .. }));
    }

    #[test]
    fn race_config_mismatch_is_rejected_at_replay() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let (_, cap) =
            capture_launch(&dev, &k, Dim3::x1(4), &mut vecadd_args(256), &SimOptions::full())
                .unwrap();
        let err = replay_launch(&dev, &cap, &SimOptions::race_checked()).unwrap_err();
        assert!(
            matches!(err, ExecError::Replay(ReplayError::RaceConfigMismatch { .. })),
            "expected RaceConfigMismatch, got {err:?}"
        );
    }

    #[test]
    fn race_checked_capture_preserves_findings_through_codec() {
        let dev = DeviceConfig::small_test();
        let k = racy_kernel(false);
        let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
        let (report, cap) =
            capture_launch(&dev, &k, Dim3::x1(2), &mut args, &SimOptions::race_checked())
                .unwrap();
        assert!(report.race.checked);
        assert!(!report.race.is_clean());
        let decoded = CapturedLaunch::decode(&cap.encode()).unwrap();
        let replayed = replay_launch(&dev, &decoded, &SimOptions::race_checked()).unwrap();
        assert_eq!(report.race.to_json(), replayed.race.to_json());
    }

    #[test]
    fn fault_injection_cannot_replay() {
        let dev = DeviceConfig::small_test();
        let k = vecadd_kernel();
        let (_, cap) =
            capture_launch(&dev, &k, Dim3::x1(4), &mut vecadd_args(256), &SimOptions::full())
                .unwrap();
        let opts = SimOptions::full().with_injection(InjectConfig::bitflips(1, 2));
        let err = replay_launch(&dev, &cap, &opts).unwrap_err();
        assert!(
            matches!(err, ExecError::Replay(ReplayError::NeedsInterpretation { .. })),
            "expected NeedsInterpretation, got {err:?}"
        );
    }

    #[test]
    fn faulting_capture_launch_returns_error_and_no_artifact() {
        let dev = DeviceConfig::small_test();
        let mut b = KernelBuilder::new("oob_cap", 32);
        b.param_global_f32("out");
        b.store("out", tidx() + i(100), f(1.0));
        let k = b.finish();
        let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
        let err = capture_launch(&dev, &k, Dim3::x1(1), &mut args, &SimOptions::full())
            .unwrap_err();
        assert!(err.fault().is_some());
    }
}

#[cfg(test)]
mod race_tests_helpers {
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::{Kernel, KernelBuilder, Scalar};

    /// tile[t] then read tile[63 - t]: threads conflict without a barrier.
    pub fn racy_kernel(with_sync: bool) -> Kernel {
        let mut b = KernelBuilder::new("racy", 64);
        b.param_global_f32("out");
        b.shared_array("tile", Scalar::F32, 64);
        b.decl_i32("t", tidx());
        b.store("tile", v("t"), cast(Scalar::F32, v("t")));
        if with_sync {
            b.sync();
        }
        b.store("out", v("t"), load("tile", i(63) - v("t")));
        b.finish()
    }
}
