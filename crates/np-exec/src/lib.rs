//! # np-exec — SIMT interpreter over the timing simulator
//!
//! Executes `np-kernel-ir` kernels *functionally* (lockstep warps,
//! divergence masks, shared/local/global/constant/texture memory, `__shfl`,
//! barriers) while emitting per-warp instruction traces that the
//! `np-gpu-sim` timing engine schedules. One [`launch()`](launch::launch) call therefore
//! yields both the kernel's numerical output (in its argument buffers) and
//! a cycle-level [`KernelReport`].

pub mod fault;
pub mod interp;
pub mod launch;
pub mod machine;
pub mod resources;
pub mod value;

pub use fault::{FaultKind, SimFault};
pub use launch::{
    capture_launch, interpretation_count, launch, replay_launch, DeadlineSpec, KernelReport,
    RaceCheckMode, SimOptions, DEFAULT_WATCHDOG_STEPS,
};
pub use machine::{ArgValue, Args, Buffer, ExecError};
pub use resources::estimate_resources;
