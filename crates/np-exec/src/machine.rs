//! Device memory state: argument binding, global/constant/texture buffers
//! with simulated addresses, per-block shared memory, per-warp local memory.

use np_kernel_ir::kernel::{Kernel, ParamKind};
use np_kernel_ir::types::Scalar;
use std::collections::HashMap;

/// A typed device buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Buffer {
    F32(Vec<f32>),
    I32(Vec<i32>),
    U32(Vec<u32>),
}

impl Buffer {
    pub fn len(&self) -> usize {
        match self {
            Buffer::F32(v) => v.len(),
            Buffer::I32(v) => v.len(),
            Buffer::U32(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn ty(&self) -> Scalar {
        match self {
            Buffer::F32(_) => Scalar::F32,
            Buffer::I32(_) => Scalar::I32,
            Buffer::U32(_) => Scalar::U32,
        }
    }

    pub fn read_bits(&self, idx: usize) -> u32 {
        match self {
            Buffer::F32(v) => v[idx].to_bits(),
            Buffer::I32(v) => v[idx] as u32,
            Buffer::U32(v) => v[idx],
        }
    }

    pub fn write_bits(&mut self, idx: usize, bits: u32) {
        match self {
            Buffer::F32(v) => v[idx] = f32::from_bits(bits),
            Buffer::I32(v) => v[idx] = bits as i32,
            Buffer::U32(v) => v[idx] = bits,
        }
    }
}

/// One bound kernel argument.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    F32(f32),
    I32(i32),
    U32(u32),
    Buf(Buffer),
}

/// Kernel arguments by parameter name. Buffers are moved in and can be
/// taken back out after the launch.
///
/// Binding the same name twice is a host-side contract violation, not a
/// silent last-write-wins: the first duplicate is remembered and surfaces
/// as a typed [`FaultKind::ContractViolation`](crate::FaultKind) when the
/// arguments are bound at launch.
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: HashMap<String, ArgValue>,
    /// First argument name bound more than once, if any.
    duplicate: Option<String>,
}

impl Args {
    pub fn new() -> Self {
        Args::default()
    }

    fn set(&mut self, name: &str, v: ArgValue) {
        if self.map.insert(name.to_string(), v).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.to_string());
        }
    }

    pub fn f32(mut self, name: &str, v: f32) -> Self {
        self.set(name, ArgValue::F32(v));
        self
    }

    pub fn i32(mut self, name: &str, v: i32) -> Self {
        self.set(name, ArgValue::I32(v));
        self
    }

    pub fn u32(mut self, name: &str, v: u32) -> Self {
        self.set(name, ArgValue::U32(v));
        self
    }

    pub fn buf_f32(mut self, name: &str, v: Vec<f32>) -> Self {
        self.set(name, ArgValue::Buf(Buffer::F32(v)));
        self
    }

    pub fn buf_i32(mut self, name: &str, v: Vec<i32>) -> Self {
        self.set(name, ArgValue::Buf(Buffer::I32(v)));
        self
    }

    pub fn buf_u32(mut self, name: &str, v: Vec<u32>) -> Self {
        self.set(name, ArgValue::Buf(Buffer::U32(v)));
        self
    }

    pub fn get(&self, name: &str) -> Option<&ArgValue> {
        self.map.get(name)
    }

    /// Borrow a bound f32 buffer (e.g. to read results after a launch).
    pub fn get_f32(&self, name: &str) -> Option<&[f32]> {
        match self.map.get(name) {
            Some(ArgValue::Buf(Buffer::F32(v))) => Some(v),
            _ => None,
        }
    }

    /// Borrow a bound i32 buffer.
    pub fn get_i32(&self, name: &str) -> Option<&[i32]> {
        match self.map.get(name) {
            Some(ArgValue::Buf(Buffer::I32(v))) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn get_mut(&mut self, name: &str) -> Option<&mut ArgValue> {
        self.map.get_mut(name)
    }
}

/// Everything a launch can fail with: setup errors (bad arguments, rejected
/// occupancy) and runtime faults the sanitizer detected while interpreting
/// the kernel. Non-exhaustive so new failure classes can be added without a
/// breaking change — downstream matches need a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A kernel parameter had no bound argument.
    MissingArg(String),
    /// Argument type does not match the parameter kind.
    ArgTypeMismatch { param: String, expected: &'static str },
    /// Occupancy computation rejected the launch.
    Launch(String),
    /// The sanitizer detected a kernel contract violation during execution
    /// (out-of-bounds access, race, divergent barrier, watchdog, ...).
    /// Boxed so the happy-path `Result` stays a couple of words wide.
    Fault(Box<crate::fault::SimFault>),
    /// A captured trace could not be replayed under the requested device
    /// or simulation configuration (see [`np_gpu_sim::replay::ReplayError`]).
    Replay(np_gpu_sim::replay::ReplayError),
}

impl ExecError {
    /// The fault, when this error is a detected kernel contract violation.
    pub fn fault(&self) -> Option<&crate::fault::SimFault> {
        match self {
            ExecError::Fault(f) => Some(f.as_ref()),
            _ => None,
        }
    }
}

impl From<crate::fault::SimFault> for ExecError {
    fn from(f: crate::fault::SimFault) -> Self {
        ExecError::Fault(Box::new(f))
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::MissingArg(p) => write!(f, "no argument bound for parameter {p:?}"),
            ExecError::ArgTypeMismatch { param, expected } => {
                write!(f, "argument for {param:?} must be {expected}")
            }
            ExecError::Launch(msg) => write!(f, "launch rejected: {msg}"),
            ExecError::Fault(fault) => write!(f, "kernel fault: {fault}"),
            ExecError::Replay(e) => write!(f, "replay rejected: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Fault(fault) => Some(fault),
            ExecError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

/// Description of one array visible to the interpreter, with its simulated
/// base address (used for coalescing / cache analysis).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArrayBinding {
    pub space: np_kernel_ir::types::MemSpace,
    pub base_addr: u64,
}

/// Global machine state for one launch: every parameter array, moved out of
/// `Args`, with an assigned simulated address.
///
/// Storage is slot-indexed, not name-keyed: scalar parameters occupy
/// `scalars` in declaration order, array parameters occupy `buffers` /
/// `bindings` in declaration order — the same numbering
/// [`np_kernel_ir::slots::InternedKernel`] assigns, so the interpreter
/// reaches every parameter by a vector index.
#[derive(Debug)]
pub(crate) struct GlobalState {
    pub buffers: Vec<Buffer>,
    pub bindings: Vec<ArrayBinding>,
    pub scalars: Vec<ArgValue>,
    /// Array parameter names by slot, to return buffers at unbind.
    array_names: Vec<String>,
}

impl GlobalState {
    /// Bind `args` to the kernel's parameters, assigning addresses.
    pub fn bind(kernel: &Kernel, args: &mut Args) -> Result<GlobalState, ExecError> {
        if let Some(name) = &args.duplicate {
            return Err(crate::fault::SimFault::new(
                &kernel.name,
                crate::fault::FaultKind::ContractViolation {
                    detail: format!("argument {name:?} bound more than once"),
                },
            )
            .into());
        }
        let mut buffers = Vec::new();
        let mut bindings = Vec::new();
        let mut scalars = Vec::new();
        let mut array_names = Vec::new();
        let mut cursor: u64 = 0x1000; // leave page zero unmapped
        for p in &kernel.params {
            match p.kind {
                ParamKind::Scalar(ty) => {
                    let v = args
                        .get(&p.name)
                        .cloned()
                        .ok_or_else(|| ExecError::MissingArg(p.name.clone()))?;
                    let ok = matches!(
                        (&v, ty),
                        (ArgValue::F32(_), Scalar::F32)
                            | (ArgValue::I32(_), Scalar::I32)
                            | (ArgValue::U32(_), Scalar::U32)
                    );
                    if !ok {
                        return Err(ExecError::ArgTypeMismatch {
                            param: p.name.clone(),
                            expected: ty.c_name(),
                        });
                    }
                    scalars.push(v);
                }
                ParamKind::GlobalArray(ty)
                | ParamKind::TexArray(ty)
                | ParamKind::ConstArray(ty) => {
                    let v = args
                        .get_mut(&p.name)
                        .ok_or_else(|| ExecError::MissingArg(p.name.clone()))?;
                    let buf = match v {
                        ArgValue::Buf(b) if b.ty() == ty => {
                            std::mem::replace(b, Buffer::F32(Vec::new()))
                        }
                        _ => {
                            return Err(ExecError::ArgTypeMismatch {
                                param: p.name.clone(),
                                expected: "a buffer of matching element type",
                            })
                        }
                    };
                    let space = match p.kind {
                        ParamKind::GlobalArray(_) => np_kernel_ir::types::MemSpace::Global,
                        ParamKind::TexArray(_) => np_kernel_ir::types::MemSpace::Texture,
                        ParamKind::ConstArray(_) => np_kernel_ir::types::MemSpace::Constant,
                        ParamKind::Scalar(_) => unreachable!(),
                    };
                    bindings.push(ArrayBinding { space, base_addr: cursor });
                    cursor += (buf.len() as u64 * 4 + 255) & !255;
                    cursor += 256;
                    buffers.push(buf);
                    array_names.push(p.name.clone());
                }
            }
        }
        Ok(GlobalState { buffers, bindings, scalars, array_names })
    }

    /// Return buffers to `args` after the launch (so callers see outputs).
    pub fn unbind(self, args: &mut Args) {
        for (name, buf) in self.array_names.into_iter().zip(self.buffers) {
            args.map.insert(name, ArgValue::Buf(buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::KernelBuilder;

    fn kernel() -> Kernel {
        let mut b = KernelBuilder::new("k", 32);
        b.param_global_f32("data");
        b.param_scalar_i32("n");
        b.finish()
    }

    #[test]
    fn binds_and_unbinds() {
        let k = kernel();
        let mut args = Args::new().buf_f32("data", vec![1.0, 2.0]).i32("n", 2);
        let gs = GlobalState::bind(&k, &mut args).unwrap();
        assert_eq!(gs.buffers[0].len(), 2);
        assert!(gs.bindings[0].base_addr >= 0x1000);
        gs.unbind(&mut args);
        assert_eq!(args.get_f32("data").unwrap(), &[1.0, 2.0]);
    }

    #[test]
    fn rebinding_an_argument_is_a_contract_violation() {
        let k = kernel();
        // Same name bound twice: the second `buf_f32` would silently win
        // under last-write-wins; instead binding fails with a typed fault.
        let mut args = Args::new()
            .buf_f32("data", vec![1.0, 2.0])
            .buf_f32("data", vec![9.0, 9.0])
            .i32("n", 2);
        let err = GlobalState::bind(&k, &mut args).unwrap_err();
        let fault = err.fault().expect("typed fault, not a setup error");
        assert!(
            matches!(
                &fault.kind,
                crate::fault::FaultKind::ContractViolation { detail }
                    if detail.contains("\"data\"")
            ),
            "unexpected fault: {fault}"
        );
    }

    #[test]
    fn missing_arg_errors() {
        let k = kernel();
        let mut args = Args::new().buf_f32("data", vec![]);
        assert!(matches!(
            GlobalState::bind(&k, &mut args),
            Err(ExecError::MissingArg(p)) if p == "n"
        ));
    }

    #[test]
    fn type_mismatch_errors() {
        let k = kernel();
        let mut args = Args::new().buf_i32("data", vec![1]).i32("n", 1);
        assert!(matches!(
            GlobalState::bind(&k, &mut args),
            Err(ExecError::ArgTypeMismatch { .. })
        ));
    }

    #[test]
    fn distinct_buffers_get_distinct_addresses() {
        let mut b = KernelBuilder::new("k", 32);
        b.param_global_f32("a");
        b.param_global_f32("bb");
        let k = b.finish();
        let mut args =
            Args::new().buf_f32("a", vec![0.0; 100]).buf_f32("bb", vec![0.0; 100]);
        let gs = GlobalState::bind(&k, &mut args).unwrap();
        let a = gs.bindings[0].base_addr;
        let b_ = gs.bindings[1].base_addr;
        assert!(b_ >= a + 400, "buffers must not overlap: {a} {b_}");
    }
}
