//! Static resource estimation: the bridge from IR structure to the
//! occupancy calculator.
//!
//! Real compilers decide register counts after allocation; we estimate from
//! structure: one register per declared scalar (loop iterators included),
//! plus the deepest expression tree (temporaries), plus a fixed overhead
//! for the ABI/address registers. Estimates beyond the hardware's 63
//! registers-per-thread cap (GK104) *spill to local memory*, exactly like
//! the paper's CFD and LE baselines (Table 1 shows 252 B of registers plus
//! local-memory bytes).

use np_gpu_sim::occupancy::KernelResources;
use np_kernel_ir::kernel::Kernel;
use np_kernel_ir::stmt::{visit_stmts, Stmt};
use std::collections::BTreeSet;

/// Fixed register overhead (parameters, addresses, predicates).
const REG_OVERHEAD: u32 = 4;

/// Estimate the per-thread / per-block resources of `kernel` on a device
/// with `max_regs` registers per thread.
pub fn estimate_resources(kernel: &Kernel, max_regs: u32) -> KernelResources {
    let mut scalars: BTreeSet<&str> = BTreeSet::new();
    let mut max_depth: u32 = 0;
    visit_stmts(&kernel.body, &mut |s| {
        match s {
            Stmt::DeclScalar { name, .. } => {
                scalars.insert(name);
            }
            Stmt::For { var, .. } => {
                scalars.insert(var);
            }
            _ => {}
        }
        for e in s.exprs() {
            max_depth = max_depth.max(e.depth());
        }
    });
    let est = REG_OVERHEAD + scalars.len() as u32 + max_depth + kernel.register_array_elems();
    let regs = est.min(max_regs);
    let spill_bytes = est.saturating_sub(max_regs) * 4;
    KernelResources {
        block_size: kernel.block_dim.count() as u32,
        regs_per_thread: regs,
        shared_per_block: kernel.shared_bytes(),
        local_per_thread: kernel.local_bytes() + spill_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use np_kernel_ir::expr::dsl::*;
    use np_kernel_ir::{KernelBuilder, Scalar};

    #[test]
    fn small_kernel_small_footprint() {
        let mut b = KernelBuilder::new("k", 256);
        b.param_global_f32("a");
        b.decl_f32("x", f(0.0));
        let r = estimate_resources(&b.finish(), 63);
        assert!(r.regs_per_thread >= 5 && r.regs_per_thread <= 12);
        assert_eq!(r.shared_per_block, 0);
        assert_eq!(r.local_per_thread, 0);
        assert_eq!(r.block_size, 256);
    }

    #[test]
    fn many_scalars_spill_past_the_cap() {
        let mut b = KernelBuilder::new("k", 32);
        for n in 0..80 {
            b.decl_f32(&format!("s{n}"), f(0.0));
        }
        let r = estimate_resources(&b.finish(), 63);
        assert_eq!(r.regs_per_thread, 63);
        assert!(r.local_per_thread > 0, "excess registers must spill");
    }

    #[test]
    fn arrays_count_toward_their_spaces() {
        let mut b = KernelBuilder::new("k", 32);
        b.shared_array("tile", Scalar::F32, 256);
        b.local_array("grad", Scalar::F32, 150);
        let r = estimate_resources(&b.finish(), 63);
        assert_eq!(r.shared_per_block, 1024);
        assert_eq!(r.local_per_thread, 600);
    }

    #[test]
    fn deeper_expressions_use_more_registers() {
        let mk = |depth: u32| {
            let mut b = KernelBuilder::new("k", 32);
            let mut e = f(1.0);
            for _ in 0..depth {
                e = e + f(1.0);
            }
            b.decl_f32("x", e);
            estimate_resources(&b.finish(), 63).regs_per_thread
        };
        assert!(mk(20) > mk(1));
    }
}
