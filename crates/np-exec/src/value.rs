//! Per-warp lane-vector values.
//!
//! Every scalar the interpreter manipulates is a vector of 32 lane values
//! plus a type tag. Operations are applied only to lanes in the active mask
//! so that, e.g., an integer division in a branch not taken by some lanes
//! cannot fault.

use np_kernel_ir::expr::{BinOp, UnOp};
use np_kernel_ir::types::Scalar;

/// Number of lanes.
pub const LANES: usize = 32;

/// Lane mask; bit `i` = lane `i` active.
pub type Mask = u32;

/// Full mask.
pub const FULL_MASK: Mask = u32::MAX;

/// A lane operation the kernel had no right to perform. Carried up to the
/// interpreter, which wraps it into a typed `SimFault` with warp context.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueError {
    /// True for type errors (operator on wrong types, non-Bool condition);
    /// false for dynamically invalid operations (division by zero).
    pub ill_typed: bool,
    /// Faulting lane, when attributable to one lane.
    pub lane: Option<usize>,
    pub msg: String,
}

impl ValueError {
    fn ill_typed(msg: impl Into<String>) -> ValueError {
        ValueError { ill_typed: true, lane: None, msg: msg.into() }
    }

    fn invalid(lane: usize, msg: impl Into<String>) -> ValueError {
        ValueError { ill_typed: false, lane: Some(lane), msg: msg.into() }
    }
}

/// A warp-wide value.
#[derive(Debug, Clone, PartialEq)]
pub enum WVal {
    F32([f32; LANES]),
    I32([i32; LANES]),
    U32([u32; LANES]),
    Bool([bool; LANES]),
}

/// Iterate over the set lanes of a mask.
pub fn lanes(mask: Mask) -> impl Iterator<Item = usize> {
    (0..LANES).filter(move |l| mask & (1 << l) != 0)
}

impl WVal {
    /// Zero value of a type.
    pub fn zero(ty: Scalar) -> WVal {
        match ty {
            Scalar::F32 => WVal::F32([0.0; LANES]),
            Scalar::I32 => WVal::I32([0; LANES]),
            Scalar::U32 => WVal::U32([0; LANES]),
            Scalar::Bool => WVal::Bool([false; LANES]),
        }
    }

    /// Same value in every lane.
    pub fn splat_f32(x: f32) -> WVal {
        WVal::F32([x; LANES])
    }
    pub fn splat_i32(x: i32) -> WVal {
        WVal::I32([x; LANES])
    }
    pub fn splat_u32(x: u32) -> WVal {
        WVal::U32([x; LANES])
    }
    pub fn splat_bool(x: bool) -> WVal {
        WVal::Bool([x; LANES])
    }

    /// The IR type of this value.
    pub fn ty(&self) -> Scalar {
        match self {
            WVal::F32(_) => Scalar::F32,
            WVal::I32(_) => Scalar::I32,
            WVal::U32(_) => Scalar::U32,
            WVal::Bool(_) => Scalar::Bool,
        }
    }

    /// Lane value as f32 bits pattern (for typed raw storage).
    pub fn lane_bits(&self, lane: usize) -> u32 {
        match self {
            WVal::F32(v) => v[lane].to_bits(),
            WVal::I32(v) => v[lane] as u32,
            WVal::U32(v) => v[lane],
            WVal::Bool(v) => v[lane] as u32,
        }
    }

    /// Build a value of type `ty` from raw bit patterns.
    pub fn from_bits(ty: Scalar, bits: [u32; LANES]) -> WVal {
        match ty {
            Scalar::F32 => WVal::F32(bits.map(f32::from_bits)),
            Scalar::I32 => WVal::I32(bits.map(|b| b as i32)),
            Scalar::U32 => WVal::U32(bits),
            Scalar::Bool => WVal::Bool(bits.map(|b| b != 0)),
        }
    }

    /// Lane value as i64 (integers only) — used for indices.
    pub fn lane_index(&self, lane: usize) -> Option<i64> {
        match self {
            WVal::I32(v) => Some(v[lane] as i64),
            WVal::U32(v) => Some(v[lane] as i64),
            _ => None,
        }
    }

    /// Lane value as bool (Bool only).
    pub fn lane_bool(&self, lane: usize) -> Option<bool> {
        match self {
            WVal::Bool(v) => Some(v[lane]),
            _ => None,
        }
    }

    /// Merge `new` into `self` on the active lanes of `mask`.
    pub fn merge_from(&mut self, new: &WVal, mask: Mask) -> Result<(), ValueError> {
        if self.ty() != new.ty() {
            return Err(ValueError::ill_typed(format!(
                "type mismatch in assignment: {:?} = {:?}",
                self.ty(),
                new.ty()
            )));
        }
        // Every lane active (the common case): a whole-value copy replaces
        // the per-lane masked loop, lane-for-lane identical.
        if mask == FULL_MASK {
            self.clone_from(new);
            return Ok(());
        }
        match (self, new) {
            (WVal::F32(a), WVal::F32(b)) => {
                for l in lanes(mask) {
                    a[l] = b[l];
                }
            }
            (WVal::I32(a), WVal::I32(b)) => {
                for l in lanes(mask) {
                    a[l] = b[l];
                }
            }
            (WVal::U32(a), WVal::U32(b)) => {
                for l in lanes(mask) {
                    a[l] = b[l];
                }
            }
            (WVal::Bool(a), WVal::Bool(b)) => {
                for l in lanes(mask) {
                    a[l] = b[l];
                }
            }
            // Internal invariant: types were checked equal above.
            _ => unreachable!(),
        }
        Ok(())
    }

    /// Apply a binary operator lane-wise under `mask`.
    pub fn binary(op: BinOp, a: &WVal, b: &WVal, mask: Mask) -> Result<WVal, ValueError> {
        use BinOp::*;
        // Fully-active warps (the overwhelmingly common case) take straight
        // 0..LANES loops over the hottest operators so the compiler can
        // vectorize them; results are lane-for-lane identical to the masked
        // path because no lane is skipped.
        if mask == FULL_MASK {
            match (op, a, b) {
                (Add, WVal::F32(x), WVal::F32(y)) => {
                    return Ok(WVal::F32(std::array::from_fn(|l| x[l] + y[l])))
                }
                (Sub, WVal::F32(x), WVal::F32(y)) => {
                    return Ok(WVal::F32(std::array::from_fn(|l| x[l] - y[l])))
                }
                (Mul, WVal::F32(x), WVal::F32(y)) => {
                    return Ok(WVal::F32(std::array::from_fn(|l| x[l] * y[l])))
                }
                (Add, WVal::I32(x), WVal::I32(y)) => {
                    return Ok(WVal::I32(std::array::from_fn(|l| x[l].wrapping_add(y[l]))))
                }
                (Sub, WVal::I32(x), WVal::I32(y)) => {
                    return Ok(WVal::I32(std::array::from_fn(|l| x[l].wrapping_sub(y[l]))))
                }
                (Mul, WVal::I32(x), WVal::I32(y)) => {
                    return Ok(WVal::I32(std::array::from_fn(|l| x[l].wrapping_mul(y[l]))))
                }
                (Lt, WVal::I32(x), WVal::I32(y)) => {
                    return Ok(WVal::Bool(std::array::from_fn(|l| x[l] < y[l])))
                }
                (Le, WVal::I32(x), WVal::I32(y)) => {
                    return Ok(WVal::Bool(std::array::from_fn(|l| x[l] <= y[l])))
                }
                (Gt, WVal::I32(x), WVal::I32(y)) => {
                    return Ok(WVal::Bool(std::array::from_fn(|l| x[l] > y[l])))
                }
                (Ge, WVal::I32(x), WVal::I32(y)) => {
                    return Ok(WVal::Bool(std::array::from_fn(|l| x[l] >= y[l])))
                }
                _ => {}
            }
        }
        let out = match (a, b) {
            (WVal::F32(x), WVal::F32(y)) => match op {
                Add | Sub | Mul | Div | Rem | Min | Max => {
                    let mut r = [0.0f32; LANES];
                    for l in lanes(mask) {
                        r[l] = match op {
                            Add => x[l] + y[l],
                            Sub => x[l] - y[l],
                            Mul => x[l] * y[l],
                            Div => x[l] / y[l],
                            Rem => x[l] % y[l],
                            Min => x[l].min(y[l]),
                            Max => x[l].max(y[l]),
                            _ => unreachable!(),
                        };
                    }
                    WVal::F32(r)
                }
                Lt | Le | Gt | Ge | Eq | Ne => {
                    let mut r = [false; LANES];
                    for l in lanes(mask) {
                        r[l] = match op {
                            Lt => x[l] < y[l],
                            Le => x[l] <= y[l],
                            Gt => x[l] > y[l],
                            Ge => x[l] >= y[l],
                            Eq => x[l] == y[l],
                            Ne => x[l] != y[l],
                            _ => unreachable!(),
                        };
                    }
                    WVal::Bool(r)
                }
                _ => return Err(ValueError::ill_typed(format!("operator {op:?} not defined on f32"))),
            },
            (WVal::I32(x), WVal::I32(y)) => match op {
                Lt | Le | Gt | Ge | Eq | Ne => {
                    let mut r = [false; LANES];
                    for l in lanes(mask) {
                        r[l] = match op {
                            Lt => x[l] < y[l],
                            Le => x[l] <= y[l],
                            Gt => x[l] > y[l],
                            Ge => x[l] >= y[l],
                            Eq => x[l] == y[l],
                            Ne => x[l] != y[l],
                            _ => unreachable!(),
                        };
                    }
                    WVal::Bool(r)
                }
                _ => {
                    let mut r = [0i32; LANES];
                    for l in lanes(mask) {
                        r[l] = match op {
                            Add => x[l].wrapping_add(y[l]),
                            Sub => x[l].wrapping_sub(y[l]),
                            Mul => x[l].wrapping_mul(y[l]),
                            Div => {
                                if y[l] == 0 {
                                    return Err(ValueError::invalid(l, "integer division by zero"));
                                }
                                x[l].wrapping_div(y[l])
                            }
                            Rem => {
                                if y[l] == 0 {
                                    return Err(ValueError::invalid(l, "integer remainder by zero"));
                                }
                                x[l].wrapping_rem(y[l])
                            }
                            Min => x[l].min(y[l]),
                            Max => x[l].max(y[l]),
                            And => x[l] & y[l],
                            Or => x[l] | y[l],
                            Xor => x[l] ^ y[l],
                            Shl => x[l].wrapping_shl(y[l] as u32),
                            Shr => x[l].wrapping_shr(y[l] as u32),
                            _ => {
                                return Err(ValueError::ill_typed(format!(
                                    "operator {op:?} not defined on i32"
                                )))
                            }
                        };
                    }
                    WVal::I32(r)
                }
            },
            (WVal::U32(x), WVal::U32(y)) => match op {
                Lt | Le | Gt | Ge | Eq | Ne => {
                    let mut r = [false; LANES];
                    for l in lanes(mask) {
                        r[l] = match op {
                            Lt => x[l] < y[l],
                            Le => x[l] <= y[l],
                            Gt => x[l] > y[l],
                            Ge => x[l] >= y[l],
                            Eq => x[l] == y[l],
                            Ne => x[l] != y[l],
                            _ => unreachable!(),
                        };
                    }
                    WVal::Bool(r)
                }
                _ => {
                    let mut r = [0u32; LANES];
                    for l in lanes(mask) {
                        r[l] = match op {
                            Add => x[l].wrapping_add(y[l]),
                            Sub => x[l].wrapping_sub(y[l]),
                            Mul => x[l].wrapping_mul(y[l]),
                            Div => {
                                if y[l] == 0 {
                                    return Err(ValueError::invalid(l, "integer division by zero"));
                                }
                                x[l] / y[l]
                            }
                            Rem => {
                                if y[l] == 0 {
                                    return Err(ValueError::invalid(l, "integer remainder by zero"));
                                }
                                x[l] % y[l]
                            }
                            Min => x[l].min(y[l]),
                            Max => x[l].max(y[l]),
                            And => x[l] & y[l],
                            Or => x[l] | y[l],
                            Xor => x[l] ^ y[l],
                            Shl => x[l].wrapping_shl(y[l]),
                            Shr => x[l].wrapping_shr(y[l]),
                            _ => {
                                return Err(ValueError::ill_typed(format!(
                                    "operator {op:?} not defined on u32"
                                )))
                            }
                        };
                    }
                    WVal::U32(r)
                }
            },
            (WVal::Bool(x), WVal::Bool(y)) => {
                let mut r = [false; LANES];
                for l in lanes(mask) {
                    r[l] = match op {
                        LAnd | And => x[l] && y[l],
                        LOr | Or => x[l] || y[l],
                        Eq => x[l] == y[l],
                        Ne => x[l] != y[l],
                        Xor => x[l] != y[l],
                        _ => {
                            return Err(ValueError::ill_typed(format!(
                                "operator {op:?} not defined on bool"
                            )))
                        }
                    };
                }
                WVal::Bool(r)
            }
            (a, b) => {
                return Err(ValueError::ill_typed(format!(
                    "type mismatch in binary {op:?}: {:?} vs {:?} (insert an explicit Cast)",
                    a.ty(),
                    b.ty()
                )))
            }
        };
        Ok(out)
    }

    /// Apply a unary operator lane-wise under `mask`.
    pub fn unary(op: UnOp, a: &WVal, mask: Mask) -> Result<WVal, ValueError> {
        use UnOp::*;
        let out = match a {
            WVal::F32(x) => {
                let mut r = [0.0f32; LANES];
                for l in lanes(mask) {
                    r[l] = match op {
                        Neg => -x[l],
                        Sqrt => x[l].sqrt(),
                        Exp => x[l].exp(),
                        Log => x[l].ln(),
                        Sin => x[l].sin(),
                        Cos => x[l].cos(),
                        Abs => x[l].abs(),
                        Floor => x[l].floor(),
                        Not => return Err(ValueError::ill_typed("logical not on f32")),
                    };
                }
                WVal::F32(r)
            }
            WVal::I32(x) => {
                let mut r = [0i32; LANES];
                for l in lanes(mask) {
                    r[l] = match op {
                        Neg => x[l].wrapping_neg(),
                        Abs => x[l].wrapping_abs(),
                        _ => {
                            return Err(ValueError::ill_typed(format!(
                                "operator {op:?} not defined on i32"
                            )))
                        }
                    };
                }
                WVal::I32(r)
            }
            WVal::Bool(x) => {
                let mut r = [false; LANES];
                for l in lanes(mask) {
                    r[l] = match op {
                        Not => !x[l],
                        _ => {
                            return Err(ValueError::ill_typed(format!(
                                "operator {op:?} not defined on bool"
                            )))
                        }
                    };
                }
                WVal::Bool(r)
            }
            WVal::U32(_) => {
                return Err(ValueError::ill_typed(format!("operator {op:?} not defined on u32")))
            }
        };
        Ok(out)
    }

    /// Lane-wise cast under `mask`.
    pub fn cast(&self, to: Scalar, mask: Mask) -> WVal {
        let mut out = WVal::zero(to);
        for l in lanes(mask) {
            let bits = match (self, to) {
                (WVal::F32(v), Scalar::I32) => (v[l] as i32) as u32,
                (WVal::F32(v), Scalar::U32) => v[l] as u32,
                (WVal::F32(v), Scalar::F32) => v[l].to_bits(),
                (WVal::I32(v), Scalar::F32) => (v[l] as f32).to_bits(),
                (WVal::I32(v), Scalar::U32) => v[l] as u32,
                (WVal::I32(v), Scalar::I32) => v[l] as u32,
                (WVal::U32(v), Scalar::F32) => (v[l] as f32).to_bits(),
                (WVal::U32(v), Scalar::I32) => v[l],
                (WVal::U32(v), Scalar::U32) => v[l],
                (WVal::Bool(v), Scalar::I32) | (WVal::Bool(v), Scalar::U32) => v[l] as u32,
                (WVal::Bool(v), Scalar::F32) => (v[l] as u32 as f32).to_bits(),
                (_, Scalar::Bool) => (self.lane_bits(l) != 0) as u32,
            };
            match &mut out {
                WVal::F32(o) => o[l] = f32::from_bits(bits),
                WVal::I32(o) => o[l] = bits as i32,
                WVal::U32(o) => o[l] = bits,
                WVal::Bool(o) => o[l] = bits != 0,
            }
        }
        out
    }

    /// Bitmask of lanes whose Bool value is true, intersected with `mask`.
    pub fn true_mask(&self, mask: Mask) -> Result<Mask, ValueError> {
        let WVal::Bool(v) = self else {
            return Err(ValueError::ill_typed(format!(
                "condition must be Bool, found {:?}",
                self.ty()
            )));
        };
        let mut m = 0;
        for l in lanes(mask) {
            if v[l] {
                m |= 1 << l;
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_division_does_not_fault() {
        let a = WVal::splat_i32(10);
        let mut b = WVal::splat_i32(2);
        if let WVal::I32(v) = &mut b {
            v[5] = 0; // lane 5 would divide by zero
        }
        let mask = FULL_MASK & !(1 << 5);
        let r = WVal::binary(BinOp::Div, &a, &b, mask).unwrap();
        if let WVal::I32(v) = r {
            assert_eq!(v[0], 5);
            assert_eq!(v[5], 0, "inactive lane stays default");
        } else {
            panic!()
        }
    }

    #[test]
    fn active_division_by_zero_faults() {
        let a = WVal::splat_i32(1);
        let b = WVal::splat_i32(0);
        let err = WVal::binary(BinOp::Div, &a, &b, FULL_MASK).unwrap_err();
        assert!(!err.ill_typed);
        assert_eq!(err.lane, Some(0));
        assert!(err.msg.contains("division by zero"), "{:?}", err.msg);
    }

    #[test]
    fn merge_respects_mask() {
        let mut a = WVal::splat_f32(1.0);
        let b = WVal::splat_f32(2.0);
        a.merge_from(&b, 0b1010).unwrap();
        if let WVal::F32(v) = a {
            assert_eq!(v[0], 1.0);
            assert_eq!(v[1], 2.0);
            assert_eq!(v[2], 1.0);
            assert_eq!(v[3], 2.0);
        } else {
            panic!()
        }
    }

    #[test]
    fn comparisons_yield_bool() {
        let a = WVal::splat_i32(3);
        let b = WVal::splat_i32(4);
        let r = WVal::binary(BinOp::Lt, &a, &b, FULL_MASK).unwrap();
        assert_eq!(r.true_mask(FULL_MASK).unwrap(), FULL_MASK);
    }

    #[test]
    fn mixed_types_are_ill_typed() {
        let a = WVal::splat_i32(3);
        let b = WVal::splat_f32(4.0);
        let err = WVal::binary(BinOp::Add, &a, &b, FULL_MASK).unwrap_err();
        assert!(err.ill_typed);
        assert!(err.msg.contains("type mismatch"), "{:?}", err.msg);
    }

    #[test]
    fn casts_round_trip_bits() {
        let a = WVal::splat_f32(3.75);
        let i = a.cast(Scalar::I32, FULL_MASK);
        if let WVal::I32(v) = &i {
            assert_eq!(v[0], 3);
        }
        let f = WVal::splat_i32(-2).cast(Scalar::F32, FULL_MASK);
        if let WVal::F32(v) = f {
            assert_eq!(v[0], -2.0);
        }
    }

    #[test]
    fn bits_round_trip() {
        let v = WVal::splat_f32(1.5);
        let bits: [u32; LANES] = std::array::from_fn(|l| v.lane_bits(l));
        assert_eq!(WVal::from_bits(Scalar::F32, bits), v);
    }

    #[test]
    fn true_mask_filters() {
        let mut c = WVal::splat_bool(true);
        if let WVal::Bool(v) = &mut c {
            v[1] = false;
        }
        assert_eq!(c.true_mask(0b111).unwrap(), 0b101);
    }

    #[test]
    fn non_bool_condition_is_ill_typed() {
        let err = WVal::splat_i32(1).true_mask(FULL_MASK).unwrap_err();
        assert!(err.ill_typed);
    }
}
