//! The sanitizer's fault matrix: every detection path in the interpreter
//! must surface as a typed [`SimFault`] through `Err(ExecError::Fault(_))`
//! — never a panic — with the warp/lane context the detection site had.
//!
//! Paths covered: out-of-bounds reads *and* writes in global, shared and
//! local memory; shared-memory races; barriers under divergent control flow
//! (within a warp and across warps); undeclared scalars; ill-typed stores;
//! invalid `__shfl` widths; watchdog timeouts on runaway kernels; and one
//! seeded fault-injection run per memory space.

use np_exec::{launch, Args, ExecError, FaultKind, KernelReport, SimFault, SimOptions};
use np_gpu_sim::mem::inject::{InjectConfig, InjectSpace};
use np_gpu_sim::DeviceConfig;
use np_kernel_ir::expr::dsl::*;
use np_kernel_ir::types::MemSpace;
use np_kernel_ir::{Dim3, KernelBuilder, Scalar};

/// Unwrap a launch result into the fault it must carry.
fn fault_of(res: Result<KernelReport, ExecError>) -> SimFault {
    match res {
        Err(ExecError::Fault(f)) => *f,
        Ok(_) => panic!("kernel must fault, but ran to completion"),
        Err(other) => panic!("expected a sanitizer fault, got setup error: {other}"),
    }
}

fn dev() -> DeviceConfig {
    DeviceConfig::small_test()
}

// ---------------------------------------------------------------- OOB ---

#[test]
fn oob_global_read() {
    let mut b = KernelBuilder::new("oobgr", 32);
    b.param_global_f32("a");
    b.param_global_f32("out");
    b.store("out", tidx(), load("a", tidx() + i(100)));
    let k = b.finish();
    let mut args = Args::new().buf_f32("a", vec![0.0; 32]).buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert_eq!(f.kernel, "oobgr");
    assert_eq!(f.warp, Some(0));
    assert_eq!(f.lane, Some(0), "lane 0 reads a[100] first");
    match f.kind {
        FaultKind::OutOfBounds { space, ref array, index, len, write } => {
            assert_eq!(space, MemSpace::Global);
            assert_eq!(array, "a");
            assert_eq!(index, 100);
            assert_eq!(len, 32);
            assert!(!write);
        }
        ref other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn oob_global_write() {
    let mut b = KernelBuilder::new("oobgw", 32);
    b.param_global_f32("out");
    b.store("out", tidx() + i(50), f(1.0));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert_eq!((f.warp, f.lane), (Some(0), Some(0)));
    match f.kind {
        FaultKind::OutOfBounds { space, index, len, write, .. } => {
            assert_eq!(space, MemSpace::Global);
            assert_eq!(index, 50);
            assert_eq!(len, 32);
            assert!(write);
        }
        ref other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn oob_shared_read() {
    let mut b = KernelBuilder::new("oobsr", 32);
    b.param_global_f32("out");
    b.shared_array("tile", Scalar::F32, 32);
    b.store("tile", tidx(), f(0.0));
    b.store("out", tidx(), load("tile", i(99)));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert_eq!((f.warp, f.lane), (Some(0), Some(0)));
    match f.kind {
        FaultKind::OutOfBounds { space, ref array, index, len, write } => {
            assert_eq!(space, MemSpace::Shared);
            assert_eq!(array, "tile");
            assert_eq!((index, len), (99, 32));
            assert!(!write);
        }
        ref other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn oob_shared_write() {
    let mut b = KernelBuilder::new("oobsw", 32);
    b.param_global_f32("out");
    b.shared_array("tile", Scalar::F32, 32);
    b.store("tile", tidx() + i(10), f(1.0));
    b.store("out", tidx(), load("tile", tidx()));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert_eq!(f.warp, Some(0));
    assert_eq!(f.lane, Some(22), "lane 22 is the first with tidx + 10 >= 32");
    match f.kind {
        FaultKind::OutOfBounds { space, index, write, .. } => {
            assert_eq!(space, MemSpace::Shared);
            assert_eq!(index, 32);
            assert!(write);
        }
        ref other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn oob_local_read() {
    let mut b = KernelBuilder::new("ooblr", 32);
    b.param_global_f32("out");
    b.local_array("buf", Scalar::F32, 8);
    b.store("buf", i(0), f(1.0));
    b.store("out", tidx(), load("buf", i(8)));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert_eq!((f.warp, f.lane), (Some(0), Some(0)));
    match f.kind {
        FaultKind::OutOfBounds { space, ref array, index, len, write } => {
            assert_eq!(space, MemSpace::Local);
            assert_eq!(array, "buf");
            assert_eq!((index, len), (8, 8));
            assert!(!write);
        }
        ref other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn oob_local_write_negative_index() {
    let mut b = KernelBuilder::new("ooblw", 32);
    b.param_global_f32("out");
    b.local_array("buf", Scalar::F32, 8);
    b.store("buf", i(-1), f(1.0));
    b.store("out", tidx(), load("buf", i(0)));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert_eq!((f.warp, f.lane), (Some(0), Some(0)));
    match f.kind {
        FaultKind::OutOfBounds { space, index, write, .. } => {
            assert_eq!(space, MemSpace::Local);
            assert_eq!(index, -1, "negative indices are reported as-is");
            assert!(write);
        }
        ref other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

// -------------------------------------------------------------- races ---

#[test]
fn shared_memory_race_is_typed_and_cross_warp() {
    let mut b = KernelBuilder::new("racy", 64);
    b.param_global_f32("out");
    b.shared_array("tile", Scalar::F32, 64);
    b.store("tile", tidx(), cast(Scalar::F32, tidx()));
    // Missing __syncthreads(): warp 1 reads words warp 0 wrote.
    b.store("out", tidx(), load("tile", i(63) - tidx()));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::checked()));
    assert_eq!(f.kernel, "racy");
    match f.kind {
        FaultKind::SharedRace { ref array, prev_warp, warp, prev_write, write, .. } => {
            assert_eq!(array, "tile");
            assert_ne!(prev_warp, warp, "a race is cross-warp by definition");
            assert!(prev_write || write, "at least one side must write");
            assert_eq!(f.warp, Some(warp), "fault is attributed to the second accessor");
        }
        ref other => panic!("expected SharedRace, got {other:?}"),
    }
}

// ----------------------------------------------------------- barriers ---

#[test]
fn barrier_under_intra_warp_divergence() {
    let mut b = KernelBuilder::new("bardiv", 32);
    b.param_global_f32("out");
    b.if_(lt(tidx(), i(16)), |b| b.sync());
    b.store("out", tidx(), f(1.0));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert_eq!(f.warp, Some(0));
    match f.kind {
        FaultKind::BarrierDivergence { ref detail } => {
            assert!(detail.contains("not warp-uniform"), "{detail}");
        }
        ref other => panic!("expected BarrierDivergence, got {other:?}"),
    }
}

#[test]
fn barrier_under_cross_warp_divergence() {
    // Each warp is internally uniform, but warp 0 takes the branch and
    // warp 1 does not — the whole block must agree around a barrier.
    let mut b = KernelBuilder::new("bardiv2", 64);
    b.param_global_f32("out");
    b.if_(lt(tidx(), i(32)), |b| b.sync());
    b.store("out", tidx(), f(1.0));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert_eq!(f.warp, Some(1), "the disagreeing warp is reported");
    match f.kind {
        FaultKind::BarrierDivergence { ref detail } => {
            assert!(detail.contains("across warps"), "{detail}");
        }
        ref other => panic!("expected BarrierDivergence, got {other:?}"),
    }
}

// -------------------------------------------------- names and typing ---

#[test]
fn undeclared_scalar() {
    let mut b = KernelBuilder::new("undeclared", 32);
    b.param_global_f32("out");
    b.store("out", tidx(), v("nope"));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert_eq!(f.warp, Some(0));
    assert!(matches!(f.kind, FaultKind::UndeclaredName { ref name } if name == "nope"));
    assert!(f.context.as_deref().unwrap_or("").contains("undeclared"));
}

#[test]
fn undeclared_array() {
    let mut b = KernelBuilder::new("noarray", 32);
    b.param_global_f32("out");
    b.store("out", tidx(), load("ghost", tidx()));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert!(matches!(f.kind, FaultKind::UndeclaredName { ref name } if name == "ghost"));
}

#[test]
fn ill_typed_store() {
    let mut b = KernelBuilder::new("illstore", 32);
    b.param_global_f32("out");
    b.store("out", tidx(), i(1)); // i32 value into an f32 buffer
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert_eq!(f.warp, Some(0));
    assert!(matches!(f.kind, FaultKind::IllTyped { .. }), "{:?}", f.kind);
}

#[test]
fn invalid_shfl_width() {
    let mut b = KernelBuilder::new("badshfl", 32);
    b.param_global_f32("out");
    b.decl_f32("x", cast(Scalar::F32, tidx()));
    b.assign("x", shfl(v("x"), i(0), 7)); // 7 is not a power of two
    b.store("out", tidx(), v("x"));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()));
    assert_eq!(f.warp, Some(0));
    assert!(matches!(f.kind, FaultKind::InvalidOperation { .. }), "{:?}", f.kind);
}

// ----------------------------------------------------------- watchdog ---

/// A loop that resets its own induction variable never terminates; the
/// watchdog must convert it into a typed fault instead of hanging.
fn infinite_kernel() -> np_kernel_ir::Kernel {
    let mut b = KernelBuilder::new("spin", 32);
    b.param_global_f32("out");
    b.for_loop("i", i(0), i(10), |b| {
        b.assign("i", i(0));
    });
    b.store("out", tidx(), f(1.0));
    b.finish()
}

#[test]
fn watchdog_catches_infinite_loop() {
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let opts = SimOptions::full().with_watchdog(Some(10_000));
    let f = fault_of(launch(&dev(), &infinite_kernel(), Dim3::x1(1), &mut args, &opts));
    assert_eq!(f.kernel, "spin");
    assert!(matches!(f.kind, FaultKind::Watchdog { limit: 10_000 }), "{:?}", f.kind);
    // Buffers survive the fault.
    assert_eq!(args.get_f32("out").unwrap().len(), 32);
}

#[test]
fn watchdog_budget_spares_terminating_kernels() {
    let mut b = KernelBuilder::new("longloop", 32);
    b.param_global_f32("out");
    b.decl_f32("acc", f(0.0));
    b.for_loop("i", i(0), i(2000), |b| {
        b.assign("acc", v("acc") + f(1.0));
    });
    b.store("out", tidx(), v("acc"));
    let k = b.finish();
    // Generous budget: runs clean.
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full().with_watchdog(Some(1 << 20)))
        .expect("terminates well inside the budget");
    assert_eq!(args.get_f32("out").unwrap()[0], 2000.0);
    // Starved budget: same kernel becomes a watchdog fault.
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let f = fault_of(launch(
        &dev(),
        &k,
        Dim3::x1(1),
        &mut args,
        &SimOptions::full().with_watchdog(Some(100)),
    ));
    assert!(matches!(f.kind, FaultKind::Watchdog { limit: 100 }));
}

// ----------------------------------------------------------- deadline ---

#[test]
fn expired_deadline_frees_a_stuck_launch_with_a_typed_fault() {
    // Watchdog disarmed: only the wall-clock deadline can stop the spin.
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let opts = SimOptions::full().with_watchdog(None).with_deadline_ms(0);
    let f = fault_of(launch(&dev(), &infinite_kernel(), Dim3::x1(1), &mut args, &opts));
    assert_eq!(f.kernel, "spin");
    assert!(matches!(f.kind, FaultKind::Deadline { budget_ms: 0 }), "{:?}", f.kind);
    assert!(f.kind.transient(), "deadlines must classify as retryable");
    // Buffers survive the fault, as with every other kind.
    assert_eq!(args.get_f32("out").unwrap().len(), 32);
}

#[test]
fn generous_deadline_spares_terminating_kernels() {
    let mut b = KernelBuilder::new("quick", 32);
    b.param_global_f32("out");
    b.store("out", tidx(), f(3.0));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let opts = SimOptions::full().with_deadline_ms(60_000);
    launch(&dev(), &k, Dim3::x1(1), &mut args, &opts).expect("finishes well inside a minute");
    assert_eq!(args.get_f32("out").unwrap()[0], 3.0);
}

#[test]
fn deadline_beats_watchdog_when_both_would_fire() {
    // An expired deadline is noticed at the first check boundary even
    // though the (huge) step budget would eventually fire too.
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let opts = SimOptions::full().with_watchdog(Some(u64::MAX)).with_deadline_ms(0);
    let f = fault_of(launch(&dev(), &infinite_kernel(), Dim3::x1(1), &mut args, &opts));
    assert!(matches!(f.kind, FaultKind::Deadline { .. }), "{:?}", f.kind);
}

#[test]
fn watchdog_default_is_armed() {
    assert_eq!(
        SimOptions::default().watchdog_steps,
        Some(np_exec::DEFAULT_WATCHDOG_STEPS),
        "runaway kernels must be caught out of the box"
    );
}

// ---------------------------------------------------- fault injection ---

/// A kernel that reads each space: global a -> local buf -> shared tile ->
/// global out. The forced-fault injector targets one space at a time.
fn staged_copy_kernel() -> np_kernel_ir::Kernel {
    let mut b = KernelBuilder::new("staged", 32);
    b.param_global_f32("a");
    b.param_global_f32("out");
    b.shared_array("tile", Scalar::F32, 32);
    b.local_array("buf", Scalar::F32, 1);
    b.store("buf", i(0), load("a", tidx()));
    b.store("tile", tidx(), load("buf", i(0)));
    b.store("out", tidx(), load("tile", tidx()));
    b.finish()
}

fn injected_fault(space: InjectSpace) -> SimFault {
    let mut args =
        Args::new().buf_f32("a", vec![1.0; 32]).buf_f32("out", vec![0.0; 32]);
    // Rate 1 forces a fault on the first targeted access: deterministic.
    let opts = SimOptions::full().with_injection(InjectConfig::forced(0xF00D, 1, space));
    fault_of(launch(&dev(), &staged_copy_kernel(), Dim3::x1(1), &mut args, &opts))
}

#[test]
fn forced_injection_global() {
    let f = injected_fault(InjectSpace::Global);
    assert_eq!(f.warp, Some(0));
    assert!(f.lane.is_some());
    assert!(f.context.as_deref().unwrap_or("").contains("load"));
    assert!(
        matches!(f.kind, FaultKind::Injected { space: InjectSpace::Global, .. }),
        "{:?}",
        f.kind
    );
}

#[test]
fn forced_injection_shared() {
    let f = injected_fault(InjectSpace::Shared);
    assert_eq!(f.warp, Some(0));
    assert!(f.lane.is_some());
    assert!(
        matches!(f.kind, FaultKind::Injected { space: InjectSpace::Shared, .. }),
        "{:?}",
        f.kind
    );
}

#[test]
fn forced_injection_local() {
    let f = injected_fault(InjectSpace::Local);
    assert_eq!(f.warp, Some(0));
    assert!(f.lane.is_some());
    assert!(
        matches!(f.kind, FaultKind::Injected { space: InjectSpace::Local, .. }),
        "{:?}",
        f.kind
    );
}

#[test]
fn bitflips_corrupt_silently_and_deterministically() {
    let run = |seed: u64| -> Vec<f32> {
        let mut args =
            Args::new().buf_f32("a", vec![1.0; 32]).buf_f32("out", vec![0.0; 32]);
        let opts = SimOptions::full().with_injection(InjectConfig::bitflips(seed, 1));
        launch(&dev(), &staged_copy_kernel(), Dim3::x1(1), &mut args, &opts)
            .expect("bit flips corrupt data but never fault");
        args.get_f32("out").unwrap().to_vec()
    };
    let flipped = run(0xBEEF);
    assert_ne!(flipped, vec![1.0; 32], "rate-1 flips must corrupt the copy");
    assert_eq!(
        flipped.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        run(0xBEEF).iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "same seed, same corruption"
    );
}

// ------------------------------------------------- faults are values ---

/// Faults convert into `ExecError` and expose `std::error::Error` sources,
/// so downstream callers can use `?` and error-chain reporting.
#[test]
fn faults_are_ordinary_errors() {
    use std::error::Error as _;
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    let mut b = KernelBuilder::new("oob", 32);
    b.param_global_f32("out");
    b.store("out", i(999), f(0.0));
    let k = b.finish();
    let err = launch(&dev(), &k, Dim3::x1(1), &mut args, &SimOptions::full()).unwrap_err();
    assert!(err.fault().is_some());
    let src = err.source().expect("ExecError::Fault chains to the SimFault");
    assert!(src.to_string().contains("out-of-bounds"), "{src}");
}
