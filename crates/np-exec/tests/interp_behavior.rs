//! Interpreter behaviour tests: divergence, nested control flow, type
//! system enforcement, barrier contracts, `__shfl` variants, constant /
//! texture paths, and grid geometry.

use np_exec::{launch, Args, SimOptions};
use np_gpu_sim::DeviceConfig;
use np_kernel_ir::expr::dsl::*;
use np_kernel_ir::types::Dim3;
use np_kernel_ir::{Kernel, KernelBuilder, Scalar};

fn dev() -> DeviceConfig {
    DeviceConfig::small_test()
}

fn run1(k: &Kernel, args: &mut Args) {
    launch(&dev(), k, Dim3::x1(1), args, &SimOptions::full()).unwrap();
}

#[test]
fn nested_divergence_resolves_per_lane() {
    // Four-way divergence: out = 2*q + (t%2) where q = t/8 parity tree.
    let mut b = KernelBuilder::new("nest", 32);
    b.param_global_f32("out");
    b.decl_i32("t", tidx());
    b.decl_i32("r", i(0));
    b.if_else(
        lt(v("t"), i(16)),
        |b| {
            b.if_else(
                lt(v("t") % i(2), i(1)),
                |b| b.assign("r", i(10)),
                |b| b.assign("r", i(11)),
            );
        },
        |b| {
            b.if_else(
                lt(v("t") % i(2), i(1)),
                |b| b.assign("r", i(20)),
                |b| b.assign("r", i(21)),
            );
        },
    );
    b.store("out", v("t"), cast(Scalar::F32, v("r")));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    run1(&k, &mut args);
    let out = args.get_f32("out").unwrap();
    for (t, &x) in out.iter().enumerate() {
        let expect = if t < 16 { 10 + t % 2 } else { 20 + t % 2 };
        assert_eq!(x, expect as f32, "lane {t}");
    }
}

#[test]
fn divergent_loop_trip_counts() {
    // Each lane loops t times: out[t] = t.
    let mut b = KernelBuilder::new("divloop", 32);
    b.param_global_f32("out");
    b.decl_i32("t", tidx());
    b.decl_f32("c", f(0.0));
    b.for_loop("i", i(0), v("t"), |b| {
        b.assign("c", v("c") + f(1.0));
    });
    b.store("out", v("t"), v("c"));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    run1(&k, &mut args);
    let out = args.get_f32("out").unwrap();
    for (t, &x) in out.iter().enumerate() {
        assert_eq!(x, t as f32);
    }
}

#[test]
fn loop_iterator_scoping_allows_reuse() {
    // The same iterator name in two sequential loops.
    let mut b = KernelBuilder::new("reuse", 32);
    b.param_global_f32("out");
    b.decl_f32("acc", f(0.0));
    b.for_loop("i", i(0), i(3), |b| b.assign("acc", v("acc") + f(1.0)));
    b.for_loop("i", i(0), i(5), |b| b.assign("acc", v("acc") + f(10.0)));
    b.store("out", tidx(), v("acc"));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    run1(&k, &mut args);
    assert!(args.get_f32("out").unwrap().iter().all(|&x| x == 53.0));
}

#[test]
fn shfl_up_down_and_xor_semantics() {
    let mut b = KernelBuilder::new("shfl3", 32);
    b.param_global_f32("up");
    b.param_global_f32("down");
    b.param_global_f32("xor");
    b.decl_f32("x", cast(Scalar::F32, tidx()));
    b.store("up", tidx(), shfl_up(v("x"), i(1), 8));
    b.store("down", tidx(), shfl_down(v("x"), i(2), 8));
    b.store("xor", tidx(), shfl_xor(v("x"), i(3), 8));
    let k = b.finish();
    let mut args = Args::new()
        .buf_f32("up", vec![0.0; 32])
        .buf_f32("down", vec![0.0; 32])
        .buf_f32("xor", vec![0.0; 32]);
    run1(&k, &mut args);
    let (up, down, xor) =
        (args.get_f32("up").unwrap(), args.get_f32("down").unwrap(), args.get_f32("xor").unwrap());
    for l in 0..32usize {
        let base = l / 8 * 8;
        // up: read lane l-1, clamped at the group base.
        let e_up = if l > base { l - 1 } else { l };
        // down: read lane l+2, clamped at the group end.
        let e_down = if l + 2 < base + 8 { l + 2 } else { l };
        let e_xor = l ^ 3; // stays in-group for mask 3 < 8
        assert_eq!(up[l], e_up as f32, "up lane {l}");
        assert_eq!(down[l], e_down as f32, "down lane {l}");
        assert_eq!(xor[l], e_xor as f32, "xor lane {l}");
    }
}

#[test]
fn constant_and_texture_params_read_correctly() {
    let mut b = KernelBuilder::new("ct", 32);
    b.param_const_f32("ctab");
    b.param_tex_f32("ttab");
    b.param_global_f32("out");
    b.store("out", tidx(), load("ctab", tidx() % i(4)) + load("ttab", tidx()));
    let k = b.finish();
    let mut args = Args::new()
        .buf_f32("ctab", vec![10.0, 20.0, 30.0, 40.0])
        .buf_f32("ttab", (0..32).map(|i| i as f32).collect())
        .buf_f32("out", vec![0.0; 32]);
    run1(&k, &mut args);
    let out = args.get_f32("out").unwrap();
    for (t, &x) in out.iter().enumerate() {
        assert_eq!(x, 10.0 * (t % 4 + 1) as f32 + t as f32);
    }
}

#[test]
fn stores_to_read_only_spaces_panic() {
    for make in [
        |b: &mut KernelBuilder| b.param_const_f32("ro"),
        |b: &mut KernelBuilder| b.param_tex_f32("ro"),
    ] {
        let mut b = KernelBuilder::new("wr", 32);
        make(&mut b);
        b.param_global_f32("out");
        b.store("ro", tidx(), f(1.0));
        b.store("out", tidx(), f(0.0));
        let k = b.finish();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut args = Args::new()
                .buf_f32("ro", vec![0.0; 32])
                .buf_f32("out", vec![0.0; 32]);
            run1(&k, &mut args);
        }));
        assert!(result.is_err(), "writing read-only memory must panic");
    }
}

#[test]
fn barrier_under_divergent_control_flow_panics() {
    let mut b = KernelBuilder::new("badbar", 64);
    b.param_global_f32("out");
    b.if_(lt(tidx(), i(10)), |b| b.sync());
    b.store("out", tidx(), f(1.0));
    let k = b.finish();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
        run1(&k, &mut args);
    }));
    let err = result.unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("divergent"), "got {msg:?}");
}

#[test]
fn uniform_conditional_barrier_is_allowed() {
    // Block-uniform condition around a barrier is legal.
    let mut b = KernelBuilder::new("okbar", 64);
    b.param_global_f32("out");
    b.param_scalar_i32("flag");
    b.shared_array("tile", Scalar::F32, 64);
    b.store("tile", tidx(), cast(Scalar::F32, tidx()));
    b.if_(gt(p("flag"), i(0)), |b| {
        b.sync();
        b.store("out", tidx(), load("tile", i(63) - tidx()));
    });
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 64]).i32("flag", 1);
    run1(&k, &mut args);
    assert_eq!(args.get_f32("out").unwrap()[0], 63.0);
    // And the false branch runs no stores.
    let mut args = Args::new().buf_f32("out", vec![-1.0; 64]).i32("flag", 0);
    run1(&k, &mut args);
    assert!(args.get_f32("out").unwrap().iter().all(|&x| x == -1.0));
}

#[test]
fn integer_and_unsigned_arithmetic() {
    let mut b = KernelBuilder::new("ints", 32);
    b.param_global_i32("out");
    b.decl_i32("t", tidx());
    b.decl_i32("a", v("t") * i(-3) + i(100));
    b.decl_i32("s", shl(i(1), v("t") % i(8)));
    b.decl(
        "u",
        Scalar::U32,
        cast(Scalar::U32, v("t")) + u(1_000_000),
    );
    b.store("out", v("t"), v("a") % i(7) + v("s") + cast(Scalar::I32, v("u") % u(97)));
    let k = b.finish();
    let mut args = Args::new().buf_i32("out", vec![0; 32]);
    run1(&k, &mut args);
    let out = args.get_i32("out").unwrap();
    for t in 0..32i32 {
        let a = t * -3 + 100;
        let s = 1 << (t % 8);
        let u = (t as u32 + 1_000_000) % 97;
        assert_eq!(out[t as usize], a % 7 + s + u as i32, "lane {t}");
    }
}

#[test]
fn multi_block_grids_use_block_indices() {
    let mut b = KernelBuilder::new("grid", 32);
    b.param_global_f32("out");
    b.store(
        "out",
        tidx() + bidx() * bdimx(),
        cast(Scalar::F32, bidx() * i(1000) + tidx()),
    );
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 4 * 32]);
    launch(&dev(), &k, Dim3::x1(4), &mut args, &SimOptions::full()).unwrap();
    let out = args.get_f32("out").unwrap();
    for blk in 0..4 {
        for t in 0..32 {
            assert_eq!(out[blk * 32 + t], (blk * 1000 + t) as f32);
        }
    }
}

#[test]
fn partial_warp_blocks_only_run_real_threads() {
    // 40-thread blocks: lanes 8..32 of warp 1 must not store.
    let mut b = KernelBuilder::new("ragged", 40);
    b.param_global_f32("out");
    b.store("out", tidx(), f(1.0));
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 64]);
    run1(&k, &mut args);
    let out = args.get_f32("out").unwrap();
    assert!(out[..40].iter().all(|&x| x == 1.0));
    assert!(out[40..].iter().all(|&x| x == 0.0));
}

#[test]
fn select_is_evaluated_without_divergence_cost() {
    // Functional check: both arms evaluated, condition picks per lane.
    let mut b = KernelBuilder::new("sel", 32);
    b.param_global_f32("out");
    b.decl_i32("t", tidx());
    b.store(
        "out",
        v("t"),
        select(eq(v("t") % i(3), i(0)), cast(Scalar::F32, v("t")), f(-1.0)),
    );
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    run1(&k, &mut args);
    let out = args.get_f32("out").unwrap();
    for (t, &x) in out.iter().enumerate() {
        let expect = if t % 3 == 0 { t as f32 } else { -1.0 };
        assert_eq!(x, expect);
    }
}

#[test]
fn math_intrinsics_match_std() {
    let mut b = KernelBuilder::new("math", 32);
    b.param_global_f32("out");
    b.decl_f32("x", cast(Scalar::F32, tidx()) * f(0.25) + f(0.1));
    b.store(
        "out",
        tidx(),
        sqrt(v("x")) + exp(-v("x")) + log(v("x") + f(1.0)) + abs(-v("x")),
    );
    let k = b.finish();
    let mut args = Args::new().buf_f32("out", vec![0.0; 32]);
    run1(&k, &mut args);
    let out = args.get_f32("out").unwrap();
    for (t, &got) in out.iter().enumerate() {
        let x = t as f32 * 0.25 + 0.1;
        let expect = x.sqrt() + (-x).exp() + (x + 1.0).ln() + x;
        assert!((got - expect).abs() < 1e-5, "lane {t}: {got} vs {expect}");
    }
}
