//! Capture artifacts: the functional half of a launch, frozen.
//!
//! A [`CapturedLaunch`] is everything interpretation produces that the
//! timing engine consumes — the per-block [`BlockTrace`]s with their
//! profile counters — plus the launch geometry, the resource estimate, the
//! interpretation-affecting configuration (sampling, race mode, the
//! device's transaction/line sizes that were folded into the traces at
//! emission time), and the interpretation outcomes (race report, total
//! interpreted steps). Given a capture, [`crate::replay`] rebuilds the
//! exact timing report a direct simulation would have produced, without
//! re-interpreting the kernel.
//!
//! ## The `np-trace-v1` byte format
//!
//! ```text
//! magic   12 bytes  b"np-trace-v1\0"
//! digest   8 bytes  FNV-1a 64 of every body byte, little-endian
//! body     ...      field-by-field little-endian encoding (see encode_body)
//! ```
//!
//! The format is versioned by its magic: a future `np-trace-v2` changes
//! the magic, and v1 decoders reject it with [`TraceDecodeError::BadMagic`]
//! rather than misreading it. The digest covers *every* body field —
//! including the sampling configuration (`max_blocks`, `sim_blocks`,
//! `total_blocks`), so a sampled capture can never silently impersonate a
//! full one — and is verified before structural decoding, so any corrupt
//! byte yields a typed error, never a silently wrong trace. Encoding is
//! canonical: `decode(encode(c)) == c` and `encode(decode(b)) == b` for
//! every valid artifact, which is what lets golden snapshots pin captures
//! byte-for-byte.

use crate::occupancy::KernelResources;
use crate::profile::ProfileCounters;
use crate::racecheck::{
    AccessSite, RaceFinding, RaceKind, RaceReport, RaceSpace,
};
use crate::trace::{BlockTrace, ShflKind, WarpOp, WarpTrace};

/// Magic prefix naming the format version.
pub const TRACE_MAGIC: &[u8; 12] = b"np-trace-v1\0";

/// FNV-1a 64-bit hash — stable across platforms and builds, the same
/// function the serve cache uses for content addressing. Re-exported
/// from the shared `np-obs` home so the stack has exactly one FNV.
pub use np_obs::fnv::fnv64;

/// How the happens-before race checker was armed when a capture was taken.
/// Mirrors `np-exec`'s `RaceCheckMode` without depending on it (this crate
/// sits below the interpreter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapturedRaceMode {
    #[default]
    Off,
    Record,
    /// Fatal mode that found nothing — a fatal finding aborts the launch,
    /// so no artifact exists for it.
    Fatal,
}

impl CapturedRaceMode {
    fn to_byte(self) -> u8 {
        match self {
            CapturedRaceMode::Off => 0,
            CapturedRaceMode::Record => 1,
            CapturedRaceMode::Fatal => 2,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(CapturedRaceMode::Off),
            1 => Some(CapturedRaceMode::Record),
            2 => Some(CapturedRaceMode::Fatal),
            _ => None,
        }
    }
}

/// One launch's interpretation, frozen into a replayable artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedLaunch {
    /// Kernel name, carried into the replayed report.
    pub kernel_name: String,
    /// Grid dimensions of the launch.
    pub grid: [u32; 3],
    /// Block dimensions of the kernel.
    pub block_dim: [u32; 3],
    /// Blocks in the full grid.
    pub total_blocks: u64,
    /// Blocks actually interpreted (less than `total_blocks` under wave
    /// sampling).
    pub sim_blocks: u64,
    /// The sampling configuration interpretation ran under (`None` = full).
    /// Part of the digest: a sampled capture can never be replayed as full.
    pub max_blocks: Option<u64>,
    /// Global-memory transaction size the traces' coalescing summaries were
    /// computed with. Replay on a device with a different value is rejected.
    pub txn_bytes: u32,
    /// L1 line size folded into the traces' local/texture line addresses.
    pub l1_line: u32,
    /// Resource estimate the launch ran with (drives occupancy at replay).
    pub resources: KernelResources,
    /// Whether the warp-granular shared-memory race detector was armed.
    pub detect_races: bool,
    /// How the happens-before checker was armed.
    pub race_mode: CapturedRaceMode,
    /// Total interpreted steps across all simulated blocks — lets replay
    /// reproduce the watchdog verdict for any budget without re-running.
    pub total_steps: u64,
    /// The happens-before race outcome of the captured run.
    pub race: RaceReport,
    /// The traces themselves, in block order.
    pub blocks: Vec<BlockTrace>,
}

impl CapturedLaunch {
    /// True when the capture was taken under wave sampling.
    pub fn is_sampled(&self) -> bool {
        self.max_blocks.is_some() || self.sim_blocks < self.total_blocks
    }

    /// FNV-64 content digest over the encoded body (what the header stores).
    pub fn digest(&self) -> u64 {
        let mut body = Vec::new();
        self.encode_body(&mut body);
        fnv64(&body)
    }

    /// Encode into the versioned `np-trace-v1` byte format.
    pub fn encode(&self) -> Vec<u8> {
        let _obs = np_obs::span("trace.encode");
        let mut body = Vec::new();
        self.encode_body(&mut body);
        let mut out = Vec::with_capacity(TRACE_MAGIC.len() + 8 + body.len());
        out.extend_from_slice(TRACE_MAGIC);
        out.extend_from_slice(&fnv64(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Strict round-trip decode: verifies the magic and the content digest
    /// before any structural parsing, then requires every byte to be
    /// consumed. Never panics on arbitrary input.
    pub fn decode(bytes: &[u8]) -> Result<CapturedLaunch, TraceDecodeError> {
        let _obs = np_obs::span("trace.decode");
        if bytes.len() < TRACE_MAGIC.len() + 8 {
            if !bytes.starts_with(&TRACE_MAGIC[..bytes.len().min(TRACE_MAGIC.len())]) {
                return Err(TraceDecodeError::BadMagic);
            }
            return Err(TraceDecodeError::Truncated { at: "header" });
        }
        if &bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
            return Err(TraceDecodeError::BadMagic);
        }
        let mut digest_bytes = [0u8; 8];
        digest_bytes.copy_from_slice(&bytes[TRACE_MAGIC.len()..TRACE_MAGIC.len() + 8]);
        let stored = u64::from_le_bytes(digest_bytes);
        let body = &bytes[TRACE_MAGIC.len() + 8..];
        let computed = fnv64(body);
        if stored != computed {
            return Err(TraceDecodeError::DigestMismatch { stored, computed });
        }
        let mut cur = Cursor { buf: body, pos: 0 };
        let cap = decode_body(&mut cur)?;
        if cur.pos != body.len() {
            return Err(TraceDecodeError::TrailingBytes { extra: body.len() - cur.pos });
        }
        Ok(cap)
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        put_str(out, &self.kernel_name);
        for d in self.grid {
            put_u32(out, d);
        }
        for d in self.block_dim {
            put_u32(out, d);
        }
        put_u64(out, self.total_blocks);
        put_u64(out, self.sim_blocks);
        match self.max_blocks {
            None => out.push(0),
            Some(m) => {
                out.push(1);
                put_u64(out, m);
            }
        }
        put_u32(out, self.txn_bytes);
        put_u32(out, self.l1_line);
        put_u32(out, self.resources.block_size);
        put_u32(out, self.resources.regs_per_thread);
        put_u32(out, self.resources.shared_per_block);
        put_u32(out, self.resources.local_per_thread);
        out.push(self.detect_races as u8);
        out.push(self.race_mode.to_byte());
        put_u64(out, self.total_steps);
        encode_race_report(out, &self.race);
        put_u32(out, self.blocks.len() as u32);
        for b in &self.blocks {
            put_u32(out, b.warps.len() as u32);
            for w in &b.warps {
                encode_counters(out, &w.counters);
                put_u32(out, w.ops.len() as u32);
                for op in &w.ops {
                    encode_op(out, op);
                }
            }
        }
    }
}

/// Typed decode failure. Every corrupt or truncated input maps to one of
/// these — decoding never panics and never yields a silently wrong trace
/// (the digest check rejects any body byte flip before structural parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The input does not start with the `np-trace-v1` magic (wrong file,
    /// or a future format version).
    BadMagic,
    /// The stored content digest does not match the body bytes.
    DigestMismatch { stored: u64, computed: u64 },
    /// The input ended mid-field.
    Truncated { at: &'static str },
    /// An enum tag byte holds no known value.
    InvalidTag { what: &'static str, tag: u8 },
    /// A string field is not valid UTF-8.
    InvalidUtf8 { what: &'static str },
    /// A length prefix exceeds the bytes actually present.
    LengthOverflow { what: &'static str, len: u64 },
    /// Bytes remain after a complete decode.
    TrailingBytes { extra: usize },
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::BadMagic => write!(f, "not an np-trace-v1 artifact"),
            TraceDecodeError::DigestMismatch { stored, computed } => write!(
                f,
                "content digest mismatch: header says {stored:#018x}, body hashes to \
                 {computed:#018x}"
            ),
            TraceDecodeError::Truncated { at } => write!(f, "truncated while reading {at}"),
            TraceDecodeError::InvalidTag { what, tag } => {
                write!(f, "invalid {what} tag {tag}")
            }
            TraceDecodeError::InvalidUtf8 { what } => write!(f, "{what} is not valid UTF-8"),
            TraceDecodeError::LengthOverflow { what, len } => {
                write!(f, "{what} length {len} exceeds remaining input")
            }
            TraceDecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete artifact")
            }
        }
    }
}

impl std::error::Error for TraceDecodeError {}

// ---- primitive writers ----

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_lines(out: &mut Vec<u8>, lines: &[u64]) {
    put_u32(out, lines.len() as u32);
    for &l in lines {
        put_u64(out, l);
    }
}

fn encode_counters(out: &mut Vec<u8>, c: &ProfileCounters) {
    for (_, v) in c.fields() {
        put_u64(out, v);
    }
}

fn encode_op(out: &mut Vec<u8>, op: &WarpOp) {
    match op {
        WarpOp::Alu { count } => {
            out.push(0);
            put_u16(out, *count);
        }
        WarpOp::Sfu { count } => {
            out.push(1);
            put_u16(out, *count);
        }
        WarpOp::GlobalLoad { segs, bytes } => {
            out.push(2);
            put_lines(out, segs);
            put_u16(out, *bytes);
        }
        WarpOp::GlobalStore { segs, bytes } => {
            out.push(3);
            put_lines(out, segs);
            put_u16(out, *bytes);
        }
        WarpOp::SharedLoad { passes } => {
            out.push(4);
            out.push(*passes);
        }
        WarpOp::SharedStore { passes } => {
            out.push(5);
            out.push(*passes);
        }
        WarpOp::LocalLoad { lines } => {
            out.push(6);
            put_lines(out, lines);
        }
        WarpOp::LocalStore { lines } => {
            out.push(7);
            put_lines(out, lines);
        }
        WarpOp::TexLoad { lines } => {
            out.push(8);
            put_lines(out, lines);
        }
        WarpOp::ConstLoad { words } => {
            out.push(9);
            out.push(*words);
        }
        WarpOp::Shfl { kind } => {
            out.push(10);
            out.push(match kind {
                ShflKind::Broadcast => 0,
                ShflKind::Xor => 1,
                ShflKind::Up => 2,
                ShflKind::Down => 3,
            });
        }
        WarpOp::Bar => out.push(11),
    }
}

fn encode_site(out: &mut Vec<u8>, s: &AccessSite) {
    put_u32(out, s.thread);
    put_u64(out, s.pc);
    put_u32(out, s.epoch);
    out.push(s.write as u8);
}

fn space_byte(s: RaceSpace) -> u8 {
    match s {
        RaceSpace::Shared => 0,
        RaceSpace::Global => 1,
    }
}

fn encode_race_report(out: &mut Vec<u8>, r: &RaceReport) {
    out.push(r.checked as u8);
    put_u64(out, r.blocks_checked);
    put_u64(out, r.accesses_checked);
    put_u64(out, r.barriers_seen);
    out.push(r.truncated as u8);
    put_u32(out, r.findings.len() as u32);
    for finding in &r.findings {
        match finding {
            RaceFinding::MemoryRace { space, block, array, index, kind, first, second } => {
                out.push(0);
                out.push(space_byte(*space));
                put_u64(out, *block);
                put_str(out, array);
                put_u64(out, *index);
                out.push(match kind {
                    RaceKind::WriteWrite => 0,
                    RaceKind::ReadWrite => 1,
                });
                encode_site(out, first);
                encode_site(out, second);
            }
            RaceFinding::BarrierDivergence {
                block,
                thread_a,
                count_a,
                thread_b,
                count_b,
                sites_differ,
            } => {
                out.push(1);
                put_u64(out, *block);
                put_u32(out, *thread_a);
                put_u32(out, *count_a);
                put_u32(out, *thread_b);
                put_u32(out, *count_b);
                out.push(*sites_differ as u8);
            }
            RaceFinding::MasterGatingViolation { block, space, array, index, thread, slave, pc } => {
                out.push(2);
                put_u64(out, *block);
                out.push(space_byte(*space));
                put_str(out, array);
                put_u64(out, *index);
                put_u32(out, *thread);
                put_u32(out, *slave);
                put_u64(out, *pc);
            }
        }
    }
}

// ---- decoding ----

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, at: &'static str) -> Result<&[u8], TraceDecodeError> {
        if self.remaining() < n {
            return Err(TraceDecodeError::Truncated { at });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, at: &'static str) -> Result<u8, TraceDecodeError> {
        Ok(self.take(1, at)?[0])
    }

    fn bool(&mut self, at: &'static str) -> Result<bool, TraceDecodeError> {
        match self.u8(at)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(TraceDecodeError::InvalidTag { what: at, tag }),
        }
    }

    fn u16(&mut self, at: &'static str) -> Result<u16, TraceDecodeError> {
        let b = self.take(2, at)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, at: &'static str) -> Result<u32, TraceDecodeError> {
        let b = self.take(4, at)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, at: &'static str) -> Result<u64, TraceDecodeError> {
        let b = self.take(8, at)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// A count prefix for elements at least `elem_size` bytes each; checked
    /// against the remaining input so a corrupt length can never trigger a
    /// huge allocation.
    fn count(
        &mut self,
        at: &'static str,
        elem_size: usize,
    ) -> Result<usize, TraceDecodeError> {
        let n = self.u32(at)? as usize;
        if n.saturating_mul(elem_size) > self.remaining() {
            return Err(TraceDecodeError::LengthOverflow { what: at, len: n as u64 });
        }
        Ok(n)
    }

    fn string(&mut self, at: &'static str) -> Result<String, TraceDecodeError> {
        let n = self.count(at, 1)?;
        let bytes = self.take(n, at)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| TraceDecodeError::InvalidUtf8 { what: at })
    }

    fn lines(&mut self, at: &'static str) -> Result<Vec<u64>, TraceDecodeError> {
        let n = self.count(at, 8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64(at)?);
        }
        Ok(v)
    }
}

fn decode_site(cur: &mut Cursor) -> Result<AccessSite, TraceDecodeError> {
    Ok(AccessSite {
        thread: cur.u32("site.thread")?,
        pc: cur.u64("site.pc")?,
        epoch: cur.u32("site.epoch")?,
        write: cur.bool("site.write")?,
    })
}

fn decode_space(cur: &mut Cursor) -> Result<RaceSpace, TraceDecodeError> {
    match cur.u8("race space")? {
        0 => Ok(RaceSpace::Shared),
        1 => Ok(RaceSpace::Global),
        tag => Err(TraceDecodeError::InvalidTag { what: "race space", tag }),
    }
}

fn decode_race_report(cur: &mut Cursor) -> Result<RaceReport, TraceDecodeError> {
    let checked = cur.bool("race.checked")?;
    let blocks_checked = cur.u64("race.blocks_checked")?;
    let accesses_checked = cur.u64("race.accesses_checked")?;
    let barriers_seen = cur.u64("race.barriers_seen")?;
    let truncated = cur.bool("race.truncated")?;
    let n = cur.count("race findings", 1)?;
    let mut findings = Vec::with_capacity(n);
    for _ in 0..n {
        let finding = match cur.u8("race finding")? {
            0 => {
                let space = decode_space(cur)?;
                let block = cur.u64("finding.block")?;
                let array = cur.string("finding.array")?;
                let index = cur.u64("finding.index")?;
                let kind = match cur.u8("race kind")? {
                    0 => RaceKind::WriteWrite,
                    1 => RaceKind::ReadWrite,
                    tag => return Err(TraceDecodeError::InvalidTag { what: "race kind", tag }),
                };
                let first = decode_site(cur)?;
                let second = decode_site(cur)?;
                RaceFinding::MemoryRace { space, block, array, index, kind, first, second }
            }
            1 => RaceFinding::BarrierDivergence {
                block: cur.u64("finding.block")?,
                thread_a: cur.u32("finding.thread_a")?,
                count_a: cur.u32("finding.count_a")?,
                thread_b: cur.u32("finding.thread_b")?,
                count_b: cur.u32("finding.count_b")?,
                sites_differ: cur.bool("finding.sites_differ")?,
            },
            2 => {
                let block = cur.u64("finding.block")?;
                let space = decode_space(cur)?;
                let array = cur.string("finding.array")?;
                let index = cur.u64("finding.index")?;
                let thread = cur.u32("finding.thread")?;
                let slave = cur.u32("finding.slave")?;
                let pc = cur.u64("finding.pc")?;
                RaceFinding::MasterGatingViolation { block, space, array, index, thread, slave, pc }
            }
            tag => return Err(TraceDecodeError::InvalidTag { what: "race finding", tag }),
        };
        findings.push(finding);
    }
    Ok(RaceReport { checked, findings, blocks_checked, accesses_checked, barriers_seen, truncated })
}

fn decode_counters(cur: &mut Cursor) -> Result<ProfileCounters, TraceDecodeError> {
    // Field order is the canonical `ProfileCounters::fields()` order; a
    // debug assertion in the roundtrip tests guards against reordering.
    Ok(ProfileCounters {
        instructions: cur.u64("counters")?,
        divergence_events: cur.u64("counters")?,
        divergent_instructions: cur.u64("counters")?,
        global_transactions: cur.u64("counters")?,
        ideal_global_transactions: cur.u64("counters")?,
        global_bytes: cur.u64("counters")?,
        shared_accesses: cur.u64("counters")?,
        bank_conflict_replays: cur.u64("counters")?,
        shared_bytes: cur.u64("counters")?,
        shared_broadcasts: cur.u64("counters")?,
        local_accesses: cur.u64("counters")?,
        local_bytes: cur.u64("counters")?,
        tex_accesses: cur.u64("counters")?,
        tex_bytes: cur.u64("counters")?,
        const_accesses: cur.u64("counters")?,
        const_bytes: cur.u64("counters")?,
        shfl_broadcasts: cur.u64("counters")?,
        shfl_reduction_steps: cur.u64("counters")?,
        shfl_scan_steps: cur.u64("counters")?,
        barrier_waits: cur.u64("counters")?,
    })
}

fn decode_op(cur: &mut Cursor) -> Result<WarpOp, TraceDecodeError> {
    Ok(match cur.u8("warp op")? {
        0 => WarpOp::Alu { count: cur.u16("alu count")? },
        1 => WarpOp::Sfu { count: cur.u16("sfu count")? },
        2 => WarpOp::GlobalLoad { segs: cur.lines("global segs")?, bytes: cur.u16("global bytes")? },
        3 => {
            WarpOp::GlobalStore { segs: cur.lines("global segs")?, bytes: cur.u16("global bytes")? }
        }
        4 => WarpOp::SharedLoad { passes: cur.u8("shared passes")? },
        5 => WarpOp::SharedStore { passes: cur.u8("shared passes")? },
        6 => WarpOp::LocalLoad { lines: cur.lines("local lines")? },
        7 => WarpOp::LocalStore { lines: cur.lines("local lines")? },
        8 => WarpOp::TexLoad { lines: cur.lines("tex lines")? },
        9 => WarpOp::ConstLoad { words: cur.u8("const words")? },
        10 => WarpOp::Shfl {
            kind: match cur.u8("shfl kind")? {
                0 => ShflKind::Broadcast,
                1 => ShflKind::Xor,
                2 => ShflKind::Up,
                3 => ShflKind::Down,
                tag => return Err(TraceDecodeError::InvalidTag { what: "shfl kind", tag }),
            },
        },
        11 => WarpOp::Bar,
        tag => return Err(TraceDecodeError::InvalidTag { what: "warp op", tag }),
    })
}

fn decode_body(cur: &mut Cursor) -> Result<CapturedLaunch, TraceDecodeError> {
    let kernel_name = cur.string("kernel name")?;
    let grid = [cur.u32("grid")?, cur.u32("grid")?, cur.u32("grid")?];
    let block_dim = [cur.u32("block dim")?, cur.u32("block dim")?, cur.u32("block dim")?];
    let total_blocks = cur.u64("total blocks")?;
    let sim_blocks = cur.u64("sim blocks")?;
    let max_blocks = match cur.u8("max_blocks tag")? {
        0 => None,
        1 => Some(cur.u64("max_blocks")?),
        tag => return Err(TraceDecodeError::InvalidTag { what: "max_blocks tag", tag }),
    };
    let txn_bytes = cur.u32("txn bytes")?;
    let l1_line = cur.u32("l1 line")?;
    let resources = KernelResources {
        block_size: cur.u32("resources")?,
        regs_per_thread: cur.u32("resources")?,
        shared_per_block: cur.u32("resources")?,
        local_per_thread: cur.u32("resources")?,
    };
    let detect_races = cur.bool("detect_races")?;
    let race_mode_byte = cur.u8("race mode")?;
    let race_mode = CapturedRaceMode::from_byte(race_mode_byte)
        .ok_or(TraceDecodeError::InvalidTag { what: "race mode", tag: race_mode_byte })?;
    let total_steps = cur.u64("total steps")?;
    let race = decode_race_report(cur)?;
    let n_blocks = cur.count("blocks", 4)?;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        // Counters alone are 160 bytes per warp.
        let n_warps = cur.count("warps", 160)?;
        let mut warps = Vec::with_capacity(n_warps);
        for _ in 0..n_warps {
            let counters = decode_counters(cur)?;
            let n_ops = cur.count("ops", 1)?;
            let mut ops = Vec::with_capacity(n_ops);
            for _ in 0..n_ops {
                ops.push(decode_op(cur)?);
            }
            warps.push(WarpTrace { ops, counters });
        }
        blocks.push(BlockTrace { warps });
    }
    Ok(CapturedLaunch {
        kernel_name,
        grid,
        block_dim,
        total_blocks,
        sim_blocks,
        max_blocks,
        txn_bytes,
        l1_line,
        resources,
        detect_races,
        race_mode,
        total_steps,
        race,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CapturedLaunch {
        let mut blocks = Vec::new();
        for b in 0..3u64 {
            let mut warps = Vec::new();
            for w in 0..2u64 {
                let ops = vec![
                    WarpOp::Alu { count: (b * 2 + w) as u16 + 1 },
                    WarpOp::GlobalLoad { segs: vec![0, 128], bytes: 128 },
                    WarpOp::SharedStore { passes: 2 },
                    WarpOp::Shfl { kind: ShflKind::Xor },
                    WarpOp::Bar,
                ];
                let counters = ProfileCounters { instructions: 5 + b, ..Default::default() };
                warps.push(WarpTrace { ops, counters });
            }
            blocks.push(BlockTrace { warps });
        }
        CapturedLaunch {
            kernel_name: "k".into(),
            grid: [3, 1, 1],
            block_dim: [64, 1, 1],
            total_blocks: 3,
            sim_blocks: 3,
            max_blocks: None,
            txn_bytes: 128,
            l1_line: 128,
            resources: KernelResources {
                block_size: 64,
                regs_per_thread: 10,
                shared_per_block: 0,
                local_per_thread: 0,
            },
            detect_races: false,
            race_mode: CapturedRaceMode::Off,
            total_steps: 42,
            race: RaceReport::default(),
            blocks,
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let cap = sample();
        let bytes = cap.encode();
        let back = CapturedLaunch::decode(&bytes).unwrap();
        assert_eq!(cap, back);
        assert_eq!(back.encode(), bytes, "encode is canonical");
    }

    #[test]
    fn digest_changes_with_sampling_config() {
        let cap = sample();
        let mut sampled = cap.clone();
        sampled.max_blocks = Some(2);
        assert_ne!(cap.digest(), sampled.digest());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xff;
        assert_eq!(CapturedLaunch::decode(&bytes), Err(TraceDecodeError::BadMagic));
        assert!(matches!(
            CapturedLaunch::decode(b"xx"),
            Err(TraceDecodeError::BadMagic)
        ));
    }

    #[test]
    fn body_corruption_is_a_digest_mismatch() {
        let cap = sample();
        let bytes = cap.encode();
        for i in (TRACE_MAGIC.len() + 8..bytes.len()).step_by(7) {
            let mut b = bytes.clone();
            b[i] ^= 0x01;
            match CapturedLaunch::decode(&b) {
                Err(TraceDecodeError::DigestMismatch { .. }) => {}
                other => panic!("flip at {i}: expected digest mismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn race_findings_roundtrip() {
        let mut cap = sample();
        cap.race = RaceReport {
            checked: true,
            findings: vec![
                RaceFinding::MemoryRace {
                    space: RaceSpace::Shared,
                    block: 1,
                    array: "tile".into(),
                    index: 7,
                    kind: RaceKind::ReadWrite,
                    first: AccessSite { thread: 3, pc: 10, epoch: 0, write: false },
                    second: AccessSite { thread: 35, pc: 20, epoch: 0, write: true },
                },
                RaceFinding::BarrierDivergence {
                    block: 0,
                    thread_a: 0,
                    count_a: 2,
                    thread_b: 9,
                    count_b: 1,
                    sites_differ: false,
                },
                RaceFinding::MasterGatingViolation {
                    block: 2,
                    space: RaceSpace::Global,
                    array: "stage".into(),
                    index: 0,
                    thread: 33,
                    slave: 1,
                    pc: 99,
                },
            ],
            blocks_checked: 3,
            accesses_checked: 100,
            barriers_seen: 6,
            truncated: false,
        };
        let back = CapturedLaunch::decode(&cap.encode()).unwrap();
        assert_eq!(cap, back);
    }

    #[test]
    fn counters_field_order_matches_codec() {
        // The codec writes counters in `fields()` order and decodes them
        // positionally; this pins the two against each other.
        let names: Vec<&str> =
            ProfileCounters::default().fields().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "instructions",
                "divergence_events",
                "divergent_instructions",
                "global_transactions",
                "ideal_global_transactions",
                "global_bytes",
                "shared_accesses",
                "bank_conflict_replays",
                "shared_bytes",
                "shared_broadcasts",
                "local_accesses",
                "local_bytes",
                "tex_accesses",
                "tex_bytes",
                "const_accesses",
                "const_bytes",
                "shfl_broadcasts",
                "shfl_reduction_steps",
                "shfl_scan_steps",
                "barrier_waits",
            ]
        );
    }

    #[test]
    fn truncated_input_is_typed() {
        let bytes = sample().encode();
        // Any truncation point: header truncations report Truncated, body
        // truncations fail the digest first (it covers fewer bytes).
        for cut in [0, 5, 12, 19, bytes.len() - 1] {
            let err = CapturedLaunch::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceDecodeError::BadMagic
                        | TraceDecodeError::Truncated { .. }
                        | TraceDecodeError::DigestMismatch { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }
}
