//! Device configurations for the simulated GPUs.
//!
//! The paper evaluates on an Nvidia GTX 680 (Kepler GK104) and uses a Tesla
//! K20c (GK110) for the dynamic-parallelism microbenchmark. The parameters
//! below are the published architectural limits of those parts; timing
//! parameters (latencies, issue width) are first-order Kepler figures chosen
//! so that the simulator reproduces the qualitative behaviour the paper
//! depends on, not any particular absolute GB/s.

use serde::{Deserialize, Serialize};

/// Number of threads in a warp. Fixed at 32 for every Nvidia architecture
/// the paper considers; the code base assumes this constant throughout.
pub const WARP_SIZE: u32 = 32;

/// Ticks per simulated core cycle. The timing engine keeps time in *ticks*
/// rather than cycles so that sub-cycle service times (e.g. a 128-byte DRAM
/// transaction on a >128 B/cycle memory interface) stay integral.
pub const TICKS_PER_CYCLE: u64 = 16;

/// Timing and capacity description of one simulated device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, used in reports. Owned so descriptors loaded from
    /// files (see [`crate::device`]) are first-class citizens next to the
    /// built-in presets.
    pub name: String,
    /// Number of streaming multiprocessors (SMX in Kepler terms).
    pub num_smx: u32,
    /// Hardware limit on threads per thread block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SMX.
    pub max_threads_per_smx: u32,
    /// Maximum resident thread blocks per SMX.
    pub max_blocks_per_smx: u32,
    /// 32-bit registers per SMX.
    pub registers_per_smx: u32,
    /// Hardware cap on registers per thread (63 on GK104, 255 on GK110).
    pub max_registers_per_thread: u32,
    /// Register-file allocation granularity in registers (per warp).
    pub register_alloc_granularity: u32,
    /// Shared memory per SMX in bytes (48 KB configuration used by the paper).
    pub shared_mem_per_smx: u32,
    /// Shared-memory allocation granularity in bytes.
    pub shared_alloc_granularity: u32,
    /// L1 data cache per SMX in bytes (backs *local* memory on Kepler).
    pub l1_bytes: u32,
    /// L1 line size in bytes.
    pub l1_line: u32,
    /// L1 associativity.
    pub l1_assoc: u32,
    /// Read-only / texture cache per SMX in bytes (serves `tex1Dfetch`).
    pub tex_cache_bytes: u32,
    /// Device-wide L2 cache in bytes (in front of DRAM for all paths).
    pub l2_bytes: u32,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// Latency of an L2 hit in cycles.
    pub l2_latency: u32,
    /// Long-latency memory operations a warp may have in flight before it
    /// stalls (models compiler load scheduling / unrolling: the warp blocks
    /// on the completion of the access issued `mem_queue_depth` ops ago).
    pub mem_queue_depth: u32,
    /// Warp-instruction issue slots per SMX per cycle (4 schedulers).
    pub issue_per_cycle: u32,
    /// Cycles until a warp may issue its next instruction after an ALU op.
    /// This is an *effective* dependent-issue latency: the raw Kepler
    /// pipeline is ~9-11 cycles, but compiler scheduling overlaps
    /// independent chains, so the exposed value per instruction is lower.
    /// It is what independent warps hide.
    pub alu_latency: u32,
    /// Like `alu_latency` but for the special-function unit (sqrt, exp, ...).
    pub sfu_latency: u32,
    /// Round-trip latency of a global-memory access in cycles (DRAM row hit).
    pub global_latency: u32,
    /// Bytes per core cycle of aggregate DRAM bandwidth.
    pub dram_bytes_per_cycle: u32,
    /// Size of one global-memory transaction segment in bytes.
    pub txn_bytes: u32,
    /// Latency of a shared-memory access (per conflict-free pass).
    pub shared_latency: u32,
    /// Extra cycles per additional bank-conflict replay pass.
    pub shared_replay_cost: u32,
    /// Latency of an L1 hit (local memory / read-only tex path).
    pub l1_hit_latency: u32,
    /// Latency of a constant-cache broadcast access.
    pub const_latency: u32,
    /// Extra cycles per additional distinct constant address in a warp.
    pub const_serialize_cost: u32,
    /// Latency of a `__shfl` register exchange.
    pub shfl_latency: u32,
    /// Whether the device supports the Kepler `__shfl` family at all.
    pub supports_shfl: bool,
    /// Cost in cycles for a warp to cross a `__syncthreads`.
    pub barrier_cost: u32,
    /// Fixed per-block launch overhead in cycles (front-end work).
    pub block_launch_cost: u32,
    /// Core clock in GHz — only used to convert cycles to wall time / GB/s.
    pub clock_ghz: f64,
    /// Dynamic-parallelism overhead model (Section 2.1 / Figure 1).
    pub dynpar: DynParConfig,
}

/// Overheads of CUDA dynamic parallelism, calibrated against the paper's
/// own measurements on a K20c (Section 2.1): enabling the device runtime
/// alone drops the memcpy microbenchmark from 142 GB/s to 63 GB/s, and each
/// device-side kernel launch has a large fixed cost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynParConfig {
    /// Multiplicative slowdown applied to a kernel merely *compiled* with
    /// dynamic parallelism enabled (the "dynamic-parallelism-enabled kernel
    /// overhead" of \[27\]): 142/63 ≈ 2.25.
    pub enabled_overhead: f64,
    /// Fixed cycles consumed by the device runtime per child-kernel launch.
    pub launch_overhead_cycles: u64,
    /// Number of child launches the device runtime can process concurrently.
    pub launch_parallelism: u32,
    /// Cycles for a parent thread to marshal one argument block through
    /// global memory for its child (parent/child may only communicate via
    /// global memory).
    pub global_handoff_cycles: u64,
}

impl DeviceConfig {
    /// GTX 680 (GK104), the GPU used for all paper speedup results.
    pub fn gtx680() -> Self {
        DeviceConfig {
            name: "GTX 680 (GK104, simulated)".to_string(),
            num_smx: 8,
            max_threads_per_block: 1024,
            max_threads_per_smx: 2048,
            max_blocks_per_smx: 16,
            registers_per_smx: 65_536,
            max_registers_per_thread: 63,
            register_alloc_granularity: 256,
            shared_mem_per_smx: 48 * 1024,
            shared_alloc_granularity: 256,
            l1_bytes: 16 * 1024,
            l1_line: 128,
            l1_assoc: 4,
            tex_cache_bytes: 48 * 1024,
            l2_bytes: 512 * 1024,
            l2_assoc: 16,
            l2_latency: 160,
            mem_queue_depth: 4,
            issue_per_cycle: 4,
            alu_latency: 4,
            sfu_latency: 12,
            global_latency: 350,
            dram_bytes_per_cycle: 192, // ~192 GB/s at ~1 GHz
            txn_bytes: 128,
            shared_latency: 24,
            shared_replay_cost: 2,
            l1_hit_latency: 28,
            const_latency: 8,
            const_serialize_cost: 4,
            shfl_latency: 10,
            supports_shfl: true,
            barrier_cost: 8,
            block_launch_cost: 200,
            clock_ghz: 1.006,
            dynpar: DynParConfig::kepler(),
        }
    }

    /// Tesla K20c (GK110), used for the Figure 1 dynamic-parallelism
    /// microbenchmark (compute capability 3.5, 208 GB/s).
    pub fn k20c() -> Self {
        DeviceConfig {
            name: "Tesla K20c (GK110, simulated)".to_string(),
            num_smx: 13,
            max_registers_per_thread: 255,
            dram_bytes_per_cycle: 295, // ~208 GB/s at 0.706 GHz
            clock_ghz: 0.706,
            ..Self::gtx680()
        }
    }

    /// A deliberately tiny device for fast, exhaustive unit tests: 2 SMXs,
    /// short latencies, small caches. Keeps the same mechanisms at a scale
    /// where tests can enumerate behaviour.
    pub fn small_test() -> Self {
        DeviceConfig {
            name: "test device".to_string(),
            num_smx: 2,
            max_threads_per_block: 1024,
            max_threads_per_smx: 512,
            max_blocks_per_smx: 8,
            registers_per_smx: 16_384,
            max_registers_per_thread: 63,
            register_alloc_granularity: 64,
            shared_mem_per_smx: 16 * 1024,
            shared_alloc_granularity: 128,
            l1_bytes: 2 * 1024,
            l1_line: 128,
            l1_assoc: 2,
            tex_cache_bytes: 4 * 1024,
            l2_bytes: 16 * 1024,
            l2_assoc: 4,
            l2_latency: 30,
            mem_queue_depth: 2,
            issue_per_cycle: 2,
            alu_latency: 4,
            sfu_latency: 8,
            global_latency: 100,
            dram_bytes_per_cycle: 64,
            txn_bytes: 128,
            shared_latency: 10,
            shared_replay_cost: 2,
            l1_hit_latency: 10,
            const_latency: 4,
            const_serialize_cost: 2,
            shfl_latency: 4,
            supports_shfl: true,
            barrier_cost: 4,
            block_launch_cost: 20,
            clock_ghz: 1.0,
            dynpar: DynParConfig::kepler(),
        }
    }

    /// A Maxwell-generation device in the mould of a GTX 980 (GM204): more
    /// SMs than GK104 but the same warp-centric execution model, bigger
    /// shared memory and L2, a slightly wider per-thread register budget and
    /// cheaper shuffles. Used by the cross-device matrix to check the paper's
    /// claims off their home architecture. Transaction segment and L1 line
    /// sizes are kept at 128 bytes so traces captured on one registry device
    /// replay (timing-only) on any other.
    pub fn maxwell_like() -> Self {
        DeviceConfig {
            name: "GTX 980 (GM204-like, simulated)".to_string(),
            num_smx: 16,
            max_threads_per_block: 1024,
            max_threads_per_smx: 2048,
            max_blocks_per_smx: 32,
            registers_per_smx: 65_536,
            max_registers_per_thread: 255,
            register_alloc_granularity: 256,
            shared_mem_per_smx: 96 * 1024,
            shared_alloc_granularity: 256,
            l1_bytes: 24 * 1024,
            l1_line: 128,
            l1_assoc: 4,
            tex_cache_bytes: 24 * 1024,
            l2_bytes: 2048 * 1024,
            l2_assoc: 16,
            l2_latency: 194,
            mem_queue_depth: 6,
            issue_per_cycle: 4,
            alu_latency: 6,
            sfu_latency: 14,
            global_latency: 380,
            dram_bytes_per_cycle: 199, // ~224 GB/s at 1.126 GHz
            txn_bytes: 128,
            shared_latency: 22,
            shared_replay_cost: 2,
            l1_hit_latency: 24,
            const_latency: 8,
            const_serialize_cost: 4,
            shfl_latency: 8,
            supports_shfl: true,
            barrier_cost: 8,
            block_launch_cost: 180,
            clock_ghz: 1.126,
            dynpar: DynParConfig::kepler(),
        }
    }

    /// A pre-Kepler style device: identical resources but no `__shfl`
    /// support (compute capability < 3), used to test the sm_version pragma
    /// clause (Section 3.6).
    pub fn no_shfl() -> Self {
        DeviceConfig {
            name: "pre-Kepler (simulated)".to_string(),
            supports_shfl: false,
            ..Self::gtx680()
        }
    }

    /// Convert a cycle count on this device into microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e3)
    }

    /// Effective bandwidth in GB/s for moving `bytes` in `cycles`.
    pub fn bandwidth_gbps(&self, bytes: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        bytes as f64 / (cycles as f64 / self.clock_ghz)
    }

    /// Peak DRAM bandwidth in GB/s implied by the config.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.dram_bytes_per_cycle as f64 * self.clock_ghz
    }
}

impl DynParConfig {
    /// Values calibrated to the paper's K20c measurements.
    pub fn kepler() -> Self {
        DynParConfig {
            enabled_overhead: 142.0 / 63.0,
            launch_overhead_cycles: 14_000,
            launch_parallelism: 32,
            global_handoff_cycles: 900,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx680_limits_match_hardware() {
        let d = DeviceConfig::gtx680();
        assert_eq!(d.num_smx, 8);
        assert_eq!(d.max_threads_per_block, 1024);
        assert_eq!(d.max_threads_per_smx, 2048);
        assert_eq!(d.shared_mem_per_smx, 49_152);
        assert_eq!(d.registers_per_smx, 65_536);
        assert!(d.supports_shfl);
    }

    #[test]
    fn k20c_differs_where_it_should() {
        let d = DeviceConfig::k20c();
        assert_eq!(d.num_smx, 13);
        assert_eq!(d.max_registers_per_thread, 255);
        assert!(d.peak_bandwidth_gbps() > 200.0);
    }

    #[test]
    fn cycle_time_conversions_are_consistent() {
        let d = DeviceConfig::gtx680();
        let us = d.cycles_to_us(1_006_000);
        assert!((us - 1000.0).abs() < 1e-6);
        // Moving dram_bytes_per_cycle bytes every cycle must equal peak bw.
        let bw = d.bandwidth_gbps(d.dram_bytes_per_cycle as u64 * 1000, 1000);
        assert!((bw - d.peak_bandwidth_gbps()).abs() < 1e-9);
    }

    #[test]
    fn dynpar_enabled_overhead_matches_paper_ratio() {
        let d = DynParConfig::kepler();
        assert!((d.enabled_overhead - 2.2539682).abs() < 1e-3);
    }
}
