//! Named, validated device descriptors.
//!
//! The simulator began life with hardcoded presets (`DeviceConfig::gtx680()`
//! and friends). This module promotes those presets into a small device
//! subsystem: a registry of named devices, a canonical descriptor encoding
//! (JSON, plus a TOML reader/writer for hand-edited configs), a `validate()`
//! pass that rejects inconsistent parameter combinations as typed errors
//! instead of silent nonsense, and a stable FNV-1a digest of the canonical
//! encoding so downstream artifacts (bench trajectories, serve cache keys,
//! replay captures) can pin the exact device they were produced on.
//!
//! The cross-device contract the rest of the stack relies on: functional
//! output and race reports are a pure function of kernel + arguments and are
//! byte-identical on every device; only timing, occupancy and stall artifacts
//! may move between devices.

use crate::config::{DeviceConfig, DynParConfig, WARP_SIZE};
use std::fmt;
use std::path::Path;

/// Schema tag written into (and accepted from) descriptors.
pub const DEVICE_SCHEMA: &str = "np-device-v1";

/// Names of the built-in registry devices, in presentation order.
pub const REGISTRY: &[&str] = &["gtx680", "k20c", "maxwell", "small_test"];

/// Everything that can go wrong constructing or validating a device
/// descriptor. Validation failures carry the offending field so tests (and
/// users) can tell *which* rule fired, not just that one did.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The descriptor has an empty `name`.
    EmptyName,
    /// A field that must be strictly positive is zero.
    ZeroField(&'static str),
    /// A thread-count limit is not a multiple of the 32-thread warp.
    WarpMisaligned { field: &'static str, value: u32 },
    /// A capacity is not a multiple of its allocation granularity (or a
    /// cache size is not a whole number of lines / sets).
    GranularityViolation { field: &'static str, value: u32, granularity: u32 },
    /// A line or transaction size that the engine requires to be a power of
    /// two is not one.
    NotPowerOfTwo { field: &'static str, value: u32 },
    /// The core clock is not a finite positive number.
    BadClock(f64),
    /// A dynamic-parallelism overhead parameter is out of range.
    BadDynPar { field: &'static str, value: f64 },
    /// `resolve` was given a name that is not in the registry.
    UnknownDevice { name: String },
    /// A descriptor file could not be read.
    Io { path: String, detail: String },
    /// The descriptor text is not well-formed JSON/TOML.
    Parse { detail: String },
    /// The descriptor declares a schema other than [`DEVICE_SCHEMA`].
    BadSchema(String),
    /// A required field is absent from the descriptor.
    MissingField(&'static str),
    /// The descriptor carries a field no device has.
    UnknownField(String),
    /// A field is present but its value does not parse as the field's type.
    BadValue { field: &'static str, value: String },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::EmptyName => write!(f, "device name must not be empty"),
            DeviceError::ZeroField(field) => {
                write!(f, "device field `{field}` must be greater than zero")
            }
            DeviceError::WarpMisaligned { field, value } => write!(
                f,
                "device field `{field}` = {value} is not a multiple of the {WARP_SIZE}-thread warp"
            ),
            DeviceError::GranularityViolation { field, value, granularity } => write!(
                f,
                "device field `{field}` = {value} is not a multiple of its granularity {granularity}"
            ),
            DeviceError::NotPowerOfTwo { field, value } => {
                write!(f, "device field `{field}` = {value} must be a power of two")
            }
            DeviceError::BadClock(v) => {
                write!(f, "device clock_ghz = {v} must be a finite positive number")
            }
            DeviceError::BadDynPar { field, value } => {
                write!(f, "dynpar field `{field}` = {value} is out of range")
            }
            DeviceError::UnknownDevice { name } => {
                write!(f, "unknown device '{}' (available: {})", name, REGISTRY.join(", "))
            }
            DeviceError::Io { path, detail } => {
                write!(f, "cannot read device descriptor {path}: {detail}")
            }
            DeviceError::Parse { detail } => write!(f, "malformed device descriptor: {detail}"),
            DeviceError::BadSchema(s) => {
                write!(f, "unsupported device descriptor schema '{s}' (expected {DEVICE_SCHEMA})")
            }
            DeviceError::MissingField(field) => {
                write!(f, "device descriptor is missing field `{field}`")
            }
            DeviceError::UnknownField(field) => {
                write!(f, "device descriptor has unknown field `{field}`")
            }
            DeviceError::BadValue { field, value } => {
                write!(f, "device field `{field}` has malformed value `{value}`")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Look up a registry device by its short name.
pub fn from_name(name: &str) -> Result<DeviceConfig, DeviceError> {
    match name {
        "gtx680" => Ok(DeviceConfig::gtx680()),
        "k20c" => Ok(DeviceConfig::k20c()),
        "maxwell" => Ok(DeviceConfig::maxwell_like()),
        "small_test" => Ok(DeviceConfig::small_test()),
        _ => Err(DeviceError::UnknownDevice { name: name.to_string() }),
    }
}

/// Resolve a device *spec* — either a registry name (`gtx680`) or a path to
/// a JSON/TOML descriptor file (recognised by a path separator or a
/// `.json`/`.toml` extension). File-loaded descriptors are validated before
/// they are returned; registry presets are valid by construction (and the
/// test suite proves it).
pub fn resolve(spec: &str) -> Result<DeviceConfig, DeviceError> {
    let looks_like_path = spec.contains('/')
        || spec.contains('\\')
        || spec.ends_with(".json")
        || spec.ends_with(".toml");
    if looks_like_path {
        load_descriptor(Path::new(spec))
    } else {
        from_name(spec)
    }
}

/// Load, parse and validate a descriptor file. The format is chosen by
/// extension: `.toml` parses as TOML, anything else as JSON.
pub fn load_descriptor(path: &Path) -> Result<DeviceConfig, DeviceError> {
    let text = std::fs::read_to_string(path).map_err(|e| DeviceError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    let is_toml = path.extension().map(|e| e == "toml").unwrap_or(false);
    let dev = if is_toml { parse_toml(&text) } else { parse_json(&text) }?;
    dev.validate()?;
    Ok(dev)
}

impl DeviceConfig {
    /// Check the parameter set for internal consistency. Returns the first
    /// violated rule as a typed error. Note there is deliberately no
    /// `max_threads_per_block <= max_threads_per_smx` rule: the `small_test`
    /// preset allows 1024-thread blocks on a 512-thread SMX precisely so
    /// that occupancy rejection paths stay testable.
    pub fn validate(&self) -> Result<(), DeviceError> {
        if self.name.is_empty() {
            return Err(DeviceError::EmptyName);
        }
        let positive: &[(&'static str, u32)] = &[
            ("num_smx", self.num_smx),
            ("max_threads_per_block", self.max_threads_per_block),
            ("max_threads_per_smx", self.max_threads_per_smx),
            ("max_blocks_per_smx", self.max_blocks_per_smx),
            ("registers_per_smx", self.registers_per_smx),
            ("max_registers_per_thread", self.max_registers_per_thread),
            ("register_alloc_granularity", self.register_alloc_granularity),
            ("shared_mem_per_smx", self.shared_mem_per_smx),
            ("shared_alloc_granularity", self.shared_alloc_granularity),
            ("l1_bytes", self.l1_bytes),
            ("l1_line", self.l1_line),
            ("l1_assoc", self.l1_assoc),
            ("tex_cache_bytes", self.tex_cache_bytes),
            ("l2_bytes", self.l2_bytes),
            ("l2_assoc", self.l2_assoc),
            ("l2_latency", self.l2_latency),
            ("mem_queue_depth", self.mem_queue_depth),
            ("issue_per_cycle", self.issue_per_cycle),
            ("alu_latency", self.alu_latency),
            ("sfu_latency", self.sfu_latency),
            ("global_latency", self.global_latency),
            ("dram_bytes_per_cycle", self.dram_bytes_per_cycle),
            ("txn_bytes", self.txn_bytes),
            ("shared_latency", self.shared_latency),
            ("l1_hit_latency", self.l1_hit_latency),
            ("const_latency", self.const_latency),
            ("shfl_latency", self.shfl_latency),
        ];
        for &(field, value) in positive {
            if value == 0 {
                return Err(DeviceError::ZeroField(field));
            }
        }
        let warp_aligned: &[(&'static str, u32)] = &[
            ("max_threads_per_block", self.max_threads_per_block),
            ("max_threads_per_smx", self.max_threads_per_smx),
        ];
        for &(field, value) in warp_aligned {
            if value % WARP_SIZE != 0 {
                return Err(DeviceError::WarpMisaligned { field, value });
            }
        }
        let pow2: &[(&'static str, u32)] = &[
            ("l1_line", self.l1_line),
            ("txn_bytes", self.txn_bytes),
        ];
        for &(field, value) in pow2 {
            if !value.is_power_of_two() {
                return Err(DeviceError::NotPowerOfTwo { field, value });
            }
        }
        if !self.registers_per_smx.is_multiple_of(self.register_alloc_granularity) {
            return Err(DeviceError::GranularityViolation {
                field: "registers_per_smx",
                value: self.registers_per_smx,
                granularity: self.register_alloc_granularity,
            });
        }
        if !self.shared_mem_per_smx.is_multiple_of(self.shared_alloc_granularity) {
            return Err(DeviceError::GranularityViolation {
                field: "shared_mem_per_smx",
                value: self.shared_mem_per_smx,
                granularity: self.shared_alloc_granularity,
            });
        }
        if !self.l1_bytes.is_multiple_of(self.l1_line) {
            return Err(DeviceError::GranularityViolation {
                field: "l1_bytes",
                value: self.l1_bytes,
                granularity: self.l1_line,
            });
        }
        let l1_lines = self.l1_bytes / self.l1_line;
        if !l1_lines.is_multiple_of(self.l1_assoc) {
            return Err(DeviceError::GranularityViolation {
                field: "l1_assoc",
                value: l1_lines,
                granularity: self.l1_assoc,
            });
        }
        if !self.clock_ghz.is_finite() || self.clock_ghz <= 0.0 {
            return Err(DeviceError::BadClock(self.clock_ghz));
        }
        if !self.dynpar.enabled_overhead.is_finite() || self.dynpar.enabled_overhead < 1.0 {
            return Err(DeviceError::BadDynPar {
                field: "enabled_overhead",
                value: self.dynpar.enabled_overhead,
            });
        }
        if self.dynpar.launch_parallelism == 0 {
            return Err(DeviceError::BadDynPar { field: "launch_parallelism", value: 0.0 });
        }
        Ok(())
    }

    /// Canonical JSON descriptor: every field in declaration order, one per
    /// line, floats in shortest round-trip form. Parsing this text yields a
    /// config whose own `descriptor_json()` is byte-identical — the digest
    /// is stable across round trips.
    pub fn descriptor_json(&self) -> String {
        fn nu(s: &mut String, key: &str, v: u64) {
            s.push_str(&format!("  \"{key}\": {v},\n"));
        }
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": \"{DEVICE_SCHEMA}\",\n"));
        s.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        nu(&mut s, "num_smx", self.num_smx as u64);
        nu(&mut s, "max_threads_per_block", self.max_threads_per_block as u64);
        nu(&mut s, "max_threads_per_smx", self.max_threads_per_smx as u64);
        nu(&mut s, "max_blocks_per_smx", self.max_blocks_per_smx as u64);
        nu(&mut s, "registers_per_smx", self.registers_per_smx as u64);
        nu(&mut s, "max_registers_per_thread", self.max_registers_per_thread as u64);
        nu(&mut s, "register_alloc_granularity", self.register_alloc_granularity as u64);
        nu(&mut s, "shared_mem_per_smx", self.shared_mem_per_smx as u64);
        nu(&mut s, "shared_alloc_granularity", self.shared_alloc_granularity as u64);
        nu(&mut s, "l1_bytes", self.l1_bytes as u64);
        nu(&mut s, "l1_line", self.l1_line as u64);
        nu(&mut s, "l1_assoc", self.l1_assoc as u64);
        nu(&mut s, "tex_cache_bytes", self.tex_cache_bytes as u64);
        nu(&mut s, "l2_bytes", self.l2_bytes as u64);
        nu(&mut s, "l2_assoc", self.l2_assoc as u64);
        nu(&mut s, "l2_latency", self.l2_latency as u64);
        nu(&mut s, "mem_queue_depth", self.mem_queue_depth as u64);
        nu(&mut s, "issue_per_cycle", self.issue_per_cycle as u64);
        nu(&mut s, "alu_latency", self.alu_latency as u64);
        nu(&mut s, "sfu_latency", self.sfu_latency as u64);
        nu(&mut s, "global_latency", self.global_latency as u64);
        nu(&mut s, "dram_bytes_per_cycle", self.dram_bytes_per_cycle as u64);
        nu(&mut s, "txn_bytes", self.txn_bytes as u64);
        nu(&mut s, "shared_latency", self.shared_latency as u64);
        nu(&mut s, "shared_replay_cost", self.shared_replay_cost as u64);
        nu(&mut s, "l1_hit_latency", self.l1_hit_latency as u64);
        nu(&mut s, "const_latency", self.const_latency as u64);
        nu(&mut s, "const_serialize_cost", self.const_serialize_cost as u64);
        nu(&mut s, "shfl_latency", self.shfl_latency as u64);
        s.push_str(&format!("  \"supports_shfl\": {},\n", self.supports_shfl));
        nu(&mut s, "barrier_cost", self.barrier_cost as u64);
        nu(&mut s, "block_launch_cost", self.block_launch_cost as u64);
        s.push_str(&format!("  \"clock_ghz\": {:?},\n", self.clock_ghz));
        s.push_str("  \"dynpar\": {\n");
        s.push_str(&format!(
            "    \"enabled_overhead\": {:?},\n",
            self.dynpar.enabled_overhead
        ));
        s.push_str(&format!(
            "    \"launch_overhead_cycles\": {},\n",
            self.dynpar.launch_overhead_cycles
        ));
        s.push_str(&format!(
            "    \"launch_parallelism\": {},\n",
            self.dynpar.launch_parallelism
        ));
        s.push_str(&format!(
            "    \"global_handoff_cycles\": {}\n",
            self.dynpar.global_handoff_cycles
        ));
        s.push_str("  }\n");
        s.push_str("}\n");
        s
    }

    /// Canonical TOML descriptor, same field order and float formatting as
    /// [`DeviceConfig::descriptor_json`]. A starting point for hand-edited
    /// device files.
    pub fn descriptor_toml(&self) -> String {
        fn nu(s: &mut String, key: &str, v: u64) {
            s.push_str(&format!("{key} = {v}\n"));
        }
        let mut s = String::new();
        s.push_str(&format!("schema = \"{DEVICE_SCHEMA}\"\n"));
        s.push_str(&format!("name = \"{}\"\n", escape(&self.name)));
        nu(&mut s, "num_smx", self.num_smx as u64);
        nu(&mut s, "max_threads_per_block", self.max_threads_per_block as u64);
        nu(&mut s, "max_threads_per_smx", self.max_threads_per_smx as u64);
        nu(&mut s, "max_blocks_per_smx", self.max_blocks_per_smx as u64);
        nu(&mut s, "registers_per_smx", self.registers_per_smx as u64);
        nu(&mut s, "max_registers_per_thread", self.max_registers_per_thread as u64);
        nu(&mut s, "register_alloc_granularity", self.register_alloc_granularity as u64);
        nu(&mut s, "shared_mem_per_smx", self.shared_mem_per_smx as u64);
        nu(&mut s, "shared_alloc_granularity", self.shared_alloc_granularity as u64);
        nu(&mut s, "l1_bytes", self.l1_bytes as u64);
        nu(&mut s, "l1_line", self.l1_line as u64);
        nu(&mut s, "l1_assoc", self.l1_assoc as u64);
        nu(&mut s, "tex_cache_bytes", self.tex_cache_bytes as u64);
        nu(&mut s, "l2_bytes", self.l2_bytes as u64);
        nu(&mut s, "l2_assoc", self.l2_assoc as u64);
        nu(&mut s, "l2_latency", self.l2_latency as u64);
        nu(&mut s, "mem_queue_depth", self.mem_queue_depth as u64);
        nu(&mut s, "issue_per_cycle", self.issue_per_cycle as u64);
        nu(&mut s, "alu_latency", self.alu_latency as u64);
        nu(&mut s, "sfu_latency", self.sfu_latency as u64);
        nu(&mut s, "global_latency", self.global_latency as u64);
        nu(&mut s, "dram_bytes_per_cycle", self.dram_bytes_per_cycle as u64);
        nu(&mut s, "txn_bytes", self.txn_bytes as u64);
        nu(&mut s, "shared_latency", self.shared_latency as u64);
        nu(&mut s, "shared_replay_cost", self.shared_replay_cost as u64);
        nu(&mut s, "l1_hit_latency", self.l1_hit_latency as u64);
        nu(&mut s, "const_latency", self.const_latency as u64);
        nu(&mut s, "const_serialize_cost", self.const_serialize_cost as u64);
        nu(&mut s, "shfl_latency", self.shfl_latency as u64);
        s.push_str(&format!("supports_shfl = {}\n", self.supports_shfl));
        nu(&mut s, "barrier_cost", self.barrier_cost as u64);
        nu(&mut s, "block_launch_cost", self.block_launch_cost as u64);
        s.push_str(&format!("clock_ghz = {:?}\n", self.clock_ghz));
        s.push_str("\n[dynpar]\n");
        s.push_str(&format!("enabled_overhead = {:?}\n", self.dynpar.enabled_overhead));
        s.push_str(&format!("launch_overhead_cycles = {}\n", self.dynpar.launch_overhead_cycles));
        s.push_str(&format!("launch_parallelism = {}\n", self.dynpar.launch_parallelism));
        s.push_str(&format!("global_handoff_cycles = {}\n", self.dynpar.global_handoff_cycles));
        s
    }

    /// Stable FNV-1a digest of the canonical JSON descriptor. Two configs
    /// digest equal iff every parameter is equal; the digest is embedded in
    /// bench trajectories so a baseline diff can tell "the device changed"
    /// apart from "the simulator regressed".
    pub fn digest(&self) -> u64 {
        np_obs::fnv64(self.descriptor_json().as_bytes())
    }

    /// `digest()` as fixed-width lowercase hex, the form artifacts carry.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            _ => out.push(c),
        }
    }
    out
}

/// Intermediate descriptor value: both parsers lower their input to this
/// shape and the shared [`build`] step maps fields onto `DeviceConfig` with
/// typed errors.
#[derive(Debug, Clone)]
enum Val {
    Str(String),
    Num(String),
    Bool(bool),
    Obj(Vec<(String, Val)>),
}

fn perr(detail: impl Into<String>) -> DeviceError {
    DeviceError::Parse { detail: detail.into() }
}

/// Parse a JSON descriptor. Hand-rolled on purpose — the workspace serde is
/// a no-op shim, and the grammar here is a flat object with one nested
/// `dynpar` object, strings, numbers and booleans.
pub fn parse_json(text: &str) -> Result<DeviceConfig, DeviceError> {
    let mut sc = Scanner { b: text.as_bytes(), i: 0 };
    sc.ws();
    let fields = sc.object()?;
    sc.ws();
    if sc.i != sc.b.len() {
        return Err(perr("trailing bytes after descriptor object"));
    }
    build(fields)
}

struct Scanner<'a> {
    b: &'a [u8],
    i: usize,
}

impl Scanner<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), DeviceError> {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(perr(format!("expected '{}' at byte {}", c as char, self.i)))
        }
    }

    fn string(&mut self) -> Result<String, DeviceError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(perr("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        _ => return Err(perr("unsupported string escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 is carried through byte by byte; the
                    // input is a &str so the bytes are valid by construction.
                    let start = self.i;
                    while self.i < self.b.len()
                        && self.b[self.i] != b'"'
                        && self.b[self.i] != b'\\'
                    {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).unwrap());
                }
            }
        }
    }

    fn value(&mut self) -> Result<Val, DeviceError> {
        self.ws();
        match self.b.get(self.i) {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b'{') => Ok(Val::Obj(self.object()?)),
            Some(b't') if self.b[self.i..].starts_with(b"true") => {
                self.i += 4;
                Ok(Val::Bool(true))
            }
            Some(b'f') if self.b[self.i..].starts_with(b"false") => {
                self.i += 5;
                Ok(Val::Bool(false))
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = self.i;
                while self.i < self.b.len()
                    && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    self.i += 1;
                }
                Ok(Val::Num(String::from_utf8(self.b[start..self.i].to_vec()).unwrap()))
            }
            _ => Err(perr(format!("unexpected value at byte {}", self.i))),
        }
    }

    fn object(&mut self) -> Result<Vec<(String, Val)>, DeviceError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(fields);
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(fields);
                }
                _ => return Err(perr(format!("expected ',' or '}}' at byte {}", self.i))),
            }
        }
    }
}

/// Parse a TOML descriptor: `key = value` lines, `#` comments, and a single
/// optional `[dynpar]` table.
pub fn parse_toml(text: &str) -> Result<DeviceConfig, DeviceError> {
    let mut top: Vec<(String, Val)> = Vec::new();
    let mut dynpar: Vec<(String, Val)> = Vec::new();
    let mut in_dynpar = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(section) = line.strip_prefix('[') {
            let section = section
                .strip_suffix(']')
                .ok_or_else(|| perr(format!("line {}: unterminated table header", lineno + 1)))?;
            if section.trim() != "dynpar" {
                return Err(DeviceError::UnknownField(format!("[{}]", section.trim())));
            }
            in_dynpar = true;
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| perr(format!("line {}: expected `key = value`", lineno + 1)))?;
        let key = line[..eq].trim().to_string();
        let raw_val = line[eq + 1..].trim();
        let val = if let Some(rest) = raw_val.strip_prefix('"') {
            let body = rest
                .strip_suffix('"')
                .ok_or_else(|| perr(format!("line {}: unterminated string", lineno + 1)))?;
            Val::Str(body.replace("\\\"", "\"").replace("\\\\", "\\"))
        } else if raw_val == "true" {
            Val::Bool(true)
        } else if raw_val == "false" {
            Val::Bool(false)
        } else if !raw_val.is_empty() {
            Val::Num(raw_val.to_string())
        } else {
            return Err(perr(format!("line {}: empty value", lineno + 1)));
        };
        if in_dynpar {
            dynpar.push((key, val));
        } else {
            top.push((key, val));
        }
    }
    if !dynpar.is_empty() {
        top.push(("dynpar".to_string(), Val::Obj(dynpar)));
    }
    build(top)
}

fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn take(fields: &mut Vec<(String, Val)>, key: &str) -> Option<Val> {
    fields.iter().position(|(k, _)| k == key).map(|i| fields.remove(i).1)
}

fn take_str(fields: &mut Vec<(String, Val)>, key: &'static str) -> Result<String, DeviceError> {
    match take(fields, key) {
        None => Err(DeviceError::MissingField(key)),
        Some(Val::Str(s)) => Ok(s),
        Some(v) => Err(DeviceError::BadValue { field: key, value: format!("{v:?}") }),
    }
}

fn take_u32(fields: &mut Vec<(String, Val)>, key: &'static str) -> Result<u32, DeviceError> {
    match take(fields, key) {
        None => Err(DeviceError::MissingField(key)),
        Some(Val::Num(raw)) => {
            raw.parse().map_err(|_| DeviceError::BadValue { field: key, value: raw })
        }
        Some(v) => Err(DeviceError::BadValue { field: key, value: format!("{v:?}") }),
    }
}

fn take_u64(fields: &mut Vec<(String, Val)>, key: &'static str) -> Result<u64, DeviceError> {
    match take(fields, key) {
        None => Err(DeviceError::MissingField(key)),
        Some(Val::Num(raw)) => {
            raw.parse().map_err(|_| DeviceError::BadValue { field: key, value: raw })
        }
        Some(v) => Err(DeviceError::BadValue { field: key, value: format!("{v:?}") }),
    }
}

fn take_f64(fields: &mut Vec<(String, Val)>, key: &'static str) -> Result<f64, DeviceError> {
    match take(fields, key) {
        None => Err(DeviceError::MissingField(key)),
        Some(Val::Num(raw)) => {
            raw.parse().map_err(|_| DeviceError::BadValue { field: key, value: raw })
        }
        Some(v) => Err(DeviceError::BadValue { field: key, value: format!("{v:?}") }),
    }
}

fn take_bool(fields: &mut Vec<(String, Val)>, key: &'static str) -> Result<bool, DeviceError> {
    match take(fields, key) {
        None => Err(DeviceError::MissingField(key)),
        Some(Val::Bool(b)) => Ok(b),
        Some(v) => Err(DeviceError::BadValue { field: key, value: format!("{v:?}") }),
    }
}

fn build(mut fields: Vec<(String, Val)>) -> Result<DeviceConfig, DeviceError> {
    if let Some(v) = take(&mut fields, "schema") {
        match v {
            Val::Str(s) if s == DEVICE_SCHEMA => {}
            Val::Str(s) => return Err(DeviceError::BadSchema(s)),
            other => {
                return Err(DeviceError::BadValue { field: "schema", value: format!("{other:?}") })
            }
        }
    }
    let dynpar = match take(&mut fields, "dynpar") {
        None => Err(DeviceError::MissingField("dynpar")),
        Some(Val::Obj(mut inner)) => {
            let d = DynParConfig {
                enabled_overhead: take_f64(&mut inner, "enabled_overhead")?,
                launch_overhead_cycles: take_u64(&mut inner, "launch_overhead_cycles")?,
                launch_parallelism: take_u32(&mut inner, "launch_parallelism")?,
                global_handoff_cycles: take_u64(&mut inner, "global_handoff_cycles")?,
            };
            if let Some((k, _)) = inner.first() {
                return Err(DeviceError::UnknownField(format!("dynpar.{k}")));
            }
            Ok(d)
        }
        Some(v) => Err(DeviceError::BadValue { field: "dynpar", value: format!("{v:?}") }),
    }?;
    let dev = DeviceConfig {
        name: take_str(&mut fields, "name")?,
        num_smx: take_u32(&mut fields, "num_smx")?,
        max_threads_per_block: take_u32(&mut fields, "max_threads_per_block")?,
        max_threads_per_smx: take_u32(&mut fields, "max_threads_per_smx")?,
        max_blocks_per_smx: take_u32(&mut fields, "max_blocks_per_smx")?,
        registers_per_smx: take_u32(&mut fields, "registers_per_smx")?,
        max_registers_per_thread: take_u32(&mut fields, "max_registers_per_thread")?,
        register_alloc_granularity: take_u32(&mut fields, "register_alloc_granularity")?,
        shared_mem_per_smx: take_u32(&mut fields, "shared_mem_per_smx")?,
        shared_alloc_granularity: take_u32(&mut fields, "shared_alloc_granularity")?,
        l1_bytes: take_u32(&mut fields, "l1_bytes")?,
        l1_line: take_u32(&mut fields, "l1_line")?,
        l1_assoc: take_u32(&mut fields, "l1_assoc")?,
        tex_cache_bytes: take_u32(&mut fields, "tex_cache_bytes")?,
        l2_bytes: take_u32(&mut fields, "l2_bytes")?,
        l2_assoc: take_u32(&mut fields, "l2_assoc")?,
        l2_latency: take_u32(&mut fields, "l2_latency")?,
        mem_queue_depth: take_u32(&mut fields, "mem_queue_depth")?,
        issue_per_cycle: take_u32(&mut fields, "issue_per_cycle")?,
        alu_latency: take_u32(&mut fields, "alu_latency")?,
        sfu_latency: take_u32(&mut fields, "sfu_latency")?,
        global_latency: take_u32(&mut fields, "global_latency")?,
        dram_bytes_per_cycle: take_u32(&mut fields, "dram_bytes_per_cycle")?,
        txn_bytes: take_u32(&mut fields, "txn_bytes")?,
        shared_latency: take_u32(&mut fields, "shared_latency")?,
        shared_replay_cost: take_u32(&mut fields, "shared_replay_cost")?,
        l1_hit_latency: take_u32(&mut fields, "l1_hit_latency")?,
        const_latency: take_u32(&mut fields, "const_latency")?,
        const_serialize_cost: take_u32(&mut fields, "const_serialize_cost")?,
        shfl_latency: take_u32(&mut fields, "shfl_latency")?,
        supports_shfl: take_bool(&mut fields, "supports_shfl")?,
        barrier_cost: take_u32(&mut fields, "barrier_cost")?,
        block_launch_cost: take_u32(&mut fields, "block_launch_cost")?,
        clock_ghz: take_f64(&mut fields, "clock_ghz")?,
        dynpar,
    };
    if let Some((k, _)) = fields.first() {
        return Err(DeviceError::UnknownField(k.clone()));
    }
    Ok(dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_preset_validates() {
        for name in REGISTRY {
            let dev = from_name(name).unwrap();
            dev.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn unknown_name_lists_available_devices() {
        let err = from_name("titan").unwrap_err();
        assert_eq!(err, DeviceError::UnknownDevice { name: "titan".to_string() });
        let msg = err.to_string();
        assert!(msg.contains("unknown device 'titan'"), "{msg}");
        for name in REGISTRY {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }

    #[test]
    fn registry_digests_are_pairwise_distinct() {
        let digests: Vec<(&str, u64)> =
            REGISTRY.iter().map(|n| (*n, from_name(n).unwrap().digest())).collect();
        for (i, (na, da)) in digests.iter().enumerate() {
            for (nb, db) in &digests[i + 1..] {
                assert_ne!(da, db, "{na} and {nb} digest equal");
            }
        }
    }

    #[test]
    fn json_round_trip_is_byte_identical_and_digest_stable() {
        for name in REGISTRY {
            let dev = from_name(name).unwrap();
            let text = dev.descriptor_json();
            let back = parse_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back.descriptor_json(), text, "{name} JSON not byte-stable");
            assert_eq!(back.digest(), dev.digest(), "{name} digest moved");
            assert_eq!(back.name, dev.name);
        }
    }

    #[test]
    fn toml_round_trip_matches_json_digest() {
        for name in REGISTRY {
            let dev = from_name(name).unwrap();
            let back = parse_toml(&dev.descriptor_toml()).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back.digest(), dev.digest(), "{name} TOML round trip moved the digest");
        }
    }

    #[test]
    fn toml_comments_and_blank_lines_are_ignored() {
        let mut text = String::from("# hand-edited descriptor\n\n");
        text.push_str(&DeviceConfig::gtx680().descriptor_toml());
        text.push_str("\n# trailing note\n");
        let dev = parse_toml(&text).unwrap();
        assert_eq!(dev.digest(), DeviceConfig::gtx680().digest());
    }

    #[test]
    fn validation_rejects_each_inconsistency_with_the_right_error() {
        let base = DeviceConfig::gtx680;
        let cases: Vec<(DeviceConfig, DeviceError)> = vec![
            (
                DeviceConfig { name: String::new(), ..base() },
                DeviceError::EmptyName,
            ),
            (
                DeviceConfig { num_smx: 0, ..base() },
                DeviceError::ZeroField("num_smx"),
            ),
            (
                DeviceConfig { max_threads_per_block: 1000, ..base() },
                DeviceError::WarpMisaligned { field: "max_threads_per_block", value: 1000 },
            ),
            (
                DeviceConfig { registers_per_smx: 65_537, ..base() },
                DeviceError::GranularityViolation {
                    field: "registers_per_smx",
                    value: 65_537,
                    granularity: 256,
                },
            ),
            (
                DeviceConfig { txn_bytes: 96, ..base() },
                DeviceError::NotPowerOfTwo { field: "txn_bytes", value: 96 },
            ),
            (
                DeviceConfig { l1_bytes: 16 * 1024 + 64, ..base() },
                DeviceError::GranularityViolation {
                    field: "l1_bytes",
                    value: 16 * 1024 + 64,
                    granularity: 128,
                },
            ),
            (
                DeviceConfig { l1_assoc: 3, ..base() },
                DeviceError::GranularityViolation { field: "l1_assoc", value: 128, granularity: 3 },
            ),
            (
                DeviceConfig { clock_ghz: 0.0, ..base() },
                DeviceError::BadClock(0.0),
            ),
            (
                DeviceConfig {
                    dynpar: DynParConfig { enabled_overhead: 0.5, ..DynParConfig::kepler() },
                    ..base()
                },
                DeviceError::BadDynPar { field: "enabled_overhead", value: 0.5 },
            ),
        ];
        for (dev, want) in cases {
            assert_eq!(dev.validate(), Err(want.clone()), "expected {want:?}");
        }
    }

    #[test]
    fn parser_rejects_unknown_and_missing_fields_with_typed_errors() {
        let dev = DeviceConfig::gtx680();
        let with_extra = dev.descriptor_json().replace(
            "\"num_smx\": 8,",
            "\"num_smx\": 8,\n  \"warp_width\": 32,",
        );
        assert_eq!(
            parse_json(&with_extra).unwrap_err(),
            DeviceError::UnknownField("warp_width".to_string())
        );
        let without_clock = dev.descriptor_json().replace("  \"clock_ghz\": 1.006,\n", "");
        assert_eq!(parse_json(&without_clock).unwrap_err(), DeviceError::MissingField("clock_ghz"));
        let bad_schema = dev.descriptor_json().replace("np-device-v1", "np-device-v0");
        assert_eq!(
            parse_json(&bad_schema).unwrap_err(),
            DeviceError::BadSchema("np-device-v0".to_string())
        );
    }

    #[test]
    fn resolve_takes_names_and_paths() {
        assert_eq!(resolve("maxwell").unwrap().name, DeviceConfig::maxwell_like().name);
        let dir = std::env::temp_dir().join("np_device_resolve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let json_path = dir.join("dev.json");
        std::fs::write(&json_path, DeviceConfig::k20c().descriptor_json()).unwrap();
        let loaded = resolve(json_path.to_str().unwrap()).unwrap();
        assert_eq!(loaded.digest(), DeviceConfig::k20c().digest());
        let toml_path = dir.join("dev.toml");
        std::fs::write(&toml_path, DeviceConfig::small_test().descriptor_toml()).unwrap();
        let loaded = resolve(toml_path.to_str().unwrap()).unwrap();
        assert_eq!(loaded.digest(), DeviceConfig::small_test().digest());
    }

    #[test]
    fn file_load_validates_before_returning() {
        let dir = std::env::temp_dir().join("np_device_invalid_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("zero_smx.json");
        let text = DeviceConfig::gtx680().descriptor_json().replace("\"num_smx\": 8", "\"num_smx\": 0");
        std::fs::write(&path, text).unwrap();
        assert_eq!(
            resolve(path.to_str().unwrap()).unwrap_err(),
            DeviceError::ZeroField("num_smx")
        );
    }
}
