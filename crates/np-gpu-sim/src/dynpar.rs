//! Dynamic-parallelism cost model (Section 2.1, Figure 1, Section 6).
//!
//! The paper measures two overheads of Kepler dynamic parallelism on a
//! K20c and we model both:
//!
//! 1. **Enabled-kernel overhead**: merely compiling with `-rdc` and linking
//!    the device runtime slows a kernel that never launches children
//!    (142 GB/s → 63 GB/s on the memcpy microbenchmark). Modelled as a
//!    multiplicative cycle tax.
//! 2. **Launch overhead**: every device-side kernel launch runs through the
//!    device runtime. Modelled as a fixed cost per launch, processed with
//!    bounded concurrency, plus a global-memory argument handoff per launch
//!    (parent/child threads may communicate only through global memory).
//!
//! The model is deliberately analytic: the paper itself treats dynamic
//! parallelism as a black-box overhead to be measured, not a mechanism to
//! be simulated.

use crate::config::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Description of a dynamic-parallelism execution pattern.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DynParLaunchPlan {
    /// Number of child-kernel launches issued by the parent grid.
    pub num_launches: u64,
    /// Cycles of *useful* child work per launch (as measured by simulating
    /// one child kernel without dynamic parallelism).
    pub child_cycles: u64,
    /// Cycles the parent grid itself needs (excluding launches).
    pub parent_cycles: u64,
}

/// Total cycles for a dynamic-parallelism execution.
///
/// Launch processing overlaps child execution up to the device runtime's
/// `launch_parallelism`; the serialized launch pipeline establishes a floor
/// of `num_launches * (launch_overhead + handoff) / launch_parallelism`,
/// and total child work establishes the other floor.
pub fn dynpar_cycles(dev: &DeviceConfig, plan: &DynParLaunchPlan) -> u64 {
    let dp = &dev.dynpar;
    let per_launch = dp.launch_overhead_cycles + dp.global_handoff_cycles;
    let launch_pipeline =
        (plan.num_launches as u128 * per_launch as u128 / dp.launch_parallelism as u128) as u64;
    let child_work = plan.num_launches * plan.child_cycles;
    let busy = launch_pipeline.max(child_work) + plan.parent_cycles;
    // Everything, including the parent, pays the enabled-kernel tax.
    (busy as f64 * dp.enabled_overhead) as u64
}

/// Cycles for the *same* kernel merely compiled with dynamic parallelism
/// enabled but never launching children.
pub fn enabled_overhead_cycles(dev: &DeviceConfig, base_cycles: u64) -> u64 {
    (base_cycles as f64 * dev.dynpar.enabled_overhead) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_overhead_matches_paper_ratio() {
        let d = DeviceConfig::k20c();
        let c = enabled_overhead_cycles(&d, 63_000);
        // 63 GB/s worth of time scaled back up to the 142 GB/s baseline.
        assert!((c as f64 / 63_000.0 - 142.0 / 63.0).abs() < 0.01);
    }

    #[test]
    fn few_large_children_amortize_launch_cost() {
        let d = DeviceConfig::k20c();
        let big = DynParLaunchPlan { num_launches: 4, child_cycles: 1_000_000, parent_cycles: 0 };
        let c = dynpar_cycles(&d, &big);
        let pure_work = (4.0 * 1_000_000.0 * d.dynpar.enabled_overhead) as u64;
        // Within 1% of pure child work: launches fully hidden.
        assert!(c <= pure_work + pure_work / 100);
    }

    #[test]
    fn many_tiny_children_are_launch_bound() {
        let d = DeviceConfig::k20c();
        let tiny =
            DynParLaunchPlan { num_launches: 100_000, child_cycles: 10, parent_cycles: 0 };
        let c = dynpar_cycles(&d, &tiny);
        let work = 100_000 * 10;
        assert!(c > 10 * work, "launch overhead must dominate: {c} vs work {work}");
    }

    #[test]
    fn monotone_in_launch_count_at_fixed_total_work() {
        // Figure 1's sweep: m*n fixed, increasing m (launch count) must
        // never improve total time.
        let d = DeviceConfig::k20c();
        let total_work: u64 = 1 << 26;
        let mut prev = 0u64;
        for log_m in [0u32, 4, 8, 12, 16] {
            let m = 1u64 << log_m;
            let plan = DynParLaunchPlan {
                num_launches: m,
                child_cycles: total_work / m,
                parent_cycles: 0,
            };
            let c = dynpar_cycles(&d, &plan);
            assert!(c >= prev, "m={m}: {c} < {prev}");
            prev = c;
        }
    }
}
