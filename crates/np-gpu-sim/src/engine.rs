//! Event-driven SMX timing engine.
//!
//! The engine consumes per-warp instruction traces ([`crate::trace`]) and
//! schedules them on a device: each SMX issues up to `issue_per_cycle` warp
//! instructions per cycle, round-robin among ready warps (earliest-ready
//! first); memory instructions park the warp for their latency; all SMXs
//! share one DRAM interface with finite bandwidth; local/texture accesses
//! probe per-SMX caches; `__syncthreads` implements a block-wide barrier.
//!
//! Modelling notes (first-order, deliberately):
//! * one outstanding memory instruction per warp (no intra-warp MLP) — this
//!   biases low-occupancy kernels toward latency-boundedness, which is the
//!   regime the paper's argument lives in;
//! * in-order single-entry scoreboard per warp: an `Alu { count }` run is
//!   pipelined (1 instruction/cycle) with the dependent-use latency paid
//!   once at the end of the run.
//!
//! Time is kept in *ticks* ([`TICKS_PER_CYCLE`] per cycle) so that sub-cycle
//! DRAM service times stay integral.

use crate::config::{DeviceConfig, TICKS_PER_CYCLE};
use crate::mem::cache::Cache;
use crate::occupancy::Occupancy;
use crate::stats::TimingReport;
use crate::timeline::{SmxState, Timeline};
use crate::trace::{BlockTrace, WarpOp, WarpTrace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Pull-source of block traces, so callers can generate them lazily and the
/// resident set is all that ever lives in memory.
pub trait BlockSource {
    /// Produce the next block trace, or `None` when the grid is exhausted.
    fn next_block(&mut self) -> Option<BlockTrace>;
}

impl<F: FnMut() -> Option<BlockTrace>> BlockSource for F {
    fn next_block(&mut self) -> Option<BlockTrace> {
        self()
    }
}

/// An iterator adapter usable as a [`BlockSource`].
pub struct IterSource<I>(pub I);

impl<I: Iterator<Item = BlockTrace>> BlockSource for IterSource<I> {
    fn next_block(&mut self) -> Option<BlockTrace> {
        self.0.next()
    }
}

#[derive(Debug)]
struct WarpRt {
    trace: WarpTrace,
    pc: usize,
    block: usize,
    active: bool,
    /// In-flight long-latency memory ops (bounded by `mem_queue_depth`):
    /// completion tick plus whether the access queued at the DRAM
    /// interface (bandwidth-bound rather than latency-bound).
    pending: Vec<(u64, bool)>,
    /// Why this warp is currently unready — the stall reason charged to the
    /// scheduler gap it ends when it next issues.
    wait: SmxState,
}

#[derive(Debug)]
struct BlockRt {
    smx: usize,
    warp_slots: Vec<usize>,
    live_warps: u32,
    bar_count: u32,
    bar_max: u64,
    finish_max: u64,
    active: bool,
}

struct Smx {
    issue_free: u64,
    l1: Cache,
    tex: Cache,
    resident_blocks: u32,
}

/// The engine itself; create with [`Engine::new`], drive with
/// [`Engine::run`].
pub struct Engine<'d> {
    dev: &'d DeviceConfig,
    tick_per_issue: u64,
    txn_ticks: u64,
    dram_free: u64,
    l2: Cache,
    smxs: Vec<Smx>,
    warps: Vec<WarpRt>,
    free_warps: Vec<usize>,
    blocks: Vec<BlockRt>,
    free_blocks: Vec<usize>,
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: u64,
    end_time: u64,
    stats: TimingReport,
    timeline: Timeline,
}

impl<'d> Engine<'d> {
    /// Build an engine for `dev`; `occ` bounds the resident blocks per SMX.
    pub fn new(dev: &'d DeviceConfig, occ: &Occupancy) -> Self {
        let _ = occ;
        let smxs = (0..dev.num_smx)
            .map(|_| Smx {
                issue_free: 0,
                l1: Cache::new(dev.l1_bytes, dev.l1_line, dev.l1_assoc),
                tex: Cache::new(dev.tex_cache_bytes, dev.l1_line, dev.l1_assoc),
                resident_blocks: 0,
            })
            .collect();
        Engine {
            dev,
            tick_per_issue: (TICKS_PER_CYCLE / dev.issue_per_cycle as u64).max(1),
            txn_ticks: ((dev.txn_bytes as u64 * TICKS_PER_CYCLE)
                / dev.dram_bytes_per_cycle as u64)
                .max(1),
            dram_free: 0,
            l2: Cache::new(dev.l2_bytes, dev.txn_bytes, dev.l2_assoc),
            smxs,
            warps: Vec::new(),
            free_warps: Vec::new(),
            blocks: Vec::new(),
            free_blocks: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            end_time: 0,
            stats: TimingReport::default(),
            timeline: Timeline::new(dev.num_smx as usize),
        }
    }

    #[inline]
    fn tk(c: u64) -> u64 {
        c * TICKS_PER_CYCLE
    }

    fn push_event(&mut self, t: u64, warp: usize) {
        self.seq += 1;
        self.heap.push(Reverse((t, self.seq, warp)));
    }

    /// Record a long-latency memory completion in the warp's in-flight
    /// queue. The warp proceeds immediately while fewer than
    /// `mem_queue_depth` ops are outstanding, and otherwise blocks on the
    /// oldest one — approximating compiler-scheduled memory-level
    /// parallelism without per-register dependence tracking. Returns the
    /// warp's ready time plus the stall reason that wait represents.
    fn queue_mem(
        &mut self,
        wslot: usize,
        t_issue: u64,
        completion: u64,
        dram_queued: bool,
    ) -> (u64, SmxState) {
        let depth = self.dev.mem_queue_depth.max(1) as usize;
        let pending = &mut self.warps[wslot].pending;
        pending.push((completion, dram_queued));
        if pending.len() <= depth {
            (t_issue + Self::tk(2), SmxState::ScoreboardDependency)
        } else {
            let oldest = pending
                .iter()
                .enumerate()
                .min_by_key(|(_, &(t, _))| t)
                .map(|(i, _)| i)
                .expect("non-empty");
            let (done, queued) = pending.swap_remove(oldest);
            let reason = if queued { SmxState::DramSaturated } else { SmxState::MemoryPending };
            (done.max(t_issue), reason)
        }
    }

    /// Drain the warp's in-flight memory queue (barriers, warp exit).
    fn drain_mem(&mut self, wslot: usize, t: u64) -> u64 {
        let pending = &mut self.warps[wslot].pending;
        let max = pending.iter().map(|&(t, _)| t).fold(t, u64::max);
        pending.clear();
        max
    }

    /// Occupy the shared DRAM interface for `txns` transactions arriving at
    /// `t_issue` — the single accumulation site for `dram_busy_cycles`.
    /// Returns the tick at which the interface finishes this batch and
    /// whether the batch had to queue behind earlier traffic (the signal
    /// behind [`SmxState::DramSaturated`]).
    fn dram_transfer(&mut self, t_issue: u64, txns: u64) -> (u64, bool) {
        let start = t_issue.max(self.dram_free);
        let busy = txns * self.txn_ticks;
        self.dram_free = start + busy;
        self.stats.dram_busy_cycles += busy / TICKS_PER_CYCLE;
        (self.dram_free, start > t_issue)
    }

    /// Serve a set of L1/tex-missed lines through L2 and DRAM; returns the
    /// extra latency in ticks (0 lines = an L1 hit) and whether the request
    /// queued at DRAM. When `blocking` is false only the
    /// bandwidth/occupancy effects are applied.
    fn serve_through_l2(&mut self, t_issue: u64, missed: &[u64], blocking: bool) -> (u64, bool) {
        if missed.is_empty() {
            return (Self::tk(self.dev.l1_hit_latency as u64), false);
        }
        let mut dram_misses = 0u64;
        for line in missed {
            if self.l2.access(*line) {
                self.stats.l2_hits += 1;
            } else {
                self.stats.l2_misses += 1;
                dram_misses += 1;
            }
        }
        if dram_misses > 0 {
            let (done, queued) = self.dram_transfer(t_issue, dram_misses);
            if blocking {
                return ((done - t_issue) + Self::tk(self.dev.global_latency as u64), queued);
            }
        }
        if blocking {
            (Self::tk(self.dev.l2_latency as u64) + Self::tk(missed.len() as u64 - 1), false)
        } else {
            (0, false)
        }
    }

    fn install_block(
        &mut self,
        smx: usize,
        trace: BlockTrace,
        start: u64,
        blocks_per_smx: u32,
    ) {
        debug_assert!(self.smxs[smx].resident_blocks < blocks_per_smx);
        // The CUDA contract: every warp of a block must execute the same
        // number of barriers, otherwise behaviour is undefined. We assert it
        // so bugs in transformed kernels surface loudly.
        let bar_counts: Vec<usize> = trace
            .warps
            .iter()
            .map(|w| w.ops.iter().filter(|o| matches!(o, WarpOp::Bar)).count())
            .collect();
        assert!(
            bar_counts.windows(2).all(|w| w[0] == w[1]),
            "warps of one block executed different numbers of barriers: {bar_counts:?}"
        );

        let block_slot = self.free_blocks.pop().unwrap_or_else(|| {
            self.blocks.push(BlockRt {
                smx: 0,
                warp_slots: Vec::new(),
                live_warps: 0,
                bar_count: 0,
                bar_max: 0,
                finish_max: 0,
                active: false,
            });
            self.blocks.len() - 1
        });

        let mut warp_slots = Vec::with_capacity(trace.warps.len());
        let mut live = 0;
        for wt in trace.warps {
            if wt.ops.is_empty() {
                continue;
            }
            let wslot = self.free_warps.pop().unwrap_or_else(|| {
                self.warps.push(WarpRt {
                    trace: WarpTrace::default(),
                    pc: 0,
                    block: 0,
                    active: false,
                    pending: Vec::new(),
                    wait: SmxState::NoBlockResident,
                });
                self.warps.len() - 1
            });
            self.warps[wslot] = WarpRt {
                trace: wt,
                pc: 0,
                block: block_slot,
                active: true,
                pending: Vec::new(),
                // Until its first issue the warp is inside the block-launch
                // window; a gap it ends counts as no-block-resident time.
                wait: SmxState::NoBlockResident,
            };
            warp_slots.push(wslot);
            live += 1;
        }

        self.blocks[block_slot] = BlockRt {
            smx,
            warp_slots: warp_slots.clone(),
            live_warps: live,
            bar_count: 0,
            bar_max: 0,
            finish_max: start,
            active: true,
        };
        self.smxs[smx].resident_blocks += 1;
        self.stats.blocks_simulated += 1;
        if live == 0 {
            // A block of empty traces still occupies the slot momentarily.
            self.retire_block(block_slot, start);
            return;
        }
        for w in warp_slots {
            self.push_event(start, w);
        }
    }

    fn retire_block(&mut self, block_slot: usize, _at: u64) {
        let smx = self.blocks[block_slot].smx;
        let slots = std::mem::take(&mut self.blocks[block_slot].warp_slots);
        for w in slots {
            self.warps[w].active = false;
            self.warps[w].trace = WarpTrace::default();
            self.free_warps.push(w);
        }
        self.blocks[block_slot].active = false;
        self.free_blocks.push(block_slot);
        self.smxs[smx].resident_blocks -= 1;
    }

    /// Run the simulation to completion, pulling blocks from `source` as
    /// SMX slots free up. `blocks_total` is the logical grid size; if the
    /// source yields fewer blocks the result is scaled up linearly (wave
    /// sampling).
    pub fn run(
        mut self,
        occ: &Occupancy,
        source: &mut dyn BlockSource,
        blocks_total: u64,
    ) -> TimingReport {
        let launch = Self::tk(self.dev.block_launch_cost as u64);
        // Initial fill, round-robin across SMXs like the hardware work
        // distributor.
        'fill: for _round in 0..occ.blocks_per_smx {
            for smx in 0..self.smxs.len() {
                match source.next_block() {
                    Some(bt) => self.install_block(smx, bt, launch, occ.blocks_per_smx),
                    None => break 'fill,
                }
            }
        }

        while let Some(Reverse((t, _, wslot))) = self.heap.pop() {
            debug_assert!(self.warps[wslot].active);
            let block_slot = self.warps[wslot].block;
            let smx_id = self.blocks[block_slot].smx;

            if self.warps[wslot].pc >= self.warps[wslot].trace.ops.len() {
                // Warp finished (its last op completed at `t`, pending
                // memory drains now). The scheduler gap it ends is charged
                // to whatever it was waiting on.
                self.timeline.record_stall(
                    smx_id,
                    t / TICKS_PER_CYCLE,
                    self.warps[wslot].wait,
                );
                let drained = self.drain_mem(wslot, t);
                self.warps[wslot].active = false;
                let b = &mut self.blocks[block_slot];
                b.live_warps -= 1;
                b.finish_max = b.finish_max.max(drained);
                if b.live_warps == 0 {
                    let completion = b.finish_max;
                    let smx = b.smx;
                    self.retire_block(block_slot, completion);
                    if let Some(bt) = source.next_block() {
                        self.install_block(smx, bt, completion + launch, occ.blocks_per_smx);
                    }
                }
                continue;
            }

            let t_issue = t.max(self.smxs[smx_id].issue_free);
            // Each op is executed exactly once and never re-read (pc only
            // advances; retire resets the trace), so take it out instead of
            // cloning — GlobalLoad/Local/Tex ops carry heap-allocated line
            // lists a clone would have to copy.
            let pc = self.warps[wslot].pc;
            let op =
                std::mem::replace(&mut self.warps[wslot].trace.ops[pc], WarpOp::Alu { count: 0 });
            self.warps[wslot].pc += 1;

            // The reason this warp was unready until now; it was the
            // earliest-ready warp on the SMX, so the scheduler gap it ends
            // is charged to that reason.
            let gap_reason = self.warps[wslot].wait;
            // Instructions actually issued by this op (folded runs count
            // fully); port slots held beyond these are IssueLimit time.
            let n_instr: u64 = match &op {
                WarpOp::Alu { count } | WarpOp::Sfu { count } => *count as u64,
                _ => 1,
            };

            let mut ready = t_issue;
            let mut at_barrier = false;
            let mut wait = SmxState::ScoreboardDependency;
            match op {
                WarpOp::Alu { count } => {
                    let c = count as u64;
                    self.smxs[smx_id].issue_free = t_issue + c * self.tick_per_issue;
                    ready = t_issue + Self::tk(c - 1) + Self::tk(self.dev.alu_latency as u64);
                    self.stats.instructions += c;
                }
                WarpOp::Sfu { count } => {
                    let c = count as u64;
                    self.smxs[smx_id].issue_free = t_issue + 4 * c * self.tick_per_issue;
                    ready =
                        t_issue + Self::tk(4 * (c - 1)) + Self::tk(self.dev.sfu_latency as u64);
                    self.stats.instructions += c;
                }
                WarpOp::GlobalLoad { segs, bytes } => {
                    // Each transaction occupies a load-store-unit slot.
                    self.smxs[smx_id].issue_free =
                        t_issue + segs.len() as u64 * self.tick_per_issue;
                    let mut misses = 0u64;
                    for seg in &segs {
                        if self.l2.access(*seg) {
                            self.stats.l2_hits += 1;
                        } else {
                            self.stats.l2_misses += 1;
                            misses += 1;
                        }
                    }
                    self.stats.instructions += 1;
                    self.stats.global_txns += segs.len() as u64;
                    self.stats.global_bytes += bytes as u64;
                    let (completion, queued) = if misses > 0 {
                        let (done, queued) = self.dram_transfer(t_issue, misses);
                        (done + Self::tk(self.dev.global_latency as u64), queued)
                    } else {
                        (
                            t_issue
                                + Self::tk(self.dev.l2_latency as u64)
                                + Self::tk(segs.len() as u64 - 1),
                            false,
                        )
                    };
                    (ready, wait) = self.queue_mem(wslot, t_issue, completion, queued);
                }
                WarpOp::GlobalStore { segs, bytes } => {
                    self.smxs[smx_id].issue_free =
                        t_issue + segs.len() as u64 * self.tick_per_issue;
                    // Write-allocate into L2; only misses generate DRAM
                    // traffic. Stores retire through the write path without
                    // stalling the warp.
                    let mut misses = 0u64;
                    for seg in &segs {
                        if self.l2.access(*seg) {
                            self.stats.l2_hits += 1;
                        } else {
                            self.stats.l2_misses += 1;
                            misses += 1;
                        }
                    }
                    if misses > 0 {
                        let _ = self.dram_transfer(t_issue, misses);
                    }
                    ready = t_issue + Self::tk(4);
                    self.stats.instructions += 1;
                    self.stats.global_txns += segs.len() as u64;
                    self.stats.global_bytes += bytes as u64;
                }
                WarpOp::SharedLoad { passes } => {
                    let p = passes as u64;
                    self.smxs[smx_id].issue_free = t_issue + p * self.tick_per_issue;
                    ready = t_issue
                        + Self::tk(
                            self.dev.shared_latency as u64
                                + (p - 1) * self.dev.shared_replay_cost as u64,
                        );
                    self.stats.instructions += 1;
                    self.stats.shared_accesses += 1;
                    self.stats.shared_replays += p - 1;
                }
                WarpOp::SharedStore { passes } => {
                    let p = passes as u64;
                    self.smxs[smx_id].issue_free = t_issue + p * self.tick_per_issue;
                    ready = t_issue + Self::tk(2 + (p - 1) * self.dev.shared_replay_cost as u64);
                    self.stats.instructions += 1;
                    self.stats.shared_accesses += 1;
                    self.stats.shared_replays += p - 1;
                }
                WarpOp::LocalLoad { lines } => {
                    self.smxs[smx_id].issue_free =
                        t_issue + lines.len() as u64 * self.tick_per_issue;
                    let mut l1_misses: Vec<u64> = Vec::new();
                    for line in &lines {
                        if self.smxs[smx_id].l1.access(*line) {
                            self.stats.l1_hits += 1;
                        } else {
                            self.stats.l1_misses += 1;
                            l1_misses.push(*line);
                        }
                    }
                    self.stats.instructions += 1;
                    let (lat, queued) = self.serve_through_l2(t_issue, &l1_misses, true);
                    (ready, wait) = self.queue_mem(wslot, t_issue, t_issue + lat, queued);
                }
                WarpOp::LocalStore { lines } => {
                    self.smxs[smx_id].issue_free =
                        t_issue + lines.len() as u64 * self.tick_per_issue;
                    let mut l1_misses: Vec<u64> = Vec::new();
                    for line in &lines {
                        if self.smxs[smx_id].l1.access(*line) {
                            self.stats.l1_hits += 1;
                        } else {
                            self.stats.l1_misses += 1;
                            l1_misses.push(*line);
                        }
                    }
                    self.stats.instructions += 1;
                    // Fills happen below the store; the warp is not stalled.
                    let _ = self.serve_through_l2(t_issue, &l1_misses, false);
                    ready = t_issue + Self::tk(4);
                }
                WarpOp::TexLoad { lines } => {
                    self.smxs[smx_id].issue_free =
                        t_issue + lines.len() as u64 * self.tick_per_issue;
                    let mut t_misses: Vec<u64> = Vec::new();
                    for line in &lines {
                        if self.smxs[smx_id].tex.access(*line) {
                            self.stats.tex_hits += 1;
                        } else {
                            self.stats.tex_misses += 1;
                            t_misses.push(*line);
                        }
                    }
                    self.stats.instructions += 1;
                    let (lat, queued) = self.serve_through_l2(t_issue, &t_misses, true);
                    (ready, wait) = self.queue_mem(wslot, t_issue, t_issue + lat, queued);
                }
                WarpOp::ConstLoad { words } => {
                    let w = words as u64;
                    self.smxs[smx_id].issue_free = t_issue + w * self.tick_per_issue;
                    ready = t_issue
                        + Self::tk(
                            self.dev.const_latency as u64
                                + (w - 1) * self.dev.const_serialize_cost as u64,
                        );
                    self.stats.instructions += 1;
                    self.stats.const_serializations += w - 1;
                }
                WarpOp::Shfl { .. } => {
                    self.smxs[smx_id].issue_free = t_issue + self.tick_per_issue;
                    ready = t_issue + Self::tk(self.dev.shfl_latency as u64);
                    self.stats.instructions += 1;
                    self.stats.shfl_ops += 1;
                }
                WarpOp::Bar => {
                    self.stats.instructions += 1;
                    self.stats.barriers += 1;
                    at_barrier = true;
                    wait = SmxState::BarrierWait;
                    let drained = self.drain_mem(wslot, t_issue);
                    let b = &mut self.blocks[block_slot];
                    b.bar_count += 1;
                    b.bar_max =
                        b.bar_max.max(drained + Self::tk(self.dev.barrier_cost as u64));
                    if b.bar_count == b.live_warps {
                        let release = b.bar_max;
                        b.bar_count = 0;
                        b.bar_max = 0;
                        let slots = b.warp_slots.clone();
                        for w in slots {
                            if self.warps[w].active {
                                self.warps[w].wait = SmxState::BarrierWait;
                                self.push_event(release, w);
                            }
                        }
                    }
                }
            }

            // Flight-recorder attribution for this scheduler decision: the
            // gap before the issue (stall), the issue slots themselves, and
            // any extra serialized port slots (IssueLimit). A barrier holds
            // the port for one slot even though `issue_free` is untouched.
            let port_end = self.smxs[smx_id].issue_free.max(t_issue + self.tick_per_issue);
            let instr_end = (t_issue + n_instr * self.tick_per_issue).min(port_end);
            self.timeline.record_issue(
                smx_id,
                gap_reason,
                t_issue / TICKS_PER_CYCLE,
                instr_end.div_ceil(TICKS_PER_CYCLE),
                port_end.div_ceil(TICKS_PER_CYCLE),
            );
            self.warps[wslot].wait = wait;

            self.end_time = self
                .end_time
                .max(ready)
                .max(self.warps[wslot].pending.iter().map(|&(t, _)| t).max().unwrap_or(0));

            if at_barrier {
                // The warp was either parked (waiting for peers) or already
                // re-queued by the barrier release above.
                continue;
            }

            // Completion (pc may now equal ops.len()) is detected at the
            // next pop, so barrier releases and normal advances share one
            // path.
            self.push_event(ready, wslot);
        }

        // The launch is not over until every pipeline drains: the DRAM
        // interface and each SMX's issue port may still be busy past the
        // last warp's ready time (trailing stores). Folding them in keeps
        // `dram_busy_cycles <= simulated_cycles` and lets the timeline tile
        // exactly.
        self.end_time = self.end_time.max(self.dram_free);
        for smx in &self.smxs {
            self.end_time = self.end_time.max(smx.issue_free);
        }
        let simulated_cycles = self.end_time.div_ceil(TICKS_PER_CYCLE);
        self.timeline.finish(simulated_cycles);
        if let Err(e) = self.timeline.check_total_attribution() {
            debug_assert!(false, "stall attribution must be total: {e}");
        }
        let mut stats = self.stats;
        stats.stall = self.timeline.total();
        stats.timeline = self.timeline;
        stats.simulated_cycles = simulated_cycles;
        stats.blocks_total = blocks_total.max(stats.blocks_simulated);
        stats.cycles = if stats.blocks_simulated > 0 && stats.blocks_total > stats.blocks_simulated
        {
            (simulated_cycles as u128 * stats.blocks_total as u128
                / stats.blocks_simulated as u128) as u64
        } else {
            simulated_cycles
        };
        stats
    }
}

/// Convenience wrapper: simulate a fully materialized list of block traces.
pub fn simulate_blocks(
    dev: &DeviceConfig,
    occ: &Occupancy,
    blocks: Vec<BlockTrace>,
    blocks_total: u64,
) -> TimingReport {
    let engine = Engine::new(dev, occ);
    let mut src = IterSource(blocks.into_iter());
    engine.run(occ, &mut src, blocks_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::{occupancy, KernelResources};
    use crate::trace::TraceBuilder;

    fn dev() -> DeviceConfig {
        DeviceConfig::small_test()
    }

    fn occ_for(dev: &DeviceConfig, block_size: u32, regs: u32, shared: u32) -> Occupancy {
        occupancy(
            dev,
            &KernelResources {
                block_size,
                regs_per_thread: regs,
                shared_per_block: shared,
                local_per_thread: 0,
            },
        )
        .unwrap()
    }

    fn alu_block(warps: usize, count: u16) -> BlockTrace {
        let mut bt = BlockTrace::default();
        for _ in 0..warps {
            let mut b = TraceBuilder::new(128, 128);
            b.alu(count);
            bt.warps.push(b.finish());
        }
        bt
    }

    #[test]
    fn single_alu_warp_cycle_count() {
        let d = dev();
        let occ = occ_for(&d, 32, 8, 0);
        let r = simulate_blocks(&d, &occ, vec![alu_block(1, 10)], 1);
        // launch + (count-1) + alu_latency, within rounding.
        let expect = d.block_launch_cost as u64 + 9 + d.alu_latency as u64;
        assert!(
            r.cycles >= expect && r.cycles <= expect + 2,
            "cycles {} vs expected ~{expect}",
            r.cycles
        );
        assert_eq!(r.instructions, 10);
    }

    #[test]
    fn memory_bound_kernel_saturates_dram() {
        let d = dev();
        let occ = occ_for(&d, 256, 8, 0);
        // Many warps each doing lots of coalesced loads+stores: the DRAM
        // interface must become the bottleneck.
        let mut blocks = Vec::new();
        for blk in 0..8u64 {
            let mut bt = BlockTrace::default();
            for w in 0..8u64 {
                let mut b = TraceBuilder::new(d.txn_bytes, d.l1_line);
                for i in 0..64u64 {
                    let base = (blk * 8 + w) * 64 * 128 + i * 128;
                    let addrs = crate::mem::lane_addrs(
                        (0..32).map(|l| (l, base + 4 * l as u64)),
                    );
                    b.global(&addrs, 4, false);
                    b.global(&addrs, 4, true);
                }
                bt.warps.push(b.finish());
            }
            blocks.push(bt);
        }
        let r = simulate_blocks(&d, &occ, blocks, 8);
        assert!(
            r.dram_utilization() > 0.8,
            "expected DRAM-bound, utilization {}",
            r.dram_utilization()
        );
        // DRAM-level traffic can never exceed the interface's peak rate
        // (application-level bytes can, via L2 hits).
        let dram_bytes = r.l2_misses * d.txn_bytes as u64;
        let dram_bw = d.bandwidth_gbps(dram_bytes, r.cycles);
        assert!(dram_bw <= d.peak_bandwidth_gbps() + 1e-9, "dram bw {dram_bw}");
        let bw = d.bandwidth_gbps(r.global_bytes, r.cycles);
        assert!(bw > 0.6 * d.peak_bandwidth_gbps(), "bw {bw}");
    }

    #[test]
    fn more_warps_hide_latency() {
        let d = dev();
        // One warp doing dependent loads vs 8 warps doing the same amount of
        // total work: the 8-warp version must be substantially faster.
        let load_block = |warps: u64, loads_per_warp: u64| {
            let mut bt = BlockTrace::default();
            for w in 0..warps {
                let mut b = TraceBuilder::new(d.txn_bytes, d.l1_line);
                for i in 0..loads_per_warp {
                    let base = (w * loads_per_warp + i) * 4096;
                    let addrs =
                        crate::mem::lane_addrs((0..32).map(|l| (l, base + 4 * l as u64)));
                    b.global(&addrs, 4, false);
                    b.alu(4);
                }
                bt.warps.push(b.finish());
            }
            bt
        };
        let occ1 = occ_for(&d, 32, 8, 0);
        let r1 = simulate_blocks(&d, &occ1, vec![load_block(1, 64)], 1);
        let occ8 = occ_for(&d, 256, 8, 0);
        let r8 = simulate_blocks(&d, &occ8, vec![load_block(8, 8)], 1);
        assert!(
            r8.cycles * 3 < r1.cycles,
            "8 warps ({}) should be >3x faster than 1 warp ({})",
            r8.cycles,
            r1.cycles
        );
    }

    #[test]
    fn barrier_synchronizes_warps() {
        let d = dev();
        let occ = occ_for(&d, 64, 8, 0);
        // Warp 0 does long work then Bar; warp 1 does Bar immediately then
        // short work. Total must reflect warp 1 waiting for warp 0.
        let mut bt = BlockTrace::default();
        let mut b0 = TraceBuilder::new(128, 128);
        b0.alu(1000);
        b0.bar();
        b0.alu(1);
        bt.warps.push(b0.finish());
        let mut b1 = TraceBuilder::new(128, 128);
        b1.bar();
        b1.alu(1);
        bt.warps.push(b1.finish());
        let r = simulate_blocks(&d, &occ, vec![bt], 1);
        assert!(r.cycles > 1000, "barrier must make warp 1 wait: {}", r.cycles);
        assert_eq!(r.barriers, 2);
    }

    #[test]
    #[should_panic(expected = "different numbers of barriers")]
    fn mismatched_barrier_counts_panic() {
        let d = dev();
        let occ = occ_for(&d, 64, 8, 0);
        let mut bt = BlockTrace::default();
        let mut b0 = TraceBuilder::new(128, 128);
        b0.bar();
        bt.warps.push(b0.finish());
        let mut b1 = TraceBuilder::new(128, 128);
        b1.alu(1);
        bt.warps.push(b1.finish());
        simulate_blocks(&d, &occ, vec![bt], 1);
    }

    #[test]
    fn waves_serialize_when_occupancy_is_low() {
        let d = dev();
        // Latency-bound blocks: one warp issuing dependent global loads.
        // Shared memory limits residency to 1 block per SMX; with 2 SMXs and
        // 8 blocks that is 4 serialized waves of exposed latency. With all
        // blocks resident, the loads overlap.
        let mk_blocks = || {
            (0..8u64)
                .map(|blk| {
                    let mut bt = BlockTrace::default();
                    let mut b = TraceBuilder::new(d.txn_bytes, d.l1_line);
                    for i in 0..16u64 {
                        let base = (blk * 16 + i) * 4096;
                        let addrs = crate::mem::lane_addrs(
                            (0..32).map(|l| (l, base + 4 * l as u64)),
                        );
                        b.global(&addrs, 4, false);
                        b.alu(2);
                    }
                    bt.warps.push(b.finish());
                    bt
                })
                .collect::<Vec<_>>()
        };
        let occ_low = occ_for(&d, 32, 8, d.shared_mem_per_smx);
        assert_eq!(occ_low.blocks_per_smx, 1);
        let r_low = simulate_blocks(&d, &occ_low, mk_blocks(), 8);
        let occ_high = occ_for(&d, 32, 8, 0);
        assert!(occ_high.blocks_per_smx >= 4);
        let r_high = simulate_blocks(&d, &occ_high, mk_blocks(), 8);
        assert!(
            r_low.cycles > 2 * r_high.cycles,
            "low occupancy {} vs high {}",
            r_low.cycles,
            r_high.cycles
        );
    }

    #[test]
    fn wave_sampling_scales_cycles() {
        let d = dev();
        let occ = occ_for(&d, 32, 8, 0);
        let r_sampled = simulate_blocks(&d, &occ, vec![alu_block(1, 100); 4], 16);
        assert!(r_sampled.is_sampled());
        assert_eq!(r_sampled.cycles, r_sampled.simulated_cycles * 4);
    }

    #[test]
    fn l1_thrash_costs_more_than_fit() {
        let d = dev();
        let occ = occ_for(&d, 32, 8, 0);
        let local_block = |distinct_lines: u64| {
            let mut bt = BlockTrace::default();
            let mut b = TraceBuilder::new(d.txn_bytes, d.l1_line);
            for rep in 0..64u64 {
                let line = (rep % distinct_lines) * 128;
                b.push_raw(WarpOp::LocalLoad { lines: vec![line] });
            }
            bt.warps.push(b.finish());
            bt
        };
        let r_fit = simulate_blocks(&d, &occ, vec![local_block(4)], 1);
        let r_thrash = simulate_blocks(&d, &occ, vec![local_block(64)], 1);
        assert!(r_fit.l1_hit_rate() > 0.9);
        assert!(r_thrash.l1_hit_rate() < 0.1);
        assert!(r_thrash.cycles > 2 * r_fit.cycles);
    }

    #[test]
    fn empty_grid_completes() {
        let d = dev();
        let occ = occ_for(&d, 32, 8, 0);
        let r = simulate_blocks(&d, &occ, vec![], 0);
        assert_eq!(r.blocks_simulated, 0);
        assert_eq!(r.cycles, 0);
    }
}
