//! # np-gpu-sim — a Kepler-class SIMT GPU timing simulator
//!
//! Substrate for the CUDA-NP (PPoPP'14) reproduction. The paper evaluates
//! on real GTX 680 / K20c hardware; this crate supplies the equivalent
//! machine: streaming multiprocessors with warp schedulers and bounded
//! occupancy, a coalescing global-memory system with finite DRAM bandwidth,
//! banked shared memory, an L1 cache backing CUDA *local* memory, a
//! constant-cache broadcast path, `__shfl` register exchange, block-wide
//! barriers, and a dynamic-parallelism overhead model.
//!
//! The crate is purely a *timing* machine: it consumes per-warp instruction
//! traces (see [`trace`]) produced by the functional SIMT interpreter in
//! `np-exec`, and produces cycle counts and counters (see [`stats`]).
//!
//! ```
//! use np_gpu_sim::config::DeviceConfig;
//! use np_gpu_sim::occupancy::{occupancy, KernelResources};
//!
//! let dev = DeviceConfig::gtx680();
//! let res = KernelResources {
//!     block_size: 256, regs_per_thread: 22, shared_per_block: 0, local_per_thread: 0,
//! };
//! let occ = occupancy(&dev, &res).unwrap();
//! assert_eq!(occ.blocks_per_smx, 8); // 2048-thread SMX, 256-thread blocks
//! ```

pub mod capture;
pub mod config;
pub mod device;
pub mod dynpar;
pub mod engine;
pub mod mem;
pub mod occupancy;
pub mod profile;
pub mod racecheck;
pub mod replay;
pub mod stats;
pub mod timeline;
pub mod trace;

pub use capture::{CapturedLaunch, CapturedRaceMode, TraceDecodeError, TRACE_MAGIC};
pub use config::{DeviceConfig, DynParConfig, TICKS_PER_CYCLE, WARP_SIZE};
pub use device::{DeviceError, DEVICE_SCHEMA, REGISTRY};
pub use engine::{simulate_blocks, BlockSource, Engine, IterSource};
pub use occupancy::{occupancy, KernelResources, Limiter, Occupancy, OccupancyError};
pub use profile::{BlockProfile, ProfileCounters, ProfileReport};
pub use racecheck::{
    AccessSite, GatingPolicy, RaceCheckOptions, RaceFinding, RaceKind, RaceRecorder, RaceReport,
    RaceSpace,
};
pub use replay::{replay, ReplayedLaunch, ReplayError};
pub use stats::TimingReport;
pub use timeline::{SmxState, StallBreakdown, Timeline};
pub use trace::{BlockTrace, ShflKind, TraceBuilder, WarpOp, WarpTrace};
