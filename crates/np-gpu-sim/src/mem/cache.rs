//! Set-associative LRU cache used for the per-SMX L1 (which backs local
//! memory on Kepler) and the read-only/texture path.
//!
//! The cache is probed in warp-issue order by the timing engine; functional
//! data never lives here — only tags. This is what makes the LE/LIB
//! local-array experiments work: a 600 B-per-thread local array across
//! hundreds of resident threads cannot fit a 16 KB L1, so local accesses
//! thrash and pay global latency (Section 3.3, Figure 15).

/// Tag-only set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<u64>>, // each set: line tags, most-recently-used last
    assoc: usize,
    line: u64,
    num_sets: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Create a cache of `bytes` capacity with `line`-byte lines and
    /// `assoc`-way associativity. Capacity is rounded down to a power-of-two
    /// set count (minimum one set).
    pub fn new(bytes: u32, line: u32, assoc: u32) -> Self {
        assert!(line.is_power_of_two(), "line size must be a power of two");
        assert!(assoc >= 1, "associativity must be at least 1");
        let lines = (bytes / line).max(1) as u64;
        let raw_sets = (lines / assoc as u64).max(1);
        // Round down to a power of two so set indexing is a mask.
        let num_sets = 1u64 << (63 - raw_sets.leading_zeros() as u64);
        Cache {
            sets: vec![Vec::with_capacity(assoc as usize); num_sets as usize],
            assoc: assoc as usize,
            line: line as u64,
            num_sets,
            hits: 0,
            misses: 0,
        }
    }

    /// Access the line containing `addr`; returns true on hit. Misses fill.
    /// The set index XOR-folds the upper tag bits, like the hashed set
    /// functions of real GPU caches, so power-of-two strides do not
    /// concentrate into a handful of sets.
    pub fn access(&mut self, addr: u64) -> bool {
        let tag = addr / self.line;
        let set = ((tag ^ (tag / self.num_sets) ^ (tag / (self.num_sets * self.num_sets)))
            % self.num_sets) as usize;
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.push(t);
            self.hits += 1;
            true
        } else {
            if ways.len() == self.assoc {
                ways.remove(0);
            }
            ways.push(tag);
            self.misses += 1;
            false
        }
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1]; 1.0 for an untouched cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop all tags but keep statistics.
    pub fn invalidate(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }

    /// Capacity in bytes actually modelled (after power-of-two rounding).
    pub fn effective_bytes(&self) -> u64 {
        self.num_sets * self.assoc as u64 * self.line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 128, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(64)); // same line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(1024, 128, 2); // 8 lines
        // Cycle through 16 distinct lines twice: everything misses under LRU.
        for _ in 0..2 {
            for i in 0..16u64 {
                c.access(i * 128 * 8); // all map... spread over sets below
            }
        }
        assert!(c.hit_rate() < 0.51, "hit rate {} too high", c.hit_rate());
    }

    #[test]
    fn working_set_within_capacity_hits_after_warmup() {
        let mut c = Cache::new(2048, 128, 4); // 16 lines
        for round in 0..4 {
            for i in 0..8u64 {
                let hit = c.access(i * 128);
                if round > 0 {
                    assert!(hit);
                }
            }
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = Cache::new(256, 128, 2); // one set, two ways
        c.access(0); // miss, resident {0}
        c.access(128); // miss, resident {0,128}
        c.access(0); // hit, order {128,0}
        c.access(256); // miss, evicts 128
        assert!(c.access(0), "0 was MRU and must survive");
        assert!(!c.access(128), "128 was LRU and must have been evicted");
    }

    #[test]
    fn invalidate_clears_tags_not_stats() {
        let mut c = Cache::new(1024, 128, 2);
        c.access(0);
        c.invalidate();
        assert!(!c.access(0));
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn conflict_misses_within_one_set() {
        // Direct-mapped 8-set cache: tags 0 and 9 hash to the same set
        // (9 ^ 9/8 ^ 9/64 = 8 ≡ 0 mod 8), so they evict each other.
        let mut c = Cache::new(1024, 128, 1); // 8 sets, 1 way
        c.access(0);
        c.access(9 * 128);
        assert!(!c.access(0), "conflicting line must have evicted");
    }

    #[test]
    fn hashed_sets_spread_power_of_two_strides() {
        // 32 lines at a large power-of-two stride must NOT all collide in
        // one set (the scenario that motivated the hashed index): with 64
        // sets and 4 ways, all 32 survive a second pass.
        let mut c = Cache::new(32 * 1024, 128, 4); // 64 sets
        for round in 0..2 {
            for i in 0..32u64 {
                let hit = c.access(i * 4096);
                if round == 1 {
                    assert!(hit, "line {i} should have survived");
                }
            }
        }
    }
}
