//! Constant-cache access model.
//!
//! The constant cache broadcasts a single word to all lanes of a warp in one
//! cycle, but *serializes* accesses to distinct addresses. Section 3.4
//! (fourth tradeoff) notes that intra-warp NP can turn a uniform constant
//! access into a divergent one, defeating the broadcast — this model is what
//! makes that cost visible.

use super::LaneAddrs;

/// Number of serialized broadcast cycles for one warp constant access: the
/// count of distinct 4-byte words referenced (0 if no lane is active).
pub fn distinct_words(addrs: &LaneAddrs) -> u32 {
    let mut words: Vec<u64> = addrs.iter().flatten().map(|a| a / 4).collect();
    words.sort_unstable();
    words.dedup();
    words.len() as u32
}

#[cfg(test)]
mod tests {
    use super::super::lane_addrs;
    use super::*;

    #[test]
    fn uniform_access_broadcasts_once() {
        let a = lane_addrs((0..32).map(|l| (l, 0x100)));
        assert_eq!(distinct_words(&a), 1);
    }

    #[test]
    fn fully_divergent_serializes_32_ways() {
        let a = lane_addrs((0..32).map(|l| (l, 4 * l as u64)));
        assert_eq!(distinct_words(&a), 32);
    }

    #[test]
    fn grouped_access_serializes_per_group() {
        // 8 groups of 4 lanes each reading one word per group — the
        // intra-warp NP pattern with slave_size = 4.
        let a = lane_addrs((0..32).map(|l| (l, 4 * (l as u64 / 4))));
        assert_eq!(distinct_words(&a), 8);
    }

    #[test]
    fn inactive_warp_is_free() {
        assert_eq!(distinct_words(&lane_addrs(std::iter::empty())), 0);
    }
}
