//! Global-memory coalescing model.
//!
//! On Kepler, the 32 addresses of a warp's global access are bucketed into
//! aligned segments (128 B for cached, 32 B for un-cached loads; we model the
//! 128 B path, matching how the paper reasons about "coalesced" accesses).
//! The number of distinct segments is the number of memory transactions the
//! warp costs. A fully coalesced 4-byte access by 32 consecutive lanes maps
//! to exactly one transaction; a stride-N access maps to up to 32.

use super::LaneAddrs;

/// Result of coalescing one warp access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coalesced {
    /// Number of `txn_bytes`-sized transactions issued.
    pub transactions: u32,
    /// The distinct segment base addresses (sorted). Bounded by 32 entries
    /// for 4-byte accesses; kept for tests and cache-level reuse.
    pub segments: Vec<u64>,
}

/// Coalesce the addresses of one warp access into aligned segments of
/// `txn_bytes`. `access_bytes` is the per-lane access width (4 for f32/i32).
///
/// An access that straddles a segment boundary (possible for 8/16-byte
/// accesses or unaligned addresses) counts every segment it touches.
pub fn coalesce(addrs: &LaneAddrs, access_bytes: u32, txn_bytes: u32) -> Coalesced {
    debug_assert!(txn_bytes.is_power_of_two());
    let mask = !(txn_bytes as u64 - 1);
    // 4-byte lane accesses produce at most 32 segments; collect them in a
    // fixed scratch buffer so the common (even fully strided) case costs a
    // single exact-size allocation. Wider or unaligned accesses can exceed
    // the scratch capacity and fall back to a plain Vec.
    let mut scratch = [0u64; 64];
    let mut nseg = 0usize;
    let mut spill: Option<Vec<u64>> = None;
    for addr in addrs.iter().flatten() {
        let first = *addr & mask;
        let last = (*addr + access_bytes as u64 - 1) & mask;
        let mut seg = first;
        loop {
            if let Some(v) = &mut spill {
                if let Err(pos) = v.binary_search(&seg) {
                    v.insert(pos, seg);
                }
            } else if let Err(pos) = scratch[..nseg].binary_search(&seg) {
                if nseg == scratch.len() {
                    let mut v = scratch.to_vec();
                    v.insert(pos, seg);
                    spill = Some(v);
                } else {
                    scratch.copy_within(pos..nseg, pos + 1);
                    scratch[pos] = seg;
                    nseg += 1;
                }
            }
            if seg == last {
                break;
            }
            seg += txn_bytes as u64;
        }
    }
    let segments = spill.unwrap_or_else(|| scratch[..nseg].to_vec());
    Coalesced { transactions: segments.len() as u32, segments }
}

#[cfg(test)]
mod tests {
    use super::super::lane_addrs;
    use super::*;

    #[test]
    fn fully_coalesced_is_one_transaction() {
        let a = lane_addrs((0..32).map(|l| (l, 0x1000 + 4 * l as u64)));
        let c = coalesce(&a, 4, 128);
        assert_eq!(c.transactions, 1);
        assert_eq!(c.segments, vec![0x1000]);
    }

    #[test]
    fn unaligned_contiguous_costs_two() {
        // 32 consecutive floats starting 4 bytes past a segment boundary.
        let a = lane_addrs((0..32).map(|l| (l, 0x1004 + 4 * l as u64)));
        let c = coalesce(&a, 4, 128);
        assert_eq!(c.transactions, 2);
    }

    #[test]
    fn strided_access_is_fully_serialized() {
        // Stride of one segment per lane: 32 transactions.
        let a = lane_addrs((0..32).map(|l| (l, 128 * l as u64)));
        let c = coalesce(&a, 4, 128);
        assert_eq!(c.transactions, 32);
    }

    #[test]
    fn broadcast_same_address_is_one_transaction() {
        let a = lane_addrs((0..32).map(|l| (l, 0x4000)));
        let c = coalesce(&a, 4, 128);
        assert_eq!(c.transactions, 1);
    }

    #[test]
    fn inactive_lanes_cost_nothing() {
        let a = lane_addrs(std::iter::empty());
        let c = coalesce(&a, 4, 128);
        assert_eq!(c.transactions, 0);
    }

    #[test]
    fn half_warp_active_strided() {
        let a = lane_addrs((0..16).map(|l| (l, 256 * l as u64)));
        let c = coalesce(&a, 4, 128);
        assert_eq!(c.transactions, 16);
    }

    #[test]
    fn wide_access_straddling_counts_both_segments() {
        // One lane reading 16 bytes across a 128 B boundary.
        let a = lane_addrs([(0usize, 120u64)]);
        let c = coalesce(&a, 16, 128);
        assert_eq!(c.transactions, 2);
        assert_eq!(c.segments, vec![0, 128]);
    }

    #[test]
    fn stride_two_floats_costs_two_segments() {
        // 32 lanes, 8-byte stride -> touches 256 bytes -> 2 segments.
        let a = lane_addrs((0..32).map(|l| (l, 8 * l as u64)));
        let c = coalesce(&a, 4, 128);
        assert_eq!(c.transactions, 2);
    }

    #[test]
    fn segments_are_sorted_and_unique() {
        let a = lane_addrs([(0usize, 512u64), (1, 0), (2, 512), (3, 256)]);
        let c = coalesce(&a, 4, 128);
        assert_eq!(c.segments, vec![0, 256, 512]);
    }
}
