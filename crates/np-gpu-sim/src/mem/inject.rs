//! Deterministic fault injection for the simulated memory system.
//!
//! Two injection modes, both driven by a seed so every run reproduces:
//!
//! * **bit flips** — a read returns its stored word with one bit flipped,
//!   modelling a soft error. The functional result silently diverges,
//!   which is exactly what end-to-end validation must catch;
//! * **forced faults** — an access is decreed faulty, modelling a
//!   hardware-detected violation (the executor surfaces it as a typed
//!   `Injected` simulation fault instead of corrupting data).
//!
//! The decision for each access is a pure function of
//! `(seed, access counter, address)`, so a given configuration always
//! injects at the same points regardless of host parallelism — the
//! executor owns one [`FaultInjector`] per launch and calls it from the
//! deterministic interpreter loop.

/// Memory space an injection targets. Mirrors the executor's spaces that
/// carry raw words (constant/texture are read-only inputs and share the
/// global path's storage, so `Global` covers them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectSpace {
    Global,
    Shared,
    Local,
}

impl InjectSpace {
    pub const ALL: [InjectSpace; 3] = [InjectSpace::Global, InjectSpace::Shared, InjectSpace::Local];

    fn tag(self) -> u64 {
        match self {
            InjectSpace::Global => 0x47,
            InjectSpace::Shared => 0x53,
            InjectSpace::Local => 0x4C,
        }
    }
}

/// Configuration for one launch's injector.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectConfig {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// Flip one bit on roughly one read in this many. 0 disables flips.
    pub bitflip_one_in: u64,
    /// Force a typed fault on roughly one access in this many. 0 disables.
    pub force_fault_one_in: u64,
    /// Spaces the injector targets.
    pub spaces: Vec<InjectSpace>,
}

impl InjectConfig {
    /// Bit flips only, targeting every space.
    pub fn bitflips(seed: u64, one_in: u64) -> Self {
        InjectConfig {
            seed,
            bitflip_one_in: one_in,
            force_fault_one_in: 0,
            spaces: InjectSpace::ALL.to_vec(),
        }
    }

    /// Forced faults only, targeting one space.
    pub fn forced(seed: u64, one_in: u64, space: InjectSpace) -> Self {
        InjectConfig {
            seed,
            bitflip_one_in: 0,
            force_fault_one_in: one_in,
            spaces: vec![space],
        }
    }

    fn targets(&self, space: InjectSpace) -> bool {
        self.spaces.contains(&space)
    }
}

/// What the injector decided for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Flip this bit (0..32) of the loaded word.
    BitFlip(u32),
    /// Treat the access as a detected hardware fault.
    Fault,
}

/// Per-launch injection state: a monotone access counter hashed with the
/// seed and address decides each access.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: InjectConfig,
    accesses: u64,
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl FaultInjector {
    pub fn new(cfg: InjectConfig) -> Self {
        FaultInjector { cfg, accesses: 0 }
    }

    /// Decide the fate of one lane access. Forced faults win over flips
    /// when both rates are armed and the hash selects both.
    pub fn decide(&mut self, space: InjectSpace, addr: u64) -> Option<Injection> {
        self.accesses += 1;
        if !self.cfg.targets(space) {
            return None;
        }
        let h = mix(
            self.cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(self.accesses)
                .wrapping_add(addr.rotate_left(17))
                .wrapping_add(space.tag()),
        );
        if self.cfg.force_fault_one_in != 0 && h.is_multiple_of(self.cfg.force_fault_one_in) {
            return Some(Injection::Fault);
        }
        if self.cfg.bitflip_one_in != 0 && (h >> 8).is_multiple_of(self.cfg.bitflip_one_in) {
            return Some(Injection::BitFlip((h >> 32) as u32 % 32));
        }
        None
    }

    /// Accesses observed so far (diagnostics).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions(cfg: InjectConfig, n: u64) -> Vec<(u64, Option<Injection>)> {
        let mut inj = FaultInjector::new(cfg);
        (0..n).map(|i| (i, inj.decide(InjectSpace::Global, 0x1000 + i * 4))).collect()
    }

    #[test]
    fn same_seed_same_decisions() {
        let cfg = InjectConfig::bitflips(42, 16);
        assert_eq!(decisions(cfg.clone(), 500), decisions(cfg, 500));
    }

    #[test]
    fn different_seeds_differ() {
        let a = decisions(InjectConfig::bitflips(1, 16), 500);
        let b = decisions(InjectConfig::bitflips(2, 16), 500);
        assert_ne!(a, b);
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let hits = decisions(InjectConfig::bitflips(7, 8), 4000)
            .iter()
            .filter(|(_, d)| d.is_some())
            .count();
        // one-in-8 over 4000 accesses: expect ~500, allow a wide band.
        assert!((150..1500).contains(&hits), "got {hits}");
    }

    #[test]
    fn untargeted_space_is_left_alone() {
        let mut inj = FaultInjector::new(InjectConfig::forced(3, 1, InjectSpace::Shared));
        for i in 0..100 {
            assert_eq!(inj.decide(InjectSpace::Local, i), None);
        }
        // Rate 1 on the targeted space fires immediately.
        assert_eq!(inj.decide(InjectSpace::Shared, 0), Some(Injection::Fault));
    }

    #[test]
    fn forced_faults_win_over_bitflips() {
        let cfg = InjectConfig {
            seed: 9,
            bitflip_one_in: 1,
            force_fault_one_in: 1,
            spaces: InjectSpace::ALL.to_vec(),
        };
        let mut inj = FaultInjector::new(cfg);
        assert_eq!(inj.decide(InjectSpace::Global, 0), Some(Injection::Fault));
    }

    #[test]
    fn disabled_rates_never_fire() {
        let cfg = InjectConfig {
            seed: 5,
            bitflip_one_in: 0,
            force_fault_one_in: 0,
            spaces: InjectSpace::ALL.to_vec(),
        };
        let mut inj = FaultInjector::new(cfg);
        for i in 0..1000 {
            assert_eq!(inj.decide(InjectSpace::Global, i), None);
        }
    }
}
