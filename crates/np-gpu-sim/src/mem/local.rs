//! CUDA local-memory address layout.
//!
//! "Local" memory is per-thread storage that physically lives in device
//! memory and is staged through the L1 cache. The hardware interleaves it so
//! that when the 32 threads of a warp access the *same* local-array index,
//! their accesses are contiguous: the element `i` of thread `lane` in warp
//! `w` lives at
//!
//! ```text
//! warp_base(w) + i * (WARP_SIZE * elem_bytes) + lane * elem_bytes
//! ```
//!
//! This means uniform-index local accesses are perfectly coalesced (one L1
//! line per warp access), while divergent indices scatter across lines — the
//! behaviour Section 3.3 relies on.

use crate::config::WARP_SIZE;

/// Computes interleaved local-memory addresses for one warp.
#[derive(Debug, Clone, Copy)]
pub struct LocalLayout {
    /// Bytes of local memory per thread (the thread's whole local frame).
    pub bytes_per_thread: u32,
}

impl LocalLayout {
    /// Address of byte-offset `offset` in `lane`'s local frame, for the warp
    /// with global warp index `warp_id`.
    pub fn addr(&self, warp_id: u64, lane: u32, offset: u32) -> u64 {
        debug_assert!(offset < self.bytes_per_thread.max(1));
        let warp_frame = self.bytes_per_thread as u64 * WARP_SIZE as u64;
        let word = offset / 4;
        let within = offset % 4;
        warp_id * warp_frame
            + word as u64 * (WARP_SIZE as u64 * 4)
            + lane as u64 * 4
            + within as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_index_is_contiguous_across_lanes() {
        let l = LocalLayout { bytes_per_thread: 600 };
        let base = l.addr(0, 0, 40);
        for lane in 0..32 {
            assert_eq!(l.addr(0, lane, 40), base + 4 * lane as u64);
        }
    }

    #[test]
    fn distinct_words_of_one_thread_are_a_warp_stride_apart() {
        let l = LocalLayout { bytes_per_thread: 64 };
        assert_eq!(l.addr(0, 5, 8) - l.addr(0, 5, 4), 32 * 4);
    }

    #[test]
    fn warps_do_not_overlap() {
        let l = LocalLayout { bytes_per_thread: 64 };
        let max_w0 = l.addr(0, 31, 60);
        let min_w1 = l.addr(1, 0, 0);
        assert!(min_w1 > max_w0);
        assert_eq!(min_w1, 64 * 32);
    }

    #[test]
    fn uniform_warp_access_touches_exactly_one_line() {
        let l = LocalLayout { bytes_per_thread: 600 };
        let lines: std::collections::BTreeSet<u64> =
            (0..32).map(|lane| l.addr(3, lane, 148) / 128).collect();
        assert_eq!(lines.len(), 1);
    }
}
