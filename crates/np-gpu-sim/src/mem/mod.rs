//! Warp-level memory access models.
//!
//! Each submodule converts the 32 per-lane addresses of one warp memory
//! instruction into the compact cost summary carried in the trace
//! ([`crate::trace::WarpOp`]): transaction counts for global memory, replay
//! counts for shared memory, line addresses for the L1-backed local/texture
//! paths, and distinct-address counts for the constant cache.

pub mod cache;
pub mod constant;
pub mod global;
pub mod inject;
pub mod local;
pub mod shared;

/// Per-lane addresses of one warp access. `None` marks an inactive lane.
pub type LaneAddrs = [Option<u64>; crate::config::WARP_SIZE as usize];

/// Build a `LaneAddrs` from an iterator of (lane, addr) pairs; other lanes
/// are inactive. Convenience for tests and the executor.
pub fn lane_addrs<I: IntoIterator<Item = (usize, u64)>>(it: I) -> LaneAddrs {
    let mut a: LaneAddrs = [None; crate::config::WARP_SIZE as usize];
    for (lane, addr) in it {
        a[lane] = Some(addr);
    }
    a
}
