//! Shared-memory bank-conflict model.
//!
//! Kepler shared memory has 32 banks, each 4 bytes wide (in the 4-byte bank
//! mode the paper's kernels use). A warp access completes in one pass when
//! every active lane hits a different bank *or* lanes hitting the same bank
//! read the same word (broadcast). Otherwise the access replays once per
//! additional distinct word within the most-contended bank.

use super::LaneAddrs;

/// Number of shared-memory banks.
pub const NUM_BANKS: u64 = 32;
/// Bank width in bytes.
pub const BANK_BYTES: u64 = 4;

/// Number of serialized passes (>= 1 for any active access, 0 if no lane is
/// active) needed by one warp shared-memory access.
pub fn conflict_passes(addrs: &LaneAddrs) -> u32 {
    // At most one distinct word per active lane, so a fixed scratch array
    // covers the worst case without touching the heap on this hot path.
    let mut seen = [0u64; 32];
    let mut nseen = 0usize;
    let mut per_bank = [0u32; NUM_BANKS as usize];
    for addr in addrs.iter().flatten() {
        let word = *addr / BANK_BYTES;
        if !seen[..nseen].contains(&word) {
            seen[nseen] = word;
            nseen += 1;
            per_bank[(word % NUM_BANKS) as usize] += 1;
        }
    }
    if nseen == 0 {
        return 0;
    }
    per_bank.iter().copied().max().unwrap_or(0).max(1)
}

#[cfg(test)]
mod tests {
    use super::super::lane_addrs;
    use super::*;

    #[test]
    fn conflict_free_sequential() {
        let a = lane_addrs((0..32).map(|l| (l, 4 * l as u64)));
        assert_eq!(conflict_passes(&a), 1);
    }

    #[test]
    fn broadcast_is_conflict_free() {
        let a = lane_addrs((0..32).map(|l| (l, 0x40)));
        assert_eq!(conflict_passes(&a), 1);
    }

    #[test]
    fn stride_32_words_is_32_way_conflict() {
        // Every lane hits bank 0 at a different word.
        let a = lane_addrs((0..32).map(|l| (l, 128 * l as u64)));
        assert_eq!(conflict_passes(&a), 32);
    }

    #[test]
    fn stride_2_words_is_2_way_conflict() {
        let a = lane_addrs((0..32).map(|l| (l, 8 * l as u64)));
        assert_eq!(conflict_passes(&a), 2);
    }

    #[test]
    fn odd_stride_is_conflict_free() {
        // Stride of 3 words is coprime with 32 banks: conflict free.
        let a = lane_addrs((0..32).map(|l| (l, 12 * l as u64)));
        assert_eq!(conflict_passes(&a), 1);
    }

    #[test]
    fn inactive_warp_costs_nothing() {
        let a = lane_addrs(std::iter::empty());
        assert_eq!(conflict_passes(&a), 0);
    }

    #[test]
    fn mixed_broadcast_and_conflict() {
        // Lanes 0..16 read word 0 (bank 0), lanes 16..32 read word 32
        // (also bank 0, different word): 2 passes.
        let a = lane_addrs((0..32).map(|l| (l, if l < 16 { 0 } else { 128 })));
        assert_eq!(conflict_passes(&a), 2);
    }
}
