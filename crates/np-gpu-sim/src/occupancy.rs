//! Occupancy calculation: how many thread blocks of a kernel fit on one SMX.
//!
//! This is the mechanism behind most of the paper's speedups: baseline
//! kernels with heavy per-thread register / per-block shared-memory usage run
//! few concurrent threads per SMX, exposing memory latency; CUDA-NP raises
//! thread-level parallelism without a proportional resource increase.

use crate::config::{DeviceConfig, WARP_SIZE};
use serde::{Deserialize, Serialize};

/// Static resource demand of one kernel launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelResources {
    /// Threads per block.
    pub block_size: u32,
    /// 32-bit registers per thread.
    pub regs_per_thread: u32,
    /// Shared-memory bytes per block.
    pub shared_per_block: u32,
    /// Local-memory bytes per thread (spills / local arrays). Local memory
    /// does not limit occupancy on real hardware (it lives in device memory)
    /// but it does determine L1 pressure, so we carry it here.
    pub local_per_thread: u32,
}

/// Which resource capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// The per-SMX block-slot limit.
    BlockSlots,
    /// The per-SMX thread limit.
    Threads,
    /// The register file.
    Registers,
    /// Shared-memory capacity.
    SharedMem,
}

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    pub blocks_per_smx: u32,
    pub warps_per_smx: u32,
    pub threads_per_smx: u32,
    /// threads_per_smx / device max, in [0, 1].
    pub fraction: f64,
    pub limiter: Limiter,
}

/// Reasons a kernel cannot launch at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OccupancyError {
    /// Block size exceeds the hardware maximum.
    BlockTooLarge { block_size: u32, max: u32 },
    /// Zero-thread blocks are not a thing.
    EmptyBlock,
    /// Per-thread register demand exceeds the hardware cap.
    TooManyRegisters { regs: u32, max: u32 },
    /// A single block's shared memory exceeds the SMX capacity.
    SharedMemTooLarge { bytes: u32, max: u32 },
    /// One block alone over-subscribes an SMX-wide resource (e.g. a
    /// 1024-thread block whose per-warp register allocation exceeds the
    /// whole register file): zero blocks can ever become resident, so the
    /// launch must fail instead of silently simulating nothing.
    ZeroResidency { limiter: Limiter },
}

impl std::fmt::Display for OccupancyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OccupancyError::BlockTooLarge { block_size, max } => {
                write!(f, "block size {block_size} exceeds device maximum {max}")
            }
            OccupancyError::EmptyBlock => write!(f, "block size must be non-zero"),
            OccupancyError::TooManyRegisters { regs, max } => {
                write!(f, "{regs} registers/thread exceeds device maximum {max}")
            }
            OccupancyError::SharedMemTooLarge { bytes, max } => {
                write!(f, "{bytes} B shared memory/block exceeds SMX capacity {max}")
            }
            OccupancyError::ZeroResidency { limiter } => {
                write!(f, "a single block over-subscribes the SMX ({limiter:?}-limited): zero resident blocks")
            }
        }
    }
}

impl std::error::Error for OccupancyError {}

fn round_up(v: u32, granularity: u32) -> u32 {
    if granularity == 0 {
        return v;
    }
    v.div_ceil(granularity) * granularity
}

/// Compute the occupancy of a kernel on `dev`, following the same rules as
/// the CUDA occupancy calculator: registers are allocated per warp at a
/// fixed granularity, shared memory per block at a fixed granularity, and
/// the resident-block count is the minimum over all four limiters.
pub fn occupancy(dev: &DeviceConfig, res: &KernelResources) -> Result<Occupancy, OccupancyError> {
    if res.block_size == 0 {
        return Err(OccupancyError::EmptyBlock);
    }
    if res.block_size > dev.max_threads_per_block {
        return Err(OccupancyError::BlockTooLarge {
            block_size: res.block_size,
            max: dev.max_threads_per_block,
        });
    }
    if res.regs_per_thread > dev.max_registers_per_thread {
        return Err(OccupancyError::TooManyRegisters {
            regs: res.regs_per_thread,
            max: dev.max_registers_per_thread,
        });
    }
    let shared = round_up(res.shared_per_block, dev.shared_alloc_granularity);
    if shared > dev.shared_mem_per_smx {
        return Err(OccupancyError::SharedMemTooLarge {
            bytes: res.shared_per_block,
            max: dev.shared_mem_per_smx,
        });
    }

    let warps_per_block = res.block_size.div_ceil(WARP_SIZE);
    // Registers are allocated per warp: block cost in registers.
    let regs_per_warp =
        round_up(res.regs_per_thread.max(1) * WARP_SIZE, dev.register_alloc_granularity);
    let regs_per_block = regs_per_warp * warps_per_block;

    let by_slots = dev.max_blocks_per_smx;
    let by_threads = dev.max_threads_per_smx / res.block_size;
    let by_regs = dev.registers_per_smx / regs_per_block;
    let by_shared = dev.shared_mem_per_smx.checked_div(shared).unwrap_or(u32::MAX);

    let mut blocks = by_slots;
    let mut limiter = Limiter::BlockSlots;
    for (b, l) in [
        (by_threads, Limiter::Threads),
        (by_regs, Limiter::Registers),
        (by_shared, Limiter::SharedMem),
    ] {
        if b < blocks {
            blocks = b;
            limiter = l;
        }
    }

    if blocks == 0 {
        // A residency of zero is not "low occupancy" — the block can never
        // be scheduled at all. Callers must see a launch failure, not a
        // zero-cycle simulation of an empty SMX.
        return Err(OccupancyError::ZeroResidency { limiter });
    }

    let threads = blocks * res.block_size;
    Ok(Occupancy {
        blocks_per_smx: blocks,
        warps_per_smx: blocks * warps_per_block,
        threads_per_smx: threads,
        fraction: threads as f64 / dev.max_threads_per_smx as f64,
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(block: u32, regs: u32, shared: u32) -> KernelResources {
        KernelResources {
            block_size: block,
            regs_per_thread: regs,
            shared_per_block: shared,
            local_per_thread: 0,
        }
    }

    #[test]
    fn slot_limited_small_blocks() {
        // The paper's lud_perimeter example: 32-thread blocks, 3 kB shared.
        // 16 blocks fit per SMX (slot limited), exactly as Section 3 states.
        let dev = DeviceConfig::gtx680();
        let o = occupancy(&dev, &res(32, 11, 3 * 1024)).unwrap();
        assert_eq!(o.blocks_per_smx, 16);
        assert_eq!(o.limiter, Limiter::BlockSlots);
        assert_eq!(o.threads_per_smx, 512);
    }

    #[test]
    fn thread_limited_large_blocks() {
        let dev = DeviceConfig::gtx680();
        let o = occupancy(&dev, &res(1024, 16, 0)).unwrap();
        assert_eq!(o.blocks_per_smx, 2);
        assert_eq!(o.limiter, Limiter::Threads);
        assert!((o.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn register_limited() {
        let dev = DeviceConfig::gtx680();
        // 63 regs/thread, 256-thread blocks: 63*32 -> 2048/warp rounded,
        // 8 warps/block -> 16384 regs/block -> 4 blocks.
        let o = occupancy(&dev, &res(256, 63, 0)).unwrap();
        assert_eq!(o.limiter, Limiter::Registers);
        assert_eq!(o.blocks_per_smx, 4);
    }

    #[test]
    fn shared_limited() {
        let dev = DeviceConfig::gtx680();
        let o = occupancy(&dev, &res(256, 16, 24 * 1024)).unwrap();
        assert_eq!(o.blocks_per_smx, 2);
        assert_eq!(o.limiter, Limiter::SharedMem);
    }

    #[test]
    fn errors_reported() {
        let dev = DeviceConfig::gtx680();
        assert!(matches!(
            occupancy(&dev, &res(2048, 16, 0)),
            Err(OccupancyError::BlockTooLarge { .. })
        ));
        assert!(matches!(occupancy(&dev, &res(0, 16, 0)), Err(OccupancyError::EmptyBlock)));
        assert!(matches!(
            occupancy(&dev, &res(32, 200, 0)),
            Err(OccupancyError::TooManyRegisters { .. })
        ));
        assert!(matches!(
            occupancy(&dev, &res(32, 16, 64 * 1024)),
            Err(OccupancyError::SharedMemTooLarge { .. })
        ));
    }

    #[test]
    fn more_shared_memory_never_raises_occupancy() {
        let dev = DeviceConfig::gtx680();
        let mut prev = u32::MAX;
        for kb in [0u32, 1, 2, 4, 8, 16, 24, 48] {
            let o = occupancy(&dev, &res(128, 20, kb * 1024)).unwrap();
            assert!(o.blocks_per_smx <= prev);
            prev = o.blocks_per_smx;
        }
    }

    #[test]
    fn zero_residency_is_a_typed_error_not_a_zero_cycle_run() {
        // 1024 threads × 128 regs/thread = 131072 regs/block on a 65536-reg
        // SMX: no block can ever become resident. This used to return
        // Ok { blocks_per_smx: 0 }, which the engine "ran" in zero cycles —
        // the tuner then crowned an infinite-speedup winner (CFD s=8 on
        // k20c/maxwell). It must be a launch-time error.
        let dev = DeviceConfig::k20c();
        match occupancy(&dev, &res(1024, 128, 0)) {
            Err(OccupancyError::ZeroResidency { limiter }) => {
                assert_eq!(limiter, Limiter::Registers)
            }
            other => panic!("expected ZeroResidency, got {other:?}"),
        }
    }

    #[test]
    fn zero_register_kernels_still_charge_a_warp() {
        let dev = DeviceConfig::gtx680();
        // Even regs=0 must not divide by zero / report infinite blocks.
        let o = occupancy(&dev, &res(32, 0, 0)).unwrap();
        assert!(o.blocks_per_smx <= dev.max_blocks_per_smx);
    }
}
