//! Deterministic per-launch hardware counters.
//!
//! Counters are accumulated at trace-emission time (see
//! [`crate::trace::TraceBuilder`]), which makes them a pure function of the
//! kernel, its arguments, and the launch configuration: no engine scheduling
//! decision, wave-sampling choice, or host-side thread interleaving can
//! change them. Re-running a launch with the same inputs yields a
//! byte-identical [`ProfileReport::to_json`] string — the golden-counter
//! suite relies on this.
//!
//! Each counter maps to a mechanism the CUDA-NP paper argues about:
//! divergence events / divergent instructions (Figures 1, 9), global
//! transactions vs. ideal (coalescing after local-array relocation, §5.3),
//! shared-memory replays (bank conflicts), `__shfl` broadcast / reduction /
//! scan steps vs. shared-memory broadcasts (§5.2), and barrier waits.

use crate::trace::{BlockTrace, WarpTrace};

/// One set of deterministic counters; aggregated per warp, per block, and
/// per launch. All counts are exact (never sampled).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileCounters {
    /// Warp instructions issued (folded ALU/SFU runs counted fully).
    pub instructions: u64,
    /// Branch points where a warp took both paths (or a warp-level loop ran
    /// with a partial mask).
    pub divergence_events: u64,
    /// Instructions issued while at least one enclosing construct was
    /// divergent — the "sequential section" cost of Figure 1.
    pub divergent_instructions: u64,
    /// Global-memory transactions actually issued.
    pub global_transactions: u64,
    /// Minimum transactions had every access been perfectly coalesced.
    pub ideal_global_transactions: u64,
    /// Bytes moved to/from global memory by active lanes.
    pub global_bytes: u64,
    /// Shared-memory warp accesses.
    pub shared_accesses: u64,
    /// Extra serialized bank passes beyond the first (replays).
    pub bank_conflict_replays: u64,
    /// Bytes moved to/from shared memory by active lanes.
    pub shared_bytes: u64,
    /// Shared-memory loads where >= 2 active lanes read one word — the
    /// shared-memory broadcast pattern `__shfl` replaces (paper §5.2).
    pub shared_broadcasts: u64,
    /// Local-memory (per-thread array) warp accesses.
    pub local_accesses: u64,
    /// Bytes moved to/from local memory by active lanes.
    pub local_bytes: u64,
    /// Texture / read-only path warp loads.
    pub tex_accesses: u64,
    /// Bytes read through the texture path by active lanes.
    pub tex_bytes: u64,
    /// Constant-cache warp loads.
    pub const_accesses: u64,
    /// Bytes read through the constant cache by active lanes.
    pub const_bytes: u64,
    /// `__shfl` ops broadcasting one lane's value (idx mode).
    pub shfl_broadcasts: u64,
    /// `__shfl_xor` butterfly steps (live-out reduction combining).
    pub shfl_reduction_steps: u64,
    /// `__shfl_up` / `__shfl_down` steps (exclusive-scan combining).
    pub shfl_scan_steps: u64,
    /// `__syncthreads()` barriers reached by this warp.
    pub barrier_waits: u64,
}

impl ProfileCounters {
    /// Accumulate `other` into `self` field by field.
    pub fn add(&mut self, other: &ProfileCounters) {
        self.instructions += other.instructions;
        self.divergence_events += other.divergence_events;
        self.divergent_instructions += other.divergent_instructions;
        self.global_transactions += other.global_transactions;
        self.ideal_global_transactions += other.ideal_global_transactions;
        self.global_bytes += other.global_bytes;
        self.shared_accesses += other.shared_accesses;
        self.bank_conflict_replays += other.bank_conflict_replays;
        self.shared_bytes += other.shared_bytes;
        self.shared_broadcasts += other.shared_broadcasts;
        self.local_accesses += other.local_accesses;
        self.local_bytes += other.local_bytes;
        self.tex_accesses += other.tex_accesses;
        self.tex_bytes += other.tex_bytes;
        self.const_accesses += other.const_accesses;
        self.const_bytes += other.const_bytes;
        self.shfl_broadcasts += other.shfl_broadcasts;
        self.shfl_reduction_steps += other.shfl_reduction_steps;
        self.shfl_scan_steps += other.shfl_scan_steps;
        self.barrier_waits += other.barrier_waits;
    }

    /// Coalescing efficiency: ideal transactions / issued transactions.
    /// Always in `(0, 1]`; a launch with no global traffic counts as
    /// perfectly coalesced.
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.global_transactions == 0 {
            return 1.0;
        }
        self.ideal_global_transactions as f64 / self.global_transactions as f64
    }

    /// Fraction of instructions issued under divergence, in `[0, 1]`.
    pub fn divergence_ratio(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.divergent_instructions as f64 / self.instructions as f64
    }

    /// All `__shfl` exchanges regardless of mode.
    pub fn shfl_ops(&self) -> u64 {
        self.shfl_broadcasts + self.shfl_reduction_steps + self.shfl_scan_steps
    }

    /// The counters in a fixed (name, value) order — the single source of
    /// truth for every serialization below. Field order here *is* the JSON
    /// byte layout; never reorder without regenerating goldens.
    pub fn fields(&self) -> [(&'static str, u64); 20] {
        [
            ("instructions", self.instructions),
            ("divergence_events", self.divergence_events),
            ("divergent_instructions", self.divergent_instructions),
            ("global_transactions", self.global_transactions),
            ("ideal_global_transactions", self.ideal_global_transactions),
            ("global_bytes", self.global_bytes),
            ("shared_accesses", self.shared_accesses),
            ("bank_conflict_replays", self.bank_conflict_replays),
            ("shared_bytes", self.shared_bytes),
            ("shared_broadcasts", self.shared_broadcasts),
            ("local_accesses", self.local_accesses),
            ("local_bytes", self.local_bytes),
            ("tex_accesses", self.tex_accesses),
            ("tex_bytes", self.tex_bytes),
            ("const_accesses", self.const_accesses),
            ("const_bytes", self.const_bytes),
            ("shfl_broadcasts", self.shfl_broadcasts),
            ("shfl_reduction_steps", self.shfl_reduction_steps),
            ("shfl_scan_steps", self.shfl_scan_steps),
            ("barrier_waits", self.barrier_waits),
        ]
    }

    /// One deterministic JSON object (no trailing newline). The crate's
    /// serde shim is a no-op, so serialization is hand-rolled; integer
    /// counters print exactly and the two derived ratios use a fixed
    /// 6-decimal format so the output is byte-stable.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for (name, v) in self.fields() {
            s.push_str(&format!("\"{name}\":{v},"));
        }
        s.push_str(&format!(
            "\"coalescing_efficiency\":{:.6},\"divergence_ratio\":{:.6}}}",
            self.coalescing_efficiency(),
            self.divergence_ratio()
        ));
        s
    }
}

/// Counters of one block: per warp plus the block total.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockProfile {
    pub warps: Vec<ProfileCounters>,
    pub total: ProfileCounters,
}

impl BlockProfile {
    /// Aggregate a finished block trace.
    pub fn from_trace(trace: &BlockTrace) -> BlockProfile {
        let warps: Vec<ProfileCounters> =
            trace.warps.iter().map(|w: &WarpTrace| w.counters.clone()).collect();
        let mut total = ProfileCounters::default();
        for w in &warps {
            total.add(w);
        }
        BlockProfile { warps, total }
    }
}

/// The per-launch profile surfaced through `KernelReport`: per-block
/// aggregates (in block-issue order) plus the launch total. When the engine
/// samples waves, `blocks` holds only the simulated blocks — the counters
/// themselves are still exact for those blocks, never scaled.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    pub blocks: Vec<BlockProfile>,
    pub total: ProfileCounters,
}

impl ProfileReport {
    /// Record one block's trace (called once per simulated block, in issue
    /// order, which is deterministic).
    pub fn record_block(&mut self, trace: &BlockTrace) {
        let bp = BlockProfile::from_trace(trace);
        self.total.add(&bp.total);
        self.blocks.push(bp);
    }

    /// Launch-total coalescing efficiency, in `(0, 1]`.
    pub fn coalescing_efficiency(&self) -> f64 {
        self.total.coalescing_efficiency()
    }

    /// Deterministic JSON document: launch totals plus per-block totals.
    /// Byte-identical across reruns with the same kernel/args/config.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"total\": ");
        s.push_str(&self.total.to_json());
        s.push_str(",\n  \"blocks\": [");
        for (i, b) in self.blocks.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            s.push_str(&b.total.to_json());
        }
        if !self.blocks.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}");
        s
    }

    /// Chrome-trace (about://tracing) counter events: one `ph:"C"` event per
    /// counter per block, `ts` = block index, plus per-warp instruction
    /// counters on separate tids. Deterministic for the same launch.
    pub fn to_chrome_trace(&self, kernel_name: &str) -> String {
        let mut s = String::from("[");
        let mut first = true;
        for (bi, b) in self.blocks.iter().enumerate() {
            for (name, v) in b.total.fields() {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!(
                    "\n{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":\"{kernel_name}\",\
                     \"tid\":\"block\",\"ts\":{bi},\"args\":{{\"value\":{v}}}}}"
                ));
            }
            for (wi, w) in b.warps.iter().enumerate() {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!(
                    "\n{{\"name\":\"instructions\",\"ph\":\"C\",\"pid\":\"{kernel_name}\",\
                     \"tid\":\"warp {wi}\",\"ts\":{bi},\"args\":{{\"value\":{}}}}}",
                    w.instructions
                ));
            }
        }
        s.push_str("\n]");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ShflKind, TraceBuilder};
    use crate::mem::lane_addrs;

    fn warp_with_traffic() -> WarpTrace {
        let mut b = TraceBuilder::new(128, 128);
        b.alu(5);
        let a = lane_addrs((0..32).map(|l| (l, 4 * l as u64)));
        b.global(&a, 4, false);
        b.shfl(ShflKind::Broadcast);
        b.bar();
        b.finish()
    }

    #[test]
    fn block_profile_sums_warps() {
        let bt = BlockTrace { warps: vec![warp_with_traffic(), warp_with_traffic()] };
        let bp = BlockProfile::from_trace(&bt);
        assert_eq!(bp.warps.len(), 2);
        assert_eq!(bp.total.instructions, 2 * bp.warps[0].instructions);
        assert_eq!(bp.total.shfl_broadcasts, 2);
        assert_eq!(bp.total.barrier_waits, 2);
    }

    #[test]
    fn report_total_is_additive_over_blocks() {
        let bt = BlockTrace { warps: vec![warp_with_traffic()] };
        let mut rep = ProfileReport::default();
        rep.record_block(&bt);
        rep.record_block(&bt);
        let mut expect = ProfileCounters::default();
        expect.add(&rep.blocks[0].total);
        expect.add(&rep.blocks[1].total);
        assert_eq!(rep.total, expect);
    }

    #[test]
    fn coalescing_efficiency_is_one_without_global_traffic() {
        assert_eq!(ProfileCounters::default().coalescing_efficiency(), 1.0);
    }

    #[test]
    fn coalescing_efficiency_in_unit_interval() {
        let mut b = TraceBuilder::new(128, 128);
        // Strided: each lane hits a distinct 128B segment -> 32 txns, ideal 1.
        let a = lane_addrs((0..32).map(|l| (l, 128 * l as u64)));
        b.global(&a, 4, false);
        let c = &b.finish().counters;
        assert_eq!(c.global_transactions, 32);
        assert_eq!(c.ideal_global_transactions, 1);
        let e = c.coalescing_efficiency();
        assert!(e > 0.0 && e <= 1.0, "efficiency out of range: {e}");
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let bt = BlockTrace { warps: vec![warp_with_traffic()] };
        let mut r1 = ProfileReport::default();
        r1.record_block(&bt);
        let mut r2 = ProfileReport::default();
        r2.record_block(&bt);
        assert_eq!(r1.to_json(), r2.to_json());
        let j = r1.to_json();
        let i_instr = j.find("\"instructions\"").unwrap();
        let i_barrier = j.find("\"barrier_waits\"").unwrap();
        assert!(i_instr < i_barrier, "field order must be fixed");
        assert!(j.contains("\"coalescing_efficiency\":1.000000"));
    }

    #[test]
    fn chrome_trace_has_counter_events() {
        let bt = BlockTrace { warps: vec![warp_with_traffic()] };
        let mut rep = ProfileReport::default();
        rep.record_block(&bt);
        let t = rep.to_chrome_trace("k");
        assert!(t.starts_with('['));
        assert!(t.ends_with(']'));
        assert!(t.contains("\"ph\":\"C\""));
        assert!(t.contains("\"tid\":\"warp 0\""));
        assert!(t.contains("\"pid\":\"k\""));
    }

    #[test]
    fn empty_report_serializes() {
        let rep = ProfileReport::default();
        assert!(rep.to_json().contains("\"blocks\": []"));
        assert_eq!(rep.to_chrome_trace("k"), "[\n]");
    }
}
